(* Quickstart: load a document, run a query at every milestone.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Xqdb_core.Engine
module Config = Xqdb_core.Engine_config

let document =
  {|<journal>
      <authors><name>Ana</name><name>Bob</name></authors>
      <title>DB</title>
    </journal>|}

let query = {|<names>{ for $j in /journal return for $n in $j//name return $n }</names>|}

let () =
  (* Parse, shred and index the document.  The engine keeps the
     in-memory labeled tree too, so the same handle can evaluate at any
     milestone. *)
  let engine = Engine.load ~config:Config.m4 document in

  (* Run the query with the milestone-4 engine (cost-based optimizer,
     B+-tree indexes). *)
  let result = Engine.run engine (Xqdb_xq.Xq_parser.parse query) in
  (match result.Engine.status with
   | Engine.Ok -> Printf.printf "result: %s\n\n" result.Engine.output
   | Engine.Error msg | Engine.Budget_exceeded msg | Engine.Io_error msg
   | Engine.Timeout msg -> failwith msg);

  (* The same query through all four milestones gives the same answer;
     only the evaluation machinery differs. *)
  List.iter
    (fun config ->
      let engine = Engine.with_config config engine in
      let r = Engine.run engine (Xqdb_xq.Xq_parser.parse query) in
      Printf.printf "%-3s -> %s\n" config.Config.name r.Engine.output)
    [Config.m1; Config.m2; Config.m3; Config.m4];

  (* Inspect what milestone 3/4 actually do: the TPM rewriting and the
     chosen physical plan. *)
  print_newline ();
  print_endline (Engine.explain engine (Xqdb_xq.Xq_parser.parse query))
