module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module W = Xqdb_workload

type outcome = {
  doc : string;
  query : string;
  engine : string;
  passed : bool;
  detail : string;
}

let documents () =
  [ ("figure2", [W.Docs.figure2]);
    ("tiny", [W.Docs.tiny]);
    ("dblp", [W.Dblp_gen.generate (W.Dblp_gen.scaled 120)]);
    ("treebank", [W.Treebank_gen.generate (W.Treebank_gen.scaled 25)]) ]

let truncate s =
  if String.length s <= 80 then s else String.sub s 0 77 ^ "..."

let run ?(configs = Engine_config.all_presets) ?documents:(docs = documents ())
    ?(queries = Queries.public_queries) () =
  let parsed = Queries.parsed queries in
  List.concat_map
    (fun (doc_name, forest) ->
      let reference_engine = Engine.load_forest ~config:Engine_config.m1 forest in
      List.concat_map
        (fun (query_name, query) ->
          let reference = Engine.run reference_engine query in
          List.map
            (fun config ->
              let engine = Engine.with_config config reference_engine in
              let result = Engine.run engine query in
              let passed, detail =
                match result.Engine.status, reference.Engine.status with
                | Engine.Ok, Engine.Ok ->
                  if String.equal result.Engine.output reference.Engine.output then
                    (true, "")
                  else
                    ( false,
                      Printf.sprintf "expected %s, got %s"
                        (truncate reference.Engine.output)
                        (truncate result.Engine.output) )
                | Engine.Error m1, Engine.Error _ ->
                  (true, Printf.sprintf "both erred (%s)" (truncate m1))
                | Engine.Error m, Engine.Ok -> (false, "engine erred: " ^ truncate m)
                | Engine.Ok, Engine.Error m -> (false, "reference erred: " ^ truncate m)
                | Engine.Budget_exceeded m, _ | _, Engine.Budget_exceeded m ->
                  (false, "budget exceeded without a budget: " ^ truncate m)
                | Engine.Timeout m, _ | _, Engine.Timeout m ->
                  (false, "timeout without a deadline: " ^ truncate m)
                | Engine.Io_error m, _ | _, Engine.Io_error m ->
                  (false, "i/o error without fault injection: " ^ truncate m)
              in
              { doc = doc_name;
                query = query_name;
                engine = config.Engine_config.name;
                passed;
                detail })
            configs)
        parsed)
    docs

let failures outcomes = List.filter (fun o -> not o.passed) outcomes

let summary outcomes =
  let failed = failures outcomes in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "correctness: %d checks, %d failures\n" (List.length outcomes)
       (List.length failed));
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  FAIL %s / %s / %s: %s\n" o.doc o.query o.engine o.detail))
    failed;
  Buffer.contents buf
