module Database = Xqdb_core.Database
module Engine = Xqdb_core.Engine
module Session = Xqdb_server.Session
module Wire = Xqdb_server.Wire
module Storage = Xqdb_storage
module Dblp = Xqdb_workload.Dblp_gen

(* The load generator: [sessions] client sessions over one shared
   database, each replaying a seeded query mix.  Every request goes
   through the full wire path in-process — encode, decode, execute,
   encode, decode — so the harness measures what a socket client would,
   minus the kernel.

   Correctness is checked against a single-session oracle: before the
   domains start, one session executes every distinct query of the mix
   and records (status, payload); each concurrent response must match
   exactly.  With the pin sanitizer on, the run also asserts the shared
   pool ends quiescent — no leaked pins, no held latches. *)

type mode =
  | Closed  (* each session fires its next request on completion *)
  | Open_rate of float  (* requests per second per session *)

type session_report = {
  session : int;
  requests : int;
  ok : int;
  budget_exceeded : int;
  timeouts : int;
  errors : int;
  io_errors : int;
  bad_requests : int;
  mismatches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type report = {
  sessions : int;
  requests_per_session : int;
  seed : int;
  scale : int;
  mode : mode;
  doc : string;
  wall_seconds : float;
  throughput : float;  (* completed requests per wall-clock second *)
  total_mismatches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  per_session : session_report list;
}

let doc_name = "dblp"

(* The query mix: the five efficiency queries plus the Section-2 example
   — all meaningful against DBLP-shaped data, with plan costs spanning
   orders of magnitude, so the mix exercises both fast index probes and
   long scans. *)
let mix () =
  Queries.efficiency_queries @ [("example6", Queries.example6)]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Session [k]'s schedule under [seed]: request i runs mix entry
   [schedule.(i)].  Deterministic in (seed, k), independent of timing. *)
let schedule ~seed ~requests ~mix_size k =
  let rng = Random.State.make [| seed; k; 0x7af |] in
  Array.init requests (fun _ -> Random.State.int rng mix_size)

let make_request ~caps:(max_page_ios, max_seconds) text =
  { Wire.doc = doc_name; query_text = text; max_page_ios; max_seconds; deadline = None }

(* One request through the full wire path, returning the decoded
   response.  Any wire error here is a harness bug — the harness only
   feeds frames it encoded itself — so it surfaces as a typed internal
   error rather than a silent skip. *)
let roundtrip session req =
  let feed = Bytes.unsafe_to_string (Wire.encode_request req) in
  match Wire.read_request ~read:(Wire.string_reader feed) with
  | Result.Error e ->
    Storage.Xqdb_error.internal "Traffic: request did not round-trip: %s"
      (Wire.error_to_string e)
  | Result.Ok decoded ->
    let resp = Session.handle session decoded in
    let feed = Bytes.unsafe_to_string (Wire.encode_response resp) in
    (match Wire.read_response ~read:(Wire.string_reader feed) with
     | Result.Error e ->
       Storage.Xqdb_error.internal "Traffic: response did not round-trip: %s"
         (Wire.error_to_string e)
     | Result.Ok decoded -> decoded)

type outcome = {
  latencies : float array;  (* seconds, one per request, schedule order *)
  counts : int * int * int * int * int * int;
  (* ok, budget, timeout, error, io, bad *)
  mism : int;
}

let run_session ~db ~caps ~sched ~mode ~oracle k =
  let session =
    let max_page_ios, max_seconds = caps in
    Session.create ?max_page_ios ?max_seconds db
  in
  let mix = Array.of_list (mix ()) in
  let n = Array.length sched in
  let latencies = Array.make n 0. in
  let ok = ref 0 and budget = ref 0 and timeout = ref 0 in
  let error = ref 0 and io = ref 0 and bad = ref 0 in
  let mism = ref 0 in
  let start = Storage.Monotonic.now () in
  for i = 0 to n - 1 do
    (match mode with
     | Closed -> ()
     | Open_rate rate ->
       (* Fire on the schedule even if the previous request ran long:
          open-loop latencies include the queueing the client sees. *)
       let target = start +. (float_of_int i /. rate) in
       let now = Storage.Monotonic.now () in
       if now < target then Unix.sleepf (target -. now));
    let _, text = mix.(sched.(i)) in
    let t0 = Storage.Monotonic.now () in
    let resp = roundtrip session (make_request ~caps text) in
    latencies.(i) <- Storage.Monotonic.elapsed_since t0;
    (match resp.Wire.status with
     | Wire.Ok -> incr ok
     | Wire.Budget_exceeded -> incr budget
     | Wire.Timeout -> incr timeout
     | Wire.Error -> incr error
     | Wire.Io_error -> incr io
     | Wire.Bad_request | Wire.Unavailable -> incr bad);
    match Hashtbl.find_opt oracle text with
    | Some (status, payload)
      when status = resp.Wire.status && String.equal payload resp.Wire.payload ->
      ()
    | Some _ | None -> incr mism
  done;
  ignore k;
  { latencies; counts = (!ok, !budget, !timeout, !error, !io, !bad); mism = !mism }

let session_report ~k (o : outcome) =
  let sorted = Array.copy o.latencies in
  Array.sort Float.compare sorted;
  let ok, budget, timeout, error, io, bad = o.counts in
  { session = k;
    requests = Array.length o.latencies;
    ok;
    budget_exceeded = budget;
    timeouts = timeout;
    errors = error;
    io_errors = io;
    bad_requests = bad;
    mismatches = o.mism;
    p50_ms = 1000. *. percentile sorted 0.50;
    p95_ms = 1000. *. percentile sorted 0.95;
    p99_ms = 1000. *. percentile sorted 0.99 }

let run ?(mode = Closed) ?max_page_ios ?max_seconds ~sessions ~requests ~seed ~scale () =
  if sessions < 1 then invalid_arg "Traffic.run: sessions must be positive";
  if requests < 1 then invalid_arg "Traffic.run: requests must be positive";
  let db = Database.create () in
  let forest = [Dblp.generate (Dblp.scaled scale)] in
  ignore (Database.load_forest db ~name:doc_name forest);
  let caps = (max_page_ios, max_seconds) in
  let mix_entries = mix () in
  (* The single-session oracle: every distinct query once, sequentially,
     before any concurrency starts. *)
  let oracle = Hashtbl.create 16 in
  let oracle_session =
    Session.create ?max_page_ios ?max_seconds db
  in
  List.iter
    (fun (_, text) ->
      let resp = roundtrip oracle_session (make_request ~caps text) in
      Hashtbl.replace oracle text (resp.Wire.status, resp.Wire.payload))
    mix_entries;
  let mix_size = List.length mix_entries in
  let scheds = Array.init sessions (schedule ~seed ~requests ~mix_size) in
  let start = Storage.Monotonic.now () in
  let outcomes =
    if sessions = 1 then
      [| run_session ~db ~caps ~sched:scheds.(0) ~mode ~oracle 0 |]
    else
      Array.map Domain.join
        (Array.init sessions (fun k ->
             Domain.spawn (fun () ->
                 run_session ~db ~caps ~sched:scheds.(k) ~mode ~oracle k)))
  in
  let wall_seconds = Storage.Monotonic.elapsed_since start in
  (* The shared pool must end quiescent: zero pins from anyone, every
     frame latch idle.  Run unconditionally — under the sanitizer a
     violation inside a run would already have raised, but the global
     check also covers non-sanitizing runs. *)
  let pool = Engine.pool (Database.engine db ~name:doc_name) in
  (match Storage.Buffer_pool.pinned_pages pool with
   | [] -> ()
   | leaked ->
     Storage.Xqdb_error.internal "Traffic: %d page(s) still pinned after all sessions joined"
       (List.length leaked));
  (match Storage.Buffer_pool.latched_pages pool with
   | [] -> ()
   | leaked ->
     Storage.Xqdb_error.internal "Traffic: %d frame latch(es) still held after all sessions joined"
       (List.length leaked));
  let per_session =
    List.mapi (fun k o -> session_report ~k o) (Array.to_list outcomes)
  in
  let all =
    Array.concat (Array.to_list (Array.map (fun o -> o.latencies) outcomes))
  in
  Array.sort Float.compare all;
  let total_requests = sessions * requests in
  { sessions;
    requests_per_session = requests;
    seed;
    scale;
    mode;
    doc = doc_name;
    wall_seconds;
    throughput = (if wall_seconds > 0. then float_of_int total_requests /. wall_seconds else 0.);
    total_mismatches = List.fold_left (fun acc s -> acc + s.mismatches) 0 per_session;
    p50_ms = 1000. *. percentile all 0.50;
    p95_ms = 1000. *. percentile all 0.95;
    p99_ms = 1000. *. percentile all 0.99;
    per_session }

let mode_label = function
  | Closed -> "closed"
  | Open_rate _ -> "open"

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "traffic: %d session(s) x %d request(s), %s loop, DBLP scale %d, seed %d\n"
       r.sessions r.requests_per_session (mode_label r.mode) r.scale r.seed);
  Buffer.add_string buf
    (Printf.sprintf "  wall %.2fs  throughput %.1f req/s  mismatches %d\n" r.wall_seconds
       r.throughput r.total_mismatches);
  Buffer.add_string buf
    (Printf.sprintf "  latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n" r.p50_ms r.p95_ms
       r.p99_ms);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  session %d: ok %d  budget %d  timeout %d  error %d  io %d  bad %d  mismatch %d  p95 %.2fms\n"
           s.session s.ok s.budget_exceeded s.timeouts s.errors s.io_errors s.bad_requests
           s.mismatches s.p95_ms))
    r.per_session;
  Buffer.contents buf
