(** The chaos harness: the traffic generator re-run under seeded fault
    injection, with the fault-free run as its own oracle.

    A chaos run has three phases over one database:

    + a {e fault-free baseline} traffic leg (after a single-session
      oracle records every distinct query's answer);
    + a {e chaos} traffic leg: the same seeded schedules with a
      {!Xqdb_storage.Fault_disk} injector armed, and a seeded sprinkle
      of hostile frames (garbage bytes through the wire decoder),
      already-expired deadlines and old-version (v1) frames mixed into
      the request stream;
    + a single-threaded {e WAL-fault} leg on a scratch file database:
      load/drop/checkpoint cycles with transient [Wal] append/sync
      faults injected, asserting the storage retry absorbed them
      ([retry.attempts] grew) and that a fresh [open_file] recovers the
      file afterwards.

    The run's acceptance checks come back as [violations] (empty =
    pass): every client-visible failure typed (zero [untyped]), zero
    oracle mismatches on [Ok] payloads, transient faults invisible to
    clients (chaos-leg error counts equal to the baseline's), hard
    faults surfaced as typed [Io_error]s, retries actually exercised,
    and chaos-leg p99 latency within [max_p99_ratio] of the baseline.
    After each leg the shared pool must be quiescent — a pin or latch
    leak raises {!Xqdb_storage.Xqdb_error.Internal}, as in
    {!Traffic}. *)

type profile =
  | Transient  (** every injected fault clears after one failure *)
  | Hard  (** half the faults persist per page, defeating the retry *)

val profile_label : profile -> string
(** ["transient"] or ["hard"]. *)

val profile_of_string : string -> profile option

type leg = {
  leg : string;  (** ["baseline"] or ["chaos"] *)
  requests : int;
  ok : int;
  budget_exceeded : int;
  timeouts : int;
  errors : int;
  io_errors : int;
  bad_requests : int;
  unavailable : int;
  mismatches : int;
      (** [Ok] responses whose payload diverged from the oracle *)
  untyped : int;  (** exceptions that escaped the wire path — must be 0 *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type report = {
  chaos_seed : int;
  chaos_sessions : int;
  chaos_requests : int;
      (** per session, per cold-start wave (each leg replays its
          schedules from a dropped pool three times, so a leg's total is
          [3 * sessions * requests]) *)
  chaos_scale : int;
  profile_label : string;
  faults_injected : int;  (** disk faults injected during the chaos leg *)
  retry_attempts : int;  (** [retry.attempts] delta across the chaos leg *)
  retry_giveups : int;
  wal_rounds : int;
  wal_retry_attempts : int;  (** [retry.attempts] delta in the WAL leg *)
  baseline : leg;
  chaos : leg;
  p99_ratio : float;  (** chaos p99 / baseline p99 *)
  violations : string list;  (** empty iff the run passes *)
}

val run :
  ?profile:profile ->
  ?max_p99_ratio:float ->
  sessions:int ->
  requests:int ->
  seed:int ->
  scale:int ->
  unit ->
  report
(** [profile] defaults to [Transient]; [max_p99_ratio] (default 200.0)
    bounds the tolerated chaos-leg p99 degradation. *)

val render : report -> string
(** Human-readable summary, violations last. *)
