(** Machine-readable benchmark reports.

    A minimal JSON value type with a writer and a (strict, recursive
    descent) parser — deliberately hand-rolled so the testbed carries no
    dependency beyond the standard library — plus serializers for the
    engine profiles and efficiency tables the benches emit as
    [BENCH_*.json], and a sanity validator CI runs over those files.

    Schema, stable across the [schema_version] field (version 2 added
    the per-run planner counters [templates_built], [template_binds] and
    [prepared_cache_hits]; version 3 the durability counters
    [wal_appends], [wal_checkpoints] and [recovery_replayed]; version 4
    the ["traffic"] kind; version 5 per-operator [batches] counts and
    the fig7 [batch] comparison object; older files are still accepted):

    {v
    { "schema_version": 5,
      "kind": "fig7" | "ablations" | "milestones" | "templates",
      "budget": int,              (fig7 only)
      "results": [
        { "engine": str, "test": str, <extra fields, e.g. "scale": int>,
          "page_ios": int, "seconds": float, "censored": bool,
          "templates_built": int, "template_binds": int,
          "prepared_cache_hits": int,
          "wal_appends": int, "wal_checkpoints": int,
          "recovery_replayed": int,
          "profile": {
            "reads": int, "writes": int, "allocs": int,
            "pool": {"hits": int, "misses": int, "evictions": int,
                     "retries": int},
            "counters": {<metric name>: int, ...},
            "operator_ios": int, "other_ios": int,
            "operators": [<op>, ...] } } ] }
    v}

    where each [<op>] is [{ "op": str, "args": str, "rows": int,
    "batches": int, "ios": int, "own_ios": int, "seconds": float,
    "own_seconds": float, "inputs": [<op>, ...] }].

    Crash-sweep reports ([kind = "crash"], {!crash_json}) use the same
    envelope with one flat result object per crash point:
    [{ "trial": int, "query": str, "events_total": int, "point": int,
    "torn": bool, "crashed": bool, "ok": bool, "detail": str }].

    Traffic reports ([kind = "traffic"], {!traffic_json}, v4+) carry the
    run aggregates ([sessions], [requests_per_session], [seed], [scale],
    [mode], [wall_seconds], [throughput], [mismatches], [p50_ms],
    [p95_ms], [p99_ms]) at the top level and one result object per
    session: [{ "session": int, "requests": int, "ok": int,
    "budget_exceeded": int, "errors": int, "io_errors": int,
    "bad_requests": int, "mismatches": int, "p50_ms": float,
    "p95_ms": float, "p99_ms": float }]. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact rendering with full string escaping. *)

val parse : string -> (json, string) result
(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Numbers with [.], [e] or [E] become [Float], others [Int]. *)

val member : string -> json -> json option
(** Field lookup; [None] when absent or not an object. *)

val write_file : string -> json -> unit

(* --- serializers -------------------------------------------------------- *)

val profile_json : Xqdb_core.Engine.profile -> json

val result_json :
  ?extra:(string * json) list ->
  engine:string -> test:string -> Xqdb_core.Engine.result -> json
(** One engine × test measurement with its full profile and the
    template counters pulled out of it; [extra] adds result-level fields
    (e.g. [("scale", Int n)] for scaling sweeps). *)

val cell_json : Efficiency.cell -> json

(** The batch-vs-tuple comparison a fig7 report can carry (v5): the same
    engines and workload measured at the configured batch size and again
    degraded to one-row batches through the identical operator code,
    with each run's engines ranked by total censored-capped page I/O. *)
type batch_comparison = {
  cmp_batch_size : int;  (** the vectorized run's batch size *)
  batch_seconds : float;  (** total seconds across the table, batched *)
  tuple_seconds : float;  (** total seconds at [batch_size = 1] *)
  batch_ranking : string list;
  tuple_ranking : string list;
}

val fig7_json : ?batch:batch_comparison -> Efficiency.table -> json
(** The whole Figure-7 table: [kind = "fig7"], plus the [batch]
    comparison object when provided. *)

val crash_json : Differential.crash_report -> json
(** A crash-point sweep: [kind = "crash"], one result per crash point. *)

val traffic_json : Traffic.report -> json
(** A traffic run: [kind = "traffic"], one result per session.  The
    validator additionally requires zero oracle mismatches, outcome
    counts that partition each session's requests, and ordered latency
    percentiles. *)

val chaos_json : Chaos.report -> json
(** A chaos run: [kind = "chaos"], one result per leg (fault-free
    baseline, then chaos).  The validator requires outcome counts that
    partition each leg's requests, zero untyped escapes, zero oracle
    mismatches and ordered latency percentiles; chaos reports need
    schema_version >= 6. *)

val bench_json :
  kind:string ->
  (string * json) list ->
  results:json list ->
  json
(** Generic report envelope: [schema_version], [kind], extra top-level
    fields, and the [results] array. *)

(* --- validation --------------------------------------------------------- *)

val validate_bench : json -> (unit, string) result
(** The sanity check CI applies to every [BENCH_*.json]: the envelope
    fields are present and well-typed, every result carries the
    engine/test/page_ios/seconds/censored quintet, and every embedded
    profile reconciles ([reads + writes = operator_ios + other_ios],
    operator trees internally consistent). *)

val validate_constant_templates : json -> (unit, string) result
(** The compile-once invariant: within one report, every (engine, test)
    pair must show the same [templates_built] across all its results —
    a scaling sweep whose template count grows with data size means
    planning happens per outer tuple again.  Requires a v2 report. *)

val validate_structural_gain : json -> (unit, string) result
(** The structural-index payoff gate over a [BENCH_structural.json]
    report: every test named ["deep-*"] must carry measurements for both
    [m4] and [m4-nostruct], and the m4 page I/O must be strictly lower.
    Errors when no deep tests are present at all. *)

val validate_batch_gain : json -> (unit, string) result
(** The vectorization payoff gate over a [BENCH_fig7.json] report: the
    [batch] comparison object must be present, the batched run must be
    strictly faster than the tuple-at-a-time run, and the engine
    rankings of the two runs must agree.  Requires a v5 report with the
    comparison recorded. *)

val parse_file : string -> (json, string) result

val validate_file : string -> (unit, string) result
(** Read, parse and {!validate_bench} one file. *)
