(** Random XML forests and well-scoped, type-safe XQ queries.

    One generator pair serves two clients: the per-module QCheck property
    tests (print/parse round trips, shredding round trips, the
    cross-engine equivalence property) and the {!Differential} oracle
    harness, which replays the same distributions from explicit seeds.
    Queries only ever compare text-bound variables, so milestone 1 never
    raises its runtime type error on generated input. *)

val label_pool : string array
val text_pool : string array

val tree_gen : Xqdb_xml.Xml_tree.node QCheck2.Gen.t

val normalize_forest : Xqdb_xml.Xml_tree.forest -> Xqdb_xml.Xml_tree.forest
(** Merge adjacent text nodes, which cannot survive a print/parse round
    trip (the lexer concatenates them). *)

val forest_gen : Xqdb_xml.Xml_tree.forest QCheck2.Gen.t
(** One to three normalized trees. *)

val xq_gen : Xqdb_xq.Xq_ast.query QCheck2.Gen.t
