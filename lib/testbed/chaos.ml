module Database = Xqdb_core.Database
module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module Session = Xqdb_server.Session
module Server = Xqdb_server.Server
module Wire = Xqdb_server.Wire
module Storage = Xqdb_storage
module Metrics = Xqdb_storage.Metrics
module Wal = Xqdb_storage.Wal
module Disk = Xqdb_storage.Disk
module Dblp = Xqdb_workload.Dblp_gen

(* The chaos harness: the traffic generator re-run under seeded faults,
   with the fault-free run as its own oracle.

   Both traffic legs replay the *same* seeded per-session schedules —
   a mix of well-formed requests (current and v1 wire versions),
   already-expired deadlines and hostile byte strings — through the
   server's real connection loop.  The baseline leg runs them
   fault-free; the chaos leg re-runs them with a seeded Fault_disk
   injector armed.  Deliberate abuse (hostile frames, dead deadlines)
   therefore produces identical typed outcomes in both legs, which is
   what lets the transient profile assert the strongest property in the
   issue: the chaos leg's outcome counts must equal the baseline's —
   transient faults are invisible to clients, absorbed entirely by the
   storage retry.

   The third leg exercises the WAL path single-threaded: load/drop
   cycles on a scratch file database under injected append/sync faults
   (including one torn sync), asserting the retry absorbed them and a
   fresh [open_file] recovers the file. *)

type profile =
  | Transient
  | Hard

let profile_label = function
  | Transient -> "transient"
  | Hard -> "hard"

let profile_of_string = function
  | "transient" -> Some Transient
  | "hard" -> Some Hard
  | _ -> None

type leg = {
  leg : string;
  requests : int;
  ok : int;
  budget_exceeded : int;
  timeouts : int;
  errors : int;
  io_errors : int;
  bad_requests : int;
  unavailable : int;
  mismatches : int;
  untyped : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type report = {
  chaos_seed : int;
  chaos_sessions : int;
  chaos_requests : int;
  chaos_scale : int;
  profile_label : string;
  faults_injected : int;
  retry_attempts : int;
  retry_giveups : int;
  wal_rounds : int;
  wal_retry_attempts : int;
  baseline : leg;
  chaos : leg;
  p99_ratio : float;
  violations : string list;
}

let doc_name = "dblp"

let mix () = Queries.efficiency_queries @ [("example6", Queries.example6)]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Deep retries for the chaos database: at the fault rates the harness
   injects, the default 3-attempt policy would give up on back-to-back
   transient faults a few times per million reads — real flakiness for a
   CI gate.  Eight attempts put a giveup past 1e-10 per read while hard
   faults still surface (they defeat any retry depth). *)
let chaos_config =
  { Engine_config.m4 with
    Engine_config.retry_policy = { Storage.Retry.default with Storage.Retry.attempts = 8 } }

let fault_policy = function
  | Transient ->
    (* High enough that a leg's cold reads (a small document is only a
       few dozen pages, even across [waves] cold starts) are all but
       certain to fault at least once — the run asserts the injector
       fired.  Giving up still needs [attempts] consecutive faults on
       one read, i.e. 0.15^8 — negligible. *)
    { Storage.Fault_disk.read_fault_rate = 0.15;
      write_fault_rate = 0.;
      alloc_fault_rate = 0.;
      transient_fraction = 1.0;
      torn_fraction = 0. }
  | Hard ->
    (* A much higher rate than the transient profile: the leg's cold
       reads only touch on the order of a hundred pages, and at least
       one fault must come up hard for the typed-Io_error assertion to
       have teeth. *)
    { Storage.Fault_disk.read_fault_rate = 0.3;
      write_fault_rate = 0.;
      alloc_fault_rate = 0.;
      transient_fraction = 0.5;
      torn_fraction = 0. }

(* --- request plans --------------------------------------------------------- *)

(* What one slot of a session's schedule does.  Drawn once per (seed,
   session) and replayed identically by both legs. *)
type plan =
  | Normal of int  (* mix entry, current wire version *)
  | Old_version of int  (* mix entry, spoken as a v1 frame *)
  | Expired of int  (* mix entry with an already-dead deadline *)
  | Hostile of int  (* one of the hostile byte strings *)

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let frame_header ?(magic = "XQDB") ?(version = 1) ?(kind = 1) len =
  magic ^ String.make 1 (Char.chr version) ^ String.make 1 (Char.chr kind) ^ u32be len

(* Every variant must decode to a typed non-[Closed] error, so the
   server loop answers each with exactly one [Bad_request]. *)
let hostile_frames =
  [| frame_header ~magic:"EVIL" 0;  (* garbage magic *)
     "XQ";  (* header truncated mid-magic *)
     frame_header ~kind:9 0;  (* unknown frame kind *)
     frame_header (Wire.max_payload + 1);  (* oversize declaration *)
     frame_header 64 ^ "not sixty-four bytes" (* payload truncated *) |]

let schedule ~seed ~requests ~mix_size k =
  let rng = Random.State.make [| seed; k; 0xc4a05 |] in
  Array.init requests (fun _ ->
      let d = Random.State.int rng 100 in
      if d < 4 then Hostile (Random.State.int rng (Array.length hostile_frames))
      else if d < 8 then Expired (Random.State.int rng mix_size)
      else if d < 16 then Old_version (Random.State.int rng mix_size)
      else Normal (Random.State.int rng mix_size))

let make_request ?deadline text =
  { Wire.doc = doc_name; query_text = text; max_page_ios = None; max_seconds = None;
    deadline }

(* One plan through the server's real connection loop (one frame, then
   EOF), returning the decoded responses the "client" saw. *)
let play session plan mix =
  let frame =
    match plan with
    | Normal i -> Bytes.to_string (Wire.encode_request (make_request (snd mix.(i))))
    | Old_version i ->
      Bytes.to_string (Wire.encode_request ~version:1 (make_request (snd mix.(i))))
    | Expired i ->
      (* A deadline already in the past: the session must censor it with
         the typed [Timeout], touching no page. *)
      Bytes.to_string
        (Wire.encode_request (make_request ~deadline:(-1.0) (snd mix.(i))))
    | Hostile i -> hostile_frames.(i)
  in
  let out = Buffer.create 256 in
  Server.handle_connection ~session ~read:(Wire.string_reader frame)
    ~write:(Buffer.add_bytes out) ();
  let read = Wire.string_reader (Buffer.contents out) in
  let rec drain acc =
    match Wire.read_response ~read with
    | Result.Ok r -> drain (r :: acc)
    | Result.Error _ -> List.rev acc
  in
  drain []

(* One session's leg, summarized.  Immutable — each domain builds its
   own from local refs and the spawner only ever reads the results. *)
type outcome = {
  latencies : float array;
  c_ok : int;
  c_budget : int;
  c_timeout : int;
  c_error : int;
  c_io : int;
  c_bad : int;
  c_unavailable : int;
  c_mism : int;
  c_untyped : int;
}

let run_session ~db ~mix ~oracle ~sched () =
  let session = Session.create db in
  let n = Array.length sched in
  let latencies = Array.make n 0. in
  let ok = ref 0 and budget = ref 0 and timeout = ref 0 and error = ref 0 in
  let io = ref 0 and bad = ref 0 and unavailable = ref 0 in
  let mism = ref 0 and untyped = ref 0 in
  for i = 0 to n - 1 do
    let t0 = Storage.Monotonic.now () in
    (match play session sched.(i) mix with
     | [resp] ->
       (match resp.Wire.status with
        | Wire.Ok ->
          incr ok;
          (* Faults may never corrupt an answer: an [Ok] payload must
             equal the fault-free oracle's, byte for byte. *)
          let expected =
            match sched.(i) with
            | Normal q | Old_version q -> Hashtbl.find_opt oracle (snd mix.(q))
            | Expired _ | Hostile _ -> None
          in
          (match expected with
           | Some payload when String.equal payload resp.Wire.payload -> ()
           | Some _ | None -> incr mism)
        | Wire.Budget_exceeded -> incr budget
        | Wire.Timeout -> incr timeout
        | Wire.Error -> incr error
        | Wire.Io_error -> incr io
        | Wire.Bad_request -> incr bad
        | Wire.Unavailable -> incr unavailable)
     | [] | _ :: _ :: _ ->
       (* The loop must answer every frame exactly once; anything else
          is an untyped escape. *)
       incr untyped
     | exception (Storage.Xqdb_error.Internal _ as e) -> raise e
     | exception _ -> incr untyped);
    latencies.(i) <- Storage.Monotonic.elapsed_since t0
  done;
  { latencies;
    c_ok = !ok; c_budget = !budget; c_timeout = !timeout; c_error = !error;
    c_io = !io; c_bad = !bad; c_unavailable = !unavailable; c_mism = !mism;
    c_untyped = !untyped }

let aggregate ~label outcomes =
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let all =
    Array.concat (Array.to_list (Array.map (fun o -> o.latencies) outcomes))
  in
  Array.sort Float.compare all;
  { leg = label;
    requests = Array.length all;
    ok = sum (fun o -> o.c_ok);
    budget_exceeded = sum (fun o -> o.c_budget);
    timeouts = sum (fun o -> o.c_timeout);
    errors = sum (fun o -> o.c_error);
    io_errors = sum (fun o -> o.c_io);
    bad_requests = sum (fun o -> o.c_bad);
    unavailable = sum (fun o -> o.c_unavailable);
    mismatches = sum (fun o -> o.c_mism);
    untyped = sum (fun o -> o.c_untyped);
    p50_ms = 1000. *. percentile all 0.50;
    p95_ms = 1000. *. percentile all 0.95;
    p99_ms = 1000. *. percentile all 0.99 }

let assert_quiescent ~label pool =
  (match Storage.Buffer_pool.pinned_pages pool with
   | [] -> ()
   | leaked ->
     Storage.Xqdb_error.internal "Chaos: %d page(s) still pinned after the %s leg"
       (List.length leaked) label);
  match Storage.Buffer_pool.latched_pages pool with
  | [] -> ()
  | leaked ->
    Storage.Xqdb_error.internal "Chaos: %d frame latch(es) still held after the %s leg"
      (List.length leaked) label

(* The oracle: every distinct query answered once, fault-free (the
   caller records it before any injector is armed). *)
let record_oracle ~db mix =
  let oracle = Hashtbl.create 16 in
  let session = Session.create db in
  Array.iter
    (fun (_, text) ->
      let resp = Session.handle session (make_request text) in
      if resp.Wire.status = Wire.Ok then
        Hashtbl.replace oracle text resp.Wire.payload)
    mix;
  oracle

(* Cold starts per leg.  One cold read sweep over a small document is
   only a few dozen faultable page reads; repeating the schedules from
   a dropped pool multiplies the disk traffic the injector sees, so
   "the injector fired" holds for any seed at realistic rates. *)
let waves = 3

let run_leg ~label ~db ~mix ~oracle ~scheds () =
  let pool = Engine.pool (Database.engine db ~name:doc_name) in
  let sessions = Array.length scheds in
  let outcomes = ref [] in
  for _wave = 1 to waves do
    (* Cold pool: both legs start each wave from disk, so the chaos
       leg's reads actually traverse the (possibly faulting) disk and
       the latency comparison is like against like. *)
    Storage.Buffer_pool.drop_all pool;
    let os =
      if sessions = 1 then [| run_session ~db ~mix ~oracle ~sched:scheds.(0) () |]
      else
        Array.map Domain.join
          (Array.init sessions (fun k ->
               Domain.spawn (fun () -> run_session ~db ~mix ~oracle ~sched:scheds.(k) ())))
    in
    assert_quiescent ~label pool;
    outcomes := os :: !outcomes
  done;
  aggregate ~label (Array.concat (List.rev !outcomes))

(* --- the WAL-fault leg ----------------------------------------------------- *)

let scratch_doc =
  "<scratch><a>one</a><b>two</b><c>three</c><d><e>deep</e></d></scratch>"

(* Single-threaded load/drop/checkpoint cycles on a scratch file
   database with WAL append/sync faults injected — one deterministic
   torn sync (exercising the write-back re-append), the rest seeded
   transient failures.  Returns (rounds, retry.attempts delta,
   violations). *)
let wal_leg ~seed ~rounds =
  let path = Filename.temp_file "xqdb_chaos" ".db" in
  let wal_path = path ^ ".wal" in
  let cleanup () =
    (try Sys.remove path with Sys_error _ -> ());
    try Sys.remove wal_path with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      let before = Metrics.snapshot () in
      let violations = ref [] in
      let db = Database.create ~config:chaos_config ~on_file:path () in
      (match Database.wal db with
       | None ->
         violations := "WAL leg: file database came up without a log" :: !violations;
         Database.close db
       | Some wal ->
         let rng = Random.State.make [| seed; 0x3a1f |] in
         let syncs = ref 0 in
         Wal.set_injector wal
           (Some
              (fun op ->
                match op with
                | Wal.Sync ->
                  incr syncs;
                  (* One deterministic torn sync early on: the pending
                     records are dropped, so the write-back must
                     re-append before its retried sync. *)
                  if !syncs = 2 then Wal.Torn "chaos: torn sync"
                  else if Random.State.float rng 1.0 < 0.1 then
                    Wal.Fail "chaos: transient sync fault"
                  else Wal.No_fault
                | Wal.Append ->
                  if Random.State.float rng 1.0 < 0.05 then
                    Wal.Fail "chaos: transient append fault"
                  else Wal.No_fault))
           ;
         (try
            for round = 1 to rounds do
              let name = Printf.sprintf "scratch%d" round in
              ignore (Database.load_document db ~name scratch_doc);
              Database.checkpoint db;
              Database.drop_document db ~name
            done
          with Disk.Disk_error msg ->
            violations :=
              Printf.sprintf "WAL leg: a fault escaped the retry: %s" msg :: !violations);
         Wal.set_injector wal None;
         Database.close db;
         (* The recovery check: a fresh open must replay to a consistent
            catalog — this is also what CI runs after a SIGTERM drain. *)
         (match Database.open_file path with
          | db2 ->
            ignore (Database.document_names db2);
            Database.close db2
          | exception e ->
            violations :=
              Printf.sprintf "WAL leg: post-fault open_file failed: %s"
                (Printexc.to_string e)
              :: !violations));
      let delta = Metrics.diff (Metrics.snapshot ()) before in
      (rounds, Metrics.get delta "retry.attempts", List.rev !violations))

(* --- the full run ---------------------------------------------------------- *)

let leg_violations (l : leg) =
  (if l.untyped > 0 then
     [Printf.sprintf "%s leg: %d failure(s) escaped untyped" l.leg l.untyped]
   else [])
  @
  if l.mismatches > 0 then
    [Printf.sprintf "%s leg: %d Ok payload(s) diverged from the fault-free oracle"
       l.leg l.mismatches]
  else []

let counts_of (l : leg) =
  (l.ok, l.budget_exceeded, l.timeouts, l.errors, l.io_errors, l.bad_requests,
   l.unavailable)

let run ?(profile = Transient) ?(max_p99_ratio = 200.0) ~sessions ~requests ~seed ~scale
    () =
  if sessions < 1 then invalid_arg "Chaos.run: sessions must be positive";
  if requests < 1 then invalid_arg "Chaos.run: requests must be positive";
  let db = Database.create ~config:chaos_config () in
  ignore (Database.load_forest db ~name:doc_name [Dblp.generate (Dblp.scaled scale)]);
  let mix = Array.of_list (mix ()) in
  let scheds =
    Array.init sessions (schedule ~seed ~requests ~mix_size:(Array.length mix))
  in
  let oracle = record_oracle ~db mix in
  let baseline = run_leg ~label:"baseline" ~db ~mix ~oracle ~scheds () in
  (* Same schedules again, now with the disk faulting underneath. *)
  let injector =
    Storage.Fault_disk.attach ~policy:(fault_policy profile) ~seed (Database.disk db)
  in
  let before = Metrics.snapshot () in
  let chaos = run_leg ~label:"chaos" ~db ~mix ~oracle ~scheds () in
  let delta = Metrics.diff (Metrics.snapshot ()) before in
  let injected = (Storage.Fault_disk.counts injector).Storage.Fault_disk.injected in
  Storage.Fault_disk.detach injector;
  let retry_attempts = Metrics.get delta "retry.attempts" in
  let retry_giveups = Metrics.get delta "retry.giveups" in
  let wal_rounds, wal_retry_attempts, wal_violations = wal_leg ~seed ~rounds:8 in
  let p99_ratio =
    if baseline.p99_ms > 0. then chaos.p99_ms /. baseline.p99_ms else 1.0
  in
  let violations =
    leg_violations baseline @ leg_violations chaos
    @ (if injected = 0 then ["chaos leg: the fault injector never fired"] else [])
    @ (match profile with
       | Transient ->
         (if counts_of chaos <> counts_of baseline then
            [Printf.sprintf
               "transient faults leaked to clients: chaos outcomes \
                (ok %d budget %d timeout %d error %d io %d bad %d unavailable %d) \
                differ from baseline \
                (ok %d budget %d timeout %d error %d io %d bad %d unavailable %d)"
               chaos.ok chaos.budget_exceeded chaos.timeouts chaos.errors chaos.io_errors
               chaos.bad_requests chaos.unavailable baseline.ok
               baseline.budget_exceeded baseline.timeouts baseline.errors
               baseline.io_errors baseline.bad_requests baseline.unavailable]
          else [])
         @
         if retry_attempts = 0 then
           ["transient profile: retry.attempts stayed 0 — the retry never ran"]
         else []
       | Hard ->
         (if chaos.io_errors = 0 then
            ["hard profile: no hard fault surfaced as a typed Io_error"]
          else [])
         @
         if retry_giveups = 0 then
           ["hard profile: retry.giveups stayed 0 — hard faults never defeated the retry"]
         else [])
    @ (if p99_ratio > max_p99_ratio then
         [Printf.sprintf "chaos p99 degraded %.1fx (bound %.1fx)" p99_ratio max_p99_ratio]
       else [])
    @ wal_violations
    @
    if wal_retry_attempts <= 0 then
      ["WAL leg: retry.attempts stayed 0 — the injected log faults were never retried"]
    else []
  in
  { chaos_seed = seed;
    chaos_sessions = sessions;
    chaos_requests = requests;
    chaos_scale = scale;
    profile_label = profile_label profile;
    faults_injected = injected;
    retry_attempts;
    retry_giveups;
    wal_rounds;
    wal_retry_attempts;
    baseline;
    chaos;
    p99_ratio;
    violations }

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "chaos: %d session(s) x %d request(s), %s faults, DBLP scale %d, seed %d\n"
       r.chaos_sessions r.chaos_requests r.profile_label r.chaos_scale r.chaos_seed);
  List.iter
    (fun (l : leg) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-8s ok %d  budget %d  timeout %d  error %d  io %d  bad %d  unavail %d  \
            mismatch %d  untyped %d  p99 %.2fms\n"
           l.leg l.ok l.budget_exceeded l.timeouts l.errors l.io_errors l.bad_requests
           l.unavailable l.mismatches l.untyped l.p99_ms))
    [r.baseline; r.chaos];
  Buffer.add_string buf
    (Printf.sprintf
       "  faults injected %d  retry attempts %d  giveups %d  p99 ratio %.1fx\n"
       r.faults_injected r.retry_attempts r.retry_giveups r.p99_ratio);
  Buffer.add_string buf
    (Printf.sprintf "  wal leg: %d round(s), retry attempts %d\n" r.wal_rounds
       r.wal_retry_attempts);
  (match r.violations with
   | [] -> Buffer.add_string buf "  PASS: no violations\n"
   | vs ->
     List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  VIOLATION: %s\n" v)) vs);
  Buffer.contents buf
