(** Golden EXPLAIN output for the 16 public queries.

    Renders {!Xqdb_core.Engine.explain} — every stage of the staged
    compilation pipeline — for each public query over the fixed Figure-2
    document, one blob per milestone configuration.  The test suite
    diffs the blobs against committed golden files; regenerate with
    [dune runtest] followed by [dune promote] after an intentional
    planner or printer change. *)

val configs : Xqdb_core.Engine_config.t list
(** The four milestone configurations, m1 through m4. *)

val render_config : Xqdb_core.Engine_config.t -> string
(** All 16 public-query EXPLAINs under ["===== <query> ====="] headers. *)

val render_structural : unit -> string
(** The structural-index placement golden: descendant-chain queries over
    a deep Treebank parse forest and a shallow DBLP bibliography, each
    explained under m4 and under m4 with structural indexes disabled.
    Struct-join and twig operators must show up on the deep document
    only. *)

val render : string -> (string, string) result
(** [render "m3"] — by configuration name, for the CLI; ["structural"]
    renders {!render_structural}. *)
