module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module W = Xqdb_workload

type cell = {
  engine : string;
  test : string;
  page_ios : int;
  seconds : float;
  censored : bool;
  profile : Engine.profile;
}

type table = {
  budget : int;
  cells : cell list;
}

let default_budgets = [("test3-semijoin", 8_000); ("test5-unrelated", 8_000)]

let run ?(configs = Engine_config.figure7_engines)
    ?(queries = Queries.efficiency_queries) ?(budget = 60_000)
    ?(budgets = default_budgets) ?(scale = 2500) ?(seconds_cap = 5.0) () =
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled scale)] in
  let parsed = Queries.parsed queries in
  let cells =
    List.concat_map
      (fun config ->
        (* Each engine gets its own freshly loaded database, like each
           student engine did; the small pool is the memory cap. *)
        let engine = Engine.load_forest ~config forest in
        List.map
          (fun (test, query) ->
            let budget =
              match List.assoc_opt test budgets with
              | Some b -> b
              | None -> budget
            in
            let result = Engine.run ~max_page_ios:budget ~max_seconds:seconds_cap engine query in
            match result.Engine.status with
            | Engine.Ok ->
              { engine = config.Engine_config.name;
                test;
                page_ios = result.Engine.page_ios;
                seconds = result.Engine.elapsed;
                censored = false;
                profile = result.Engine.profile }
            | Engine.Budget_exceeded _ ->
              { engine = config.Engine_config.name;
                test;
                page_ios = budget;
                seconds = result.Engine.elapsed;
                censored = true;
                profile = result.Engine.profile }
            | Engine.Timeout msg ->
              Xqdb_storage.Xqdb_error.internal "efficiency test timed out: %s" msg
            | Engine.Error msg ->
              Xqdb_storage.Xqdb_error.internal "efficiency test errored: %s" msg
            | Engine.Io_error msg ->
              Xqdb_storage.Xqdb_error.internal "efficiency test hit an i/o fault: %s" msg)
          parsed)
      configs
  in
  { budget; cells }

let total table engine =
  List.fold_left
    (fun acc c -> if String.equal c.engine engine then acc + c.page_ios else acc)
    0 table.cells

let render table =
  let engines =
    List.sort_uniq compare (List.map (fun c -> c.engine) table.cells)
  in
  let tests =
    List.filter_map
      (fun c ->
        if String.equal c.engine (List.hd engines) then Some c.test else None)
      table.cells
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "page-I/O budget per query: %d (censored runs are assigned the budget)\n"
       table.budget);
  Buffer.add_string buf (Printf.sprintf "%-10s" "Engine");
  List.iteri (fun i _ -> Buffer.add_string buf (Printf.sprintf "%12s" (Printf.sprintf "Test %d" (i + 1)))) tests;
  Buffer.add_string buf (Printf.sprintf "%12s\n" "Total");
  let ordered =
    (* Preserve the configuration order rather than alphabetical. *)
    List.sort_uniq compare engines
    |> fun _ ->
    List.fold_left
      (fun acc c -> if List.mem c.engine acc then acc else acc @ [c.engine])
      [] table.cells
  in
  List.iter
    (fun engine ->
      Buffer.add_string buf (Printf.sprintf "%-10s" engine);
      List.iter
        (fun test ->
          let cell =
            List.find
              (fun c -> String.equal c.engine engine && String.equal c.test test)
              table.cells
          in
          let rendered =
            if cell.censored then Printf.sprintf "%d*" cell.page_ios
            else string_of_int cell.page_ios
          in
          Buffer.add_string buf (Printf.sprintf "%12s" rendered))
        tests;
      Buffer.add_string buf (Printf.sprintf "%12d\n" (total table engine)))
    ordered;
  Buffer.contents buf
