(** The Example 6 plan laboratory.

    Builds the paper's three query plans for the milestone-4 example
    query ("the list of authors of articles that have information on
    proceedings volume") over a skewed DBLP-like document — many
    authors, few volumes — and runs all three:

    - {b QP0}: mirrors the query structure bottom-up with the authors
      joined before the volume test and no order discipline (order
      restored by a final sort) — the naive plan;
    - {b QP1}: order-preserving structural plan: (A join B) join V with
      selections pushed down, nested loops only;
    - {b QP2}: cost-based plan with the volume semijoin first and index
      nested-loop joins — Figure 6.

    The paper's claim, checked by the tests: QP2 beats QP1 beats QP0. *)

type measurement = {
  name : string;
  description : string;
  plan : string;  (** rendered plan *)
  est_cost : float;
  page_ios : int;  (** measured *)
  rows : int;  (** distinct vartuples produced *)
  seconds : float;
}

val query : Xqdb_xq.Xq_ast.query
(** The Example 6 query. *)

val psx_of : Xqdb_plan.Pipeline.ctx -> Xqdb_tpm.Tpm_algebra.psx
(** Its merged PSX (bindings for the article and author variables,
    existential volume relation), obtained by running the logical front
    half of the staged pipeline ({!Xqdb_plan.Pipeline.front}). *)

val run : ?scale:int -> unit -> measurement list
(** Builds the document at [scale] (default 300 publications; the naive plan is quadratic), loads
    it, and measures QP0, QP1, QP2 in that order.  Each plan is built
    as a {!Xqdb_optimizer.Planner.template} and bound once — the same
    compile/bind split the engine uses. *)

val render : measurement list -> string
