(** Efficiency testing and Figure 7.

    The paper ran five secret queries per engine on DBLP under 20 MB of
    memory and a wall-clock cap, assigning the cap (2400 s, or 4800 s
    for over-memory runs) to engines that blew it.  Our budget currency
    is page I/O — deterministic and host-independent — with the same
    censoring rule: an over-budget run is assigned the cap.  Engines run
    with a deliberately small buffer pool, the analogue of the memory
    limit. *)

type cell = {
  engine : string;
  test : string;
  page_ios : int;  (** capped at the budget when censored *)
  seconds : float;
  censored : bool;
  profile : Xqdb_core.Engine.profile;
      (** full observability breakdown — partial on censored runs *)
}

type table = {
  budget : int;
  cells : cell list;  (** engine-major, test-minor order *)
}

val run :
  ?configs:Xqdb_core.Engine_config.t list ->
  ?queries:(string * string) list ->
  ?budget:int ->
  ?budgets:(string * int) list ->
  ?scale:int ->
  ?seconds_cap:float ->
  unit ->
  table
(** Defaults: the five Figure-7 engines, the five efficiency queries,
    DBLP scale 2500, a 60k page-I/O budget with tighter per-test budgets
    for tests 3 and 5 (the paper likewise allowed "2 or 30 minutes per
    query"), and a 5 CPU-second guard.  Runs over any cap are censored
    and assigned the budget. *)

val total : table -> string -> int
(** Total (censored-capped) page I/Os of one engine. *)

val render : table -> string
(** The Figure-7 layout: one row per engine, one column per test, plus
    the total. *)
