(** Cross-milestone differential oracle harness.

    For each seeded trial a random XML forest and a random well-scoped
    XQ query (from {!Gen}) are loaded once, and the query runs under all
    four milestone configurations over the {e same} shredded store.  The
    milestone-1 in-memory evaluator is the oracle: every other milestone
    must produce byte-identical canonical output (or agree on the
    runtime type error the paper allows), and each engine's self-reported
    page-I/O accounting must match the raw disk counters.

    Each configuration is additionally exercised along the {e prepared}
    axis: the query is prepared once ({!Xqdb_core.Engine.prepare}) and
    executed twice through parameter rebinding; both executions must
    reproduce the fresh compilation's answer with reconciling
    accounting, catching stale template caches across rebinds.

    The {e batch-vs-tuple} axis reruns each configuration with
    [batch_size = 1] — the identical vectorized operators degraded to
    one row per batch — so any divergence is a vectorization bug rather
    than a plan difference.  With [scan_domains > 1] a further axis
    reruns each configuration with full scans partitioned across that
    many domains; both must stay byte-identical with reconciling
    accounting.

    With [fault_rate > 0] every trial is additionally swept under
    {!Xqdb_storage.Fault_disk} injection: each run must end in one of
    the four engine statuses — a crash (any escaped exception) is a
    harness failure — and after the injector detaches, a fault-free
    cold-cache rerun over the same store must still reproduce the oracle
    answer, proving injected faults never silently corrupted the
    persistent pages. *)

type trial = {
  index : int;
  query : string;  (** pretty-printed, for replaying failures *)
  ok : bool;
  detail : string;
}

type fault_report = {
  fault_seed : int;
  trial_index : int;
  injected : int;  (** faults the injector fired across the four runs *)
  crashes : (string * string) list;  (** (config, exception) — must stay [] *)
  io_errors : int;  (** runs censored as [Io_error] *)
  rerun_ok : bool;  (** fault-free rerun reproduced the oracle answer *)
  rerun_detail : string;
}

type report = {
  seed : int;
  count : int;
  fault_rate : float;
  trials : trial list;
  fault_reports : fault_report list;
}

val generate :
  seed:int -> index:int -> Xqdb_xml.Xml_tree.forest * Xqdb_xq.Xq_ast.query
(** The trial inputs for [(seed, index)] — deterministic, so a single
    failing trial can be replayed without the rest of the sweep. *)

val run :
  ?seed:int ->
  ?count:int ->
  ?fault_rate:float ->
  ?fault_seeds:int ->
  ?scan_domains:int ->
  unit ->
  report
(** Defaults: [seed 42], [count 100], [fault_rate 0.] (no fault sweep),
    [fault_seeds 1] injector seeds per trial when sweeping,
    [scan_domains 1] (no multi-domain axis). *)

val agreed : report -> int
(** Trials where all milestones matched the oracle. *)

val crash_count : report -> int
val rerun_failures : report -> int
val injected_total : report -> int

val ok : report -> bool
(** All trials agree, zero crashes, zero rerun failures. *)

val render : report -> string

(** {2 Crash-point sweep}

    The crash axis: a fixed durability workload (load [alpha],
    checkpoint, load [beta], checkpoint, drop [beta], checkpoint) over
    an in-memory disk and write-ahead log is first observed to count its
    durability events ({!Xqdb_storage.Crash_point}), then replayed with
    a simulated crash at a spread of those events — alternate points
    crash {e mid-write} (torn).  Recovery from the durable state alone
    must yield a database whose catalog lists only known documents,
    keeps everything checkpointed, never resurrects a dropped document,
    passes {!Xqdb_xasr.Node_store.check_invariants} on every index, and
    answers the trial query identically across milestones. *)

type crash_point_report = {
  point : int;  (** the 1-based durability event the crash hit *)
  torn : bool;
  crashed : bool;  (** whether the workload reached the crash point at all *)
  point_ok : bool;
  point_detail : string;
}

type crash_trial = {
  crash_trial_index : int;
  crash_query : string;  (** pretty-printed, for replaying failures *)
  events_total : int;  (** durability events in the crash-free workload *)
  points : crash_point_report list;
}

type crash_report = {
  crash_seed : int;
  crash_trial_count : int;
  points_per_trial : int;
  crash_trials : crash_trial list;
}

val crash_sweep : ?seed:int -> ?count:int -> ?points:int -> unit -> crash_report
(** Defaults: [seed 42], [count 3] trials, up to [points 10] crash
    points per trial (evenly spaced over the observed events, always
    including the first and last). *)

val crash_points_checked : crash_report -> int
val crash_failures : crash_report -> int

val crash_ok : crash_report -> bool
(** Every trial observed events and every crash point recovered clean. *)

val render_crash : crash_report -> string
