(** Cross-milestone differential oracle harness.

    For each seeded trial a random XML forest and a random well-scoped
    XQ query (from {!Gen}) are loaded once, and the query runs under all
    four milestone configurations over the {e same} shredded store.  The
    milestone-1 in-memory evaluator is the oracle: every other milestone
    must produce byte-identical canonical output (or agree on the
    runtime type error the paper allows), and each engine's self-reported
    page-I/O accounting must match the raw disk counters.

    Each configuration is additionally exercised along the {e prepared}
    axis: the query is prepared once ({!Xqdb_core.Engine.prepare}) and
    executed twice through parameter rebinding; both executions must
    reproduce the fresh compilation's answer with reconciling
    accounting, catching stale template caches across rebinds.

    With [fault_rate > 0] every trial is additionally swept under
    {!Xqdb_storage.Fault_disk} injection: each run must end in one of
    the four engine statuses — a crash (any escaped exception) is a
    harness failure — and after the injector detaches, a fault-free
    cold-cache rerun over the same store must still reproduce the oracle
    answer, proving injected faults never silently corrupted the
    persistent pages. *)

type trial = {
  index : int;
  query : string;  (** pretty-printed, for replaying failures *)
  ok : bool;
  detail : string;
}

type fault_report = {
  fault_seed : int;
  trial_index : int;
  injected : int;  (** faults the injector fired across the four runs *)
  crashes : (string * string) list;  (** (config, exception) — must stay [] *)
  io_errors : int;  (** runs censored as [Io_error] *)
  rerun_ok : bool;  (** fault-free rerun reproduced the oracle answer *)
  rerun_detail : string;
}

type report = {
  seed : int;
  count : int;
  fault_rate : float;
  trials : trial list;
  fault_reports : fault_report list;
}

val generate :
  seed:int -> index:int -> Xqdb_xml.Xml_tree.forest * Xqdb_xq.Xq_ast.query
(** The trial inputs for [(seed, index)] — deterministic, so a single
    failing trial can be replayed without the rest of the sweep. *)

val run :
  ?seed:int -> ?count:int -> ?fault_rate:float -> ?fault_seeds:int -> unit -> report
(** Defaults: [seed 42], [count 100], [fault_rate 0.] (no fault sweep),
    [fault_seeds 1] injector seeds per trial when sweeping. *)

val agreed : report -> int
(** Trials where all milestones matched the oracle. *)

val crash_count : report -> int
val rerun_failures : report -> int
val injected_total : report -> int

val ok : report -> bool
(** All trials agree, zero crashes, zero rerun failures. *)

val render : report -> string
