module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module Database = Xqdb_core.Database
module Disk = Xqdb_storage.Disk
module Buffer_pool = Xqdb_storage.Buffer_pool
module Fault_disk = Xqdb_storage.Fault_disk
module Wal = Xqdb_storage.Wal
module Crash_point = Xqdb_storage.Crash_point
module Xqdb_error = Xqdb_storage.Xqdb_error
module Node_store = Xqdb_xasr.Node_store
module Doc_stats = Xqdb_xasr.Doc_stats
module Path_summary = Xqdb_xasr.Path_summary
module Xq_print = Xqdb_xq.Xq_print
module Xml_print = Xqdb_xml.Xml_print

(* The milestone engines the harness differentiates; milestone 1 is the
   oracle, exactly as it was for the students.  [m4-nostruct] is the
   index-vs-scan axis: the same cost-based engine with the structural
   index family forced off, so any divergence between it and m4 is a
   wrong struct-join/twig answer, not a milestone difference. *)
let milestone_configs =
  [Engine_config.m2; Engine_config.m3; Engine_config.m4; Engine_config.m4_nostruct]

(* Tiny random documents fit in the default pool and would never touch
   the disk, making fault injection vacuous — so differential engines
   run over a deliberately small pool and drop it cold before every
   faulted run. *)
let pool_frames = 8

type trial = {
  index : int;
  query : string;
  ok : bool;
  detail : string;
}

type fault_report = {
  fault_seed : int;
  trial_index : int;
  injected : int;  (** faults the injector fired across the engine runs *)
  crashes : (string * string) list;  (** (config, exception) — must stay [] *)
  io_errors : int;  (** runs censored as [Io_error] *)
  rerun_ok : bool;  (** fault-free rerun reproduced the oracle answer *)
  rerun_detail : string;
}

type report = {
  seed : int;
  count : int;
  fault_rate : float;
  trials : trial list;
  fault_reports : fault_report list;
}

let truncate s =
  if String.length s <= 80 then s else String.sub s 0 77 ^ "..."

let status_name = function
  | Engine.Ok -> "ok"
  | Engine.Budget_exceeded _ -> "budget_exceeded"
  | Engine.Timeout _ -> "timeout"
  | Engine.Error _ -> "error"
  | Engine.Io_error _ -> "io_error"

(* --- deterministic generation ------------------------------------------- *)

(* Each trial owns an RNG keyed on (seed, index), so trial [i] of a run
   is reproducible on its own: the CLI can replay one failing index
   without regenerating the whole sweep. *)
let generate ~seed ~index =
  let rand = Random.State.make [| 0x9e3779b9; seed; index |] in
  let forest = QCheck2.Gen.generate1 ~rand Gen.forest_gen in
  let query = QCheck2.Gen.generate1 ~rand Gen.xq_gen in
  (forest, query)

(* --- clean differential pass -------------------------------------------- *)

let page_ios disk =
  let c = Disk.counters disk in
  c.Disk.reads + c.Disk.writes

(* Compare one engine's result against the milestone-1 oracle.  With no
   faults and no budget, only [Ok] and [Error] (the runtime type error
   the paper allows) are legitimate. *)
let compare_to_oracle name (oracle : Engine.result) (result : Engine.result) =
  match oracle.Engine.status, result.Engine.status with
  | Engine.Ok, Engine.Ok ->
    if String.equal oracle.Engine.output result.Engine.output then None
    else
      Some
        (Printf.sprintf "%s output diverges: oracle %S, got %S" name
           (truncate oracle.Engine.output)
           (truncate result.Engine.output))
  | Engine.Error _, Engine.Error _ -> None
  | o, r ->
    Some
      (Printf.sprintf "%s status diverges: oracle %s, got %s" name
         (status_name o) (status_name r))

let clean_trial ?(scan_domains = 1) ~index engine oracle =
  let query_text = Xq_print.to_string (snd oracle) in
  let oracle_result, query = fst oracle, snd oracle in
  let failure = ref None in
  let record msg = if !failure = None then failure := Some msg in
  (match oracle_result.Engine.status with
  | Engine.Ok | Engine.Error _ -> ()
  | s -> record (Printf.sprintf "oracle status %s without a budget or faults" (status_name s)));
  List.iter
    (fun config ->
      match !failure with
      | Some _ -> ()
      | None ->
        let name = config.Engine_config.name in
        let e = Engine.with_config config engine in
        let before = page_ios (Engine.disk e) in
        (match Engine.run e query with
        | result ->
          (match compare_to_oracle name oracle_result result with
          | Some msg -> record msg
          | None ->
            (* The engine's self-reported accounting must match what the
               harness observes on the raw disk counters. *)
            let observed = page_ios (Engine.disk e) - before in
            if result.Engine.page_ios <> observed then
              record
                (Printf.sprintf "%s accounting diverges: reported %d page I/Os, disk saw %d"
                   name result.Engine.page_ios observed)
            else if result.Engine.page_ios < 0 then
              record (Printf.sprintf "%s negative page I/O count" name))
        | exception exn ->
          record (Printf.sprintf "%s crashed: %s" name (Printexc.to_string exn)));
        (* Prepared-template axis: the same query prepared once and
           executed repeatedly through parameter rebinding must keep
           reproducing the fresh compilation's answer, with accounting
           that still reconciles against the raw disk counters. *)
        if !failure = None then begin
          match Engine.prepare e query with
          | prepared ->
            let rerun tag =
              if !failure = None then begin
                let before = page_ios (Engine.disk e) in
                match Engine.run_prepared e prepared with
                | presult ->
                  (match
                     compare_to_oracle
                       (Printf.sprintf "%s (%s)" name tag)
                       oracle_result presult
                   with
                  | Some msg -> record msg
                  | None ->
                    let observed = page_ios (Engine.disk e) - before in
                    if presult.Engine.page_ios <> observed then
                      record
                        (Printf.sprintf
                           "%s (%s) accounting diverges: reported %d page I/Os, disk saw %d"
                           name tag presult.Engine.page_ios observed))
                | exception exn ->
                  record
                    (Printf.sprintf "%s (%s) crashed: %s" name tag
                       (Printexc.to_string exn))
              end
            in
            rerun "prepared run 1";
            rerun "prepared run 2"
          | exception exn ->
            record (Printf.sprintf "%s prepare crashed: %s" name (Printexc.to_string exn))
        end;
        (* Batch-vs-tuple axis: the same engine at batch_size 1 runs the
           identical operator code one row per batch — any divergence is
           a vectorization bug, not a plan difference.  The multi-domain
           axis does the same for the partitioned parallel scan. *)
        if !failure = None then begin
          let axis tag config' =
            if !failure = None then begin
              let e' = Engine.with_config config' engine in
              let before = page_ios (Engine.disk e') in
              match Engine.run e' query with
              | result ->
                (match
                   compare_to_oracle (Printf.sprintf "%s (%s)" name tag) oracle_result result
                 with
                | Some msg -> record msg
                | None ->
                  let observed = page_ios (Engine.disk e') - before in
                  if result.Engine.page_ios <> observed then
                    record
                      (Printf.sprintf
                         "%s (%s) accounting diverges: reported %d page I/Os, disk saw %d"
                         name tag result.Engine.page_ios observed))
              | exception exn ->
                record
                  (Printf.sprintf "%s (%s) crashed: %s" name tag (Printexc.to_string exn))
            end
          in
          axis "batch=1" { config with Engine_config.batch_size = 1 };
          if scan_domains > 1 then
            axis
              (Printf.sprintf "domains=%d" scan_domains)
              { config with Engine_config.scan_domains }
        end)
    milestone_configs;
  match !failure with
  | None -> { index; query = query_text; ok = true; detail = "" }
  | Some detail -> { index; query = query_text; ok = false; detail }

(* --- fault sweep --------------------------------------------------------- *)

(* Flush and empty the pool with the injector muted: the drop itself is
   harness bookkeeping, not workload I/O under test. *)
let quiet_drop injector pool =
  Fault_disk.set_active injector false;
  Buffer_pool.drop_all pool;
  Fault_disk.set_active injector true

let fault_trial ~fault_seed ~fault_rate ~trial_index engine oracle query =
  let disk = Engine.disk engine in
  let pool = Engine.pool engine in
  let injector =
    Fault_disk.attach ~policy:(Fault_disk.uniform ~rate:fault_rate) ~seed:fault_seed disk
  in
  let crashes = ref [] in
  let io_errors = ref 0 in
  List.iter
    (fun config ->
      let e = Engine.with_config config engine in
      quiet_drop injector pool;
      match Engine.run e query with
      | result ->
        (match result.Engine.status with
        | Engine.Io_error _ -> incr io_errors
        | Engine.Ok | Engine.Error _ | Engine.Budget_exceeded _ | Engine.Timeout _ -> ())
      | exception exn ->
        crashes :=
          (config.Engine_config.name, Printexc.to_string exn) :: !crashes)
    milestone_configs;
  let injected = (Fault_disk.counts injector).Fault_disk.injected in
  Fault_disk.set_active injector false;
  Buffer_pool.drop_all pool;
  Fault_disk.detach injector;
  (* The disk has recovered: every engine must reproduce the oracle
     answer from the same store, or the faults corrupted it. *)
  let rerun_failure = ref None in
  List.iter
    (fun config ->
      if !rerun_failure = None then begin
        let e = Engine.with_config config engine in
        Buffer_pool.drop_all pool;
        match Engine.run e query with
        | result ->
          (match compare_to_oracle config.Engine_config.name oracle result with
          | Some msg -> rerun_failure := Some ("rerun: " ^ msg)
          | None -> ())
        | exception exn ->
          rerun_failure :=
            Some
              (Printf.sprintf "rerun: %s crashed: %s" config.Engine_config.name
                 (Printexc.to_string exn))
      end)
    milestone_configs;
  { fault_seed;
    trial_index;
    injected;
    crashes = List.rev !crashes;
    io_errors = !io_errors;
    rerun_ok = !rerun_failure = None;
    rerun_detail = (match !rerun_failure with None -> "" | Some d -> d) }

(* --- driver -------------------------------------------------------------- *)

let run ?(seed = 42) ?(count = 100) ?(fault_rate = 0.) ?(fault_seeds = 1)
    ?(scan_domains = 1) () =
  let config = { Engine_config.m1 with Engine_config.pool_capacity = pool_frames } in
  let trials = ref [] in
  let fault_reports = ref [] in
  for index = 0 to count - 1 do
    let forest, query = generate ~seed ~index in
    (* One load per trial: every configuration, clean and faulted, runs
       over the same shredded store, exactly like the testbed's grading
       runs share a database. *)
    let engine = Engine.load_forest ~config forest in
    let oracle = Engine.run engine query in
    trials := clean_trial ~scan_domains ~index engine (oracle, query) :: !trials;
    if fault_rate > 0. then
      for fs = 0 to fault_seeds - 1 do
        let fault_seed = (seed * 1021) + (index * fault_seeds) + fs in
        fault_reports :=
          fault_trial ~fault_seed ~fault_rate ~trial_index:index engine oracle query
          :: !fault_reports
      done
  done;
  { seed;
    count;
    fault_rate;
    trials = List.rev !trials;
    fault_reports = List.rev !fault_reports }

(* --- reporting ----------------------------------------------------------- *)

let agreed report = List.filter (fun t -> t.ok) report.trials |> List.length
let crash_count report =
  List.fold_left (fun n fr -> n + List.length fr.crashes) 0 report.fault_reports
let rerun_failures report =
  List.filter (fun fr -> not fr.rerun_ok) report.fault_reports |> List.length
let injected_total report =
  List.fold_left (fun n fr -> n + fr.injected) 0 report.fault_reports

let ok report =
  agreed report = report.count
  && crash_count report = 0
  && rerun_failures report = 0

let render report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line
    "differential oracle: %d/%d trials byte-identical across m1 m2 m3 m4 m4-nostruct (seed %d)"
    (agreed report) report.count report.seed;
  List.iter
    (fun t -> if not t.ok then line "  trial %d FAILED: %s [%s]" t.index t.detail (truncate t.query))
    report.trials;
  if report.fault_rate > 0. then begin
    let censored =
      List.fold_left (fun n fr -> n + fr.io_errors) 0 report.fault_reports
    in
    line "fault sweep: %d fault runs at rate %g: %d faults injected, %d runs censored as io_error, %d crashes, %d rerun failures"
      (List.length report.fault_reports)
      report.fault_rate (injected_total report) censored (crash_count report)
      (rerun_failures report);
    List.iter
      (fun fr ->
        List.iter
          (fun (cfg, exn) ->
            line "  fault seed %d trial %d: %s CRASHED: %s" fr.fault_seed
              fr.trial_index cfg (truncate exn))
          fr.crashes;
        if not fr.rerun_ok then
          line "  fault seed %d trial %d: %s" fr.fault_seed fr.trial_index
            (truncate fr.rerun_detail))
      report.fault_reports
  end;
  line "verdict: %s" (if ok report then "PASS" else "FAIL");
  Buffer.contents buf

(* --- crash-point sweep ---------------------------------------------------

   A fixed durability workload — load alpha, checkpoint, load beta,
   checkpoint, drop beta, checkpoint — is first run once under an
   observing {!Crash_point} to count its durability events, then
   replayed with a simulated crash at a spread of those events.  After
   each crash the database is recovered from (disk, durable log) alone
   and must be consistent: only known documents, checkpointed documents
   still present, dropped documents not resurrected, every index
   structurally sound, and every surviving document answering the
   trial's query identically across milestones. *)

type crash_point_report = {
  point : int;  (** the 1-based durability event the crash hit *)
  torn : bool;
  crashed : bool;  (** whether the workload reached the crash point at all *)
  point_ok : bool;
  point_detail : string;
}

type crash_trial = {
  crash_trial_index : int;
  crash_query : string;
  events_total : int;  (** durability events in the crash-free workload *)
  points : crash_point_report list;
}

type crash_report = {
  crash_seed : int;
  crash_trial_count : int;
  points_per_trial : int;
  crash_trials : crash_trial list;
}

let crash_docs = ["alpha"; "beta"]

let crash_config = { Engine_config.m4 with Engine_config.pool_capacity = pool_frames }

(* [progress] records the last fully-checkpointed phase, which bounds
   what recovery must reproduce: redo recovery may additionally surface
   work the crash interrupted (whose log records were already durable),
   so only checkpointed facts are asserted, monotonically. *)
let crash_workload db ~alpha ~beta progress =
  ignore (Database.load_forest db ~name:"alpha" alpha);
  Database.checkpoint db;
  progress := 1;
  ignore (Database.load_forest db ~name:"beta" beta);
  Database.checkpoint db;
  progress := 2;
  Database.drop_document db ~name:"beta";
  Database.checkpoint db;
  progress := 3

let validate_recovery ~progress ~query db =
  let failure = ref None in
  let record msg = if !failure = None then failure := Some msg in
  let names = Database.document_names db in
  (match List.filter (fun n -> not (List.mem n crash_docs)) names with
   | [] -> ()
   | bad -> record (Printf.sprintf "unknown documents after recovery: %s" (String.concat ", " bad)));
  if progress >= 1 && not (List.mem "alpha" names) then
    record "checkpointed document alpha lost by recovery";
  if progress >= 3 && List.mem "beta" names then
    record "dropped document beta resurrected by recovery";
  List.iter
    (fun name ->
      (match Node_store.check_invariants (Engine.store (Database.engine db ~name)) with
       | () -> ()
       | exception Xqdb_error.Corrupt msg ->
         record (Printf.sprintf "%s: recovered index corrupt: %s" name msg));
      (* The recovered catalog's path summary must agree with one
         rebuilt by rescanning the recovered primary: the planner's
         provably-empty and per-path selectivity decisions ride on it,
         so a stale summary silently corrupts plans, not answers. *)
      if !failure = None then begin
        let e = Database.engine db ~name in
        let persisted = (Engine.doc_stats e).Doc_stats.paths in
        let rebuilt = Path_summary.of_scan (Node_store.scan_all (Engine.store e)) in
        if not (Path_summary.equal persisted rebuilt) then
          record
            (Printf.sprintf
               "%s: recovered path summary disagrees with a from-scratch rescan" name)
      end;
      if !failure = None then begin
        (* The recovered store is its own oracle: milestone 1 evaluates
           in memory from it, and the disk-based milestones must agree. *)
        let oracle = Engine.run (Database.engine ~config:Engine_config.m1 db ~name) query in
        List.iter
          (fun config ->
            if !failure = None then begin
              let label = Printf.sprintf "%s/%s" name config.Engine_config.name in
              match Engine.run (Database.engine ~config db ~name) query with
              | result ->
                (match compare_to_oracle label oracle result with
                 | Some msg -> record ("post-recovery " ^ msg)
                 | None -> ())
              | exception exn ->
                record
                  (Printf.sprintf "post-recovery %s crashed: %s" label
                     (Printexc.to_string exn))
            end)
          [Engine_config.m2; Engine_config.m4; Engine_config.m4_nostruct]
      end)
    names;
  !failure

let crash_at_point ~alpha ~beta ~query ~point ~torn =
  let disk = Disk.in_memory () in
  let wal = Wal.in_memory () in
  let progress = ref 0 in
  let cp = Crash_point.install ~crash_at:point ~torn ~disk ~wal () in
  let run_workload () =
    let db = Database.create_on ~config:crash_config ~wal disk in
    crash_workload db ~alpha ~beta progress
  in
  let crashed, crash_failure =
    match run_workload () with
    | () -> (false, None)
    | exception Crash_point.Crash _ -> (true, None)
    | exception Disk.Disk_error _ when Crash_point.crashed cp ->
      (* The torn crashing write surfaced as an ordinary disk error on a
         path without a retry around it; the storage is dead either way. *)
      (true, None)
    | exception exn ->
      (Crash_point.crashed cp,
       Some (Printf.sprintf "workload died of %s instead of the crash" (Printexc.to_string exn)))
  in
  Crash_point.disarm cp;
  (* The crash loses everything the log had not synced. *)
  Wal.crash_discard wal;
  match crash_failure with
  | Some msg -> { point; torn; crashed; point_ok = false; point_detail = msg }
  | None ->
    (match Database.open_disk ~config:crash_config ~wal disk with
     | db ->
       let detail = validate_recovery ~progress:!progress ~query db in
       { point;
         torn;
         crashed;
         point_ok = detail = None;
         point_detail = (match detail with None -> "" | Some d -> d) }
     | exception exn ->
       { point;
         torn;
         crashed;
         point_ok = false;
         point_detail = Printf.sprintf "recovery crashed: %s" (Printexc.to_string exn) })

(* Evenly spaced 1-based crash points, always including the first and
   last event, without duplicates. *)
let select_points ~total ~wanted =
  if total <= 0 || wanted <= 0 then []
  else if total <= wanted then List.init total (fun i -> i + 1)
  else if wanted = 1 then [1]
  else
    List.init wanted (fun i -> 1 + (i * (total - 1) / (wanted - 1)))
    |> List.sort_uniq compare

let crash_sweep ?(seed = 42) ?(count = 3) ?(points = 10) () =
  let crash_trials =
    List.init count (fun index ->
        let alpha, query = generate ~seed ~index in
        (* A distinct forest for beta, still keyed on (seed, index). *)
        let beta, _ = generate ~seed ~index:(index + 7919) in
        (* Observe run: count the workload's durability events. *)
        let disk = Disk.in_memory () in
        let wal = Wal.in_memory () in
        let progress = ref 0 in
        let cp = Crash_point.install ~disk ~wal () in
        let db = Database.create_on ~config:crash_config ~wal disk in
        crash_workload db ~alpha ~beta progress;
        let events_total = Crash_point.events cp in
        Crash_point.disarm cp;
        let pts = select_points ~total:events_total ~wanted:points in
        let reports =
          List.mapi
            (fun i point ->
              crash_at_point ~alpha ~beta ~query ~point ~torn:(i mod 2 = 1))
            pts
        in
        { crash_trial_index = index;
          crash_query = Xq_print.to_string query;
          events_total;
          points = reports })
  in
  { crash_seed = seed;
    crash_trial_count = count;
    points_per_trial = points;
    crash_trials }

let crash_points_checked r =
  List.fold_left (fun n t -> n + List.length t.points) 0 r.crash_trials

let crash_failures r =
  List.fold_left
    (fun n t -> n + List.length (List.filter (fun p -> not p.point_ok) t.points))
    0 r.crash_trials

let crash_ok r =
  r.crash_trials <> []
  && List.for_all (fun t -> t.events_total > 0) r.crash_trials
  && crash_failures r = 0

let render_crash r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "crash-point sweep: %d trials, %d crash points recovered, %d failures (seed %d)"
    r.crash_trial_count (crash_points_checked r) (crash_failures r) r.crash_seed;
  List.iter
    (fun t ->
      line "  trial %d: %d durability events, %d points checked [%s]" t.crash_trial_index
        t.events_total (List.length t.points) (truncate t.crash_query);
      List.iter
        (fun p ->
          if not p.point_ok then
            line "    point %d%s FAILED: %s" p.point
              (if p.torn then " (torn)" else "")
              (truncate p.point_detail))
        t.points)
    r.crash_trials;
  line "verdict: %s" (if crash_ok r then "PASS" else "FAIL");
  Buffer.contents buf
