(** The traffic harness: a closed/open-loop load generator over the
    multi-session server stack.

    [run] loads a scaled DBLP document into one shared database, then
    drives [sessions] concurrent client sessions (one domain each),
    every request passing through the full wire path in-process —
    encode, decode, execute, encode, decode.  Each session replays a
    schedule drawn deterministically from [seed], sampling the five
    efficiency queries plus the Section-2 example.

    Before the domains start, a single-session oracle executes every
    distinct query and records its (status, payload); each concurrent
    response is compared against it and counted as a mismatch when it
    differs — the multi-session acceptance criterion.  After all
    sessions join, the shared pool must be quiescent (no pins, no held
    latches); a leak raises {!Xqdb_storage.Xqdb_error.Internal}. *)

type mode =
  | Closed  (** each session fires its next request on completion *)
  | Open_rate of float
      (** requests per second per session, fired on schedule regardless
          of completion — latencies include client-visible queueing *)

type session_report = {
  session : int;
  requests : int;
  ok : int;
  budget_exceeded : int;
  timeouts : int;  (** requests censored at their deadline *)
  errors : int;
  io_errors : int;
  bad_requests : int;
  mismatches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type report = {
  sessions : int;
  requests_per_session : int;
  seed : int;
  scale : int;
  mode : mode;
  doc : string;
  wall_seconds : float;
  throughput : float;  (** completed requests per wall-clock second *)
  total_mismatches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  per_session : session_report list;
}

val run :
  ?mode:mode ->
  ?max_page_ios:int ->
  ?max_seconds:float ->
  sessions:int ->
  requests:int ->
  seed:int ->
  scale:int ->
  unit ->
  report
(** The caps become every session's admission limits (requests censor to
    [Budget_exceeded] when they trip, sessions and server live on). *)

val mode_label : mode -> string
(** ["closed"] or ["open"]. *)

val render : report -> string
(** Human-readable summary. *)
