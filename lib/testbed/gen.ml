(* QCheck generators shared by the property tests (via [Test_support.Gen])
   and the differential oracle harness: random XML trees and random
   well-formed, type-safe XQ queries.

   The query generator only compares variables known to be bound to text
   nodes (it tracks the node test each variable was bound through), so
   generated queries never hit the runtime type error that milestone 1
   raises and the algebraic engines cannot (see DESIGN.md). *)

module G = QCheck2.Gen
module Tree = Xqdb_xml.Xml_tree
open Xqdb_xq.Xq_ast

let label_pool = [|"a"; "b"; "c"; "d"; "item"; "name"; "title"|]
let text_pool = [|"x"; "y"; "zz"; "Ana"; "Bob"; "42"; "hello world"|]

let label_gen = G.oneofa label_pool
let text_gen = G.oneofa text_pool

(* --- random XML trees --------------------------------------------------- *)

let tree_gen : Tree.node G.t =
  G.sized (fun size ->
      let rec node fuel =
        if fuel <= 0 then G.map Tree.text text_gen
        else
          G.bind (G.int_bound 99) (fun pick ->
              if pick < 30 then G.map Tree.text text_gen
              else begin
                let width = G.int_bound (min 4 fuel) in
                G.bind width (fun w ->
                    G.bind (G.list_size (G.pure w) (node (fuel / (w + 1))))
                      (fun children ->
                        G.map (fun l -> Tree.elem l children) label_gen))
              end)
      in
      node (min size 40))

(* Adjacent text nodes cannot survive a print/parse round trip (the
   lexer merges them), so normalized forests merge them up front. *)
let rec normalize_forest forest =
  match forest with
  | [] -> []
  | Tree.Text a :: Tree.Text b :: rest -> normalize_forest (Tree.Text (a ^ b) :: rest)
  | Tree.Text a :: rest -> Tree.Text a :: normalize_forest rest
  | Tree.Elem (l, children) :: rest ->
    Tree.Elem (l, normalize_forest children) :: normalize_forest rest

let forest_gen : Tree.forest G.t =
  G.map normalize_forest (G.list_size (G.int_range 1 3) tree_gen)

(* --- random XQ queries -------------------------------------------------- *)

(* Environment entries: variable name and whether it is surely a text
   node (bound through a text() test). *)
type scope = {
  vars : (var * bool) list;  (* (name, is_text) *)
  next : int;
}

let initial_scope = { vars = [(root_var, false)]; next = 0 }

let any_var scope = G.oneofl scope.vars
let text_vars scope = List.filter snd scope.vars

let axis_gen = G.oneofl [Child; Descendant]

let nodetest_gen =
  G.oneof [G.map (fun l -> Name l) label_gen; G.pure Star; G.pure Text_test]

let bind scope test =
  let name = Printf.sprintf "v%d" scope.next in
  let is_text = test = Text_test in
  (name, { vars = (name, is_text) :: scope.vars; next = scope.next + 1 })

let rec query_gen scope fuel : query G.t =
  if fuel <= 0 then leaf_gen scope
  else
    G.bind (G.int_bound 99) (fun pick ->
        if pick < 15 then leaf_gen scope
        else if pick < 40 then
          (* for-loop *)
          G.bind (any_var scope) (fun (x, _) ->
              G.bind axis_gen (fun axis ->
                  G.bind nodetest_gen (fun test ->
                      let y, scope' = bind scope test in
                      G.map
                        (fun body -> For (y, x, axis, test, body))
                        (query_gen scope' (fuel - 1)))))
        else if pick < 55 then
          (* conditional *)
          G.bind (cond_gen scope (min 3 fuel)) (fun c ->
              G.map (fun body -> If (c, body)) (query_gen scope (fuel - 1)))
        else if pick < 70 then
          G.bind (query_gen scope (fuel / 2)) (fun q1 ->
              G.map (fun q2 -> Seq (q1, q2)) (query_gen scope (fuel / 2)))
        else if pick < 85 then
          G.bind label_gen (fun l ->
              G.map (fun body -> Constr (l, body)) (query_gen scope (fuel - 1)))
        else leaf_gen scope)

and leaf_gen scope =
  G.bind (G.int_bound 99) (fun pick ->
      if pick < 15 then G.pure Empty
      else if pick < 30 then G.map (fun s -> Text_lit s) text_gen
      else if pick < 55 then G.map (fun (x, _) -> Var x) (any_var scope)
      else
        G.bind (any_var scope) (fun (x, _) ->
            G.bind axis_gen (fun axis ->
                G.map (fun test -> Path (x, axis, test)) nodetest_gen)))

and cond_gen scope fuel : cond G.t =
  if fuel <= 0 then atom_cond_gen scope
  else
    G.bind (G.int_bound 99) (fun pick ->
        if pick < 30 then atom_cond_gen scope
        else if pick < 55 then
          (* some *)
          G.bind (any_var scope) (fun (x, _) ->
              G.bind axis_gen (fun axis ->
                  G.bind nodetest_gen (fun test ->
                      let y, scope' = bind scope test in
                      G.map
                        (fun c -> Some_ (y, x, axis, test, c))
                        (cond_gen scope' (fuel - 1)))))
        else if pick < 75 then
          G.bind (cond_gen scope (fuel / 2)) (fun c1 ->
              G.map (fun c2 -> And (c1, c2)) (cond_gen scope (fuel / 2)))
        else if pick < 90 then
          G.bind (cond_gen scope (fuel / 2)) (fun c1 ->
              G.map (fun c2 -> Or (c1, c2)) (cond_gen scope (fuel / 2)))
        else G.map (fun c -> Not c) (cond_gen scope (fuel - 1)))

and atom_cond_gen scope =
  (* Comparisons only between text-bound variables, so the generated
     queries stay type-safe. *)
  match text_vars scope with
  | [] -> G.pure True
  | texts ->
    G.bind (G.int_bound 99) (fun pick ->
        if pick < 30 then G.pure True
        else if pick < 70 then
          G.bind (G.oneofl texts) (fun (x, _) ->
              G.map (fun s -> Eq_const (x, s)) text_gen)
        else
          G.bind (G.oneofl texts) (fun (x, _) ->
              G.map (fun (y, _) -> Eq_vars (x, y)) (G.oneofl texts)))

let xq_gen : query G.t =
  G.sized (fun size -> query_gen initial_scope (min 8 (1 + (size / 10))))
