module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module W = Xqdb_workload

let configs = [Engine_config.m1; Engine_config.m2; Engine_config.m3; Engine_config.m4]

let config_of_name name =
  List.find_opt (fun c -> String.equal c.Engine_config.name name) configs

(* The fixed Figure-2 document keeps statistics — and therefore plan
   choices and cost estimates — byte-stable across runs, which is what
   lets EXPLAIN output be golden-tested. *)
let document () = [W.Docs.figure2]

let render_config config =
  let engine = Engine.load_forest ~config (document ()) in
  let buf = Buffer.create 8192 in
  List.iter
    (fun (name, query) ->
      Buffer.add_string buf (Printf.sprintf "===== %s =====\n" name);
      Buffer.add_string buf (Engine.explain engine query);
      Buffer.add_string buf "\n")
    (Queries.parsed Queries.public_queries);
  Buffer.contents buf

let render name =
  match config_of_name name with
  | Some config -> Ok (render_config config)
  | None ->
    Error
      (Printf.sprintf "unknown config %s (expected one of %s)" name
         (String.concat ", " (List.map (fun c -> c.Engine_config.name) configs)))
