module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module W = Xqdb_workload

let configs = [Engine_config.m1; Engine_config.m2; Engine_config.m3; Engine_config.m4]

let config_of_name name =
  List.find_opt (fun c -> String.equal c.Engine_config.name name) configs

(* The fixed Figure-2 document keeps statistics — and therefore plan
   choices and cost estimates — byte-stable across runs, which is what
   lets EXPLAIN output be golden-tested. *)
let document () = [W.Docs.figure2]

let render_config config =
  let engine = Engine.load_forest ~config (document ()) in
  let buf = Buffer.create 8192 in
  List.iter
    (fun (name, query) ->
      Buffer.add_string buf (Printf.sprintf "===== %s =====\n" name);
      Buffer.add_string buf (Engine.explain engine query);
      Buffer.add_string buf "\n")
    (Queries.parsed Queries.public_queries);
  Buffer.contents buf

(* The structural suite pins where the struct-join/twig operators are
   chosen: they must appear on the deep Treebank parse forest, whose
   long label paths make interval containment cheap relative to
   per-outer index probes, and must NOT appear on the shallow DBLP
   bibliography.  Each document renders under m4 and under m4 with
   structural indexes disabled, so the golden diff is the plan change
   the index family buys. *)
let structural_documents () =
  [ (* Deep recursive parse trees: descendant chains over fat label runs
       are where the staircase/twig operators must take over from
       per-outer interval probes. *)
    ( "deep-treebank",
      [W.Treebank_gen.generate (W.Treebank_gen.scaled 10)],
      [ ("twig-three-step",
         "for $s in //S return for $np in $s//NP return for $nn in $np//NN return $nn");
        ("pair-desc-deep", "for $np in //NP return for $nn in $np//NN return $nn");
        (* The existential breaks the binding-chain shape the twig
           recognizer needs, so this one pins the plain semijoin form of
           the staircase operator. *)
        ("semi-exist",
         "for $np in //NP return if (some $vb in $np//VB satisfies true()) then <hit/> else ()");
        ("absent-label", "for $x in //proceedings return for $y in $x//cite return $y") ] );
    (* Shallow bibliography: child steps and selective probes are
       already cheap, so no structural JOIN may appear here — at most
       the covering sidx access path replaces a label-index scan. *)
    ( "shallow-dblp",
      [W.Dblp_gen.generate (W.Dblp_gen.scaled 40)],
      [ ("multistep-child", "for $w in /dblp/article/author return $w");
        ("twig-three-step",
         "for $s in //S return for $np in $s//NP return for $nn in $np//NN return $nn");
        ("absent-label", "for $x in //proceedings return for $y in $x//cite return $y") ] ) ]

let render_structural () =
  let buf = Buffer.create 8192 in
  List.iter
    (fun (doc_name, forest, queries) ->
      List.iter
        (fun config ->
          let engine = Engine.load_forest ~config forest in
          List.iter
            (fun (name, query) ->
              Buffer.add_string buf
                (Printf.sprintf "===== %s / %s / %s =====\n" doc_name
                   config.Engine_config.name name);
              Buffer.add_string buf (Engine.explain engine query);
              Buffer.add_string buf "\n")
            (Queries.parsed queries))
        [Engine_config.m4; Engine_config.m4_nostruct])
    (structural_documents ());
  Buffer.contents buf

let render name =
  if String.equal name "structural" then Ok (render_structural ())
  else
    match config_of_name name with
    | Some config -> Ok (render_config config)
    | None ->
      Error
        (Printf.sprintf "unknown config %s (expected one of %s, structural)" name
           (String.concat ", " (List.map (fun c -> c.Engine_config.name) configs)))
