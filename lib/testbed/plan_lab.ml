module A = Xqdb_tpm.Tpm_algebra
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats
module Op = Xqdb_physical.Phys_op
module Plan_ir = Xqdb_plan.Plan_ir
module Pipeline = Xqdb_plan.Pipeline
module Engine = Xqdb_core.Engine
module Engine_config = Xqdb_core.Engine_config
module W = Xqdb_workload
module Disk = Xqdb_storage.Disk

type measurement = {
  name : string;
  description : string;
  plan : string;
  est_cost : float;
  page_ios : int;
  rows : int;
  seconds : float;
}

let query = Xqdb_xq.Xq_parser.parse Queries.example6

(* The laboratory studies the single merged relfor of Example 6; the
   front half of the staged pipeline (rewrite + merge) produces it. *)
let front_config =
  { Pipeline.rewrite = Xqdb_tpm.Rewrite.default;
    merge_relfors = true;
    planner = Planner.m4_config;
    batch_size = 256;
    scan_domains = 1 }

let psx_of ctx =
  match Plan_ir.tpm_relfors (Pipeline.front ctx query) with
  | r :: _ -> r.A.source
  | [] -> Xqdb_storage.Xqdb_error.internal "Plan_lab: no relfor"

(* The QP0 configuration: no indexes, no order discipline (sort at the
   end), intermediates on disk. *)
let qp0_config =
  { Planner.use_indexes = false;
    use_struct = false;
    cost_based = false;
    order = `Mem_sort;
    materialize = `Disk;
    carry_out = true }

let run ?(scale = 300) () =
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled scale)] in
  let config = { Engine_config.m4 with Engine_config.pool_capacity = 48 } in
  let engine = Engine.load_forest ~config forest in
  let store = Engine.store engine in
  let stats = Stats.make store (Engine.doc_stats engine) in
  let source = psx_of { Pipeline.config = front_config; stats; store } in
  let aliases = source.A.rels in
  let binding_aliases = List.map (fun (b : A.binding) -> b.A.brel) source.A.bindings in
  let x_alias, y_alias =
    match binding_aliases with
    | [x; y] -> (x, y)
    | _ -> Xqdb_storage.Xqdb_error.internal "Plan_lab: expected two bindings"
  in
  let v_alias =
    match List.filter (fun a -> not (List.mem a binding_aliases)) aliases with
    | [v] -> v
    | _ -> Xqdb_storage.Xqdb_error.internal "Plan_lab: expected one existential relation"
  in
  let root_out =
    (Xqdb_xasr.Node_store.root_tuple store).Xqdb_xasr.Xasr.nout
  in
  let env v =
    if String.equal v Xqdb_xq.Xq_ast.root_var then (1, root_out)
    else Xqdb_storage.Xqdb_error.internal "Plan_lab: unexpected external %s" v
  in
  let measure name description plan =
    let ctx = Op.make_ctx store in
    let disk = Xqdb_storage.Buffer_pool.disk (Xqdb_xasr.Node_store.pool store) in
    let before =
      let c = Disk.counters disk in
      c.Disk.reads + c.Disk.writes
    in
    let start = Sys.time () in
    let tmpl = Planner.template ctx plan in
    Planner.bind tmpl ~env;
    let rows = List.length (Op.drain tmpl.Planner.op) in
    let seconds = Sys.time () -. start in
    let after =
      let c = Disk.counters disk in
      c.Disk.reads + c.Disk.writes
    in
    { name;
      description;
      plan = Planner.to_string plan;
      est_cost = plan.Planner.est_cost;
      page_ios = after - before;
      rows;
      seconds }
  in
  let qp0 =
    measure "QP0" "authors joined before the volume test; order restored by sorting"
      (Planner.plan_with_order qp0_config stats source [y_alias; v_alias; x_alias])
  in
  let qp1 =
    measure "QP1" "order-preserving structural plan: (A join B) join V, NL joins"
      (Planner.plan_with_order Planner.m3_config stats source [x_alias; y_alias; v_alias])
  in
  let qp2 =
    measure "QP2" "volume semijoin first, index nested-loop joins (Figure 6)"
      (Planner.plan_with_order Planner.m4_config stats source [x_alias; v_alias; y_alias])
  in
  [qp0; qp1; qp2]

let render measurements =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s — %s\n%s\nest. cost %.1f | measured: %d page I/Os, %d rows, %.3fs\n\n"
           m.name m.description m.plan m.est_cost m.page_ios m.rows m.seconds))
    measurements;
  Buffer.contents buf
