module Engine = Xqdb_core.Engine
module Storage = Xqdb_storage

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* --- writer ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_json f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_json f)
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write_to buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 4096 in
  write_to buf json;
  Buffer.contents buf

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string json);
      output_char oc '\n')

(* --- parser ------------------------------------------------------------- *)

exception Bad of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad (Printf.sprintf "at %d: %s" !pos msg))) fmt in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub input !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape %s" hex
           in
           (* Code points beyond one byte round-trip as UTF-8. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | Some c -> fail "bad escape \\%c" c
         | None -> fail "unterminated escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %s" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number %s" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- serializers -------------------------------------------------------- *)

let rec op_json (o : Engine.op_profile) =
  Obj
    [ ("op", Str o.op);
      ("args", Str o.args);
      ("rows", Int o.rows);
      ("batches", Int o.batches);
      ("ios", Int o.ios);
      ("own_ios", Int o.own_ios);
      ("seconds", Float o.seconds);
      ("own_seconds", Float o.own_seconds);
      ("inputs", Arr (List.map op_json o.inputs)) ]

let profile_json (p : Engine.profile) =
  Obj
    [ ("reads", Int p.reads);
      ("writes", Int p.writes);
      ("allocs", Int p.allocs);
      ( "pool",
        Obj
          [ ("hits", Int p.pool.Storage.Buffer_pool.hits);
            ("misses", Int p.pool.Storage.Buffer_pool.misses);
            ("evictions", Int p.pool.Storage.Buffer_pool.evictions);
            ("retries", Int p.pool.Storage.Buffer_pool.retries) ] );
      ("counters", Obj (List.map (fun (name, v) -> (name, Int v)) p.counters));
      ("operator_ios", Int p.operator_ios);
      ("other_ios", Int p.other_ios);
      ("operators", Arr (List.map op_json p.operators)) ]

(* The planner/engine counter deltas a run's profile carries; surfaced
   as top-level result fields (schema v2) so CI can assert on them
   without digging through the counters object. *)
let template_fields (p : Engine.profile) =
  let counter name =
    match List.assoc_opt name p.counters with Some v -> v | None -> 0
  in
  [ ("templates_built", Int (counter "planner.templates_built"));
    ("template_binds", Int (counter "planner.template_binds"));
    ("prepared_cache_hits", Int (counter "engine.prepared_cache_hits")) ]

(* WAL and recovery counter deltas (schema v3), surfaced as top-level
   result fields; zero for engines running without a log, so CI can
   assert durability activity without digging through counters. *)
let durability_fields (p : Engine.profile) =
  let counter name =
    match List.assoc_opt name p.counters with Some v -> v | None -> 0
  in
  [ ("wal_appends", Int (counter "wal.appends"));
    ("wal_checkpoints", Int (counter "wal.checkpoints"));
    ("recovery_replayed", Int (counter "wal.recovery_replayed")) ]

let result_json ?(extra = []) ~engine ~test (r : Engine.result) =
  Obj
    ([ ("engine", Str engine); ("test", Str test) ]
    @ extra
    @ [ ("page_ios", Int r.page_ios);
        ("seconds", Float r.elapsed);
        ( "censored",
          Bool (match r.status with Engine.Budget_exceeded _ -> true | _ -> false) ) ]
    @ template_fields r.profile
    @ durability_fields r.profile
    @ [("profile", profile_json r.profile)])

let cell_json (c : Efficiency.cell) =
  Obj
    ([ ("engine", Str c.engine);
       ("test", Str c.test);
       ("page_ios", Int c.page_ios);
       ("seconds", Float c.seconds);
       ("censored", Bool c.censored) ]
    @ template_fields c.profile
    @ durability_fields c.profile
    @ [("profile", profile_json c.profile)])

let schema_version = 6

(* v1 reports (no template counter fields), v2 reports (no durability
   fields), v3 reports (no traffic kind), v4 reports (no per-operator
   batch counts) and v5 reports (no chaos kind, no per-session timeout
   counts) stay parseable/valid. *)
let accepted_versions = [1; 2; 3; 4; 5; schema_version]

let bench_json ~kind extra ~results =
  Obj
    ((("schema_version", Int schema_version) :: ("kind", Str kind) :: extra)
    @ [("results", Arr results)])

(* The batch-vs-tuple comparison carried by fig7 reports (schema v5):
   the same engines and workload run once at the configured batch size
   and once degraded to one-row batches through the identical operator
   code, so the seconds delta isolates the vectorization win.  Rankings
   are each run's engines ordered by total censored-capped page I/O —
   the gate requires them to agree. *)
type batch_comparison = {
  cmp_batch_size : int;
  batch_seconds : float;
  tuple_seconds : float;
  batch_ranking : string list;
  tuple_ranking : string list;
}

let batch_comparison_json c =
  Obj
    [ ("batch_size", Int c.cmp_batch_size);
      ("batch_seconds", Float c.batch_seconds);
      ("tuple_seconds", Float c.tuple_seconds);
      ("batch_ranking", Arr (List.map (fun e -> Str e) c.batch_ranking));
      ("tuple_ranking", Arr (List.map (fun e -> Str e) c.tuple_ranking)) ]

let fig7_json ?batch (table : Efficiency.table) =
  bench_json ~kind:"fig7"
    (("budget", Int table.budget)
    :: (match batch with
       | None -> []
       | Some c -> [("batch", batch_comparison_json c)]))
    ~results:(List.map cell_json table.cells)

(* One result object per crash point, flat, so CI can grep a failing
   (trial, point) pair straight out of the artifact. *)
let crash_json (r : Differential.crash_report) =
  bench_json ~kind:"crash"
    [ ("seed", Int r.Differential.crash_seed);
      ("trial_count", Int r.Differential.crash_trial_count);
      ("points_per_trial", Int r.Differential.points_per_trial) ]
    ~results:
      (List.concat_map
         (fun (t : Differential.crash_trial) ->
           List.map
             (fun (p : Differential.crash_point_report) ->
               Obj
                 [ ("trial", Int t.Differential.crash_trial_index);
                   ("query", Str t.Differential.crash_query);
                   ("events_total", Int t.Differential.events_total);
                   ("point", Int p.Differential.point);
                   ("torn", Bool p.Differential.torn);
                   ("crashed", Bool p.Differential.crashed);
                   ("ok", Bool p.Differential.point_ok);
                   ("detail", Str p.Differential.point_detail) ])
             t.Differential.points)
         r.Differential.crash_trials)

(* One result object per session; the run-level aggregates live in the
   top-level extras so CI can gate on throughput/latency/mismatches
   without folding over sessions. *)
let traffic_json (r : Traffic.report) =
  let session_json (s : Traffic.session_report) =
    Obj
      [ ("session", Int s.Traffic.session);
        ("requests", Int s.Traffic.requests);
        ("ok", Int s.Traffic.ok);
        ("budget_exceeded", Int s.Traffic.budget_exceeded);
        ("timeouts", Int s.Traffic.timeouts);
        ("errors", Int s.Traffic.errors);
        ("io_errors", Int s.Traffic.io_errors);
        ("bad_requests", Int s.Traffic.bad_requests);
        ("mismatches", Int s.Traffic.mismatches);
        ("p50_ms", Float s.Traffic.p50_ms);
        ("p95_ms", Float s.Traffic.p95_ms);
        ("p99_ms", Float s.Traffic.p99_ms) ]
  in
  bench_json ~kind:"traffic"
    [ ("sessions", Int r.Traffic.sessions);
      ("requests_per_session", Int r.Traffic.requests_per_session);
      ("seed", Int r.Traffic.seed);
      ("scale", Int r.Traffic.scale);
      ("mode", Str (Traffic.mode_label r.Traffic.mode));
      ("doc", Str r.Traffic.doc);
      ("wall_seconds", Float r.Traffic.wall_seconds);
      ("throughput", Float r.Traffic.throughput);
      ("mismatches", Int r.Traffic.total_mismatches);
      ("p50_ms", Float r.Traffic.p50_ms);
      ("p95_ms", Float r.Traffic.p95_ms);
      ("p99_ms", Float r.Traffic.p99_ms) ]
    ~results:(List.map session_json r.Traffic.per_session)

(* One result object per leg (fault-free baseline, then chaos); the
   fault/retry accounting and the harness's own verdicts live in the
   top-level extras so CI can gate on them directly. *)
let chaos_json (r : Chaos.report) =
  let leg_json (l : Chaos.leg) =
    Obj
      [ ("leg", Str l.Chaos.leg);
        ("requests", Int l.Chaos.requests);
        ("ok", Int l.Chaos.ok);
        ("budget_exceeded", Int l.Chaos.budget_exceeded);
        ("timeouts", Int l.Chaos.timeouts);
        ("errors", Int l.Chaos.errors);
        ("io_errors", Int l.Chaos.io_errors);
        ("bad_requests", Int l.Chaos.bad_requests);
        ("unavailable", Int l.Chaos.unavailable);
        ("mismatches", Int l.Chaos.mismatches);
        ("untyped", Int l.Chaos.untyped);
        ("p50_ms", Float l.Chaos.p50_ms);
        ("p95_ms", Float l.Chaos.p95_ms);
        ("p99_ms", Float l.Chaos.p99_ms) ]
  in
  bench_json ~kind:"chaos"
    [ ("seed", Int r.Chaos.chaos_seed);
      ("sessions", Int r.Chaos.chaos_sessions);
      ("requests_per_session", Int r.Chaos.chaos_requests);
      ("scale", Int r.Chaos.chaos_scale);
      ("profile", Str r.Chaos.profile_label);
      ("faults_injected", Int r.Chaos.faults_injected);
      ("retry_attempts", Int r.Chaos.retry_attempts);
      ("retry_giveups", Int r.Chaos.retry_giveups);
      ("wal_rounds", Int r.Chaos.wal_rounds);
      ("wal_retry_attempts", Int r.Chaos.wal_retry_attempts);
      ("p99_ratio", Float r.Chaos.p99_ratio);
      ("violations", Arr (List.map (fun v -> Str v) r.Chaos.violations)) ]
    ~results:(List.map leg_json [r.Chaos.baseline; r.Chaos.chaos])

(* --- validation --------------------------------------------------------- *)

let ( let* ) = Result.bind

let need what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" what)

let as_int what = function
  | Int i -> Ok i
  | _ -> Error (Printf.sprintf "%s is not an integer" what)

let as_number what = function
  | Int i -> Ok (float_of_int i)
  | Float f -> Ok f
  | _ -> Error (Printf.sprintf "%s is not a number" what)

let as_str what = function
  | Str s -> Ok s
  | _ -> Error (Printf.sprintf "%s is not a string" what)

let as_bool what = function
  | Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s is not a boolean" what)

let as_arr what = function
  | Arr items -> Ok items
  | _ -> Error (Printf.sprintf "%s is not an array" what)

let int_field obj name =
  let* v = need name (member name obj) in
  as_int name v

let rec validate_op op =
  let* _ = need "op" (member "op" op) in
  let* ios = int_field op "ios" in
  let* own = int_field op "own_ios" in
  let* rows = int_field op "rows" in
  (* v5 reports carry per-operator batch counts; every non-empty batch
     holds at least one row, so batches can never exceed rows. *)
  let* () =
    match member "batches" op with
    | None -> Ok ()
    | Some v ->
      let* batches = as_int "batches" v in
      if batches < 0 then Error "negative batches"
      else if batches > rows then
        Error (Printf.sprintf "batches %d exceed rows %d" batches rows)
      else Ok ()
  in
  if rows < 0 then Error "negative rows"
  else if own < 0 then Error "negative own_ios"
  else
    let* inputs = need "inputs" (member "inputs" op) in
    let* inputs = as_arr "inputs" inputs in
    let* kid_ios =
      List.fold_left
        (fun acc input ->
          let* acc = acc in
          let* () = validate_op input in
          let* i = int_field input "ios" in
          Ok (acc + i))
        (Ok 0) inputs
    in
    if own + kid_ios <> ios then
      Error
        (Printf.sprintf "operator I/O does not partition: own %d + inputs %d <> %d" own
           kid_ios ios)
    else Ok ()

let validate_profile p =
  let* reads = int_field p "reads" in
  let* writes = int_field p "writes" in
  let* op_ios = int_field p "operator_ios" in
  let* other = int_field p "other_ios" in
  if op_ios + other <> reads + writes then
    Error
      (Printf.sprintf "profile does not reconcile: operator %d + other %d <> reads %d + writes %d"
         op_ios other reads writes)
  else
    let* operators = need "operators" (member "operators" p) in
    let* operators = as_arr "operators" operators in
    let* roots_ios =
      List.fold_left
        (fun acc op ->
          let* acc = acc in
          let* () = validate_op op in
          let* i = int_field op "ios" in
          Ok (acc + i))
        (Ok 0) operators
    in
    if roots_ios <> op_ios then
      Error (Printf.sprintf "operator_ios %d <> sum of operator roots %d" op_ios roots_ios)
    else
      let* pool = need "pool" (member "pool" p) in
      let* _ = int_field pool "hits" in
      let* _ = int_field pool "misses" in
      Ok ()

let validate_result ~version r =
  let* engine = need "engine" (member "engine" r) in
  let* _ = as_str "engine" engine in
  let* test = need "test" (member "test" r) in
  let* _ = as_str "test" test in
  let counter_fields =
    (if version >= 2 then ["templates_built"; "template_binds"; "prepared_cache_hits"]
     else [])
    @ (if version >= 3 then ["wal_appends"; "wal_checkpoints"; "recovery_replayed"] else [])
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let* v = int_field r name in
        if v < 0 then Error (Printf.sprintf "negative %s" name) else Ok ())
      (Ok ()) counter_fields
  in
  let* _ = int_field r "page_ios" in
  let* seconds = need "seconds" (member "seconds" r) in
  let* _ = as_number "seconds" seconds in
  let* censored = need "censored" (member "censored" r) in
  let* censored = as_bool "censored" censored in
  match member "profile" r with
  | None -> Error "missing field profile"
  | Some profile ->
    (* A censored run's page_ios is the assigned budget, not the raw
       counter delta, so only uncensored results must reconcile against
       the top-level number; the profile must still be self-consistent. *)
    let* () = validate_profile profile in
    if censored then Ok ()
    else
      let* page_ios = int_field r "page_ios" in
      let* reads = int_field profile "reads" in
      let* writes = int_field profile "writes" in
      if reads + writes <> page_ios then
        Error
          (Printf.sprintf "page_ios %d <> profile reads %d + writes %d" page_ios reads writes)
      else Ok ()

(* A crash-sweep result: one crash point's verdict, no profile. *)
let validate_crash_result r =
  let* trial = int_field r "trial" in
  let* point = int_field r "point" in
  let* events = int_field r "events_total" in
  let* torn = need "torn" (member "torn" r) in
  let* _ = as_bool "torn" torn in
  let* crashed = need "crashed" (member "crashed" r) in
  let* _ = as_bool "crashed" crashed in
  let* ok = need "ok" (member "ok" r) in
  let* _ = as_bool "ok" ok in
  let* detail = need "detail" (member "detail" r) in
  let* _ = as_str "detail" detail in
  if trial < 0 then Error "negative trial"
  else if point < 1 then Error "crash point must be >= 1"
  else if point > events then
    Error (Printf.sprintf "crash point %d past the %d observed events" point events)
  else Ok ()

(* A traffic session entry: the outcome counts must partition the
   session's requests, latency percentiles must be ordered, and — the
   gate CI relies on — the concurrent run must match the single-session
   oracle exactly (zero mismatches). *)
let validate_traffic_result r =
  let* session = int_field r "session" in
  let* requests = int_field r "requests" in
  let* ok = int_field r "ok" in
  let* budget = int_field r "budget_exceeded" in
  (* v6 added the per-session timeout count; older reports carry none
     (no deadlines on the v5 wire, so the count was identically 0). *)
  let* timeouts =
    match member "timeouts" r with
    | None -> Ok 0
    | Some v -> as_int "timeouts" v
  in
  let* errors = int_field r "errors" in
  let* io = int_field r "io_errors" in
  let* bad = int_field r "bad_requests" in
  let* mismatches = int_field r "mismatches" in
  let* p50 = need "p50_ms" (member "p50_ms" r) in
  let* p50 = as_number "p50_ms" p50 in
  let* p95 = need "p95_ms" (member "p95_ms" r) in
  let* p95 = as_number "p95_ms" p95 in
  let* p99 = need "p99_ms" (member "p99_ms" r) in
  let* p99 = as_number "p99_ms" p99 in
  if session < 0 then Error "negative session"
  else if requests < 1 then Error "session with no requests"
  else if ok + budget + timeouts + errors + io + bad <> requests then
    Error
      (Printf.sprintf "session %d outcomes do not partition: %d+%d+%d+%d+%d+%d <> %d"
         session ok budget timeouts errors io bad requests)
  else if mismatches <> 0 then
    Error
      (Printf.sprintf "session %d diverged from the single-session oracle (%d mismatches)"
         session mismatches)
  else if p50 < 0. || p95 < 0. || p99 < 0. then Error "negative latency percentile"
  else if p50 > p95 || p95 > p99 then
    Error (Printf.sprintf "session %d latency percentiles not ordered" session)
  else Ok ()

(* A chaos leg entry: the outcome counts must partition the leg's
   requests, every failure must be typed (zero untyped escapes), Ok
   responses must match the fault-free oracle (zero mismatches), and
   percentiles must be ordered. *)
let validate_chaos_result r =
  let* leg = need "leg" (member "leg" r) in
  let* leg = as_str "leg" leg in
  let* requests = int_field r "requests" in
  let* ok = int_field r "ok" in
  let* budget = int_field r "budget_exceeded" in
  let* timeouts = int_field r "timeouts" in
  let* errors = int_field r "errors" in
  let* io = int_field r "io_errors" in
  let* bad = int_field r "bad_requests" in
  let* unavailable = int_field r "unavailable" in
  let* mismatches = int_field r "mismatches" in
  let* untyped = int_field r "untyped" in
  let* p50 = need "p50_ms" (member "p50_ms" r) in
  let* p50 = as_number "p50_ms" p50 in
  let* p95 = need "p95_ms" (member "p95_ms" r) in
  let* p95 = as_number "p95_ms" p95 in
  let* p99 = need "p99_ms" (member "p99_ms" r) in
  let* p99 = as_number "p99_ms" p99 in
  if String.length leg = 0 then Error "empty leg label"
  else if requests < 1 then Error (Printf.sprintf "%s leg with no requests" leg)
  else if ok + budget + timeouts + errors + io + bad + unavailable <> requests then
    Error
      (Printf.sprintf "%s leg outcomes do not partition: %d+%d+%d+%d+%d+%d+%d <> %d" leg
         ok budget timeouts errors io bad unavailable requests)
  else if untyped <> 0 then
    Error (Printf.sprintf "%s leg let %d failure(s) escape untyped" leg untyped)
  else if mismatches <> 0 then
    Error
      (Printf.sprintf "%s leg diverged from the fault-free oracle (%d mismatches)" leg
         mismatches)
  else if p50 < 0. || p95 < 0. || p99 < 0. then Error "negative latency percentile"
  else if p50 > p95 || p95 > p99 then
    Error (Printf.sprintf "%s leg latency percentiles not ordered" leg)
  else Ok ()

let validate_bench json =
  let* version = need "schema_version" (member "schema_version" json) in
  let* version = as_int "schema_version" version in
  if not (List.mem version accepted_versions) then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* kind = need "kind" (member "kind" json) in
    let* kind = as_str "kind" kind in
    let* results = need "results" (member "results" json) in
    let* results = as_arr "results" results in
    if results = [] then Error "empty results"
    else if String.equal kind "traffic" && version < 4 then
      Error (Printf.sprintf "traffic reports need schema_version >= 4, got %d" version)
    else if String.equal kind "chaos" && version < 6 then
      Error (Printf.sprintf "chaos reports need schema_version >= 6, got %d" version)
    else
      let check =
        if String.equal kind "crash" then validate_crash_result
        else if String.equal kind "traffic" then validate_traffic_result
        else if String.equal kind "chaos" then validate_chaos_result
        else validate_result ~version
      in
      List.fold_left
        (fun acc r ->
          let* () = acc in
          check r)
        (Ok ()) results

let validate_constant_templates json =
  let* results = need "results" (member "results" json) in
  let* results = as_arr "results" results in
  let* keyed =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* engine = need "engine" (member "engine" r) in
        let* engine = as_str "engine" engine in
        let* test = need "test" (member "test" r) in
        let* test = as_str "test" test in
        let* built = int_field r "templates_built" in
        Ok ((engine ^ " / " ^ test, built) :: acc))
      (Ok []) results
  in
  List.fold_left
    (fun acc (key, built) ->
      let* seen = acc in
      match List.assoc_opt key seen with
      | None -> Ok ((key, built) :: seen)
      | Some prev when prev = built -> Ok seen
      | Some prev ->
        Error
          (Printf.sprintf
             "templates_built varies with scale for %s: %d vs %d — planning is not compile-once"
             key prev built))
    (Ok []) (List.rev keyed)
  |> Result.map (fun _ -> ())

(* The structural-gain gate: every "deep-*" test of a structural report
   must show the m4 plans doing strictly less page I/O than the same
   engine with structural indexes disabled.  Shallow tests are exempt —
   the index family deliberately stays out of their plans. *)
let validate_structural_gain json =
  let* results = need "results" (member "results" json) in
  let* results = as_arr "results" results in
  let* keyed =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* engine = need "engine" (member "engine" r) in
        let* engine = as_str "engine" engine in
        let* test = need "test" (member "test" r) in
        let* test = as_str "test" test in
        let* ios = int_field r "page_ios" in
        Ok ((test, (engine, ios)) :: acc))
      (Ok []) results
  in
  let deep_tests =
    List.sort_uniq compare
      (List.filter_map
         (fun (test, _) ->
           if String.length test >= 4 && String.equal (String.sub test 0 4) "deep" then
             Some test
           else None)
         keyed)
  in
  if deep_tests = [] then Error "no deep-* structural tests in the report"
  else
    List.fold_left
      (fun acc test ->
        let* () = acc in
        let ios_of engine =
          List.assoc_opt (engine, ())
            (List.filter_map
               (fun (t, (e, ios)) ->
                 if String.equal t test && String.equal e engine then Some ((e, ()), ios)
                 else None)
               keyed)
        in
        match ios_of "m4", ios_of "m4-nostruct" with
        | Some with_struct, Some without when with_struct < without -> Ok ()
        | Some with_struct, Some without ->
          Error
            (Printf.sprintf
               "%s: structural plans show no page-I/O gain (m4 %d vs m4-nostruct %d)"
               test with_struct without)
        | None, _ | _, None ->
          Error (Printf.sprintf "%s: missing m4 or m4-nostruct measurement" test))
      (Ok ()) deep_tests

(* The batch-gain gate: a fig7 report's batch-vs-tuple comparison must
   show the vectorized run strictly faster than the same engines
   degraded to one-row batches, without disturbing the engine rankings
   (same code path, same plans, same page I/Os — only the per-row
   overhead changes). *)
let validate_batch_gain json =
  let* batch = need "batch" (member "batch" json) in
  let* size = int_field batch "batch_size" in
  let* batch_seconds = need "batch_seconds" (member "batch_seconds" batch) in
  let* batch_seconds = as_number "batch_seconds" batch_seconds in
  let* tuple_seconds = need "tuple_seconds" (member "tuple_seconds" batch) in
  let* tuple_seconds = as_number "tuple_seconds" tuple_seconds in
  let ranking name =
    let* arr = need name (member name batch) in
    let* items = as_arr name arr in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* s = as_str name item in
        Ok (s :: acc))
      (Ok []) items
    |> Result.map List.rev
  in
  let* batch_ranking = ranking "batch_ranking" in
  let* tuple_ranking = ranking "tuple_ranking" in
  if size <= 1 then
    Error (Printf.sprintf "batch comparison ran at batch_size %d, not a vectorized size" size)
  else if batch_ranking = [] then Error "empty engine rankings"
  else if not (List.equal String.equal batch_ranking tuple_ranking) then
    Error
      (Printf.sprintf "engine rankings changed under batching: [%s] vs [%s]"
         (String.concat "; " batch_ranking)
         (String.concat "; " tuple_ranking))
  else if batch_seconds >= tuple_seconds then
    Error
      (Printf.sprintf
         "batched execution shows no gain: %.3fs at batch %d vs %.3fs tuple-at-a-time"
         batch_seconds size tuple_seconds)
  else Ok ()

let parse_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let validate_file path =
  let* json = parse_file path in
  validate_bench json
