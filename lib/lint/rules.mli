(** The rule registry: storage-safety invariants checked on the repo's
    own sources via compiler-libs ([Parse] + [Ast_iterator]).

    The rules encode the error discipline the engine depends on:

    - {b L1} — no bare [failwith] / [Failure _].  Storage raises
      {!Xqdb_storage.Xqdb_error.Corrupt} (data problem, censored to
      [Io_error]) or [Internal] (engine bug, crashes loudly); the
      shredder raises [Shred_error].  A bare [Failure] would slip past
      the engine's status mapping.
    - {b L2} — no catch-all exception handler ([with _ ->], or a bound
      variable that is never re-raised).  Catch-alls can swallow
      [Disk_error] and [Pool_exhausted] and turn resource failures into
      silent wrong answers.
    - {b L3} — no polymorphic [compare] / [Hashtbl.hash], and no [=] /
      [<>] between two computed values, in [lib/storage], [lib/physical]
      and [lib/xasr]: physical records contain mutable buffers and
      closures where structural comparison diverges or raises.
    - {b L4} — every module under [lib/] has a [.mli]; interfaces are
      where pin/budget obligations are documented.
    - {b L5} — [Metrics.counter] names are string literals matching
      [[a-z_]+(.[a-z_]+)+] and unique across the project, so the metrics
      namespace stays greppable and collision-free.
    - {b L6} — nothing in [lib/server] writes stdout ([print_*],
      [Printf.printf], [Format.printf], [Stdlib.stdout]): worker domains
      share the process, so stdout prints interleave across sessions.
      Diagnostics go to stderr; responses go over the wire.

    Rules ["PARSE"] (unparseable source) and ["ALLOW"] (allowlist
    hygiene, see {!Allowlist}) are emitted by the infrastructure. *)

type source = {
  path : string;  (** repo-relative, [/]-separated — used in findings *)
  text : string;  (** file contents *)
  mli_exists : bool;  (** whether [path ^ "i"] exists (for L4) *)
}

type rule = { id : string; title : string }

val registry : rule list
(** L1–L6, in order. *)

val check_file : source -> Finding.t list
(** All per-file rules on one source.  L5's cross-file uniqueness needs
    {!check_project}. *)

val check_project : source list -> Finding.t list
(** {!check_file} on every source plus counter-name uniqueness across
    them, sorted by {!Finding.compare}. *)

val valid_counter_name : string -> bool
(** The L5 name grammar: two or more [.]-separated [[a-z_]+] segments. *)
