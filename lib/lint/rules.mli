(** The rule registry: storage-safety invariants checked on the repo's
    own sources via compiler-libs ([Parse] + [Ast_iterator]).

    The rules encode the error discipline the engine depends on:

    - {b L1} — no bare [failwith] / [Failure _].  Storage raises
      {!Xqdb_storage.Xqdb_error.Corrupt} (data problem, censored to
      [Io_error]) or [Internal] (engine bug, crashes loudly); the
      shredder raises [Shred_error].  A bare [Failure] would slip past
      the engine's status mapping.
    - {b L2} — no catch-all exception handler ([with _ ->], or a bound
      variable that is never re-raised).  Catch-alls can swallow
      [Disk_error] and [Pool_exhausted] and turn resource failures into
      silent wrong answers.
    - {b L3} — no polymorphic [compare] / [Hashtbl.hash], no [=] / [<>]
      / [min] / [max] between two computed values, and no [List.mem] on
      a computed element, in [lib/storage], [lib/physical] and
      [lib/xasr]: physical records contain mutable buffers and closures
      where structural comparison diverges or raises.
    - {b L4} — every module under [lib/] has a [.mli]; interfaces are
      where pin/budget obligations are documented.
    - {b L5} — [Metrics.counter] names are string literals matching
      [[a-z_]+(.[a-z_]+)+], their first segment names a known subsystem
      ({!counter_subsystems}), and they are unique across the project,
      so the metrics namespace stays greppable and collision-free.
    - {b L6} — nothing in [lib/server] writes stdout ([print_*],
      [Printf.printf], [Format.printf], [Stdlib.stdout]): worker domains
      share the process, so stdout prints interleave across sessions.
      Diagnostics go to stderr; responses go over the wire.

    The domain-safety family (L7–L9) runs as a two-phase whole-repo
    analysis: phase one gathers per-file facts (module references,
    [Domain.spawn] sites, shared mutable state, latch/blocking events);
    phase two builds the module dependency graph, marks every file
    reachable from a spawning file, and judges:

    - {b L7} — no unprotected shared mutable state (top-level [ref]s and
      [Hashtbl]s, [mutable] or [Hashtbl]-typed record fields) in a
      module reachable from domain-spawning code.  [Atomic.t] fields are
      exempt; a [[@@guarded_by <lock>]] or [[@@domain_local]] attribute
      on the field, type declaration or binding declares the discipline
      and silences the rule (the attribute is the reviewed claim).
    - {b L8} — no [Domain.spawn] outside the two sanctioned sites
      ([Phys_op.par_scan]'s partition fill and the [Server] worker
      pool).  L8 is per-file and so also reported by {!check_file}.
    - {b L9} — no blocking call ([Unix.sleep]/[select]/socket I/O,
      [Disk.read_page]/[write_page]/[alloc], [Wal.sync]) while a latch
      is provably held in the same top-level body, judged by textual
      order of [Latch.acquire_*] / [Latch.release] / blocking events.

    Rules ["PARSE"] (unparseable source) and ["ALLOW"] (allowlist
    hygiene, see {!Allowlist}) are emitted by the infrastructure. *)

type source = {
  path : string;  (** repo-relative, [/]-separated — used in findings *)
  text : string;  (** file contents *)
  mli_exists : bool;  (** whether [path ^ "i"] exists (for L4) *)
}

type rule = { id : string; title : string }

val registry : rule list
(** L1–L9, in order. *)

val check_file : source -> Finding.t list
(** All per-file rules on one source (L1–L6, L8, L9).  L5's cross-file
    uniqueness and L7's reachability judgement need {!check_project}. *)

val check_project : source list -> Finding.t list
(** Phase one ({!check_file}-equivalent facts) on every source, then
    phase two: counter-name uniqueness plus L7 over the modules
    reachable from [Domain.spawn] sites, sorted by {!Finding.compare}. *)

val valid_counter_name : string -> bool
(** The L5 name grammar: two or more [.]-separated [[a-z_]+] segments. *)

val counter_subsystems : string list
(** The closed set of first segments a counter name may use; registering
    a counter under a new subsystem requires extending this list. *)
