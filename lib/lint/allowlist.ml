type entry = { e_rule : string; e_path : string; e_line : int }

type t = { file : string; entries : entry list; problems : Finding.t list }

let empty = { file = ""; entries = []; problems = [] }

let problem ~file ~line fmt =
  Printf.ksprintf (fun msg -> Finding.v ~rule:"ALLOW" ~file ~line msg) fmt

let parse ?(known = []) ~file text =
  let entries = ref [] and problems = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s = "" || s.[0] = '#' then ()
      else
        match
          String.split_on_char ' ' s |> List.filter (fun tok -> tok <> "")
        with
        | [ rule; path ] ->
          if known <> [] && not (List.mem rule known) then
            problems := problem ~file ~line "unknown rule %S in allowlist" rule :: !problems
          else entries := { e_rule = rule; e_path = path; e_line = line } :: !entries
        | _ ->
          problems :=
            problem ~file ~line "malformed allowlist line (want `<rule> <path>`): %s" s
            :: !problems)
    (String.split_on_char '\n' text);
  { file; entries = List.rev !entries; problems = List.rev !problems }

let load ?known path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    parse ?known ~file:(Filename.basename path) text
  end

let apply t findings =
  let entries = Array.of_list t.entries in
  let used = Array.make (Array.length entries) false in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        let rec find i =
          if i >= Array.length entries then true
          else if entries.(i).e_rule = f.rule && entries.(i).e_path = f.file then begin
            used.(i) <- true;
            false
          end
          else find (i + 1)
        in
        find 0)
      findings
  in
  let unused =
    List.concat
      (List.mapi
         (fun i e ->
           if used.(i) then []
           else
             [ problem ~file:t.file ~line:e.e_line
                 "unused allowlist entry: %s %s (fix the code or drop the entry)"
                 e.e_rule e.e_path ])
         (Array.to_list entries))
  in
  kept @ unused @ t.problems
