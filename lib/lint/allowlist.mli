(** The checked allowlist.

    Suppressions live in one file at the repo root ([lint.allow]), not
    in inline comments — so every exemption is visible in one place and
    reviewed as such.  Each non-comment line reads

    {v <rule> <path> v}

    e.g. [L2 lib/testbed/differential.ml], and suppresses every finding
    of that rule in that file.  The list is {e checked} both ways: a
    malformed line or an unknown rule is itself a finding (rule
    ["ALLOW"]), and so is an entry that no longer suppresses anything —
    stale exemptions cannot accumulate. *)

type t

val empty : t

val parse : ?known:string list -> file:string -> string -> t
(** Parse allowlist text.  [~file] is the name reported in findings
    about the list itself.  When [known] is given, entries naming a rule
    outside it are flagged.  Blank lines and [#] comments are ignored. *)

val load : ?known:string list -> string -> t
(** [parse] the file at the given path; a missing file is [empty]. *)

val apply : t -> Finding.t list -> Finding.t list
(** Filter out allowed findings, then append one ["ALLOW"] finding per
    unused entry and per parse problem. *)
