type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~file ?(line = 1) ?(col = 0) message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.message)
