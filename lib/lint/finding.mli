(** A single lint violation, anchored to a source location.

    Findings are plain data so the rule registry, the allowlist and the
    renderers stay decoupled: rules produce them, the allowlist filters
    (and adds) them, the driver sorts and renders them. *)

type t = {
  rule : string;  (** rule identifier, e.g. ["L1"]; ["PARSE"] and
                      ["ALLOW"] are reserved for the driver itself *)
  file : string;  (** repo-relative path with [/] separators *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports columns *)
  message : string;
}

val v : rule:string -> file:string -> ?line:int -> ?col:int -> string -> t
(** [line] defaults to 1, [col] to 0 — for whole-file findings. *)

val compare : t -> t -> int
(** Order by file, line, column, rule, message — the report order. *)

val to_string : t -> string
(** ["file:line:col: [rule] message"], one finding per line. *)

val to_json : t -> string
(** One JSON object [{"rule":…,"file":…,"line":…,"col":…,"message":…}]
    with strings escaped per RFC 8259. *)
