(** Orchestration: find the sources, run the registry, apply the
    allowlist, render.  Shared by [bin/lint.exe] and [testbed lint]. *)

val source_dirs : string list
(** Directories scanned under the root: [lib] and [bin].  Tests are out
    of scope on purpose — they exercise failure paths deliberately. *)

val collect_sources : root:string -> unit -> Rules.source list
(** Every [.ml] under {!source_dirs}, sorted by path; [_build] and
    dot-directories are skipped. *)

val default_allow_file : string
(** ["lint.allow"], at the repo root. *)

val run : ?allow:string -> root:string -> unit -> Finding.t list
(** The whole pipeline: collect, {!Rules.check_project}, apply the
    checked allowlist ([allow] is resolved against [root]; missing file
    means no exemptions).  Sorted; empty means clean. *)

val render_text : Finding.t list -> string
(** One ["file:line:col: [rule] message"] per line plus a summary
    trailer. *)

val schema_version : int
(** Current report version (2: L7–L9 joined the registry).  Version 1
    reports are still accepted by {!validate_json}. *)

val render_json : Finding.t list -> string
(** [{"schema_version":…,"tool":"xqdb-lint","count":…,"findings":[…]}] —
    the CI artifact format. *)

val validate_json : string -> (unit, string) result
(** Strict validation of a rendered report (`testbed check-lint`):
    well-formed JSON, accepted [schema_version], [tool] is [xqdb-lint],
    [count] matches the [findings] array, every finding carries
    [rule]/[file]/[line]/[col]/[message]. *)
