let source_dirs = [ "lib"; "bin" ]

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* Walk [root]/[rel] collecting .ml files as /-separated repo-relative
   paths; _build and dot-directories are skipped. *)
let rec walk root rel acc =
  let dir = Filename.concat root rel in
  Array.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name = "_build" then acc
      else
        let rel' = rel ^ "/" ^ name in
        let full = Filename.concat root rel' in
        if Sys.file_exists full && Sys.is_directory full then walk root rel' acc
        else if Filename.check_suffix name ".ml" then rel' :: acc
        else acc)
    acc
    (Sys.readdir dir)

let collect_sources ~root () =
  let rels =
    List.concat_map
      (fun d ->
        let full = Filename.concat root d in
        if Sys.file_exists full && Sys.is_directory full then walk root d [] else [])
      source_dirs
  in
  List.sort String.compare rels
  |> List.map (fun rel ->
         { Rules.path = rel;
           text = read_file (Filename.concat root rel);
           mli_exists = Sys.file_exists (Filename.concat root rel ^ "i") })

let default_allow_file = "lint.allow"

let run ?(allow = default_allow_file) ~root () =
  let srcs = collect_sources ~root () in
  let findings = Rules.check_project srcs in
  let allowlist =
    Allowlist.load
      ~known:(List.map (fun (r : Rules.rule) -> r.id) Rules.registry)
      (Filename.concat root allow)
  in
  List.sort Finding.compare (Allowlist.apply allowlist findings)

let render_text findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  Buffer.add_string b
    (match findings with
    | [] -> "xqdb-lint: ok, 0 findings\n"
    | fs -> Printf.sprintf "xqdb-lint: %d finding(s)\n" (List.length fs));
  Buffer.contents b

(* v2: the domain-safety rules (L7-L9) joined the registry.  The object
   shape is unchanged, so v1 reports stay readable. *)
let schema_version = 2

let accepted_schema_versions = [ 1; 2 ]

let render_json findings =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema_version\": %d,\n  \"tool\": \"xqdb-lint\",\n"
       schema_version);
  Buffer.add_string b (Printf.sprintf "  \"count\": %d,\n" (List.length findings));
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (Finding.to_json f))
    findings;
  if findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(* --- report validation (check-lint) ----------------------------------------- *)

(* A minimal strict JSON reader, just enough to validate our own
   artifact without pulling a dependency into lib/lint (which otherwise
   needs only compiler-libs).  Mirrors `testbed check-bench`: parse,
   check the schema version, check the shape. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub text !pos 4) with
          | None -> fail "bad \\u escape"
          | Some code ->
            (* Raw code point; enough for validation purposes. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code));
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            J_obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            J_list (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | J_obj members -> List.assoc_opt key members
  | _ -> None

let validate_json text =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  match parse_json text with
  | exception Bad_json msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | root ->
    let* version =
      match field root "schema_version" with
      | Some (J_num v) when Float.is_integer v -> Ok (int_of_float v)
      | Some _ -> Error "schema_version must be an integer"
      | None -> Error "missing schema_version"
    in
    let* () =
      if List.mem version accepted_schema_versions then Ok ()
      else
        Error
          (Printf.sprintf "unsupported schema_version %d (accepted: %s)" version
             (String.concat ", " (List.map string_of_int accepted_schema_versions)))
    in
    let* () =
      match field root "tool" with
      | Some (J_str "xqdb-lint") -> Ok ()
      | Some (J_str other) -> Error (Printf.sprintf "tool is %S, want \"xqdb-lint\"" other)
      | _ -> Error "missing tool"
    in
    let* fs =
      match field root "findings" with
      | Some (J_list fs) -> Ok fs
      | _ -> Error "missing findings array"
    in
    let* () =
      match field root "count" with
      | Some (J_num c) when int_of_float c = List.length fs -> Ok ()
      | Some (J_num c) ->
        Error
          (Printf.sprintf "count %d does not match %d finding(s)" (int_of_float c)
             (List.length fs))
      | _ -> Error "missing count"
    in
    let check_finding i f =
      let str k =
        match field f k with
        | Some (J_str _) -> Ok ()
        | _ -> Error (Printf.sprintf "finding %d: missing string %S" i k)
      in
      let num k =
        match field f k with
        | Some (J_num _) -> Ok ()
        | _ -> Error (Printf.sprintf "finding %d: missing number %S" i k)
      in
      let* () = str "rule" in
      let* () = str "file" in
      let* () = num "line" in
      let* () = num "col" in
      str "message"
    in
    let rec all i = function
      | [] -> Ok ()
      | f :: rest ->
        let* () = check_finding i f in
        all (i + 1) rest
    in
    all 0 fs
