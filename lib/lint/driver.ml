let source_dirs = [ "lib"; "bin" ]

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* Walk [root]/[rel] collecting .ml files as /-separated repo-relative
   paths; _build and dot-directories are skipped. *)
let rec walk root rel acc =
  let dir = Filename.concat root rel in
  Array.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name = "_build" then acc
      else
        let rel' = rel ^ "/" ^ name in
        let full = Filename.concat root rel' in
        if Sys.file_exists full && Sys.is_directory full then walk root rel' acc
        else if Filename.check_suffix name ".ml" then rel' :: acc
        else acc)
    acc
    (Sys.readdir dir)

let collect_sources ~root () =
  let rels =
    List.concat_map
      (fun d ->
        let full = Filename.concat root d in
        if Sys.file_exists full && Sys.is_directory full then walk root d [] else [])
      source_dirs
  in
  List.sort String.compare rels
  |> List.map (fun rel ->
         { Rules.path = rel;
           text = read_file (Filename.concat root rel);
           mli_exists = Sys.file_exists (Filename.concat root rel ^ "i") })

let default_allow_file = "lint.allow"

let run ?(allow = default_allow_file) ~root () =
  let srcs = collect_sources ~root () in
  let findings = Rules.check_project srcs in
  let allowlist =
    Allowlist.load
      ~known:(List.map (fun (r : Rules.rule) -> r.id) Rules.registry)
      (Filename.concat root allow)
  in
  List.sort Finding.compare (Allowlist.apply allowlist findings)

let render_text findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  Buffer.add_string b
    (match findings with
    | [] -> "xqdb-lint: ok, 0 findings\n"
    | fs -> Printf.sprintf "xqdb-lint: %d finding(s)\n" (List.length fs));
  Buffer.contents b

let schema_version = 1

let render_json findings =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema_version\": %d,\n  \"tool\": \"xqdb-lint\",\n"
       schema_version);
  Buffer.add_string b (Printf.sprintf "  \"count\": %d,\n" (List.length findings));
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (Finding.to_json f))
    findings;
  if findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
