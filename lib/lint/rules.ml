type source = { path : string; text : string; mli_exists : bool }

type rule = { id : string; title : string }

let registry =
  [ { id = "L1";
      title = "no bare failwith / Failure — raise typed errors instead" };
    { id = "L2";
      title = "no catch-all exception handler that discards the exception" };
    { id = "L3";
      title = "no polymorphic compare/equality/hash on storage or physical values" };
    { id = "L4"; title = "every module under lib/ declares an interface (.mli)" };
    { id = "L5"; title = "Metrics counter names are literal, well-formed and unique" };
    { id = "L6"; title = "no stdout writes in lib/server — responses go over the wire" };
    { id = "L7";
      title =
        "no unprotected shared mutable state in modules reachable from Domain.spawn" };
    { id = "L8"; title = "no Domain.spawn outside the sanctioned sites" };
    { id = "L9"; title = "no blocking call while a latch is held in the same body" } ]

(* --- location helpers ---------------------------------------------------- *)

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let last_of = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

let rec module_last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, r) -> module_last r

(* --- parsing ------------------------------------------------------------- *)

let parse_implementation src =
  let lexbuf = Lexing.from_string src.text in
  Location.init lexbuf src.path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
    let line, col = line_col (Syntaxerr.location_of_error err) in
    Error (Finding.v ~rule:"PARSE" ~file:src.path ~line ~col "syntax error")
  | exception Lexer.Error (_, loc) ->
    let line, col = line_col loc in
    Error (Finding.v ~rule:"PARSE" ~file:src.path ~line ~col "lexical error")

(* --- L1: no bare failwith / Failure -------------------------------------- *)

let check_l1 ~emit ast =
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when last_of txt = "failwith" ->
      emit "L1" e.pexp_loc
        "bare failwith — raise Xqdb_error.Internal/Corrupt or a module-typed error"
    | Pexp_construct ({ txt; _ }, Some _) when last_of txt = "Failure" ->
      emit "L1" e.pexp_loc
        "Failure constructed directly — raise a typed error the engine can map to a status"
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast

(* --- L2: no catch-all exception handlers --------------------------------- *)

(* A handler pattern is "catch-all" when it matches every exception:
   [_], a bare variable, an alias or or-pattern thereof.  Returns the
   bound name when there is one, so the handler body can be checked for
   a re-raise. *)
let rec catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var { txt; _ } -> Some (Some txt)
  | Ppat_alias (inner, { txt; _ }) -> (
    match catch_all inner with Some _ -> Some (Some txt) | None -> None)
  | Ppat_or (a, b) -> (
    match catch_all a with Some x -> Some x | None -> catch_all b)
  | Ppat_constraint (inner, _) -> catch_all inner
  | _ -> None

let reraise_names = [ "raise"; "raise_notrace"; "reraise"; "raise_with_backtrace" ]

(* Does [body] re-raise the exception bound to [var]?  Passing it to
   [raise] / [Printexc.raise_with_backtrace] (in any argument position)
   counts; merely formatting it does not. *)
let reraises var (body : Parsetree.expression) =
  let found = ref false in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args)
      when List.mem (last_of f) reraise_names ->
      List.iter
        (fun ((_, a) : _ * Parsetree.expression) ->
          match a.pexp_desc with
          | Pexp_ident { txt = Longident.Lident v; _ } when v = var -> found := true
          | _ -> ())
        args
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let check_l2 ~emit ast =
  let check_handler (c : Parsetree.case) (p : Parsetree.pattern) =
    match catch_all p with
    | None -> ()
    | Some None ->
      emit "L2" p.ppat_loc
        "catch-all `_` exception handler can swallow Disk_error/Pool_exhausted"
    | Some (Some v) ->
      if not (reraises v c.pc_rhs) then
        emit "L2" p.ppat_loc
          (Printf.sprintf
             "handler binds `%s` but never re-raises it — match the exceptions you \
              mean to handle"
             v)
  in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_try (_, cases) -> List.iter (fun c -> check_handler c c.Parsetree.pc_lhs) cases
    | Pexp_match (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p -> check_handler c p
          | _ -> ())
        cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast

(* --- L3: no polymorphic compare on storage/physical values ---------------- *)

let l3_scope = [ "lib/storage/"; "lib/physical/"; "lib/xasr/" ]

let in_l3_scope path = List.exists (fun d -> String.starts_with ~prefix:d path) l3_scope

(* Whether the file locally binds the name [compare] (a value binding, a
   function parameter, a record field) — then a bare [compare] ident
   refers to the monomorphic local one, not Stdlib.compare. *)
let binds_compare ast =
  let found = ref false in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let type_declaration it (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Ptype_record fields ->
      List.iter
        (fun (f : Parsetree.label_declaration) ->
          if f.pld_name.txt = "compare" then found := true)
        fields
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration it td
  in
  let it = { Ast_iterator.default_iterator with pat; type_declaration } in
  it.structure it ast;
  !found

(* Operands whose equality is structurally shallow and obviously
   intended: constants, constructors (possibly over atoms), idents and
   field reads.  [x = None], [frame.pins = 0] stay legal; comparing two
   computed values does not. *)
let rec atomic (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_ident _ -> true
  | Pexp_field _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some a) -> atomic a
  | Pexp_variant (_, None) -> true
  | Pexp_variant (_, Some a) -> atomic a
  | Pexp_tuple parts -> List.for_all atomic parts
  | Pexp_constraint (a, _) -> atomic a
  | _ -> false

let check_l3 ~emit ~path ast =
  if in_l3_scope path then begin
    let local_compare = binds_compare ast in
    let expr it (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident "compare"; _ } when not local_compare ->
        emit "L3" e.pexp_loc
          "polymorphic compare on storage data — use String.compare/Int.compare or \
           a typed comparator"
      | Pexp_ident { txt = Longident.Ldot (m, ("compare" | "hash")); _ }
        when module_last m = "Stdlib" || module_last m = "Hashtbl"
             || module_last m = "Pervasives" ->
        emit "L3" e.pexp_loc
          "polymorphic compare/hash on storage data — use a typed comparator"
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ };
              _ },
            [ (_, a); (_, b) ] )
        when (not (atomic a)) && not (atomic b) ->
        emit "L3" e.pexp_loc
          (Printf.sprintf
             "polymorphic %s between computed values — compare fields explicitly" op)
      | Pexp_apply
          ( { pexp_desc =
                Pexp_ident { txt = Longident.Lident (("min" | "max") as op); _ };
              _ },
            (_, a) :: (_, b) :: _ )
        when (not (atomic a)) && not (atomic b) ->
        emit "L3" e.pexp_loc
          (Printf.sprintf
             "polymorphic %s between computed values — use a typed comparator" op)
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (m, "mem"); _ }; _ },
            (_, a) :: _ )
        when module_last m = "List" && not (atomic a) ->
        emit "L3" e.pexp_loc
          "List.mem uses polymorphic equality on storage data — use List.exists with \
           a typed equality (List.memq for token identity)"
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it ast
  end

(* --- L4: every lib module has an interface -------------------------------- *)

let check_l4 ~emit_at src =
  if String.starts_with ~prefix:"lib/" src.path && not src.mli_exists then
    emit_at "L4" 1 0
      "library module has no .mli — the interface is where invariants are documented"

(* --- L5: Metrics counter names -------------------------------------------- *)

let valid_counter_name s =
  let seg_ok seg =
    seg <> "" && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') seg
  in
  match String.split_on_char '.' s with
  | [] | [ _ ] -> false
  | segs -> List.for_all seg_ok segs

(* The closed set of counter subsystems.  A registered counter whose
   first segment is not listed here is a finding: either the name is a
   typo, or a new subsystem was added and this grammar must grow with
   it (deliberately, in the same PR). *)
let counter_subsystems =
  [ "btree"; "disk"; "engine"; "ext_sort"; "heap"; "latch"; "planner"; "pool";
    "retry"; "server"; "wal" ]

(* Collect [<...>.Metrics.counter <arg>] call sites: [Some name] for a
   literal first argument, [None] otherwise. *)
let counter_calls ast =
  let calls = ref [] in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (m, "counter"); _ }; _ },
          (_, arg) :: _ )
      when module_last m = "Metrics" ->
      let name =
        match arg.Parsetree.pexp_desc with
        | Pexp_constant (Pconst_string (s, _, _)) -> Some s
        | _ -> None
      in
      calls := (name, arg.Parsetree.pexp_loc) :: !calls
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast;
  List.rev !calls

let check_l5_local ~emit calls =
  List.iter
    (fun (name, loc) ->
      match name with
      | None ->
        emit "L5" loc
          "Metrics.counter name must be a string literal so the registry is static"
      | Some s ->
        if not (valid_counter_name s) then
          emit "L5" loc
            (Printf.sprintf
               "counter name %S must match [a-z_]+(.[a-z_]+)+ — `subsystem.metric`" s)
        else (
          match String.split_on_char '.' s with
          | sub :: _ when not (List.mem sub counter_subsystems) ->
            emit "L5" loc
              (Printf.sprintf
                 "counter %S names unknown subsystem %S — known: %s (extend the \
                  grammar in lint rules.ml when adding a subsystem)"
                 s sub
                 (String.concat ", " counter_subsystems))
          | _ -> ()))
    calls

(* --- L6: no stdout writes in lib/server ----------------------------------- *)

(* Server worker domains share the process; a [print_string] from one
   interleaves with another's and with any client piping the binary.
   Responses travel over the wire, diagnostics over stderr — nothing in
   lib/server may touch stdout. *)

let l6_scope = [ "lib/server/" ]

let in_l6_scope path = List.exists (fun d -> String.starts_with ~prefix:d path) l6_scope

let stdout_idents =
  [ "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes" ]

let check_l6 ~emit ~path ast =
  if in_l6_scope path then begin
    let flag loc what =
      emit "L6" loc
        (Printf.sprintf
           "%s writes stdout from lib/server — use stderr for diagnostics, the wire \
            for responses"
           what)
    in
    let expr it (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident s; _ } when List.mem s stdout_idents ->
        flag e.pexp_loc s
      | Pexp_ident { txt = Longident.Ldot (m, s); _ }
        when module_last m = "Stdlib" && List.mem s stdout_idents ->
        flag e.pexp_loc ("Stdlib." ^ s)
      | Pexp_ident { txt = Longident.Ldot (m, "printf"); _ }
        when module_last m = "Printf" || module_last m = "Format" ->
        flag e.pexp_loc (module_last m ^ ".printf")
      | Pexp_ident { txt = Longident.Ldot (m, "stdout"); _ }
        when module_last m = "Stdlib" || module_last m = "Format" ->
        flag e.pexp_loc (module_last m ^ ".stdout")
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it ast
  end

(* --- discipline annotations (L7/L9 vocabulary) ----------------------------- *)

(* Two attributes declare a concurrency discipline the type system can't
   see: [[@@guarded_by lock]] — every access happens with [lock] held —
   and [[@@domain_local]] — the value never crosses a domain boundary.
   Unknown attributes are ignored by the compiler, so they cost nothing
   at build time; L7 treats either as a reviewed, documented claim. *)

let discipline_attrs = [ "guarded_by"; "domain_local" ]

let has_discipline (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> List.mem a.attr_name.txt discipline_attrs)
    attrs

let rec type_head (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> Some txt
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> type_head t
  | _ -> None

let is_atomic_type t =
  match type_head t with
  | Some (Longident.Ldot (m, "t")) -> module_last m = "Atomic"
  | _ -> false

let is_hashtbl_type t =
  match type_head t with
  | Some (Longident.Ldot (m, "t")) -> module_last m = "Hashtbl"
  | _ -> false

(* --- L7: shared mutable state facts ---------------------------------------- *)

type shared_site = { s_loc : Location.t; s_what : string }

let rec peel_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraint e
  | _ -> e

(* Top-level [let x = ref ...] / [let t = Hashtbl.create ...] without a
   discipline attribute on the binding.  Local refs are fine — they are
   confined unless captured, and capture sites are what L8 bounds. *)
let shared_top_binding (vb : Parsetree.value_binding) =
  if has_discipline vb.pvb_attributes then None
  else
    let name =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> txt
      | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
      | _ -> "_"
    in
    match (peel_constraint vb.pvb_expr).pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, _)
      ->
      Some { s_loc = vb.pvb_pat.ppat_loc; s_what = Printf.sprintf "top-level ref `%s`" name }
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Ldot (m, "create"); _ }; _ }, _)
      when module_last m = "Hashtbl" ->
      Some
        { s_loc = vb.pvb_pat.ppat_loc;
          s_what = Printf.sprintf "top-level Hashtbl `%s`" name }
    | _ -> None

(* Mutable or Hashtbl-typed record fields, unless the field's type
   carries a discipline attribute, the whole type declaration does, or
   the field is an [Atomic.t] (atomics are their own discipline). *)
let shared_fields (td : Parsetree.type_declaration) =
  if has_discipline td.ptype_attributes then []
  else
    match td.ptype_kind with
    | Ptype_record fields ->
      List.filter_map
        (fun (f : Parsetree.label_declaration) ->
          let shared =
            (f.pld_mutable = Mutable || is_hashtbl_type f.pld_type)
            && (not (is_atomic_type f.pld_type))
            && (not (has_discipline f.pld_attributes))
            && not (has_discipline f.pld_type.ptyp_attributes)
          in
          if shared then
            Some
              { s_loc = f.pld_name.loc;
                s_what =
                  Printf.sprintf "%s field `%s` of type `%s`"
                    (if f.pld_mutable = Mutable then "mutable" else "Hashtbl")
                    f.pld_name.txt td.ptype_name.txt }
          else None)
        fields
    | _ -> []

(* --- L8: Domain.spawn sites ------------------------------------------------ *)

(* The two sanctioned sites, as (path, top-level binding) pairs: the
   partitioned parallel scan and the server's fixed worker pool.  Every
   other spawn is a finding — new parallelism must either go through
   those or be argued into this list (or the allowlist) explicitly. *)
let sanctioned_spawns =
  [ ("lib/physical/phys_op.ml", "par_scan_fill"); ("lib/server/server.ml", "serve") ]

let spawns_in (e : Parsetree.expression) =
  let sites = ref [] in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Ldot (m, "spawn"); loc }
      when module_last m = "Domain" ->
      sites := loc :: !sites
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  List.rev !sites

(* --- L9: blocking calls under a held latch ---------------------------------- *)

(* Syscalls (and the disk/WAL entry points that wrap them) that can
   block for arbitrarily long.  Anything here executed while a frame
   latch is held stalls every domain queued on that latch. *)
let blocking_calls =
  [ ("Unix", "sleep"); ("Unix", "sleepf"); ("Unix", "select"); ("Unix", "read");
    ("Unix", "write"); ("Unix", "accept"); ("Unix", "connect");
    ("Disk", "read_page"); ("Disk", "write_page"); ("Disk", "alloc");
    ("Wal", "sync"); ("Retry", "run") ]

type l9_event = Acquire | Release | Blocking of string

(* Scan one top-level body in textual order: latch acquisitions open a
   held region, releases close it, and a blocking call inside a region
   is "provably under a latch in the same body".  Purely syntactic — a
   release inside a [~finally] that textually precedes the protected
   body still closes the region, which matches how [Buffer_pool.use]
   brackets its latch. *)
let check_l9 ~emit (body : Parsetree.expression) =
  let events = ref [] in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Ldot (m, f); _ } -> (
      let m = module_last m in
      if m = "Latch" && (f = "acquire_shared" || f = "acquire_exclusive") then
        events := (e.pexp_loc, Acquire) :: !events
      else if m = "Latch" && f = "release" then
        events := (e.pexp_loc, Release) :: !events
      else
        match List.find_opt (fun (bm, bf) -> bm = m && bf = f) blocking_calls with
        | Some _ -> events := (e.pexp_loc, Blocking (m ^ "." ^ f)) :: !events
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  let ordered =
    List.sort
      (fun ((a : Location.t), _) ((b : Location.t), _) ->
        compare a.loc_start.pos_cnum b.loc_start.pos_cnum)
      !events
  in
  ignore
    (List.fold_left
       (fun held (loc, ev) ->
         match ev with
         | Acquire -> held + 1
         | Release -> if held > 0 then held - 1 else 0
         | Blocking what ->
           if held > 0 then
             emit "L9" loc
               (Printf.sprintf
                  "%s while a latch is held in this body — do the I/O before \
                   acquiring or after releasing the latch"
                  what);
           held)
       0 ordered)

(* --- phase one: per-file facts --------------------------------------------- *)

(* Phase one parses each file once and distills everything the rules
   need: per-file findings (L1-L6, L8, L9), literal counter names (L5
   uniqueness), the modules the file references (the dependency graph),
   its [Domain.spawn] sites (the graph's roots) and its unannotated
   shared mutable state (L7 candidates — judged only in phase two, once
   reachability is known). *)

type facts = {
  f_src : source;
  f_module : string;  (* capitalized module name of this file *)
  f_wrapper : string option;  (* dune wrapper module exposing it, e.g. Xqdb_storage *)
  f_refs : string list;  (* capitalized idents the file mentions *)
  f_spawns : bool;  (* has at least one Domain.spawn (graph root) *)
  f_shared : shared_site list;  (* L7 candidates *)
  f_findings : Finding.t list;  (* per-file findings, oldest first *)
  f_counters : (string * Location.t) list;  (* literal counter registrations *)
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let wrapper_of_path path =
  match String.split_on_char '/' path with
  | [ "lib"; dir; _ ] -> Some (String.capitalize_ascii ("xqdb_" ^ dir))
  | _ -> None

let rec lid_segments = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> s :: lid_segments l
  | Longident.Lapply (a, b) -> lid_segments a @ lid_segments b

(* Every capitalized identifier the file mentions, from expressions,
   patterns, types and module expressions.  Over-approximate on purpose:
   a stray extra edge only makes reachability (and so L7) stricter. *)
let collect_refs ast =
  let refs = Hashtbl.create 64 in
  let note lid =
    List.iter
      (fun s ->
        if s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' then Hashtbl.replace refs s ())
      (lid_segments lid)
  in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ }
    | Pexp_construct ({ txt; _ }, _)
    | Pexp_field (_, { txt; _ })
    | Pexp_setfield (_, { txt; _ }, _)
    | Pexp_new { txt; _ } ->
      note txt
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> note txt
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let typ it (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> note txt
    | _ -> ());
    Ast_iterator.default_iterator.typ it t
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; _ } -> note txt
    | _ -> ());
    Ast_iterator.default_iterator.module_expr it m
  in
  let it = { Ast_iterator.default_iterator with expr; pat; typ; module_expr } in
  it.structure it ast;
  Hashtbl.fold (fun k () acc -> k :: acc) refs []

let gather_facts src =
  let findings = ref [] in
  let emit_at rule line col msg =
    findings := Finding.v ~rule ~file:src.path ~line ~col msg :: !findings
  in
  let emit rule loc msg =
    let line, col = line_col loc in
    emit_at rule line col msg
  in
  check_l4 ~emit_at src;
  let refs = ref [] and spawns = ref false and shared = ref [] in
  let counters =
    match parse_implementation src with
    | Error f ->
      findings := f :: !findings;
      []
    | Ok ast ->
      check_l1 ~emit ast;
      check_l2 ~emit ast;
      check_l3 ~emit ~path:src.path ast;
      check_l6 ~emit ~path:src.path ast;
      refs := collect_refs ast;
      (* Top-level walk: binding names scope L8's sanction check and
         L9's per-body scan; type declarations yield L7 candidates. *)
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                let name =
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> txt
                  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
                  | _ -> "_"
                in
                let sites = spawns_in vb.pvb_expr in
                if sites <> [] then spawns := true;
                List.iter
                  (fun loc ->
                    if not (List.mem (src.path, name) sanctioned_spawns) then
                      emit "L8" loc
                        (Printf.sprintf
                           "Domain.spawn in `%s` — parallelism goes through \
                            Phys_op.par_scan or the Server worker pool, not ad-hoc \
                            domains"
                           name))
                  sites;
                check_l9 ~emit vb.pvb_expr;
                match shared_top_binding vb with
                | Some s -> shared := s :: !shared
                | None -> ())
              vbs
          | Pstr_type (_, tds) ->
            List.iter (fun td -> shared := shared_fields td @ !shared) tds
          | _ -> ())
        ast;
      let calls = counter_calls ast in
      check_l5_local ~emit calls;
      List.filter_map (fun (name, loc) -> Option.map (fun n -> (n, loc)) name) calls
  in
  { f_src = src;
    f_module = module_of_path src.path;
    f_wrapper = wrapper_of_path src.path;
    f_refs = !refs;
    f_spawns = !spawns;
    f_shared = List.rev !shared;
    f_findings = List.rev !findings;
    f_counters = counters }

let check_file src = (gather_facts src).f_findings

(* --- phase two: reachability and project-wide rules ------------------------- *)

(* Paths of the files reachable (by module reference) from any file that
   spawns domains.  Conservative: a reference to a wrapper module
   (Xqdb_storage) pulls in every file of that library, since the source
   of [Xqdb_storage.X.f] could be any of them. *)
let reachable_paths facts =
  let by_name : (string, facts list) Hashtbl.t = Hashtbl.create 64 in
  let index name fa =
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_name name) in
    Hashtbl.replace by_name name (fa :: cur)
  in
  List.iter
    (fun fa ->
      index fa.f_module fa;
      Option.iter (fun w -> index w fa) fa.f_wrapper)
    facts;
  let seen = Hashtbl.create 64 in
  let rec visit fa =
    if not (Hashtbl.mem seen fa.f_src.path) then begin
      Hashtbl.add seen fa.f_src.path ();
      List.iter
        (fun r ->
          List.iter visit (Option.value ~default:[] (Hashtbl.find_opt by_name r)))
        fa.f_refs
    end
  in
  List.iter (fun fa -> if fa.f_spawns then visit fa) facts;
  seen

let check_project srcs =
  let facts = List.map gather_facts srcs in
  let reach = reachable_paths facts in
  let seen = Hashtbl.create 64 in
  let findings =
    List.concat_map
      (fun fa ->
        let src = fa.f_src in
        let dups =
          List.filter_map
            (fun (name, loc) ->
              match Hashtbl.find_opt seen name with
              | Some first ->
                let line, col = line_col loc in
                Some
                  (Finding.v ~rule:"L5" ~file:src.path ~line ~col
                     (Printf.sprintf "duplicate counter name %S (first registered at %s)"
                        name first))
              | None ->
                let line, _ = line_col loc in
                Hashtbl.add seen name (Printf.sprintf "%s:%d" src.path line);
                None)
            fa.f_counters
        in
        let l7 =
          if not (Hashtbl.mem reach src.path) then []
          else
            List.map
              (fun s ->
                let line, col = line_col s.s_loc in
                Finding.v ~rule:"L7" ~file:src.path ~line ~col
                  (Printf.sprintf
                     "%s in a module reachable from Domain.spawn — use Atomic.t, or \
                      declare the discipline with [@@guarded_by <lock>] / \
                      [@@domain_local]"
                     s.s_what))
              fa.f_shared
        in
        fa.f_findings @ dups @ l7)
      facts
  in
  List.sort Finding.compare findings
