type source = { path : string; text : string; mli_exists : bool }

type rule = { id : string; title : string }

let registry =
  [ { id = "L1";
      title = "no bare failwith / Failure — raise typed errors instead" };
    { id = "L2";
      title = "no catch-all exception handler that discards the exception" };
    { id = "L3";
      title = "no polymorphic compare/equality/hash on storage or physical values" };
    { id = "L4"; title = "every module under lib/ declares an interface (.mli)" };
    { id = "L5"; title = "Metrics counter names are literal, well-formed and unique" };
    { id = "L6"; title = "no stdout writes in lib/server — responses go over the wire" } ]

(* --- location helpers ---------------------------------------------------- *)

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let last_of = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

let rec module_last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, r) -> module_last r

(* --- parsing ------------------------------------------------------------- *)

let parse_implementation src =
  let lexbuf = Lexing.from_string src.text in
  Location.init lexbuf src.path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
    let line, col = line_col (Syntaxerr.location_of_error err) in
    Error (Finding.v ~rule:"PARSE" ~file:src.path ~line ~col "syntax error")
  | exception Lexer.Error (_, loc) ->
    let line, col = line_col loc in
    Error (Finding.v ~rule:"PARSE" ~file:src.path ~line ~col "lexical error")

(* --- L1: no bare failwith / Failure -------------------------------------- *)

let check_l1 ~emit ast =
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when last_of txt = "failwith" ->
      emit "L1" e.pexp_loc
        "bare failwith — raise Xqdb_error.Internal/Corrupt or a module-typed error"
    | Pexp_construct ({ txt; _ }, Some _) when last_of txt = "Failure" ->
      emit "L1" e.pexp_loc
        "Failure constructed directly — raise a typed error the engine can map to a status"
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast

(* --- L2: no catch-all exception handlers --------------------------------- *)

(* A handler pattern is "catch-all" when it matches every exception:
   [_], a bare variable, an alias or or-pattern thereof.  Returns the
   bound name when there is one, so the handler body can be checked for
   a re-raise. *)
let rec catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var { txt; _ } -> Some (Some txt)
  | Ppat_alias (inner, { txt; _ }) -> (
    match catch_all inner with Some _ -> Some (Some txt) | None -> None)
  | Ppat_or (a, b) -> (
    match catch_all a with Some x -> Some x | None -> catch_all b)
  | Ppat_constraint (inner, _) -> catch_all inner
  | _ -> None

let reraise_names = [ "raise"; "raise_notrace"; "reraise"; "raise_with_backtrace" ]

(* Does [body] re-raise the exception bound to [var]?  Passing it to
   [raise] / [Printexc.raise_with_backtrace] (in any argument position)
   counts; merely formatting it does not. *)
let reraises var (body : Parsetree.expression) =
  let found = ref false in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args)
      when List.mem (last_of f) reraise_names ->
      List.iter
        (fun ((_, a) : _ * Parsetree.expression) ->
          match a.pexp_desc with
          | Pexp_ident { txt = Longident.Lident v; _ } when v = var -> found := true
          | _ -> ())
        args
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let check_l2 ~emit ast =
  let check_handler (c : Parsetree.case) (p : Parsetree.pattern) =
    match catch_all p with
    | None -> ()
    | Some None ->
      emit "L2" p.ppat_loc
        "catch-all `_` exception handler can swallow Disk_error/Pool_exhausted"
    | Some (Some v) ->
      if not (reraises v c.pc_rhs) then
        emit "L2" p.ppat_loc
          (Printf.sprintf
             "handler binds `%s` but never re-raises it — match the exceptions you \
              mean to handle"
             v)
  in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_try (_, cases) -> List.iter (fun c -> check_handler c c.Parsetree.pc_lhs) cases
    | Pexp_match (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p -> check_handler c p
          | _ -> ())
        cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast

(* --- L3: no polymorphic compare on storage/physical values ---------------- *)

let l3_scope = [ "lib/storage/"; "lib/physical/"; "lib/xasr/" ]

let in_l3_scope path = List.exists (fun d -> String.starts_with ~prefix:d path) l3_scope

(* Whether the file locally binds the name [compare] (a value binding, a
   function parameter, a record field) — then a bare [compare] ident
   refers to the monomorphic local one, not Stdlib.compare. *)
let binds_compare ast =
  let found = ref false in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let type_declaration it (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Ptype_record fields ->
      List.iter
        (fun (f : Parsetree.label_declaration) ->
          if f.pld_name.txt = "compare" then found := true)
        fields
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration it td
  in
  let it = { Ast_iterator.default_iterator with pat; type_declaration } in
  it.structure it ast;
  !found

(* Operands whose equality is structurally shallow and obviously
   intended: constants, constructors (possibly over atoms), idents and
   field reads.  [x = None], [frame.pins = 0] stay legal; comparing two
   computed values does not. *)
let rec atomic (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_ident _ -> true
  | Pexp_field _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some a) -> atomic a
  | Pexp_variant (_, None) -> true
  | Pexp_variant (_, Some a) -> atomic a
  | Pexp_tuple parts -> List.for_all atomic parts
  | Pexp_constraint (a, _) -> atomic a
  | _ -> false

let check_l3 ~emit ~path ast =
  if in_l3_scope path then begin
    let local_compare = binds_compare ast in
    let expr it (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident "compare"; _ } when not local_compare ->
        emit "L3" e.pexp_loc
          "polymorphic compare on storage data — use String.compare/Int.compare or \
           a typed comparator"
      | Pexp_ident { txt = Longident.Ldot (m, ("compare" | "hash")); _ }
        when module_last m = "Stdlib" || module_last m = "Hashtbl"
             || module_last m = "Pervasives" ->
        emit "L3" e.pexp_loc
          "polymorphic compare/hash on storage data — use a typed comparator"
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ };
              _ },
            [ (_, a); (_, b) ] )
        when (not (atomic a)) && not (atomic b) ->
        emit "L3" e.pexp_loc
          (Printf.sprintf
             "polymorphic %s between computed values — compare fields explicitly" op)
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it ast
  end

(* --- L4: every lib module has an interface -------------------------------- *)

let check_l4 ~emit_at src =
  if String.starts_with ~prefix:"lib/" src.path && not src.mli_exists then
    emit_at "L4" 1 0
      "library module has no .mli — the interface is where invariants are documented"

(* --- L5: Metrics counter names -------------------------------------------- *)

let valid_counter_name s =
  let seg_ok seg =
    seg <> "" && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') seg
  in
  match String.split_on_char '.' s with
  | [] | [ _ ] -> false
  | segs -> List.for_all seg_ok segs

(* Collect [<...>.Metrics.counter <arg>] call sites: [Some name] for a
   literal first argument, [None] otherwise. *)
let counter_calls ast =
  let calls = ref [] in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (m, "counter"); _ }; _ },
          (_, arg) :: _ )
      when module_last m = "Metrics" ->
      let name =
        match arg.Parsetree.pexp_desc with
        | Pexp_constant (Pconst_string (s, _, _)) -> Some s
        | _ -> None
      in
      calls := (name, arg.Parsetree.pexp_loc) :: !calls
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast;
  List.rev !calls

let check_l5_local ~emit calls =
  List.iter
    (fun (name, loc) ->
      match name with
      | None ->
        emit "L5" loc
          "Metrics.counter name must be a string literal so the registry is static"
      | Some s ->
        if not (valid_counter_name s) then
          emit "L5" loc
            (Printf.sprintf
               "counter name %S must match [a-z_]+(.[a-z_]+)+ — `subsystem.metric`" s))
    calls

(* --- L6: no stdout writes in lib/server ----------------------------------- *)

(* Server worker domains share the process; a [print_string] from one
   interleaves with another's and with any client piping the binary.
   Responses travel over the wire, diagnostics over stderr — nothing in
   lib/server may touch stdout. *)

let l6_scope = [ "lib/server/" ]

let in_l6_scope path = List.exists (fun d -> String.starts_with ~prefix:d path) l6_scope

let stdout_idents =
  [ "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes" ]

let check_l6 ~emit ~path ast =
  if in_l6_scope path then begin
    let flag loc what =
      emit "L6" loc
        (Printf.sprintf
           "%s writes stdout from lib/server — use stderr for diagnostics, the wire \
            for responses"
           what)
    in
    let expr it (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident s; _ } when List.mem s stdout_idents ->
        flag e.pexp_loc s
      | Pexp_ident { txt = Longident.Ldot (m, s); _ }
        when module_last m = "Stdlib" && List.mem s stdout_idents ->
        flag e.pexp_loc ("Stdlib." ^ s)
      | Pexp_ident { txt = Longident.Ldot (m, "printf"); _ }
        when module_last m = "Printf" || module_last m = "Format" ->
        flag e.pexp_loc (module_last m ^ ".printf")
      | Pexp_ident { txt = Longident.Ldot (m, "stdout"); _ }
        when module_last m = "Stdlib" || module_last m = "Format" ->
        flag e.pexp_loc (module_last m ^ ".stdout")
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it ast
  end

(* --- per-file and cross-file entry points --------------------------------- *)

(* Internal: findings for one file plus its literal counter names (for
   the cross-file uniqueness check). *)
let analyze src =
  let findings = ref [] in
  let emit_at rule line col msg =
    findings := Finding.v ~rule ~file:src.path ~line ~col msg :: !findings
  in
  let emit rule loc msg =
    let line, col = line_col loc in
    emit_at rule line col msg
  in
  check_l4 ~emit_at src;
  let counters =
    match parse_implementation src with
    | Error f ->
      findings := f :: !findings;
      []
    | Ok ast ->
      check_l1 ~emit ast;
      check_l2 ~emit ast;
      check_l3 ~emit ~path:src.path ast;
      check_l6 ~emit ~path:src.path ast;
      let calls = counter_calls ast in
      check_l5_local ~emit calls;
      List.filter_map
        (fun (name, loc) -> Option.map (fun n -> (n, loc)) name)
        calls
  in
  (List.rev !findings, counters)

let check_file src = fst (analyze src)

let check_project srcs =
  let seen = Hashtbl.create 64 in
  let findings =
    List.concat_map
      (fun src ->
        let findings, counters = analyze src in
        let dups =
          List.filter_map
            (fun (name, loc) ->
              match Hashtbl.find_opt seen name with
              | Some first ->
                let line, col = line_col loc in
                Some
                  (Finding.v ~rule:"L5" ~file:src.path ~line ~col
                     (Printf.sprintf "duplicate counter name %S (first registered at %s)"
                        name first))
              | None ->
                let line, _ = line_col loc in
                Hashtbl.add seen name (Printf.sprintf "%s:%d" src.path line);
                None)
            counters
        in
        findings @ dups)
      srcs
  in
  List.sort Finding.compare findings
