(** The concurrent multi-session query server.

    [serve] binds a loopback TCP socket and runs a fixed pool of
    [max_sessions] worker domains, all accepting on it.  Each accepted
    connection becomes one {!Session} — its own engine views and
    prepared-plan cache — over the shared database; the fixed pool is
    the session cap, so clients beyond it queue in the listen backlog
    rather than spawning unbounded domains.

    The loop never dies on client behaviour: a garbage, truncated or
    oversized frame gets a typed [Bad_request] response and its
    connection is closed; socket errors close the one connection.  Only
    engine bugs ({!Xqdb_storage.Xqdb_error.Internal}) escape, by
    design. *)

type config = {
  port : int;  (** 0 picks an ephemeral port, reported via [on_ready] *)
  max_sessions : int;  (** worker-domain pool size = concurrent sessions *)
  max_page_ios : int option;  (** server-wide per-request cap *)
  max_seconds : float option;  (** ditto; clients can only tighten *)
}

val default_config : config
(** Port 7788, 4 sessions, no budget caps. *)

val handle_connection :
  session:Session.t ->
  read:(bytes -> int -> int -> int) ->
  write:(bytes -> unit) ->
  unit
(** One connection's protocol loop, generic over the byte channel (and
    therefore testable without sockets): read frames, answer each
    request, answer the first framing error with [Bad_request] and
    return.  Returns normally on clean EOF.  [write]'s exceptions
    propagate. *)

val serve : ?on_ready:(int -> unit) -> config -> Xqdb_core.Database.t -> unit
(** Bind, listen, serve until the process dies.  [on_ready] observes the
    actual port (useful with [port = 0]) before the first accept. *)
