(** The concurrent multi-session query server, with overload and drain
    policy.

    [serve] binds a loopback TCP socket; the calling domain accepts
    connections into a bounded {!Admission} queue and a fixed pool of
    [max_sessions] worker domains drains it.  Each admitted connection
    becomes one {!Session} — its own engine views and prepared-plan
    cache — over the shared database.

    {2 Overload}

    A connection arriving at a full queue is {e shed}: one
    [Unavailable] response carrying the [retry_after] hint, then close
    ([server.sheds]).  One that sat queued longer than [queue_timeout]
    is shed at dequeue the same way.  The queue's deepest-ever depth is
    mirrored in [server.queue_depth_hw].

    {2 Drain}

    A [SIGTERM] (when [handle_sigterm] is set) or a shutdown wire frame
    from any client starts a drain ([server.drains]): the listening
    socket stops accepting, already-admitted connections are served,
    in-flight connections finish their current request and close at the
    next request boundary, and [serve] returns after a
    {!Xqdb_core.Database.checkpoint} — the WAL is truncated and the
    file durable, so a post-drain [xqdb open] replays nothing.

    The loop never dies on client behaviour: a garbage, truncated or
    oversized frame gets a typed [Bad_request] response and its
    connection is closed; socket errors close the one connection.  Only
    engine bugs ({!Xqdb_storage.Xqdb_error.Internal}) escape, by
    design. *)

type config = {
  port : int;  (** 0 picks an ephemeral port, reported via [on_ready] *)
  max_sessions : int;  (** worker-domain pool size = concurrent sessions *)
  max_page_ios : int option;  (** server-wide per-request cap *)
  max_seconds : float option;  (** ditto; clients can only tighten *)
  queue_capacity : int;  (** admitted-but-unserved connection bound *)
  queue_timeout : float;  (** max seconds a connection may sit queued *)
  retry_after : float;  (** the hint shed [Unavailable] responses carry *)
}

val default_config : config
(** Port 7788, 4 sessions, no budget caps, queue of 16, 5 s queue
    timeout, 0.1 s retry-after. *)

(** The bounded FIFO between the acceptor and the workers.  Exposed for
    the test suite; [serve] wires it up itself. *)
module Admission : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument unless [capacity >= 1]. *)

  val push : 'a t -> 'a -> bool
  (** [false] when the queue is full or draining — the caller sheds. *)

  val pop : 'a t -> 'a option
  (** Block until an item is available; [None] once the queue is
      draining {e and} empty. *)

  val drain : 'a t -> unit
  (** Refuse further pushes and wake every blocked popper; items
      already queued are still popped. *)

  val high_water : 'a t -> int
  (** The deepest the queue has ever been. *)

  val depth : 'a t -> int
end

val handle_connection :
  ?on_shutdown:(unit -> unit) ->
  ?draining:(unit -> bool) ->
  session:Session.t ->
  read:(bytes -> int -> int -> int) ->
  write:(bytes -> unit) ->
  unit ->
  unit
(** One connection's protocol loop, generic over the byte channel (and
    therefore testable without sockets): read frames, answer each
    request {e in the protocol version it arrived in}, answer the first
    framing error with [Bad_request] (encoded at {!Wire.min_version},
    which any client decodes) and return.  Returns normally on clean
    EOF.  A shutdown frame fires [on_shutdown] and ends the connection;
    [draining] is polled after each response and ends the connection at
    a request boundary.  [write]'s exceptions propagate. *)

val serve :
  ?on_ready:(int -> unit) ->
  ?handle_sigterm:bool ->
  config ->
  Xqdb_core.Database.t ->
  unit
(** Bind, listen, serve until drained.  [on_ready] observes the actual
    port (useful with [port = 0]) before the first accept.
    [handle_sigterm] (default false — signal dispositions are
    process-global, so embedding callers must opt in) installs a
    SIGTERM handler that starts a graceful drain.  Returns after the
    drain's final checkpoint; the caller still owns — and should
    close — the database. *)
