(** The server's wire protocol: length-prefixed binary frames.

    A frame is a 10-byte header — magic ["XQDB"], version byte, kind
    byte (request/response/shutdown), u32 big-endian payload length —
    followed by the payload.  Payloads are capped at {!max_payload}
    bytes.

    The current protocol {!version} is 2; every version down to
    {!min_version} is still accepted.  Version 2 added the per-request
    [deadline] field, the response [retry_after] hint, the [Timeout]
    status and the shutdown frame kind.  Encoders take the version to
    speak: a v1 response encodes [Timeout] as [Budget_exceeded] (the
    closest status a v1 client knows) and drops [retry_after]; a v1
    request simply has no deadline field.

    Decoding is {e total}: truncated frames, oversized lengths and
    garbage headers all decode to a typed {!error}, never an exception —
    the server must answer hostile bytes with an error response, not a
    crash.  The readers are generic over a [read] function (the
    [Unix.read] shape), so the same decoder serves sockets and in-memory
    test feeds. *)

type request = {
  doc : string;  (** document name the query runs against *)
  query_text : string;
  max_page_ios : int option;  (** client-requested budget cap *)
  max_seconds : float option;  (** clamped to the server's own cap *)
  deadline : float option;
      (** seconds from the server's {e receipt} of the request until
          the client stops caring; time spent queued counts, and a run
          past it censors with [Timeout].  [None] = wait forever. *)
}

type status_code =
  | Ok
  | Budget_exceeded
  | Error
  | Io_error
  | Bad_request  (** malformed frame, parse/check failure, unknown doc *)
  | Unavailable  (** shed by admission control; see [retry_after] *)
  | Timeout  (** the request's deadline passed (queued or mid-run) *)

type response = {
  status : status_code;
  payload : string;  (** serialized forest for [Ok]; message otherwise *)
  elapsed : float;  (** wall-clock seconds executing; 0 if not run *)
  page_ios : int;  (** page I/Os charged to the request; 0 if not run *)
  retry_after : float option;
      (** [Unavailable] only: the server's hint for when to retry *)
}

type incoming =
  | Incoming_request of int * request
      (** a request plus the protocol version its frame spoke — respond
          in the same version *)
  | Incoming_shutdown  (** a drain order (frame kind 3, empty payload) *)

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated  (** EOF mid-frame *)
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Oversize of int
  | Malformed of string  (** header fine, payload inconsistent *)

val error_to_string : error -> string

val max_payload : int
val header_size : int

val version : int
(** The newest protocol version this build speaks (2). *)

val min_version : int
(** The oldest version still accepted (1). *)

val error_response : ?retry_after:float -> status_code -> string -> response
(** A response with the given status and message, zero accounting. *)

val encode_request : ?version:int -> request -> bytes
(** The full frame, header included.  [version] defaults to the current
    one; encoding for v1 drops the deadline field.
    @raise Invalid_argument on an unsupported version. *)

val encode_response : ?version:int -> response -> bytes
(** Encoding for v1 maps [Timeout] to [Budget_exceeded] and drops
    [retry_after]. *)

val encode_shutdown : unit -> bytes
(** The drain frame: kind 3, empty payload, current version. *)

val read_incoming : read:(bytes -> int -> int -> int) -> (incoming, error) result
(** Read one client-to-server frame — a request (of any accepted
    version, tagged with it) or a shutdown order.  [read buf off len]
    returns the number of bytes read, 0 for EOF (the [Unix.read]
    shape). *)

val read_request : read:(bytes -> int -> int -> int) -> (request, error) result
(** Read one request frame (any accepted version); a non-request kind
    is [Bad_kind]. *)

val read_response : read:(bytes -> int -> int -> int) -> (response, error) result

val string_reader : string -> bytes -> int -> int -> int
(** A [read] function over an in-memory byte string — for tests. *)
