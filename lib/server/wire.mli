(** The server's wire protocol: length-prefixed binary frames.

    A frame is a 10-byte header — magic ["XQDB"], version byte, kind
    byte (request/response), u32 big-endian payload length — followed by
    the payload.  Payloads are capped at {!max_payload} bytes.

    Decoding is {e total}: truncated frames, oversized lengths and
    garbage headers all decode to a typed {!error}, never an exception —
    the server must answer hostile bytes with an error response, not a
    crash.  The readers are generic over a [read] function (the
    [Unix.read] shape), so the same decoder serves sockets and in-memory
    test feeds. *)

type request = {
  doc : string;  (** document name the query runs against *)
  query_text : string;
  max_page_ios : int option;  (** client-requested budget cap *)
  max_seconds : float option;  (** clamped to the server's own cap *)
}

type status_code =
  | Ok
  | Budget_exceeded
  | Error
  | Io_error
  | Bad_request  (** malformed frame, parse/check failure, unknown doc *)
  | Unavailable  (** admission control rejected the connection *)

type response = {
  status : status_code;
  payload : string;  (** serialized forest for [Ok]; message otherwise *)
  elapsed : float;  (** wall-clock seconds executing; 0 if not run *)
  page_ios : int;  (** page I/Os charged to the request; 0 if not run *)
}

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated  (** EOF mid-frame *)
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Oversize of int
  | Malformed of string  (** header fine, payload inconsistent *)

val error_to_string : error -> string

val max_payload : int
val header_size : int

val error_response : status_code -> string -> response
(** A response with the given status and message, zero accounting. *)

val encode_request : request -> bytes
(** The full frame, header included. *)

val encode_response : response -> bytes

val read_request : read:(bytes -> int -> int -> int) -> (request, error) result
(** Read one request frame.  [read buf off len] returns the number of
    bytes read, 0 for EOF (the [Unix.read] shape). *)

val read_response : read:(bytes -> int -> int -> int) -> (response, error) result

val string_reader : string -> bytes -> int -> int -> int
(** A [read] function over an in-memory byte string — for tests. *)
