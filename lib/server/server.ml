module Database = Xqdb_core.Database
module Metrics = Xqdb_storage.Metrics
module Monotonic = Xqdb_storage.Monotonic

(* The multi-session server: one acceptor (the calling domain) feeding a
   bounded admission queue, and a fixed pool of [max_sessions] worker
   domains draining it.  Each admitted connection becomes one {!Session}
   (its own engine views, its own prepared-plan cache) over the shared
   database.

   Overload policy: the queue bounds how much work the server will hold.
   A connection arriving at a full queue is shed immediately — an
   [Unavailable] response carrying a retry-after hint, then close — and
   one that waited in the queue longer than [queue_timeout] is shed at
   dequeue for the same reason: serving it late helps nobody and holds
   the worker back from fresher work.

   Drain ([SIGTERM] or a shutdown wire frame): stop accepting, serve
   what was already admitted, finish in-flight requests, then checkpoint
   so the WAL is truncated and the database file is durable.  A
   post-drain [xqdb open] must find a clean state.

   The loop never dies on client behaviour: garbage frames get a typed
   [Bad_request] response and the connection is dropped (a binary stream
   cannot be resynchronized after garbage); socket errors close the one
   connection.  Only engine bugs ([Xqdb_error.Internal]) escape, by
   design. *)

type config = {
  port : int;  (* 0 picks an ephemeral port, reported via [on_ready] *)
  max_sessions : int;
  max_page_ios : int option;  (* server-wide per-request caps; *)
  max_seconds : float option;  (* clients can only tighten them *)
  queue_capacity : int;  (* admitted-but-unserved connection bound *)
  queue_timeout : float;  (* max seconds a connection may sit queued *)
  retry_after : float;  (* the hint shed responses carry *)
}

let default_config =
  { port = 7788;
    max_sessions = 4;
    max_page_ios = None;
    max_seconds = None;
    queue_capacity = 16;
    queue_timeout = 5.0;
    retry_after = 0.1 }

let m_connections = Metrics.counter "server.connections"
let m_wire_errors = Metrics.counter "server.wire_errors"
let m_sheds = Metrics.counter "server.sheds"
let m_queue_depth_hw = Metrics.counter "server.queue_depth_hw"
let m_drains = Metrics.counter "server.drains"

(* --- the admission queue ------------------------------------------------ *)

module Admission = struct
  (* A bounded FIFO shared between the acceptor and the workers.  After
     [drain], pushes are refused and poppers see the remaining items,
     then [None] — admitted work is still served, new work is not. *)
  type 'a t = {
    capacity : int;
    lock : Mutex.t;
    nonempty : Condition.t;
    items : 'a Queue.t;
    mutable draining : bool;
    mutable high_water : int;
  }
  [@@guarded_by lock]

  let create ~capacity =
    if capacity < 1 then invalid_arg "Admission.create: capacity must be positive";
    { capacity;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      items = Queue.create ();
      draining = false;
      high_water = 0 }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let push t x =
    locked t (fun () ->
        if t.draining || Queue.length t.items >= t.capacity then false
        else begin
          Queue.push x t.items;
          let depth = Queue.length t.items in
          if depth > t.high_water then begin
            (* The metrics counter mirrors the high water monotonically:
               its value is the deepest the queue has ever been. *)
            Metrics.add m_queue_depth_hw (depth - t.high_water);
            t.high_water <- depth
          end;
          Condition.signal t.nonempty;
          true
        end)

  let pop t =
    locked t (fun () ->
        let rec wait () =
          match Queue.take_opt t.items with
          | Some x -> Some x
          | None ->
            if t.draining then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
        in
        wait ())

  let drain t =
    locked t (fun () ->
        t.draining <- true;
        Condition.broadcast t.nonempty)

  let high_water t = locked t (fun () -> t.high_water)
  let depth t = locked t (fun () -> Queue.length t.items)
end

(* --- the protocol loop -------------------------------------------------- *)

(* Generic over reader/writer so the protocol loop is testable without
   sockets.  [write] may raise (e.g. [Unix.Unix_error] on a peer that
   went away); the caller owns that.

   Every response is encoded in the version of the request it answers —
   a v1 client gets v1 frames (with [Timeout] downgraded, see {!Wire}).
   Framing errors, where no request version is known, answer in
   [Wire.min_version]: every client understands it and [Bad_request]
   carries no v2 field.

   [on_shutdown] fires on a shutdown frame, after which the connection
   is done; [draining] is polled between requests so an in-flight
   connection ends at the next request boundary once a drain starts. *)
let handle_connection ?(on_shutdown = fun () -> ()) ?(draining = fun () -> false)
    ~session ~read ~write () =
  let rec loop () =
    match Wire.read_incoming ~read with
    | Result.Error Wire.Closed -> ()
    | Result.Error e ->
      (* Typed error out, then drop the connection: after a framing
         error there is no boundary to resynchronize on. *)
      Metrics.incr m_wire_errors;
      write
        (Wire.encode_response ~version:Wire.min_version
           (Wire.error_response Wire.Bad_request (Wire.error_to_string e)))
    | Result.Ok Wire.Incoming_shutdown -> on_shutdown ()
    | Result.Ok (Wire.Incoming_request (version, req)) ->
      write (Wire.encode_response ~version (Session.handle session req));
      if not (draining ()) then loop ()
  in
  loop ()

let write_all fd b =
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let serve_fd ?on_shutdown ?draining config db fd =
  Metrics.incr m_connections;
  let session =
    Session.create ?max_page_ios:config.max_page_ios ?max_seconds:config.max_seconds db
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        handle_connection ?on_shutdown ?draining ~session
          ~read:(fun b off len -> Unix.read fd b off len)
          ~write:(write_all fd) ()
      with Unix.Unix_error _ ->
        (* The peer vanished mid-frame; the connection is already dead. *)
        ())

(* Shed a connection without serving it: one [Unavailable] response with
   the retry-after hint, then close.  Best-effort — the peer may already
   be gone. *)
let shed config fd =
  Metrics.incr m_sheds;
  (try
     write_all fd
       (Wire.encode_response
          (Wire.error_response ~retry_after:config.retry_after Wire.Unavailable
             "server overloaded"))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop config queue sock =
  match Unix.accept sock with
  | fd, _ ->
    if not (Admission.push queue (fd, Monotonic.now ())) then shed config fd;
    accept_loop config queue sock
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
    (* The listening socket was shut down: orderly drain. *)
    ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop config queue sock

let rec worker_loop config db queue ~drain ~draining =
  match Admission.pop queue with
  | None -> ()
  | Some (fd, admitted_at) ->
    (* The queue-time deadline: a connection that waited out its welcome
       is shed at dequeue — serving it now just delays fresher work. *)
    if Monotonic.elapsed_since admitted_at > config.queue_timeout then shed config fd
    else serve_fd ~on_shutdown:drain ~draining config db fd;
    worker_loop config db queue ~drain ~draining

let serve ?(on_ready = fun _ -> ()) ?(handle_sigterm = false) config db =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  on_ready port;
  let queue = Admission.create ~capacity:config.queue_capacity in
  let draining = Atomic.make false in
  (* Initiate a drain exactly once: stop the acceptor by shutting the
     listening socket down ([shutdown], not [close] — on Linux a close
     does not wake a blocked [accept], a shutdown does, surfacing as
     EINVAL).  Callable from a worker (shutdown frame) or a signal
     handler, so nothing here blocks or takes the queue lock. *)
  let drain () =
    if not (Atomic.exchange draining true) then begin
      Metrics.incr m_drains;
      try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
    end
  in
  let is_draining () = Atomic.get draining in
  if handle_sigterm then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain ()));
  let workers =
    List.init
      (max 1 config.max_sessions)
      (fun _ ->
        Domain.spawn (fun () -> worker_loop config db queue ~drain ~draining:is_draining))
  in
  (* The acceptor runs right here, on the calling domain. *)
  accept_loop config queue sock;
  (* No more admissions; serve out the queue, then wake idle workers. *)
  Admission.drain queue;
  List.iter Domain.join workers;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (* The durable finish: flush the pool, sync the file, truncate the
     WAL.  A post-drain open must replay nothing. *)
  Database.checkpoint db
