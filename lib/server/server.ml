module Database = Xqdb_core.Database
module Metrics = Xqdb_storage.Metrics

(* The multi-session server: a fixed pool of [max_sessions] worker
   domains all accepting on one listening socket.  Each accepted
   connection becomes one {!Session} (its own engine views, its own
   prepared-plan cache) over the shared database; the fixed pool IS the
   session cap — clients beyond it queue in the listen backlog instead
   of spawning unbounded domains.

   The loop never dies on client behaviour: garbage frames get a typed
   [Bad_request] response and the connection is dropped (a binary stream
   cannot be resynchronized after garbage); socket errors close the one
   connection.  Only engine bugs ([Xqdb_error.Internal]) escape, by
   design. *)

type config = {
  port : int;  (* 0 picks an ephemeral port, reported via [on_ready] *)
  max_sessions : int;
  max_page_ios : int option;  (* server-wide per-request caps; *)
  max_seconds : float option;  (* clients can only tighten them *)
}

let default_config =
  { port = 7788; max_sessions = 4; max_page_ios = None; max_seconds = None }

let m_connections = Metrics.counter "server.connections"
let m_wire_errors = Metrics.counter "server.wire_errors"

(* Generic over reader/writer so the protocol loop is testable without
   sockets.  [write] may raise (e.g. [Unix.Unix_error] on a peer that
   went away); the caller owns that. *)
let handle_connection ~session ~read ~write =
  let respond r = write (Wire.encode_response r) in
  let rec loop () =
    match Wire.read_request ~read with
    | Result.Error Wire.Closed -> ()
    | Result.Error e ->
      (* Typed error out, then drop the connection: after a framing
         error there is no boundary to resynchronize on. *)
      Metrics.incr m_wire_errors;
      respond (Wire.error_response Wire.Bad_request (Wire.error_to_string e))
    | Result.Ok req ->
      respond (Session.handle session req);
      loop ()
  in
  loop ()

let write_all fd b =
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let serve_fd config db fd =
  Metrics.incr m_connections;
  let session =
    Session.create ?max_page_ios:config.max_page_ios ?max_seconds:config.max_seconds db
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        handle_connection ~session
          ~read:(fun b off len -> Unix.read fd b off len)
          ~write:(write_all fd)
      with Unix.Unix_error _ ->
        (* The peer vanished mid-frame; the connection is already dead. *)
        ())

let rec accept_loop config db sock =
  match Unix.accept sock with
  | fd, _ ->
    serve_fd config db fd;
    accept_loop config db sock
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
    (* The listening socket was closed: orderly shutdown. *)
    ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop config db sock

let serve ?(on_ready = fun _ -> ()) config db =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  on_ready port;
  let workers =
    List.init
      (max 1 config.max_sessions)
      (fun _ -> Domain.spawn (fun () -> accept_loop config db sock))
  in
  List.iter Domain.join workers
