(* The wire protocol: length-prefixed binary frames.

   Every frame is a 10-byte header followed by a payload:

     bytes 0..3   magic "XQDB"
     byte  4      protocol version (1 or 2)
     byte  5      frame kind (1 = request, 2 = response, 3 = shutdown)
     bytes 6..9   payload length, u32 big-endian

   Version 2 adds a per-request deadline (f64 seconds, 0 = none) to the
   request's fixed fields, a retry-after hint (f64 seconds, 0 = none)
   to the response's, the [Timeout] status byte, and the shutdown frame
   kind.  Version-1 frames are still accepted: their decoders read the
   v1 layouts, and a v1 response encodes [Timeout] as [Budget_exceeded]
   (the nearest status a v1 client understands) and drops [retry_after].

   Decoding is total: any sequence of bytes — truncated, oversized,
   garbage — decodes to a typed [error], never an exception.  The read
   path is generic over a [read] function so the same decoder serves
   Unix sockets and the test suite's in-memory feeds. *)

let magic = "XQDB"
let version = 2
let min_version = 1
let header_size = 10

(* Results carry serialized documents; queries are small text.  One
   bound covers both directions. *)
let max_payload = 16 * 1024 * 1024

let kind_request = 1
let kind_response = 2
let kind_shutdown = 3

type request = {
  doc : string;  (* document name the query runs against *)
  query_text : string;
  max_page_ios : int option;  (* client-requested budget caps; the *)
  max_seconds : float option;  (* server clamps them to its own *)
  deadline : float option;  (* seconds from receipt; queue time counts *)
}

(* One response shape for everything: engine statuses map one-to-one,
   [Bad_request] covers protocol/parse/check failures, [Unavailable]
   covers admission rejection.  [payload] is the serialized forest for
   [Ok] and the error message otherwise. *)
type status_code =
  | Ok
  | Budget_exceeded
  | Error
  | Io_error
  | Bad_request
  | Unavailable
  | Timeout

type response = {
  status : status_code;
  payload : string;
  elapsed : float;  (* wall-clock seconds spent executing; 0 if not run *)
  page_ios : int;  (* page I/Os charged to the request; 0 if not run *)
  retry_after : float option;  (* shed requests: when to try again *)
}

type incoming =
  | Incoming_request of int * request  (* the frame's protocol version *)
  | Incoming_shutdown

type error =
  | Closed  (* clean EOF at a frame boundary *)
  | Truncated  (* EOF mid-frame *)
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Oversize of int
  | Malformed of string  (* header fine, payload inconsistent *)

let error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad frame magic"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_kind k -> Printf.sprintf "unknown frame kind %d" k
  | Oversize n -> Printf.sprintf "frame payload of %d bytes exceeds the %d-byte cap" n max_payload
  | Malformed msg -> "malformed payload: " ^ msg

let status_to_byte = function
  | Ok -> 0
  | Budget_exceeded -> 1
  | Error -> 2
  | Io_error -> 3
  | Bad_request -> 4
  | Unavailable -> 5
  | Timeout -> 6

let status_of_byte = function
  | 0 -> Some Ok
  | 1 -> Some Budget_exceeded
  | 2 -> Some Error
  | 3 -> Some Io_error
  | 4 -> Some Bad_request
  | 5 -> Some Unavailable
  | 6 -> Some Timeout
  | _ -> None

let error_response ?retry_after status message =
  { status; payload = message; elapsed = 0.; page_ios = 0; retry_after }

let check_version v =
  if v < min_version || v > version then invalid_arg "Wire: unsupported protocol version"

(* --- encoding ---------------------------------------------------------- *)

let frame ~version:v kind payload =
  let len = Bytes.length payload in
  if len > max_payload then invalid_arg "Wire: payload exceeds max_payload";
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 v;
  Bytes.set_uint8 b 5 kind;
  Bytes.set_int32_be b 6 (Int32.of_int len);
  Bytes.blit payload 0 b header_size len;
  b

let add_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let add_f64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.bits_of_float v);
  Buffer.add_bytes buf b

let encode_request ?(version = version) r =
  check_version version;
  let buf = Buffer.create (64 + String.length r.query_text) in
  add_u32 buf (match r.max_page_ios with Some n -> n | None -> 0);
  add_f64 buf (match r.max_seconds with Some s -> s | None -> 0.);
  (* The deadline field exists only from v2 on; a v1 frame simply
     cannot carry one. *)
  if version >= 2 then add_f64 buf (match r.deadline with Some s -> s | None -> 0.);
  add_u32 buf (String.length r.doc);
  Buffer.add_string buf r.doc;
  Buffer.add_string buf r.query_text;
  frame ~version kind_request (Buffer.to_bytes buf)

let encode_response ?(version = version) r =
  check_version version;
  let status =
    (* A v1 client has no Timeout byte: budget-exceeded is the closest
       censoring status it understands. *)
    if version < 2 && r.status = Timeout then Budget_exceeded else r.status
  in
  let buf = Buffer.create (32 + String.length r.payload) in
  Buffer.add_uint8 buf (status_to_byte status);
  add_f64 buf r.elapsed;
  add_u32 buf r.page_ios;
  if version >= 2 then
    add_f64 buf (match r.retry_after with Some s -> s | None -> 0.);
  Buffer.add_string buf r.payload;
  frame ~version kind_response (Buffer.to_bytes buf)

let encode_shutdown () = frame ~version kind_shutdown Bytes.empty

(* --- decoding ---------------------------------------------------------- *)

let decode_request ~version payload =
  let fixed = if version >= 2 then 24 else 16 in
  let len = Bytes.length payload in
  if len < fixed then Result.Error (Malformed "request shorter than its fixed fields")
  else begin
    let max_page_ios =
      match Int32.to_int (Bytes.get_int32_be payload 0) with
      | 0 -> None
      | n when n > 0 -> Some n
      | n -> Some n  (* negative: nonsense, but let Budget reject it *)
    in
    let max_seconds =
      match Int64.float_of_bits (Bytes.get_int64_be payload 4) with
      | 0. -> None
      | s -> Some s
    in
    let deadline =
      if version < 2 then None
      else
        match Int64.float_of_bits (Bytes.get_int64_be payload 12) with
        | 0. -> None
        | s -> Some s
    in
    let doc_off = fixed - 4 in
    let doc_len = Int32.to_int (Bytes.get_int32_be payload doc_off) in
    if doc_len < 0 || fixed + doc_len > len then
      Result.Error (Malformed "document-name length points past the payload")
    else
      let doc = Bytes.sub_string payload fixed doc_len in
      let query_text =
        Bytes.sub_string payload (fixed + doc_len) (len - fixed - doc_len)
      in
      Result.Ok { doc; query_text; max_page_ios; max_seconds; deadline }
  end

let decode_response ~version payload =
  let fixed = if version >= 2 then 21 else 13 in
  let len = Bytes.length payload in
  if len < fixed then Result.Error (Malformed "response shorter than its fixed fields")
  else
    match status_of_byte (Bytes.get_uint8 payload 0) with
    | None -> Result.Error (Malformed "unknown status byte")
    | Some status ->
      let elapsed = Int64.float_of_bits (Bytes.get_int64_be payload 1) in
      let page_ios = Int32.to_int (Bytes.get_int32_be payload 9) in
      let retry_after =
        if version < 2 then None
        else
          match Int64.float_of_bits (Bytes.get_int64_be payload 13) with
          | 0. -> None
          | s -> Some s
      in
      let payload = Bytes.sub_string payload fixed (len - fixed) in
      Result.Ok { status; payload; elapsed; page_ios; retry_after }

(* Fill [b] completely from [read]; [Ok false] means EOF before the
   first byte, [Error Truncated] means EOF partway through. *)
let read_exact read b =
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Result.Ok true
    else
      match read b off (n - off) with
      | 0 -> if off = 0 then Result.Ok false else Result.Error Truncated
      | k -> go (off + k)
  in
  go 0

let read_frame ~read =
  let header = Bytes.create header_size in
  match read_exact read header with
  | Result.Error _ -> Result.Error Truncated
  | Result.Ok false -> Result.Error Closed
  | Result.Ok true ->
    if not (String.equal (Bytes.sub_string header 0 4) magic) then Result.Error Bad_magic
    else begin
      let v = Bytes.get_uint8 header 4 in
      let kind = Bytes.get_uint8 header 5 in
      let len = Int32.to_int (Bytes.get_int32_be header 6) in
      if v < min_version || v > version then Result.Error (Bad_version v)
      else if kind <> kind_request && kind <> kind_response && kind <> kind_shutdown
      then Result.Error (Bad_kind kind)
      else if len < 0 || len > max_payload then Result.Error (Oversize len)
      else begin
        let payload = Bytes.create len in
        match read_exact read payload with
        | Result.Ok true -> Result.Ok (v, kind, payload)
        | Result.Ok false | Result.Error _ -> Result.Error Truncated
      end
    end

let read_incoming ~read =
  match read_frame ~read with
  | Result.Error e -> Result.Error e
  | Result.Ok (v, kind, payload) ->
    if kind = kind_shutdown then Result.Ok Incoming_shutdown
    else if kind <> kind_request then Result.Error (Bad_kind kind)
    else
      match decode_request ~version:v payload with
      | Result.Ok r -> Result.Ok (Incoming_request (v, r))
      | Result.Error e -> Result.Error e

let read_request ~read =
  match read_frame ~read with
  | Result.Error e -> Result.Error e
  | Result.Ok (v, kind, payload) ->
    if kind <> kind_request then Result.Error (Bad_kind kind)
    else decode_request ~version:v payload

let read_response ~read =
  match read_frame ~read with
  | Result.Error e -> Result.Error e
  | Result.Ok (v, kind, payload) ->
    if kind <> kind_response then Result.Error (Bad_kind kind)
    else decode_response ~version:v payload

(* A [read] function over an in-memory byte string — the test feeds, and
   a convenient way to exercise the decoder on fuzz input. *)
let string_reader s =
  let pos = ref 0 in
  fun b off len ->
    let n = min len (String.length s - !pos) in
    if n <= 0 then 0
    else begin
      Bytes.blit_string s !pos b off n;
      pos := !pos + n;
      n
    end
