(** One client session over a shared {!Xqdb_core.Database}.

    Each session owns per-session engine views ({!Xqdb_core.Engine.session}):
    its own prepared-plan cache and therefore its own parameter slots and
    operator state, over the one shared store and buffer pool.  Views
    are re-derived when the database hands back a different base engine
    for a name (drop + reload).

    Admission control reuses {!Xqdb_storage.Budget}: the session's caps
    clamp the client's requested caps (the tighter bound wins), and an
    over-budget request is censored to a [Budget_exceeded] response —
    the session and the server live on. *)

type t

type limits = {
  max_page_ios : int option;
  max_seconds : float option;
}

val create : ?max_page_ios:int -> ?max_seconds:float -> Xqdb_core.Database.t -> t
(** The optional caps bound every request this session runs. *)

val limits : t -> limits

val handle : ?received:float -> t -> Wire.request -> Wire.response
(** Execute one request: parse, resolve the document view, run under the
    clamped budget.  Parse/check failures and unknown documents come
    back as [Bad_request]; engine statuses map one-to-one.  Never raises
    on malformed input — only genuine engine bugs
    ({!Xqdb_storage.Xqdb_error.Internal}) escape.

    The request's relative [deadline] becomes absolute at [received]
    (an {!Xqdb_storage.Monotonic} instant, default now); a request whose
    deadline has already passed — or passes mid-run — answers [Timeout]
    (counted in [server.timeouts]) without ever surfacing as a crash. *)
