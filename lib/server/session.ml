module Engine = Xqdb_core.Engine
module Database = Xqdb_core.Database
module Xq_parser = Xqdb_xq.Xq_parser
module Metrics = Xqdb_storage.Metrics

(* One client session over a shared database.

   A session owns per-session engine views ({!Engine.session}): each
   view has its own prepared-plan cache, and since prepared plans carry
   their parameter slots and operator state, per-session caches are what
   make concurrent execution over the one shared store safe.  Views are
   cached per document name and re-derived when the database hands back
   a different base engine (the document was dropped and reloaded).

   Admission control reuses {!Xqdb_storage.Budget}: the session's caps
   clamp whatever the client asks for, and an over-budget request is
   censored to a [Budget_exceeded] response — the session (and the
   server) live on. *)

type limits = {
  max_page_ios : int option;
  max_seconds : float option;
}

type t = {
  db : Database.t;
  limits : limits;
  (* doc name -> (base engine it was derived from, per-session view) *)
  mutable views : (string * (Engine.t * Engine.t)) list;
}
(* A session lives on exactly one worker domain for its whole life. *)
[@@domain_local]

let m_requests = Metrics.counter "server.session_requests"
let m_bad_requests = Metrics.counter "server.session_bad_requests"
let m_timeouts = Metrics.counter "server.timeouts"

let create ?max_page_ios ?max_seconds db =
  { db; limits = { max_page_ios; max_seconds }; views = [] }

let limits t = t.limits

(* The tighter of the server's cap and the client's ask. *)
let clamp server client =
  match (server, client) with
  | None, c -> c
  | s, None -> s
  | Some s, Some c -> Some (min s c)

let clampf server client =
  match (server, client) with
  | None, c -> c
  | s, None -> s
  | Some s, Some c -> Some (Float.min s c)

let view t ~doc =
  let base = Database.engine t.db ~name:doc in
  match List.assoc_opt doc t.views with
  | Some (b, v) when b == base -> v
  | Some _ | None ->
    let v = Engine.session base in
    t.views <- (doc, (base, v)) :: List.remove_assoc doc t.views;
    v

let status_of_engine = function
  | Engine.Ok -> Wire.Ok
  | Engine.Budget_exceeded _ -> Wire.Budget_exceeded
  | Engine.Timeout _ -> Wire.Timeout
  | Engine.Error _ -> Wire.Error
  | Engine.Io_error _ -> Wire.Io_error

let message_of_status = function
  | Engine.Ok -> ""
  | Engine.Budget_exceeded m | Engine.Timeout m | Engine.Error m | Engine.Io_error m -> m

let handle ?received t (req : Wire.request) : Wire.response =
  Metrics.incr m_requests;
  (* The request's relative deadline becomes absolute at [received] —
     the instant the server took the request in, which the caller may
     backdate to admission time so queueing counts against it. *)
  let received =
    match received with Some at -> at | None -> Xqdb_storage.Monotonic.now ()
  in
  let deadline = Option.map (fun d -> received +. d) req.Wire.deadline in
  let expired =
    match deadline with
    | Some d -> Xqdb_storage.Monotonic.now () > d
    | None -> false
  in
  if expired then begin
    (* Dead on arrival: censor without compiling or touching a page. *)
    Metrics.incr m_timeouts;
    Wire.error_response Wire.Timeout "deadline expired before execution"
  end
  else
    match Xq_parser.parse_result req.Wire.query_text with
    | Result.Error msg ->
      Metrics.incr m_bad_requests;
      Wire.error_response Wire.Bad_request ("parse error: " ^ msg)
    | Result.Ok query ->
      match view t ~doc:req.Wire.doc with
      | exception Not_found ->
        Metrics.incr m_bad_requests;
        Wire.error_response Wire.Bad_request
          (Printf.sprintf "unknown document %S" req.Wire.doc)
      | engine ->
        let max_page_ios = clamp t.limits.max_page_ios req.Wire.max_page_ios in
        let max_seconds = clampf t.limits.max_seconds req.Wire.max_seconds in
        match Engine.run ?max_page_ios ?max_seconds ?deadline engine query with
        | result ->
          (match result.Engine.status with
           | Engine.Timeout _ -> Metrics.incr m_timeouts
           | _ -> ());
          { Wire.status = status_of_engine result.Engine.status;
            payload =
              (match result.Engine.status with
               | Engine.Ok -> result.Engine.output
               | s -> message_of_status s);
            elapsed = result.Engine.elapsed;
            page_ios = result.Engine.page_ios;
            retry_after = None }
        | exception Invalid_argument msg ->
          (* Scope-check failures ([Xq_check]) and unbound variables. *)
          Metrics.incr m_bad_requests;
          Wire.error_response Wire.Bad_request msg
