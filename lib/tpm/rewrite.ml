open Xqdb_xq.Xq_ast
module A = Tpm_algebra

type config = {
  carry_out : bool;
}

let default = { carry_out = true }
let naive = { carry_out = false }

(* Alias generation: derived from the variable name the way the paper
   names its relations (variable $n yields N, N2, ...), globally unique
   within one rewrite so that merging never collides. *)
type state = {
  cfg : config;
  mutable used : string list;
  mutable fresh_count : int;
}
[@@domain_local]

let base_of_var x =
  let cleaned =
    String.to_seq x
    |> Seq.filter (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
    |> String.of_seq
  in
  if String.equal cleaned "" then "R" else String.capitalize_ascii cleaned

let alias st base =
  let rec pick i =
    let candidate = if i = 1 then base else Printf.sprintf "%s%d" base i in
    if List.mem candidate st.used then pick (i + 1) else candidate
  in
  let name = pick 1 in
  st.used <- name :: st.used;
  name

let fresh_var st =
  st.fresh_count <- st.fresh_count + 1;
  Printf.sprintf "#r%d" st.fresh_count

(* References to variables inside one PSX: variables bound in the same
   PSX (by 'some' chains) resolve to their relation's columns; variables
   bound by enclosing relfors stay external. *)
type local_env = (var * string) list

let var_in st env x =
  match List.assoc_opt x env with
  | Some a -> A.Ocol (A.col a A.In)
  | None ->
    ignore st;
    (* The virtual root always has in = 1 (Figure 2), so references to
       $root's in-value are constants, as in the paper's figures. *)
    if String.equal x root_var then A.Oint 1 else A.Oextern_in x

let var_out st env x =
  match List.assoc_opt x env with
  | Some a -> A.Ocol (A.col a A.Out)
  | None ->
    ignore st;
    A.Oextern_out x

let eq l r = { A.left = l; op = A.Eq; right = r }
let lt l r = { A.left = l; op = A.Lt; right = r }

let test_preds a test =
  let ty = A.Ocol (A.col a A.Type_) in
  match test with
  | Name label ->
    [eq ty (A.Otype Xqdb_xasr.Xasr.Element); eq (A.Ocol (A.col a A.Value)) (A.Ostr label)]
  | Star -> [eq ty (A.Otype Xqdb_xasr.Xasr.Element)]
  | Text_test -> [eq ty (A.Otype Xqdb_xasr.Xasr.Text)]

(* The step rules.  Returns the relations and predicates binding a fresh
   alias for [y], stepping from [x]. *)
let step_psx st env y x axis test =
  let a = alias st (base_of_var y) in
  match axis with
  | Child ->
    let preds = eq (A.Ocol (A.col a A.Parent_in)) (var_in st env x) :: test_preds a test in
    (a, [a], preds)
  | Descendant ->
    let from_local_or_carry =
      List.mem_assoc x env || st.cfg.carry_out
    in
    if from_local_or_carry then begin
      (* in(x) < in(a)  /\  out(a) < out(x) — out(x) available either as
         a column (local) or in the vartuple (carry_out). *)
      let preds =
        lt (var_in st env x) (A.Ocol (A.col a A.In))
        :: lt (A.Ocol (A.col a A.Out)) (var_out st env x)
        :: test_preds a test
      in
      (a, [a], preds)
    end
    else begin
      (* The paper's two-relation rule: a self-join copy R1 pinned to the
         outer binding provides the missing out value. *)
      let base = base_of_var y in
      let a1 = alias st (base ^ "1") in
      let preds =
        eq (A.Ocol (A.col a1 A.In)) (var_in st env x)
        :: lt (A.Ocol (A.col a1 A.In)) (A.Ocol (A.col a A.In))
        :: lt (A.Ocol (A.col a A.Out)) (A.Ocol (A.col a1 A.Out))
        :: test_preds a test
      in
      (a, [a1; a], preds)
    end

(* ALG(phi): the nullary PSX fragment of a condition, or None. *)
let rec cond_psx st (env : local_env) = function
  | True -> Some ([], [])
  | And (c1, c2) ->
    (match (cond_psx st env c1, cond_psx st env c2) with
     | Some (r1, p1), Some (r2, p2) -> Some (r1 @ r2, p1 @ p2)
     | None, _ | _, None -> None)
  | Some_ (y, x, axis, test, c) ->
    let a, rels, preds = step_psx st env y x axis test in
    (match cond_psx st ((y, a) :: env) c with
     | Some (rels', preds') -> Some (rels @ rels', preds @ preds')
     | None -> None)
  | Eq_const (x, s) ->
    (* The node bound to x must be a text node with this value. *)
    (match List.assoc_opt x env with
     | Some a ->
       Some
         ( [],
           [ eq (A.Ocol (A.col a A.Type_)) (A.Otype Xqdb_xasr.Xasr.Text);
             eq (A.Ocol (A.col a A.Value)) (A.Ostr s) ] )
     | None ->
       (* Outer variable: fetch its tuple through a pinned copy. *)
       let a = alias st (base_of_var x) in
       Some
         ( [a],
           [ eq (A.Ocol (A.col a A.In)) (A.Oextern_in x);
             eq (A.Ocol (A.col a A.Type_)) (A.Otype Xqdb_xasr.Xasr.Text);
             eq (A.Ocol (A.col a A.Value)) (A.Ostr s) ] ))
  | Eq_vars (x, y) ->
    let resolve v =
      match List.assoc_opt v env with
      | Some a -> ([], [eq (A.Ocol (A.col a A.Type_)) (A.Otype Xqdb_xasr.Xasr.Text)], a)
      | None ->
        let a = alias st (base_of_var v) in
        ( [a],
          [ eq (A.Ocol (A.col a A.In)) (A.Oextern_in v);
            eq (A.Ocol (A.col a A.Type_)) (A.Otype Xqdb_xasr.Xasr.Text) ],
          a )
    in
    let rx, px, ax = resolve x in
    let ry, py, ay = resolve y in
    Some
      (rx @ ry, px @ py @ [eq (A.Ocol (A.col ax A.Value)) (A.Ocol (A.col ay A.Value))])
  | Or _ | Not _ -> None

let maybe_drop st psx = if st.cfg.carry_out then A.drop_redundant_self_rels psx else psx

let rec query_rw st = function
  | Xqdb_xq.Xq_ast.Empty -> A.Empty
  | Text_lit s -> A.Text_out s
  | Var x -> A.Out_var x
  | Constr (a, q) -> A.Constr (a, query_rw st q)
  | Seq (q1, q2) -> A.Seq (query_rw st q1, query_rw st q2)
  | Path (x, axis, test) ->
    (* Sugar: a path as a query is a for-loop emitting its binding. *)
    let y = fresh_var st in
    query_rw st (For (y, x, axis, test, Var y))
  | For (y, x, axis, test, body) ->
    let a, rels, preds = step_psx st [] y x axis test in
    let source =
      maybe_drop st { A.bindings = [{ A.var = y; brel = a }]; preds; rels }
    in
    A.Relfor { vars = [y]; source; body = query_rw st body }
  | If (c, body) ->
    (match cond_psx st [] c with
     | Some (rels, preds) ->
       let source = maybe_drop st { A.bindings = []; preds; rels } in
       A.Relfor { vars = []; source; body = query_rw st body }
     | None -> A.Guard (c, query_rw st body))

let query ?(config = default) q =
  let st = { cfg = config; used = []; fresh_count = 0 } in
  query_rw st q

let cond ?(config = default) c =
  let st = { cfg = config; used = []; fresh_count = 0 } in
  match cond_psx st [] c with
  | Some (rels, preds) ->
    Some (maybe_drop st { A.bindings = []; preds; rels })
  | None -> None
