(** The query engine: load a document, run XQ queries at any milestone.

    [load] shreds the document into a fresh store (and keeps the
    in-memory labeled document around for milestone-1 evaluation, which
    is the correctness reference).  [run] parses, checks, rewrites,
    optimizes and executes according to the engine configuration,
    returning the serialized result together with the page-I/O and time
    accounting the testbed grades on. *)

type t

val load : ?config:Engine_config.t -> ?on_file:string -> string -> t
(** [load xml] builds an engine over an in-memory disk; [~on_file:path]
    uses a real database file instead. *)

val load_forest : ?config:Engine_config.t -> Xqdb_xml.Xml_tree.forest -> t

val attach :
  ?config:Engine_config.t ->
  disk:Xqdb_storage.Disk.t ->
  pool:Xqdb_storage.Buffer_pool.t ->
  catalog:Xqdb_storage.Catalog.t ->
  store:Xqdb_xasr.Node_store.t ->
  doc_stats:Xqdb_xasr.Doc_stats.t ->
  unit ->
  t
(** Build an engine over an already-shredded store (e.g. one reopened
    from a database file).  The in-memory document needed by milestone 1
    is reconstructed from the store. *)

val with_config : Engine_config.t -> t -> t
(** Same store and document, different engine configuration — engines
    sharing one loaded database is how the testbed compares them. *)

val session : t -> t
(** A per-session view over the same database: shares the store, pool
    and statistics (read-only after load) but owns a fresh prepared-plan
    cache.  Prepared plans hold mutable state (parameter slots, operator
    cursors, accumulating stats), so concurrent sessions must each run
    on their own view — never share one engine value across domains. *)

val config : t -> Engine_config.t
val store : t -> Xqdb_xasr.Node_store.t
val doc_stats : t -> Xqdb_xasr.Doc_stats.t
val document : t -> Xqdb_xml.Xml_doc.t

val disk : t -> Xqdb_storage.Disk.t
(** The disk under the engine's store — the attachment point for
    {!Xqdb_storage.Fault_disk} injection and for I/O accounting checks. *)

val pool : t -> Xqdb_storage.Buffer_pool.t
(** The engine's buffer pool; [drop_all] on it forces cold-cache runs. *)

type status =
  | Ok
  | Budget_exceeded of string
  | Timeout of string
      (** the request's absolute deadline passed mid-run
          ({!Xqdb_storage.Budget.Deadline_exceeded}); censored exactly
          like a budget overrun, but typed so clients can distinguish
          "you asked for too much" from "you ran out of time" *)
  | Error of string
      (** runtime type error, as the paper allows — or malformed input
          surfacing as a typed {!Xqdb_xasr.Shredder.Shred_error} *)
  | Io_error of string
      (** a storage-layer resource failure: an unrecoverable disk fault
          ({!Xqdb_storage.Disk.Disk_error}) that survived the buffer
          pool's bounded retries, a fully-pinned pool
          ({!Xqdb_storage.Buffer_pool.Pool_exhausted}), an overfull
          page ({!Xqdb_storage.Page.Page_full}), or corrupt stored data
          ({!Xqdb_storage.Xqdb_error.Corrupt} — dangling index entries,
          missing catalog keys); the run is censored like a budget
          overrun, never reported as a crash.
          {!Xqdb_storage.Xqdb_error.Internal} — an engine bug — is
          deliberately not censored and crashes the run.

          Under a sanitizing pool
          ({!Xqdb_storage.Buffer_pool.sanitizing}) every run, whatever
          its status, ends with a zero-leaked-pins assertion; a leak
          raises {!Xqdb_storage.Buffer_pool.Pin_leak} with the
          offending acquisition backtraces. *)

type op_profile = Xqdb_physical.Phys_op.profile = {
  op : string;
  args : string;
  rows : int;
  batches : int;  (** [next_batch] calls that returned rows *)
  ios : int;  (** inclusive page I/Os (includes the inputs') *)
  own_ios : int;  (** exclusive page I/Os *)
  seconds : float;
  own_seconds : float;
  inputs : op_profile list;
}

type profile = {
  reads : int;
  writes : int;
  allocs : int;
  pool : Xqdb_storage.Buffer_pool.stats;  (** delta over the run *)
  counters : Xqdb_storage.Metrics.snapshot;
      (** storage-structure counter deltas over the run *)
  operators : op_profile list;
      (** one aggregated operator tree per relfor compile site, in plan
          order; partial (but present) on censored runs *)
  operator_ios : int;  (** sum of the [operators] roots' inclusive I/Os *)
  other_ios : int;
      (** page I/Os outside operator trees — guard evaluation, output
          reconstruction, nout lookups; [operator_ios + other_ios] equals
          [page_ios] by construction *)
}

type result = {
  output : string;  (** canonical serialization; [""] if not [Ok] *)
  status : status;
  elapsed : float;  (** wall-clock seconds *)
  page_ios : int;  (** disk reads + writes during the run *)
  profile : profile;  (** where those I/Os and seconds went *)
}

val run :
  ?max_page_ios:int ->
  ?max_seconds:float ->
  ?deadline:float ->
  t ->
  Xqdb_xq.Xq_ast.query ->
  result
(** Compile (through the prepared cache) and execute.  The compile
    happens inside the measured window, so first-run template
    construction I/O is accounted to the run — and a cache hit makes the
    whole front end free.  [deadline] is an absolute
    {!Xqdb_storage.Monotonic} instant; past it the run censors with
    [Timeout]. *)

type prepared
(** A compiled query bound to the engine it was prepared on: for
    milestones 3/4 the full staged pipeline output, with one
    parameterized plan template per relfor site.  Repeated execution
    rebinds the templates' parameter slots instead of replanning. *)

val compile : t -> Xqdb_xq.Xq_ast.query -> prepared
(** Compile through the engine's prepared cache (keyed by canonical
    query text; hits count [engine.prepared_cache_hits]).  The cache
    belongs to one engine value — [with_config] and [session] start
    fresh ones.  It is bounded by the configuration's
    [prepared_cache_capacity]: beyond that the least-recently-used plan
    is evicted ([engine.prepared_cache_evictions]).  When the catalog
    epoch has moved since the cached plans were compiled (a document was
    loaded or dropped), the whole cache is invalidated
    ([engine.prepared_cache_invalidations]); if this engine's own
    document was dropped, compilation raises typed corruption — censored
    to an [Io_error] status by {!run} — rather than serving plans over
    dead pages.
    @raise Invalid_argument if the query fails {!Xqdb_xq.Xq_check}. *)

val prepare : t -> Xqdb_xq.Xq_ast.query -> prepared
(** Alias of {!compile}. *)

val execute :
  ?max_page_ios:int -> ?max_seconds:float -> ?deadline:float -> t -> prepared -> result
(** Execute a prepared query: bind parameters, reset the cached operator
    trees and drain them — no rewriting, merging or planning. *)

val run_prepared :
  ?max_page_ios:int -> ?max_seconds:float -> ?deadline:float -> t -> prepared -> result
(** Alias of {!execute} (historical name). *)

val run_string :
  ?max_page_ios:int -> ?max_seconds:float -> ?deadline:float -> t -> string -> result
(** Parse and run.  @raise Xqdb_xq.Xq_parser.Parse_error,
    [Invalid_argument] on check failure. *)

val eval : t -> Xqdb_xq.Xq_ast.query -> Xqdb_xml.Xml_tree.forest
(** Evaluate without budget, returning the forest.
    @raise Xqdb_xq.Xq_eval.Type_error on ill-typed comparisons. *)

val explain : ?analyze:bool -> t -> Xqdb_xq.Xq_ast.query -> string
(** Every stage of the compilation pipeline (source AST, TPM after each
    logical pass, physical form with one plan template per relfor site)
    pretty-printed under "== pass: kind ==" headers; milestones 1/2
    report their evaluation strategy instead.  With [analyze], the query
    is also executed and the per-site operator profiles (rows, page
    I/Os, seconds per operator) are appended. *)
