(* A bounded string-keyed LRU cache for prepared plans.

   Same intrusive doubly-linked-list idiom as the buffer pool's frame
   list: [prev] points toward the MRU head, [next] toward the LRU tail,
   so both lookup-touch and eviction are O(1).  Not thread-safe — each
   engine value (and so each server session) owns its cache. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}
[@@domain_local]

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
}
(* Caches belong to an engine, engines to a session's worker domain. *)
[@@domain_local]

let create capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let detach t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | Some _ | None ->
    detach t node;
    push_front t node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    touch t node;
    Some node.value

let put ?(on_evict = fun _ _ -> ()) t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    touch t node
  | None ->
    if Hashtbl.length t.table >= t.cap then begin
      match t.tail with
      | None -> assert false (* cap >= 1 and the table is full *)
      | Some victim ->
        detach t victim;
        Hashtbl.remove t.table victim.key;
        on_evict victim.key victim.value
    end;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let keys_lru_first t =
  let rec walk acc = function
    | None -> acc
    | Some node -> walk (node.key :: acc) node.next
  in
  (* From the MRU head toward the LRU tail, consing as we go: the tail
     ends up first in the result. *)
  walk [] t.head
