module Storage = Xqdb_storage
module Store = Xqdb_xasr.Node_store
module Shredder = Xqdb_xasr.Shredder

type t = {
  config : Engine_config.t;
  disk : Storage.Disk.t;
  wal : Storage.Wal.t option;
  pool : Storage.Buffer_pool.t;
  catalog : Storage.Catalog.t;
  engines : (string, Engine.t) Hashtbl.t;
}
(* Registration (load / drop / attach) mutates [engines] while holding
   the catalog's page-0 frame latch exclusively, which serializes all
   catalog writers; see DESIGN.md "Concurrency invariants". *)
[@@guarded_by catalog_page_latch]

(* Once the durable log grows past this, the next load/drop triggers a
   checkpoint: recovery time stays bounded by ~this many bytes of
   after-images instead of the whole history. *)
let wal_checkpoint_threshold = 1 lsl 20

let make ~config ?wal disk =
  let pool =
    Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity
      ~retry_policy:config.Engine_config.retry_policy ?wal disk
  in
  let catalog = Storage.Catalog.attach pool in
  { config; disk; wal; pool; catalog; engines = Hashtbl.create 8 }

let create_on ?(config = Engine_config.m4) ?wal disk = make ~config ?wal disk

let create ?(config = Engine_config.m4) ?on_file () =
  match on_file with
  | None -> make ~config (Storage.Disk.in_memory ())
  | Some path ->
    (* A file database gets a sibling redo log: [path].wal. *)
    let disk = Storage.Disk.on_file path in
    let wal = Storage.Wal.on_file (path ^ ".wal") in
    make ~config ~wal disk

(* Redo recovery: blindly rewrite every durable after-image in LSN
   order, growing the page file when the log references pages the crash
   cut off, then checkpoint so the log is not replayed twice.  Replay is
   idempotent — crashing during recovery and recovering again is safe. *)
let recover disk wal =
  let stats =
    Storage.Wal.replay wal ~apply:(fun ~lsn:_ ~page_id data ->
        while Storage.Disk.page_count disk <= page_id do
          ignore (Storage.Disk.alloc disk)
        done;
        Storage.Disk.write_page disk page_id data)
  in
  Storage.Disk.sync disk;
  Storage.Wal.checkpoint wal;
  stats

let attach_engines t =
  List.iter
    (fun name ->
      let store = Store.open_existing t.pool t.catalog ~name in
      let doc_stats = Store.stats_of_catalog t.catalog ~name in
      Hashtbl.replace t.engines name
        (Engine.attach ~config:t.config ~disk:t.disk ~pool:t.pool ~catalog:t.catalog
           ~store ~doc_stats ()))
    (Store.registered_names t.catalog)

let open_disk ?(config = Engine_config.m4) ?wal disk =
  (match wal with
   | None -> ()
   | Some wal -> ignore (recover disk wal));
  let t = make ~config ?wal disk in
  attach_engines t;
  t

let open_file ?(config = Engine_config.m4) path =
  let wal = Storage.Wal.open_existing (path ^ ".wal") in
  let disk = Storage.Disk.open_existing path in
  open_disk ~config ~wal disk

let config t = t.config
let disk t = t.disk
let wal t = t.wal

(* The checkpoint protocol, in order: catalog to pool, pool to disk
   (each write-back syncs the log first — WAL before data), disk to
   durable storage, and only then truncate the log. *)
let checkpoint t =
  Storage.Catalog.flush t.catalog;
  Storage.Buffer_pool.flush_all t.pool;
  match t.wal with
  | None -> ()
  | Some wal ->
    Storage.Disk.sync t.disk;
    Storage.Wal.checkpoint wal

let maybe_checkpoint t =
  match t.wal with
  | None -> ()
  | Some wal ->
    if Storage.Wal.size_bytes wal >= wal_checkpoint_threshold then checkpoint t

let check_name t name =
  if String.equal name "" then invalid_arg "Database: empty document name";
  if String.contains name '.' then
    invalid_arg "Database: document names cannot contain '.'";
  if Hashtbl.mem t.engines name then
    invalid_arg (Printf.sprintf "Database: document %S already loaded" name)

let load_forest t ~name forest =
  check_name t name;
  let store, doc_stats = Shredder.shred_forest t.pool ~name forest in
  Store.register store t.catalog ~stats:doc_stats;
  let engine =
    Engine.attach ~config:t.config ~disk:t.disk ~pool:t.pool ~catalog:t.catalog ~store
      ~doc_stats ()
  in
  Hashtbl.replace t.engines name engine;
  maybe_checkpoint t;
  engine

let load_document t ~name xml =
  load_forest t ~name (Xqdb_xml.Xml_parser.parse_forest xml)

let document_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.engines [] |> List.sort compare

let engine ?config t ~name =
  match Hashtbl.find_opt t.engines name with
  | None -> raise Not_found
  | Some e ->
    (match config with
     | None -> e
     | Some c -> Engine.with_config c e)

let drop_document t ~name =
  if not (Hashtbl.mem t.engines name) then raise Not_found;
  Hashtbl.remove t.engines name;
  Store.unregister t.catalog ~name;
  Storage.Catalog.flush t.catalog;
  maybe_checkpoint t

let run ?max_page_ios ?max_seconds t ~name query =
  Engine.run ?max_page_ios ?max_seconds (engine t ~name) query

let flush t = checkpoint t

let close t =
  flush t;
  (match t.wal with
   | None -> ()
   | Some wal -> Storage.Wal.close wal);
  Storage.Disk.close t.disk
