(** Engine configurations.

    One code base, many engines: a configuration fixes which milestone's
    evaluation strategy runs and, for the algebraic milestones, which
    optimizations are on.  The five Figure-7 configurations model the
    paper's top five student engines through the axes the paper says
    separated them (index structures, cost-based reordering, estimate
    quality, pipelining vs. materialization). *)

type milestone =
  | M1  (** in-memory evaluator *)
  | M2  (** navigational secondary-storage evaluator *)
  | M3  (** TPM algebra, heuristic plans *)
  | M4  (** cost-based optimization and index structures *)

type t = {
  name : string;
  milestone : milestone;
  merge_relfors : bool;  (** milestone-3 relfor merging *)
  rewrite : Xqdb_tpm.Rewrite.config;
  planner : Xqdb_optimizer.Planner.config;
  quality : Xqdb_optimizer.Stats.quality;
  pool_capacity : int;  (** buffer-pool frames: the "20 MB" knob *)
  prepared_cache_capacity : int;
      (** max prepared plans kept per engine (LRU-evicted beyond this) *)
  batch_size : int;
      (** rows per operator batch; validated by {!validate} *)
  scan_domains : int;
      (** domains the planner may partition a full scan across (1 =
          sequential) *)
  retry_policy : Xqdb_storage.Retry.policy;
      (** the buffer pool's transient-disk-fault retry policy; the chaos
          harness deepens it when it cranks fault rates up *)
}

val default_batch_size : int

val max_batch_size : int
(** Upper bound on [batch_size]: the page size in bytes, which bounds
    the rows a page-at-a-time scan can stage from one page pull. *)

val validate : t -> t
(** Clamp [batch_size] to {!max_batch_size}.
    @raise Invalid_argument when [batch_size <= 0] or
    [scan_domains <= 0].  Every engine constructor applies this. *)

val m1 : t
val m2 : t
val m3 : t
val m4 : t

val m4_nostruct : t
(** Milestone 4 with [use_struct] forced off — the index-vs-scan axis of
    the differential oracle and the structural bench's baseline. *)

val milestone_name : milestone -> string

(* The five Figure-7 engines, ranked 1..5 as in the paper. *)

val engine1 : t
(** Robust cost-based engine: indexes, reordering, good estimates,
    intermediate results spooled to disk — never great, never terrible. *)

val engine2 : t
(** Aggressive pipelined engine with unlucky (inverted) selectivity
    estimates: fastest of all on the easy tests, but leaves the very
    unselective join at the bottom of the plan on the skewed tests and
    blows the budget there. *)

val engine3 : t
(** A milestone-3 engine retrofitted with index structures: structural
    join order (no cost-based reordering) and every intermediate still
    written to disk. *)

val engine4 : t
(** Cost-based reordering and statistics but no index structures
    (milestone-3 physical operators with milestone-4 planning): pays
    full scans wherever the others probe. *)

val engine5 : t
(** Plain milestone-3 engine: merged relfors, selection pushdown, NL
    joins, everything on disk, no statistics. *)

val figure7_engines : t list

val all_presets : t list
(** m1..m4 plus the five engines. *)
