module Rewrite = Xqdb_tpm.Rewrite
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats

type milestone =
  | M1
  | M2
  | M3
  | M4

type t = {
  name : string;
  milestone : milestone;
  merge_relfors : bool;
  rewrite : Rewrite.config;
  planner : Planner.config;
  quality : Stats.quality;
  pool_capacity : int;
  prepared_cache_capacity : int;
  batch_size : int;
  scan_domains : int;
  retry_policy : Xqdb_storage.Retry.policy;
}

let milestone_name = function
  | M1 -> "milestone 1 (in-memory)"
  | M2 -> "milestone 2 (navigational)"
  | M3 -> "milestone 3 (algebraic)"
  | M4 -> "milestone 4 (cost-based)"

let default_pool = 256

(* Plenty for the testbed's fixed query mixes; small enough that a
   server session replaying ad-hoc query text cannot grow without
   bound. *)
let default_prepared_cache = 64

let default_batch_size = 256

(* A batch never usefully holds more rows than a page has bytes: every
   slot costs at least one byte, so [page bytes] bounds the rows a
   page-at-a-time scan can stage from one pull. *)
let max_batch_size = 4096

let validate t =
  if t.batch_size <= 0 then
    invalid_arg
      (Printf.sprintf "Engine_config %s: batch_size must be positive (got %d)"
         t.name t.batch_size);
  if t.scan_domains <= 0 then
    invalid_arg
      (Printf.sprintf "Engine_config %s: scan_domains must be positive (got %d)"
         t.name t.scan_domains);
  if t.batch_size > max_batch_size then { t with batch_size = max_batch_size }
  else t

let m1 =
  { name = "m1";
    milestone = M1;
    merge_relfors = false;
    rewrite = Rewrite.default;
    planner = Planner.m3_config;
    quality = Stats.Good;
    pool_capacity = default_pool;
    prepared_cache_capacity = default_prepared_cache;
    batch_size = default_batch_size;
    scan_domains = 1;
    retry_policy = Xqdb_storage.Retry.default }

let m2 = { m1 with name = "m2"; milestone = M2 }

let m3 =
  { m1 with
    name = "m3";
    milestone = M3;
    merge_relfors = true;
    planner = Planner.m3_config }

let m4 =
  { m1 with
    name = "m4";
    milestone = M4;
    merge_relfors = true;
    planner = Planner.m4_config }

(* Milestone 4 with the structural-index family forced off: the
   index-vs-scan axis of the differential oracle, and the baseline the
   structural bench compares page I/O against. *)
let m4_nostruct =
  { m4 with
    name = "m4-nostruct";
    planner = { Planner.m4_config with Planner.use_struct = false } }

let efficiency_pool = 48

(* The Figure 7 engines model the paper's 2006 student engines, which
   had no structural indexes: [use_struct] stays off so the efficiency
   rankings are untouched by the modern index family. *)
let engine1 =
  { m4 with
    name = "engine-1";
    pool_capacity = efficiency_pool;
    planner = { Planner.m4_config with use_struct = false; materialize = `Disk } }

let engine2 =
  { m4 with
    name = "engine-2";
    pool_capacity = efficiency_pool;
    quality = Stats.Unlucky;
    planner = { Planner.m4_config with use_struct = false; materialize = `Mem } }

let engine3 =
  { m4 with
    name = "engine-3";
    pool_capacity = efficiency_pool;
    planner =
      { Planner.m4_config with use_struct = false; cost_based = false;
        materialize = `Disk } }

let engine4 =
  { m4 with
    name = "engine-4";
    pool_capacity = efficiency_pool;
    planner =
      { Planner.m4_config with use_struct = false; use_indexes = false;
        materialize = `Disk } }

let engine5 =
  { m3 with
    name = "engine-5";
    pool_capacity = efficiency_pool;
    milestone = M3 }

let figure7_engines = [engine1; engine2; engine3; engine4; engine5]
let all_presets = [m1; m2; m3; m4] @ figure7_engines
