(** A bounded string-keyed LRU cache, used for prepared plans.

    O(1) lookup (which freshens the entry) and O(1) LRU eviction, via
    the same intrusive doubly-linked-list idiom as the buffer pool's
    frame list.  Not thread-safe: each engine value owns its cache, and
    server sessions get per-session engine values. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — at most [capacity] entries are retained.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Look up and mark most-recently-used. *)

val put : ?on_evict:(string -> 'a -> unit) -> 'a t -> string -> 'a -> unit
(** Insert (or overwrite, freshening) an entry.  When the cache is full,
    the least-recently-used entry is dropped and [on_evict] observes it
    (default: nothing). *)

val clear : 'a t -> unit
(** Drop every entry (no [on_evict] calls — this is invalidation, not
    pressure). *)

val keys_lru_first : 'a t -> string list
(** The cached keys, least-recently-used first — for tests and
    introspection. *)
