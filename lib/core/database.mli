(** Multi-document databases.

    The course testbed worked against several documents (DBLP, its
    excerpt, TREEBANK, a hand-made file).  A [Database.t] manages any
    number of named documents inside one disk — each shredded into its
    own XASR store with its own indexes and statistics, all registered
    in the shared catalog — and can be closed and reopened from the
    backing file.

    Updates follow the paper's scope: documents are loaded and dropped
    wholesale ("keep updates as simple as possible"); there is no
    in-place node mutation and no concurrency control.

    There {e is} recovery: a file database keeps a sibling redo log
    ([path.wal], see {!Xqdb_storage.Wal}) which the buffer pool writes
    ahead of every page, {!open_file} replays after a crash, and
    {!checkpoint} truncates once the data file is durable.  In-memory
    databases skip logging unless a log is passed explicitly
    ({!create_on}), which is how the crash-point harness drives
    simulated crashes. *)

type t

val create : ?config:Engine_config.t -> ?on_file:string -> unit -> t
(** An empty database (in memory, or on a file).  With [on_file:path],
    a write-ahead log is created at [path ^ ".wal"]. *)

val create_on : ?config:Engine_config.t -> ?wal:Xqdb_storage.Wal.t -> Xqdb_storage.Disk.t -> t
(** An empty database over a caller-supplied (fresh) disk, optionally
    write-ahead logged.  The harness entry point. *)

val open_file : ?config:Engine_config.t -> string -> t
(** Reopen a database file created earlier with [create ~on_file] —
    documents, indexes and statistics come back from the catalog.
    First replays [path ^ ".wal"] (tolerating a torn log tail) and
    checkpoints, so a crash between two checkpoints loses at most
    unsynced work, never consistency.
    @raise Failure if the file does not contain a catalog. *)

val open_disk :
  ?config:Engine_config.t -> ?wal:Xqdb_storage.Wal.t -> Xqdb_storage.Disk.t -> t
(** Like {!open_file} over a caller-supplied disk/log pair: replay the
    log onto the disk, checkpoint, then attach every catalogued
    document.  The crash-point harness's recovery entry point. *)

val config : t -> Engine_config.t

val disk : t -> Xqdb_storage.Disk.t
val wal : t -> Xqdb_storage.Wal.t option

val checkpoint : t -> unit
(** Make the data file durable, then truncate the log: flush the
    catalog and every dirty page (each write-back syncs the log first),
    {!Xqdb_storage.Disk.sync}, and only then
    {!Xqdb_storage.Wal.checkpoint}.  Also runs automatically once the
    log grows past a threshold (~1 MB) at load/drop boundaries. *)

val load_document : t -> name:string -> string -> Engine.t
(** Parse, shred and index a document under [name].
    @raise Invalid_argument if the name is taken or contains ['.']. *)

val load_forest : t -> name:string -> Xqdb_xml.Xml_tree.forest -> Engine.t

val document_names : t -> string list
(** Sorted. *)

val engine : ?config:Engine_config.t -> t -> name:string -> Engine.t
(** An engine over one document (optionally at a different milestone).
    @raise Not_found for unknown names. *)

val drop_document : t -> name:string -> unit
(** Forget a document.  Its catalog entries are removed; its pages
    become dead space (the storage manager has no free-space reuse —
    bulk-load-and-query is the workload).
    @raise Not_found for unknown names. *)

val run :
  ?max_page_ios:int ->
  ?max_seconds:float ->
  t ->
  name:string ->
  Xqdb_xq.Xq_ast.query ->
  Engine.result

val flush : t -> unit
(** Write all dirty pages and the catalog back to the disk; with a log
    attached this is a full {!checkpoint}. *)

val close : t -> unit
(** [flush] and release the backing file and log. *)
