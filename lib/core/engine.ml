module Tree = Xqdb_xml.Xml_tree
module Xml_doc = Xqdb_xml.Xml_doc
module Xml_parser = Xqdb_xml.Xml_parser
module Xml_print = Xqdb_xml.Xml_print
module Xq_ast = Xqdb_xq.Xq_ast
module Xq_parser = Xqdb_xq.Xq_parser
module Xq_check = Xqdb_xq.Xq_check
module Xq_eval = Xqdb_xq.Xq_eval
module Storage = Xqdb_storage
module Store = Xqdb_xasr.Node_store
module Shredder = Xqdb_xasr.Shredder
module Reconstruct = Xqdb_xasr.Reconstruct
module Nav_eval = Xqdb_xasr.Nav_eval
module Xasr = Xqdb_xasr.Xasr
module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Tpm_print = Xqdb_tpm.Tpm_print
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple
module Stats = Xqdb_optimizer.Stats
module Planner = Xqdb_optimizer.Planner
module Plan_ir = Xqdb_plan.Plan_ir
module Pipeline = Xqdb_plan.Pipeline

(* A compiled query: milestones 1/2 evaluate the AST directly; 3/4 hold
   the whole staged pipeline output (every IR stage plus the physical
   form with one plan template per relfor site). *)
type prepared = {
  p_query : Xq_ast.query;
  p_form : form;
}

and form =
  | Direct
  | Staged of Pipeline.staged

type t = {
  config : Engine_config.t;
  disk : Storage.Disk.t;
  pool : Storage.Buffer_pool.t;
  catalog : Storage.Catalog.t;
  store : Store.t;
  doc_stats : Xqdb_xasr.Doc_stats.t;
  stats : Stats.t;
  doc : Xml_doc.t;
  root_out : int;
  (* Keyed by query text; plans depend on config and stats, so the cache
     is per engine value and [with_config]/[session] start fresh ones.
     Bounded LRU — a session replaying ad-hoc query text must not grow
     it without bound. *)
  prepared_cache : prepared Plan_cache.t;
  (* The catalog epoch the cached plans were compiled under.  Plans
     reference node stores and statistics by page, so when a document
     load/drop moves the epoch the whole cache is invalid. *)
  mutable cache_epoch : int;
}
(* One engine per session, one session per worker domain. *)
[@@domain_local]

let fresh_cache config = Plan_cache.create config.Engine_config.prepared_cache_capacity

let load_forest ?(config = Engine_config.m4) forest =
  let config = Engine_config.validate config in
  let disk = Storage.Disk.in_memory () in
  let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity
      ~retry_policy:config.Engine_config.retry_policy disk in
  let catalog = Storage.Catalog.attach pool in
  let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
  Store.register store catalog ~stats:doc_stats;
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest forest in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out;
    prepared_cache = fresh_cache config;
    cache_epoch = Storage.Catalog.epoch catalog }

let load ?(config = Engine_config.m4) ?on_file xml =
  let config = Engine_config.validate config in
  let forest = Xml_parser.parse_forest xml in
  match on_file with
  | None -> load_forest ~config forest
  | Some path ->
    let disk = Storage.Disk.on_file path in
    let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity
      ~retry_policy:config.Engine_config.retry_policy disk in
    let catalog = Storage.Catalog.attach pool in
    let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
    Store.register store catalog ~stats:doc_stats;
    let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
    let doc = Xml_doc.of_forest forest in
    let root_out = (Store.root_tuple store).Xasr.nout in
    { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out;
      prepared_cache = fresh_cache config;
      cache_epoch = Storage.Catalog.epoch catalog }

let attach ?(config = Engine_config.m4) ~disk ~pool ~catalog ~store ~doc_stats () =
  let config = Engine_config.validate config in
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest (Reconstruct.root_forest store) in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out;
    prepared_cache = fresh_cache config;
    cache_epoch = Storage.Catalog.epoch catalog }

let with_config config t =
  let config = Engine_config.validate config in
  (* A config switch is a quiescent point: nothing may still hold a page
     pin from the previous configuration's runs. *)
  if Storage.Buffer_pool.sanitizing t.pool then
    Storage.Buffer_pool.assert_unpinned ~where:"Engine.with_config" t.pool;
  { t with
    config;
    stats = Stats.make ~quality:config.Engine_config.quality t.store t.doc_stats;
    prepared_cache = fresh_cache config;
    cache_epoch = Storage.Catalog.epoch t.catalog }

(* A per-session view over the same database: shares the store, pool and
   statistics (all read-only after load) but owns its prepared-plan
   cache.  Plans hold mutable state — parameter slots, operator cursors,
   accumulating stats — so two sessions must never execute the same
   prepared value; per-session caches give each session its own compiled
   copies.  [cache_epoch] is mutable, and record copy makes it
   per-session too. *)
let session t = { t with prepared_cache = fresh_cache t.config }

let config t = t.config
let store t = t.store
let doc_stats t = t.doc_stats
let document t = t.doc
let disk t = t.disk
let pool t = t.pool

(* --- compilation -------------------------------------------------------- *)

let prepared_cache_hits = Storage.Metrics.counter "engine.prepared_cache_hits"
let prepared_cache_evictions = Storage.Metrics.counter "engine.prepared_cache_evictions"
let prepared_cache_invalidations = Storage.Metrics.counter "engine.prepared_cache_invalidations"

let pipeline_ctx t =
  { Pipeline.config =
      { Pipeline.rewrite = t.config.Engine_config.rewrite;
        merge_relfors = t.config.Engine_config.merge_relfors;
        planner = t.config.Engine_config.planner;
        batch_size = t.config.Engine_config.batch_size;
        scan_domains = t.config.Engine_config.scan_domains };
    stats = t.stats;
    store = t.store }

(* Wholesale invalidation when the catalog epoch has moved since the
   cached plans were compiled: a document load/drop changes the set of
   node stores and the statistics plans were costed against.  If this
   engine's own document is among the dropped, there is nothing valid to
   recompile against either — its store references dead pages — so that
   surfaces as typed corruption (censored to an [Io_error] status by
   [measured]), never as silently-stale results. *)
let revalidate_cache t =
  let epoch = Storage.Catalog.epoch t.catalog in
  if epoch <> t.cache_epoch then begin
    Plan_cache.clear t.prepared_cache;
    Storage.Metrics.incr prepared_cache_invalidations;
    if List.mem (Store.name t.store) (Store.registered_names t.catalog) then
      t.cache_epoch <- epoch
    else
      (* Leave [cache_epoch] stale so every later compile re-raises. *)
      Storage.Xqdb_error.corrupt "Engine: document %s was dropped" (Store.name t.store)
  end

(* Compile without re-checking; the cache key is the canonical query
   text, so structurally equal queries share one prepared plan. *)
let compile_internal t query =
  revalidate_cache t;
  let key = Xqdb_xq.Xq_print.to_string query in
  match Plan_cache.find t.prepared_cache key with
  | Some p ->
    Storage.Metrics.incr prepared_cache_hits;
    p
  | None ->
    let form =
      match t.config.Engine_config.milestone with
      | Engine_config.M1 | Engine_config.M2 -> Direct
      | Engine_config.M3 | Engine_config.M4 ->
        Staged (Pipeline.compile (pipeline_ctx t) query)
    in
    let p = { p_query = query; p_form = form } in
    Plan_cache.put t.prepared_cache key p
      ~on_evict:(fun _ _ -> Storage.Metrics.incr prepared_cache_evictions);
    p

let compile t query =
  Xq_check.check_exn query;
  compile_internal t query

let prepare = compile

(* --- execution ---------------------------------------------------------- *)

type env = (Xq_ast.var * (int * int)) list

let lookup_env env x =
  match List.assoc_opt x env with
  | Some pair -> pair
  | None -> invalid_arg (Printf.sprintf "Engine: unbound variable %s" (Xqdb_xq.Xq_print.var x))

let as_int = function
  | Tuple.I v -> v
  | Tuple.S _ -> Storage.Xqdb_error.internal "Engine: non-integer binding column"

let out_of t budget nin =
  ignore budget;
  match Store.fetch t.store nin with
  | Some tuple -> tuple.Xasr.nout
  | None -> Storage.Xqdb_error.corrupt "Engine: dangling binding"

let output_of t env x =
  let nin, _ = lookup_env env x in
  if nin = 1 then Reconstruct.root_forest t.store
  else [Reconstruct.subtree_by_in t.store nin]

let guard_holds t budget env c =
  (* Evaluate the residual condition navigationally, fetching tuples
     only for the variables the condition actually mentions. *)
  let needed = Xq_ast.root_var :: Xq_ast.cond_free_vars c in
  let nav_env =
    List.filter_map
      (fun (v, (nin, _)) ->
        if not (List.mem v needed) then None
        else
          match Store.fetch t.store nin with
          | Some tuple -> Some (v, tuple)
          | None -> None)
      env
  in
  Nav_eval.eval_cond ?budget t.store nav_env c

(* Each relfor site's template carries its own operator tree; stats
   accumulate in place across rebinds, so a nested site's profile is the
   aggregate over all its outer bindings — including on aborted runs
   (budget exhausted, disk fault), which keep a partial breakdown. *)

let arm_staged (staged : Pipeline.staged) budget =
  Plan_ir.iter_sites
    (fun site ->
      Op.set_budget site.Plan_ir.template.Planner.ctx budget;
      Op.zero_stats site.Plan_ir.template.Planner.op)
    staged.Pipeline.phys

let staged_profiles (staged : Pipeline.staged) =
  List.map
    (fun (site : Plan_ir.site) -> Op.profile site.Plan_ir.template.Planner.op)
    (Plan_ir.sites staged.Pipeline.phys)

let rec exec t budget (env : env) (phys : Plan_ir.phys) : Tree.forest =
  match phys with
  | Plan_ir.P_empty -> []
  | Plan_ir.P_text s -> [Tree.Text s]
  | Plan_ir.P_constr (label, body) -> [Tree.Elem (label, exec t budget env body)]
  | Plan_ir.P_seq (p1, p2) -> exec t budget env p1 @ exec t budget env p2
  | Plan_ir.P_out x -> output_of t env x
  | Plan_ir.P_guard (c, body) ->
    if guard_holds t budget env c then exec t budget env body else []
  | Plan_ir.P_relfor site ->
    let tmpl = site.Plan_ir.template in
    (* Bind this environment's outer values into the parameter slots and
       clear only the parameter-dependent caches; the template's
       operator tree itself is reused, never rebuilt. *)
    Planner.bind tmpl ~env:(lookup_env env);
    let op = tmpl.Planner.op in
    let carry = tmpl.Planner.plan.Planner.config.Planner.carry_out in
    let width = if carry then 2 else 1 in
    if site.Plan_ir.bindings = [] then begin
      (* A nullary relfor is an existence test: its projection holds at
         most the empty tuple, so the first (non-empty) batch decides. *)
      match op.Op.next_batch () with
      | Some _ ->
        Op.close tmpl.Planner.ctx op;
        exec t budget env site.Plan_ir.body
      | None ->
        Op.close tmpl.Planner.ctx op;
        []
    end
    else
    let rec loop acc =
      match op.Op.next_batch () with
      | None ->
        Op.close tmpl.Planner.ctx op;
        List.concat (List.rev acc)
      | Some b ->
        (* The batch is the operator's reusable storage: every binding is
           read out of the column arrays before the next [next_batch]
           call overwrites them.  Body execution between rows is safe —
           nested sites run their own operator trees. *)
        let rec rows row acc =
          if row >= b.Tuple.len then acc
          else begin
            let env' =
              List.concat
                (List.mapi
                   (fun i (bind : A.binding) ->
                     let nin = as_int b.Tuple.cols.(i * width).(row) in
                     let nout =
                       if carry then as_int b.Tuple.cols.((i * width) + 1).(row)
                       else out_of t budget nin
                     in
                     [(bind.A.var, (nin, nout))])
                   site.Plan_ir.bindings)
              @ env
            in
            rows (row + 1) (exec t budget env' site.Plan_ir.body :: acc)
          end
        in
        loop (rows 0 acc)
    in
    loop []

(* --- public entry points ------------------------------------------------ *)

type status =
  | Ok
  | Budget_exceeded of string
  | Timeout of string
  | Error of string
  | Io_error of string

type op_profile = Op.profile = {
  op : string;
  args : string;
  rows : int;
  batches : int;
  ios : int;
  own_ios : int;
  seconds : float;
  own_seconds : float;
  inputs : op_profile list;
}

type profile = {
  reads : int;
  writes : int;
  allocs : int;
  pool : Storage.Buffer_pool.stats;
  counters : Storage.Metrics.snapshot;
  operators : op_profile list;
  operator_ios : int;
  other_ios : int;
}

type result = {
  output : string;
  status : status;
  elapsed : float;
  page_ios : int;
  profile : profile;
}

let root_env t = [(Xq_ast.root_var, (1, t.root_out))]

(* Run a prepared query.  [operators] is filled with a profile producer
   before execution starts, so the caller can harvest per-site operator
   breakdowns even when the run aborts mid-way. *)
let rec run_form t budget operators (p : prepared) : Tree.forest =
  match (p.p_form, t.config.Engine_config.milestone) with
  | Direct, Engine_config.M1 -> Xq_eval.eval t.doc p.p_query
  | Direct, Engine_config.M2 -> Nav_eval.eval ?budget t.store p.p_query
  | Direct, (Engine_config.M3 | Engine_config.M4) ->
    (* Prepared under a direct-evaluation configuration but executed on
       an algebraic one: compile (through the cache) and re-dispatch. *)
    run_form t budget operators (compile_internal t p.p_query)
  | Staged staged, _ ->
    arm_staged staged budget;
    operators := (fun () -> staged_profiles staged);
    exec t budget (root_env t) staged.Pipeline.phys

let eval t query =
  let operators = ref (fun () -> []) in
  run_form t None operators (compile_internal t query)

let pool_delta (a : Storage.Buffer_pool.stats) (b : Storage.Buffer_pool.stats) :
    Storage.Buffer_pool.stats =
  { hits = b.hits - a.hits;
    misses = b.misses - a.misses;
    evictions = b.evictions - a.evictions;
    retries = b.retries - a.retries }

let measured t ~operators thunk =
  let before = Storage.Disk.counters t.disk in
  let pool_before = Storage.Buffer_pool.stats t.pool in
  let metrics_before = Storage.Metrics.snapshot () in
  (* Callers may hold pins of their own across a run; the run is only
     required to release everything *it* acquires. *)
  let pin_base = Storage.Buffer_pool.pin_baseline t.pool in
  (* Wall clock: [Sys.time] is process CPU time, which under concurrent
     sessions charges every session for every other session's work and
     misses I/O and latch wait entirely. *)
  let start = Storage.Monotonic.now () in
  let status, output =
    match thunk () with
    | forest -> (Ok, Xml_print.forest_to_string forest)
    | exception Storage.Budget.Exhausted msg -> (Budget_exceeded msg, "")
    | exception Storage.Budget.Deadline_exceeded msg -> (Timeout msg, "")
    | exception Xq_eval.Type_error msg -> (Error msg, "")
    | exception Storage.Disk.Disk_error msg -> (Io_error msg, "")
    (* Resource conditions surface as statuses too: a query against a
       fully-pinned pool or an overfull page must censor, not crash. *)
    | exception Storage.Buffer_pool.Pool_exhausted msg -> (Io_error msg, "")
    | exception Storage.Page.Page_full msg -> (Io_error msg, "")
    (* Typed data errors (dangling index entries, missing catalog keys)
       censor like disk faults; malformed input surfaces as Error.
       Xqdb_error.Internal is deliberately NOT caught — an engine bug
       must crash loudly, not be censored. *)
    | exception Storage.Xqdb_error.Corrupt msg -> (Io_error ("corrupt: " ^ msg), "")
    | exception Shredder.Shred_error msg -> (Error msg, "")
  in
  (* The pin-sanitizer checkpoint: whatever happened above — completion,
     budget exhaustion, a disk fault mid-scan — every pin the run
     acquired must be released by now. *)
  if Storage.Buffer_pool.sanitizing t.pool then
    Storage.Buffer_pool.assert_balanced ~where:"Engine.run" ~baseline:pin_base t.pool;
  let elapsed = Storage.Monotonic.elapsed_since start in
  let after = Storage.Disk.counters t.disk in
  let reads = after.Storage.Disk.reads - before.Storage.Disk.reads in
  let writes = after.Storage.Disk.writes - before.Storage.Disk.writes in
  let allocs = after.Storage.Disk.allocs - before.Storage.Disk.allocs in
  let operators = !operators () in
  let operator_ios = List.fold_left (fun acc (p : op_profile) -> acc + p.ios) 0 operators in
  let profile =
    { reads;
      writes;
      allocs;
      pool = pool_delta pool_before (Storage.Buffer_pool.stats t.pool);
      counters = Storage.Metrics.diff (Storage.Metrics.snapshot ()) metrics_before;
      operators;
      operator_ios;
      other_ios = reads + writes - operator_ios }
  in
  { output; status; elapsed; page_ios = reads + writes; profile }

let run ?max_page_ios ?max_seconds ?deadline t query =
  Xq_check.check_exn query;
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds ?deadline t.disk in
  let operators = ref (fun () -> []) in
  (* Compiling inside the measured window keeps template-construction
     I/O (cursors opened while building plans) in the run's accounting;
     a cache hit makes it free, which is the point. *)
  measured t ~operators (fun () ->
    run_form t (Some budget) operators (compile_internal t query))

let run_prepared ?max_page_ios ?max_seconds ?deadline t prepared =
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds ?deadline t.disk in
  let operators = ref (fun () -> []) in
  measured t ~operators (fun () -> run_form t (Some budget) operators prepared)

let execute = run_prepared

let run_string ?max_page_ios ?max_seconds ?deadline t input =
  run ?max_page_ios ?max_seconds ?deadline t (Xq_parser.parse input)

let status_label = function
  | Ok -> "ok"
  | Budget_exceeded msg -> "budget exceeded: " ^ msg
  | Timeout msg -> "timeout: " ^ msg
  | Error msg -> "error: " ^ msg
  | Io_error msg -> "I/O error: " ^ msg

let explain ?(analyze = false) t query =
  match t.config.Engine_config.milestone with
  | Engine_config.M1 -> "milestone 1: in-memory denotational evaluation"
  | Engine_config.M2 -> "milestone 2: navigational evaluation over the XASR store"
  | Engine_config.M3 | Engine_config.M4 ->
    Xq_check.check_exn query;
    let prepared = compile_internal t query in
    let staged =
      match prepared.p_form with
      | Staged staged -> staged
      | Direct ->
        (* Cannot happen: milestones 3/4 always stage.  Recompile
           defensively rather than assert. *)
        Pipeline.compile (pipeline_ctx t) query
    in
    let base = Pipeline.render_staged staged in
    if not analyze then base
    else begin
      let r = run_prepared t prepared in
      let buf = Buffer.create (String.length base + 1024) in
      Buffer.add_string buf base;
      Buffer.add_string buf "== analyze ==\n";
      let root_rows = List.fold_left (fun acc p -> acc + p.rows) 0 r.profile.operators in
      let root_batches = List.fold_left (fun acc p -> acc + p.batches) 0 r.profile.operators in
      Buffer.add_string buf
        (Printf.sprintf "status: %s\npage I/Os: %d  (operators %d, other %d)\n"
           (status_label r.status) r.page_ios r.profile.operator_ios r.profile.other_ios);
      Buffer.add_string buf
        (Printf.sprintf "rows out: %d in %d batches\n" root_rows root_batches);
      List.iteri
        (fun i p ->
          Buffer.add_string buf (Printf.sprintf "\nsite %d:\n" i);
          Buffer.add_string buf (Op.profile_to_string p);
          Buffer.add_string buf "\n")
        r.profile.operators;
      Buffer.contents buf
    end
