module Tree = Xqdb_xml.Xml_tree
module Xml_doc = Xqdb_xml.Xml_doc
module Xml_parser = Xqdb_xml.Xml_parser
module Xml_print = Xqdb_xml.Xml_print
module Xq_ast = Xqdb_xq.Xq_ast
module Xq_parser = Xqdb_xq.Xq_parser
module Xq_check = Xqdb_xq.Xq_check
module Xq_eval = Xqdb_xq.Xq_eval
module Storage = Xqdb_storage
module Store = Xqdb_xasr.Node_store
module Shredder = Xqdb_xasr.Shredder
module Reconstruct = Xqdb_xasr.Reconstruct
module Nav_eval = Xqdb_xasr.Nav_eval
module Xasr = Xqdb_xasr.Xasr
module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Tpm_print = Xqdb_tpm.Tpm_print
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple
module Stats = Xqdb_optimizer.Stats
module Planner = Xqdb_optimizer.Planner

type t = {
  config : Engine_config.t;
  disk : Storage.Disk.t;
  pool : Storage.Buffer_pool.t;
  catalog : Storage.Catalog.t;
  store : Store.t;
  doc_stats : Xqdb_xasr.Doc_stats.t;
  stats : Stats.t;
  doc : Xml_doc.t;
  root_out : int;
}

let load_forest ?(config = Engine_config.m4) forest =
  let disk = Storage.Disk.in_memory () in
  let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
  let catalog = Storage.Catalog.attach pool in
  let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
  Store.register store catalog ~stats:doc_stats;
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest forest in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let load ?(config = Engine_config.m4) ?on_file xml =
  let forest = Xml_parser.parse_forest xml in
  match on_file with
  | None -> load_forest ~config forest
  | Some path ->
    let disk = Storage.Disk.on_file path in
    let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
    let catalog = Storage.Catalog.attach pool in
    let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
    Store.register store catalog ~stats:doc_stats;
    let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
    let doc = Xml_doc.of_forest forest in
    let root_out = (Store.root_tuple store).Xasr.nout in
    { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let attach ?(config = Engine_config.m4) ~disk ~pool ~catalog ~store ~doc_stats () =
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest (Reconstruct.root_forest store) in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let with_config config t =
  { t with
    config;
    stats = Stats.make ~quality:config.Engine_config.quality t.store t.doc_stats }

let config t = t.config
let store t = t.store
let doc_stats t = t.doc_stats
let document t = t.doc
let disk t = t.disk
let pool t = t.pool

(* --- compiled TPM ------------------------------------------------------- *)

type compiled =
  | CEmpty
  | CText of string
  | CConstr of string * compiled
  | CSeq of compiled * compiled
  | COut of Xq_ast.var
  | CGuard of Xq_ast.cond * compiled
  | CRelfor of {
      site : int;  (* compile-time id; profiles aggregate per site *)
      bindings : A.binding list;
      plan : Planner.t;
      body : compiled;
    }

let compile_tpm t tpm =
  let next_site = ref 0 in
  let rec go tpm =
    match (tpm : A.t) with
    | A.Empty -> CEmpty
    | A.Text_out s -> CText s
    | A.Constr (label, body) -> CConstr (label, go body)
    | A.Seq (t1, t2) -> CSeq (go t1, go t2)
    | A.Out_var x -> COut x
    | A.Guard (c, body) -> CGuard (c, go body)
    | A.Relfor r ->
      let site = !next_site in
      incr next_site;
      let plan = Planner.plan t.config.Engine_config.planner t.stats r.A.source in
      CRelfor { site; bindings = r.A.source.A.bindings; plan; body = go r.A.body }
  in
  go tpm

(* --- execution ---------------------------------------------------------- *)

type env = (Xq_ast.var * (int * int)) list

let lookup_env env x =
  match List.assoc_opt x env with
  | Some pair -> pair
  | None -> invalid_arg (Printf.sprintf "Engine: unbound variable %s" (Xqdb_xq.Xq_print.var x))

let as_int = function
  | Tuple.I v -> v
  | Tuple.S _ -> failwith "Engine: non-integer binding column"

let out_of t budget nin =
  ignore budget;
  match Store.fetch t.store nin with
  | Some tuple -> tuple.Xasr.nout
  | None -> failwith "Engine: dangling binding"

let output_of t env x =
  let nin, _ = lookup_env env x in
  if nin = 1 then Reconstruct.root_forest t.store
  else [Reconstruct.subtree_by_in t.store nin]

let guard_holds t budget env c =
  (* Evaluate the residual condition navigationally, fetching tuples
     only for the variables the condition actually mentions. *)
  let needed = Xq_ast.root_var :: Xq_ast.cond_free_vars c in
  let nav_env =
    List.filter_map
      (fun (v, (nin, _)) ->
        if not (List.mem v needed) then None
        else
          match Store.fetch t.store nin with
          | Some tuple -> Some (v, tuple)
          | None -> None)
      env
  in
  Nav_eval.eval_cond ?budget t.store nav_env c

(* Per-site operator profiles collected during a run.  Keyed by the
   relfor's compile-time site id: a nested relfor instantiates its tree
   once per outer binding, and the per-instantiation profiles merge into
   one aggregate breakdown per site. *)
type sink = (int, Op.profile) Hashtbl.t

let sink_add (sink : sink) site op =
  let p = Op.profile op in
  match Hashtbl.find_opt sink site with
  | Some prev -> Hashtbl.replace sink site (Op.merge_profile prev p)
  | None -> Hashtbl.add sink site p

let rec exec t budget sink (env : env) compiled : Tree.forest =
  match compiled with
  | CEmpty -> []
  | CText s -> [Tree.Text s]
  | CConstr (label, body) -> [Tree.Elem (label, exec t budget sink env body)]
  | CSeq (c1, c2) -> exec t budget sink env c1 @ exec t budget sink env c2
  | COut x -> output_of t env x
  | CGuard (c, body) ->
    if guard_holds t budget env c then exec t budget sink env body else []
  | CRelfor { site; bindings; plan; body } ->
    let ctx = Op.make_ctx ?budget t.store in
    let op = Planner.instantiate ctx plan ~env:(lookup_env env) in
    (* Collect the profile even when the run aborts mid-drain (budget
       exhausted, disk fault): censored runs keep a partial breakdown. *)
    Fun.protect ~finally:(fun () -> sink_add sink site op) @@ fun () ->
    let carry = plan.Planner.config.Planner.carry_out in
    let width = if carry then 2 else 1 in
    if bindings = [] then begin
      (* A nullary relfor is an existence test: its projection holds at
         most the empty tuple, so the first result decides. *)
      match op.Op.next () with
      | Some _ -> exec t budget sink env body
      | None -> []
    end
    else
    let rec loop acc =
      match op.Op.next () with
      | None -> List.concat (List.rev acc)
      | Some tuple ->
        let env' =
          List.concat
            (List.mapi
               (fun i (b : A.binding) ->
                 let nin = as_int tuple.(i * width) in
                 let nout =
                   if carry then as_int tuple.((i * width) + 1) else out_of t budget nin
                 in
                 [(b.A.var, (nin, nout))])
               bindings)
          @ env
        in
        loop (exec t budget sink env' body :: acc)
    in
    loop []

(* --- public entry points ------------------------------------------------ *)

type status =
  | Ok
  | Budget_exceeded of string
  | Error of string
  | Io_error of string

type op_profile = Op.profile = {
  op : string;
  args : string;
  rows : int;
  ios : int;
  own_ios : int;
  seconds : float;
  own_seconds : float;
  inputs : op_profile list;
}

type profile = {
  reads : int;
  writes : int;
  allocs : int;
  pool : Storage.Buffer_pool.stats;
  counters : Storage.Metrics.snapshot;
  operators : op_profile list;
  operator_ios : int;
  other_ios : int;
}

type result = {
  output : string;
  status : status;
  elapsed : float;
  page_ios : int;
  profile : profile;
}

let root_env t = [(Xq_ast.root_var, (1, t.root_out))]

let eval_algebraic t ?budget ~sink query =
  let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
  let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
  let compiled = compile_tpm t tpm in
  exec t budget sink (root_env t) compiled

let eval_with_budget t ?budget ~sink query =
  match t.config.Engine_config.milestone with
  | Engine_config.M1 -> Xq_eval.eval t.doc query
  | Engine_config.M2 -> Nav_eval.eval ?budget t.store query
  | Engine_config.M3 | Engine_config.M4 -> eval_algebraic t ?budget ~sink query

let eval t query = eval_with_budget t ~sink:(Hashtbl.create 8) query

let pool_delta (a : Storage.Buffer_pool.stats) (b : Storage.Buffer_pool.stats) :
    Storage.Buffer_pool.stats =
  { hits = b.hits - a.hits;
    misses = b.misses - a.misses;
    evictions = b.evictions - a.evictions;
    retries = b.retries - a.retries }

let measured t thunk =
  let before = Storage.Disk.counters t.disk in
  let pool_before = Storage.Buffer_pool.stats t.pool in
  let metrics_before = Storage.Metrics.snapshot () in
  let sink : sink = Hashtbl.create 8 in
  let start = Sys.time () in
  let status, output =
    match thunk sink with
    | forest -> (Ok, Xml_print.forest_to_string forest)
    | exception Storage.Budget.Exhausted msg -> (Budget_exceeded msg, "")
    | exception Xq_eval.Type_error msg -> (Error msg, "")
    | exception Storage.Disk.Disk_error msg -> (Io_error msg, "")
    (* Resource conditions surface as statuses too: a query against a
       fully-pinned pool or an overfull page must censor, not crash. *)
    | exception Storage.Buffer_pool.Pool_exhausted msg -> (Io_error msg, "")
    | exception Storage.Page.Page_full msg -> (Io_error msg, "")
  in
  let elapsed = Sys.time () -. start in
  let after = Storage.Disk.counters t.disk in
  let reads = after.Storage.Disk.reads - before.Storage.Disk.reads in
  let writes = after.Storage.Disk.writes - before.Storage.Disk.writes in
  let allocs = after.Storage.Disk.allocs - before.Storage.Disk.allocs in
  let operators =
    Hashtbl.fold (fun site p acc -> (site, p) :: acc) sink []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let operator_ios = List.fold_left (fun acc (p : op_profile) -> acc + p.ios) 0 operators in
  let profile =
    { reads;
      writes;
      allocs;
      pool = pool_delta pool_before (Storage.Buffer_pool.stats t.pool);
      counters = Storage.Metrics.diff (Storage.Metrics.snapshot ()) metrics_before;
      operators;
      operator_ios;
      other_ios = reads + writes - operator_ios }
  in
  { output; status; elapsed; page_ios = reads + writes; profile }

let run ?max_page_ios ?max_seconds t query =
  Xq_check.check_exn query;
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds t.disk in
  measured t (fun sink -> eval_with_budget t ~budget ~sink query)

type prepared =
  | P_direct of Xq_ast.query  (* milestones 1 and 2 have no compile step *)
  | P_compiled of compiled

let prepare t query =
  Xq_check.check_exn query;
  match t.config.Engine_config.milestone with
  | Engine_config.M1 | Engine_config.M2 -> P_direct query
  | Engine_config.M3 | Engine_config.M4 ->
    let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
    let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
    P_compiled (compile_tpm t tpm)

let run_prepared ?max_page_ios ?max_seconds t prepared =
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds t.disk in
  match prepared with
  | P_direct query -> measured t (fun sink -> eval_with_budget t ~budget ~sink query)
  | P_compiled compiled ->
    measured t (fun sink -> exec t (Some budget) sink (root_env t) compiled)

let run_string ?max_page_ios ?max_seconds t input =
  run ?max_page_ios ?max_seconds t (Xq_parser.parse input)

let explain t query =
  match t.config.Engine_config.milestone with
  | Engine_config.M1 -> "milestone 1: in-memory denotational evaluation"
  | Engine_config.M2 -> "milestone 2: navigational evaluation over the XASR store"
  | Engine_config.M3 | Engine_config.M4 ->
    let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
    let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Tpm_print.to_string tpm);
    Buffer.add_string buf "\n";
    let rec walk (e : A.t) =
      match e with
      | A.Empty | A.Text_out _ | A.Out_var _ -> ()
      | A.Constr (_, body) | A.Guard (_, body) -> walk body
      | A.Seq (t1, t2) ->
        walk t1;
        walk t2
      | A.Relfor r ->
        let plan = Planner.plan t.config.Engine_config.planner t.stats r.A.source in
        Buffer.add_string buf
          (Printf.sprintf "\nplan for relfor (%s):\n%s\n"
             (String.concat ", " (List.map Xqdb_xq.Xq_print.var r.A.vars))
             (Planner.to_string plan));
        walk r.A.body
    in
    walk tpm;
    Buffer.contents buf
