module Tree = Xqdb_xml.Xml_tree
module Xml_doc = Xqdb_xml.Xml_doc
module Xml_parser = Xqdb_xml.Xml_parser
module Xml_print = Xqdb_xml.Xml_print
module Xq_ast = Xqdb_xq.Xq_ast
module Xq_parser = Xqdb_xq.Xq_parser
module Xq_check = Xqdb_xq.Xq_check
module Xq_eval = Xqdb_xq.Xq_eval
module Storage = Xqdb_storage
module Store = Xqdb_xasr.Node_store
module Shredder = Xqdb_xasr.Shredder
module Reconstruct = Xqdb_xasr.Reconstruct
module Nav_eval = Xqdb_xasr.Nav_eval
module Xasr = Xqdb_xasr.Xasr
module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Tpm_print = Xqdb_tpm.Tpm_print
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple
module Stats = Xqdb_optimizer.Stats
module Planner = Xqdb_optimizer.Planner

type t = {
  config : Engine_config.t;
  disk : Storage.Disk.t;
  pool : Storage.Buffer_pool.t;
  catalog : Storage.Catalog.t;
  store : Store.t;
  doc_stats : Xqdb_xasr.Doc_stats.t;
  stats : Stats.t;
  doc : Xml_doc.t;
  root_out : int;
}

let load_forest ?(config = Engine_config.m4) forest =
  let disk = Storage.Disk.in_memory () in
  let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
  let catalog = Storage.Catalog.attach pool in
  let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
  Store.register store catalog ~stats:doc_stats;
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest forest in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let load ?(config = Engine_config.m4) ?on_file xml =
  let forest = Xml_parser.parse_forest xml in
  match on_file with
  | None -> load_forest ~config forest
  | Some path ->
    let disk = Storage.Disk.on_file path in
    let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
    let catalog = Storage.Catalog.attach pool in
    let store, doc_stats = Shredder.shred_forest pool ~name:"doc" forest in
    Store.register store catalog ~stats:doc_stats;
    let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
    let doc = Xml_doc.of_forest forest in
    let root_out = (Store.root_tuple store).Xasr.nout in
    { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let attach ?(config = Engine_config.m4) ~disk ~pool ~catalog ~store ~doc_stats () =
  let stats = Stats.make ~quality:config.Engine_config.quality store doc_stats in
  let doc = Xml_doc.of_forest (Reconstruct.root_forest store) in
  let root_out = (Store.root_tuple store).Xasr.nout in
  { config; disk; pool; catalog; store; doc_stats; stats; doc; root_out }

let with_config config t =
  { t with
    config;
    stats = Stats.make ~quality:config.Engine_config.quality t.store t.doc_stats }

let config t = t.config
let store t = t.store
let doc_stats t = t.doc_stats
let document t = t.doc
let disk t = t.disk
let pool t = t.pool

(* --- compiled TPM ------------------------------------------------------- *)

type compiled =
  | CEmpty
  | CText of string
  | CConstr of string * compiled
  | CSeq of compiled * compiled
  | COut of Xq_ast.var
  | CGuard of Xq_ast.cond * compiled
  | CRelfor of {
      bindings : A.binding list;
      plan : Planner.t;
      body : compiled;
    }

let rec compile_tpm t tpm =
  match (tpm : A.t) with
  | A.Empty -> CEmpty
  | A.Text_out s -> CText s
  | A.Constr (label, body) -> CConstr (label, compile_tpm t body)
  | A.Seq (t1, t2) -> CSeq (compile_tpm t t1, compile_tpm t t2)
  | A.Out_var x -> COut x
  | A.Guard (c, body) -> CGuard (c, compile_tpm t body)
  | A.Relfor r ->
    let plan = Planner.plan t.config.Engine_config.planner t.stats r.A.source in
    CRelfor { bindings = r.A.source.A.bindings; plan; body = compile_tpm t r.A.body }

(* --- execution ---------------------------------------------------------- *)

type env = (Xq_ast.var * (int * int)) list

let lookup_env env x =
  match List.assoc_opt x env with
  | Some pair -> pair
  | None -> invalid_arg (Printf.sprintf "Engine: unbound variable %s" (Xqdb_xq.Xq_print.var x))

let as_int = function
  | Tuple.I v -> v
  | Tuple.S _ -> failwith "Engine: non-integer binding column"

let out_of t budget nin =
  ignore budget;
  match Store.fetch t.store nin with
  | Some tuple -> tuple.Xasr.nout
  | None -> failwith "Engine: dangling binding"

let output_of t env x =
  let nin, _ = lookup_env env x in
  if nin = 1 then Reconstruct.root_forest t.store
  else [Reconstruct.subtree_by_in t.store nin]

let guard_holds t budget env c =
  (* Evaluate the residual condition navigationally, fetching tuples
     only for the variables the condition actually mentions. *)
  let needed = Xq_ast.root_var :: Xq_ast.cond_free_vars c in
  let nav_env =
    List.filter_map
      (fun (v, (nin, _)) ->
        if not (List.mem v needed) then None
        else
          match Store.fetch t.store nin with
          | Some tuple -> Some (v, tuple)
          | None -> None)
      env
  in
  Nav_eval.eval_cond ?budget t.store nav_env c

let rec exec t budget (env : env) compiled : Tree.forest =
  match compiled with
  | CEmpty -> []
  | CText s -> [Tree.Text s]
  | CConstr (label, body) -> [Tree.Elem (label, exec t budget env body)]
  | CSeq (c1, c2) -> exec t budget env c1 @ exec t budget env c2
  | COut x -> output_of t env x
  | CGuard (c, body) -> if guard_holds t budget env c then exec t budget env body else []
  | CRelfor { bindings; plan; body } ->
    let ctx = Op.make_ctx ?budget t.store in
    let op = Planner.instantiate ctx plan ~env:(lookup_env env) in
    let carry = plan.Planner.config.Planner.carry_out in
    let width = if carry then 2 else 1 in
    if bindings = [] then begin
      (* A nullary relfor is an existence test: its projection holds at
         most the empty tuple, so the first result decides. *)
      match op.Op.next () with
      | Some _ -> exec t budget env body
      | None -> []
    end
    else
    let rec loop acc =
      match op.Op.next () with
      | None -> List.concat (List.rev acc)
      | Some tuple ->
        let env' =
          List.concat
            (List.mapi
               (fun i (b : A.binding) ->
                 let nin = as_int tuple.(i * width) in
                 let nout =
                   if carry then as_int tuple.((i * width) + 1) else out_of t budget nin
                 in
                 [(b.A.var, (nin, nout))])
               bindings)
          @ env
        in
        loop (exec t budget env' body :: acc)
    in
    loop []

(* --- public entry points ------------------------------------------------ *)

type status =
  | Ok
  | Budget_exceeded of string
  | Error of string
  | Io_error of string

type result = {
  output : string;
  status : status;
  elapsed : float;
  page_ios : int;
}

let root_env t = [(Xq_ast.root_var, (1, t.root_out))]

let eval_algebraic t ?budget query =
  let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
  let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
  let compiled = compile_tpm t tpm in
  exec t budget (root_env t) compiled

let eval_with_budget t ?budget query =
  match t.config.Engine_config.milestone with
  | Engine_config.M1 -> Xq_eval.eval t.doc query
  | Engine_config.M2 -> Nav_eval.eval ?budget t.store query
  | Engine_config.M3 | Engine_config.M4 -> eval_algebraic t ?budget query

let eval t query = eval_with_budget t query

let ios t =
  let c = Storage.Disk.counters t.disk in
  c.Storage.Disk.reads + c.Storage.Disk.writes

let measured t thunk =
  let before = ios t in
  let start = Sys.time () in
  let status, output =
    match thunk () with
    | forest -> (Ok, Xml_print.forest_to_string forest)
    | exception Storage.Budget.Exhausted msg -> (Budget_exceeded msg, "")
    | exception Xq_eval.Type_error msg -> (Error msg, "")
    | exception Storage.Disk.Disk_error msg -> (Io_error msg, "")
  in
  { output; status; elapsed = Sys.time () -. start; page_ios = ios t - before }

let run ?max_page_ios ?max_seconds t query =
  Xq_check.check_exn query;
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds t.disk in
  measured t (fun () -> eval_with_budget t ~budget query)

type prepared =
  | P_direct of Xq_ast.query  (* milestones 1 and 2 have no compile step *)
  | P_compiled of compiled

let prepare t query =
  Xq_check.check_exn query;
  match t.config.Engine_config.milestone with
  | Engine_config.M1 | Engine_config.M2 -> P_direct query
  | Engine_config.M3 | Engine_config.M4 ->
    let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
    let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
    P_compiled (compile_tpm t tpm)

let run_prepared ?max_page_ios ?max_seconds t prepared =
  let budget = Storage.Budget.create ?max_page_ios ?max_seconds t.disk in
  match prepared with
  | P_direct query -> measured t (fun () -> eval_with_budget t ~budget query)
  | P_compiled compiled -> measured t (fun () -> exec t (Some budget) (root_env t) compiled)

let run_string ?max_page_ios ?max_seconds t input =
  run ?max_page_ios ?max_seconds t (Xq_parser.parse input)

let explain t query =
  match t.config.Engine_config.milestone with
  | Engine_config.M1 -> "milestone 1: in-memory denotational evaluation"
  | Engine_config.M2 -> "milestone 2: navigational evaluation over the XASR store"
  | Engine_config.M3 | Engine_config.M4 ->
    let tpm = Rewrite.query ~config:t.config.Engine_config.rewrite query in
    let tpm = if t.config.Engine_config.merge_relfors then Merge.merge tpm else tpm in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Tpm_print.to_string tpm);
    Buffer.add_string buf "\n";
    let rec walk (e : A.t) =
      match e with
      | A.Empty | A.Text_out _ | A.Out_var _ -> ()
      | A.Constr (_, body) | A.Guard (_, body) -> walk body
      | A.Seq (t1, t2) ->
        walk t1;
        walk t2
      | A.Relfor r ->
        let plan = Planner.plan t.config.Engine_config.planner t.stats r.A.source in
        Buffer.add_string buf
          (Printf.sprintf "\nplan for relfor (%s):\n%s\n"
             (String.concat ", " (List.map Xqdb_xq.Xq_print.var r.A.vars))
             (Planner.to_string plan));
        walk r.A.body
    in
    walk tpm;
    Buffer.contents buf
