(** Estimation-facing statistics (milestone 4).

    Wraps the per-document {!Xqdb_xasr.Doc_stats} with the physical shape
    of the stores (index heights, leaf pages) and an {e estimate quality}
    knob.  [Good] consults the real statistics.  [Unlucky] models the
    paper's second engine — "due to unlucky estimates, the second engine
    decided for an unoptimal query plan" — by assuming uniform label
    frequencies and a canned tree depth, which inverts the ranking of
    joins with very different selectivities. *)

type quality =
  | Good
  | Unlucky

type t

val make : ?quality:quality -> Xqdb_xasr.Node_store.t -> Xqdb_xasr.Doc_stats.t -> t

val quality : t -> quality
val node_count : t -> float
val elem_count : t -> float
val text_count : t -> float

val label_card : t -> string -> float
(** Estimated number of elements with this label. *)

val text_value_card : t -> string -> float
(** Estimated number of text nodes with exactly this value. *)

val avg_depth : t -> float
val avg_fanout : t -> float

(* Per-path statistics, exact under [Good].  All return [None] under
   [Unlucky] — a degraded estimator cannot prove structure absent, so
   callers must fall back to per-label heuristics. *)

val path_chain_card : t -> (Xqdb_xasr.Path_summary.axis * string) list -> float option
(** Exact number of elements matched by a root-anchored step chain;
    [Some 0.] proves the chain matches nothing (Figure 7, test 4). *)

val desc_pair_card : t -> anc:string -> desc:string -> float option
(** Exact (ancestor, descendant) element-pair count for two labels. *)

val child_pair_card : t -> parent:string -> child:string -> float option
(** Exact (parent, child) element-pair count for two labels. *)

val tuples_per_page : t -> float
val primary_height : t -> float
val primary_leaf_pages : t -> float
val label_height : t -> float
val parent_height : t -> float
val struct_height : t -> float
val struct_leaf_pages : t -> float

val struct_pages_of_label : t -> float -> float
(** Leaf pages holding one label's run of the structural index, given
    that label's cardinality. *)

val pages_of_tuples : t -> float -> float
(** Pages needed to hold this many XASR-sized tuples. *)
