(** The query planner (milestones 3 and 4).

    Compiles one PSX expression into a left-deep physical plan, then —
    once — into a {!template}: an operator tree whose outer-variable
    references ([Oextern_in]/[Oextern_out]) are compiled against mutable
    parameter slots.  Per outer-variable environment the engine merely
    {!bind}s the slots and resets the tree (outer relfor bindings are
    runtime constants in the algebra, as in the paper's semantics of
    [[alpha]]n — but the plan shape never depends on their values, so
    replanning per binding is pure waste).

    Milestone 3 mode ([cost_based = false], [use_indexes = false]) mirrors
    the query structure: binding relations in binding order, then the
    existential relations, all joined with order-preserving nested-loop
    joins, selections pushed down to the scans, every intermediate
    optionally written to disk.

    Milestone 4 mode enumerates join orders, chooses between full scans
    and index-based selections, between nested-loop and index nested-loop
    joins (parent, descendant-interval and primary probes), pushes
    projections down to form semijoins where an existential relation's
    columns are dead (Example 6's QP2), and ranks plans with the
    statistics-based cost model.

    Ordering strategies close the milestone-3 discussion:
    - [`Preserve]: only order-valid plans (projection attributes come
      from a prefix of the join order; existential relations in the
      middle are semijoined away), duplicates removed in one pass;
    - [`Mem_sort] / [`Ext_sort]: any join order, sort at the end
      (approach (a));
    - [`Btree_sort]: any join order, sort by inserting into a scratch
      clustered B-tree (the students' workaround, approach (c)). *)

module A := Xqdb_tpm.Tpm_algebra

type order_strategy =
  [ `Preserve
  | `Mem_sort
  | `Ext_sort
  | `Btree_sort ]

type config = {
  use_indexes : bool;
  use_struct : bool;
      (** consult the structural (label, in) index: index-only label
          scans, staircase structural joins, holistic twig matching, and
          per-path selectivities from the path summary *)
  cost_based : bool;
  order : order_strategy;
  materialize : [`Disk | `Mem];
      (** [`Disk]: milestone 3's write-every-intermediate mode *)
  carry_out : bool;  (** vartuples carry out values *)
}

val m3_config : config
(** Structural order, NL joins only, intermediates on disk. *)

val m4_config : config
(** Cost-based, indexes (structural included), pipelined,
    order-preserving. *)

type join_kind =
  | First  (** access path from the unit relation *)
  | Nl of A.pred list
  | Inl_child of A.operand
  | Inl_desc of A.operand * A.operand
  | Inl_pk of A.operand
  | Struct_desc of string * A.operand * A.operand
      (** staircase join against the label's structural-index run; same
          semantics as [Inl_desc], page I/O independent of the outer
          cardinality *)

type step = {
  alias : string;
  access : access;
  join : join_kind;
  local : A.pred list;  (** inner-side predicates *)
  residual : A.pred list;  (** join predicates checked on the combined schema *)
  semijoin_keep : A.col list option;
  est_card : float;  (** estimated cardinality after this step *)
  est_cost : float;  (** cumulative estimated page I/Os *)
}

and access =
  | Full_scan
  | Label_scan of Xqdb_xasr.Xasr.node_type * string
  | Struct_scan of string  (** index-only scan of one label's run *)

type twig_step = {
  tw_alias : string;
  tw_label : string;
  tw_axis : Xqdb_xasr.Path_summary.axis;
      (** relationship to the previous step; the first step's axis is
          relative to the anchor interval *)
  tw_card : float;  (** cumulative estimated matches through this step *)
  tw_cost : float;  (** cumulative estimated page I/Os *)
}

type twig = {
  tw_anchor : (A.operand * A.operand) option;
  tw_steps : twig_step list;
}

type t = {
  config : config;
  steps : step list;
  twig : twig option;
      (** the whole PSX recognized as a root-to-leaf step chain and
          compiled to one holistic twig match over the structural index
          streams instead of a join pipeline; [steps] is empty *)
  sort_cols : A.col list;
  out_cols : A.col list;
  est_cost : float;
  est_card : float;
  provably_empty : bool;
      (** exact (Good-quality) path statistics show the label — or a
          labelled ancestor/descendant or parent/child pair — occurs
          zero times, so the plan is compiled to the empty operator —
          the shortcut behind the instant non-existent-label runs of
          Figure 7 *)
}

val plan : config -> Stats.t -> A.psx -> t

val plan_with_order : config -> Stats.t -> A.psx -> string list -> t
(** Force a relation order (must be a permutation of the PSX aliases);
    used by the Example 6 plan laboratory to build QP0/QP1/QP2. *)

type env = Xqdb_xq.Xq_ast.var -> int * int
(** Outer bindings: variable to (in, out). *)

val plan_externs : t -> Xqdb_xq.Xq_ast.var list
(** The outer variables a plan's predicates and probe operands read,
    deduplicated — the template's parameter signature. *)

(** {2 Parameterized plan templates}

    [template] builds the operator tree exactly once per plan; [bind]
    re-targets it at a new outer environment by writing the parameter
    slots, clearing only the caches that depend on them
    ({!Xqdb_physical.Phys_op.rebind}), and resetting.  The two are
    counted in {!Xqdb_storage.Metrics} as [planner.templates_built] and
    [planner.template_binds]: for a healthy engine the first is
    O(#relfor sites) while the second scales with outer cardinality. *)

type template = {
  plan : t;
  params : Xqdb_physical.Tuple.params;
  ctx : Xqdb_physical.Phys_op.ctx;
      (** the derived context the tree was compiled under; swap budgets
          per run via {!Xqdb_physical.Phys_op.set_budget} *)
  op : Xqdb_physical.Phys_op.t;
}

val template : Xqdb_physical.Phys_op.ctx -> t -> template

val bind : template -> env:env -> unit
(** After [bind], the template's [op] enumerates the plan's result for
    the given outer environment. *)

val instantiate : Xqdb_physical.Phys_op.ctx -> t -> env:env -> Xqdb_physical.Phys_op.t
(** [template] + [bind] in one step — builds a fresh tree per call, so
    only worth using where a plan runs once. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
