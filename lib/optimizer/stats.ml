module Doc_stats = Xqdb_xasr.Doc_stats
module Path_summary = Xqdb_xasr.Path_summary
module Store = Xqdb_xasr.Node_store

type quality =
  | Good
  | Unlucky

type t = {
  doc : Doc_stats.t;
  quality : quality;
  tuples_per_page : float;
  primary_height : float;
  primary_leaf_pages : float;
  label_height : float;
  parent_height : float;
  struct_height : float;
  struct_leaf_pages : float;
  struct_entries : float;
}

let make ?(quality = Good) store doc =
  let count = float_of_int (max 1 (Store.tuple_count store)) in
  let leaf_pages = float_of_int (max 1 (Store.primary_leaf_pages store)) in
  { doc;
    quality;
    tuples_per_page = count /. leaf_pages;
    primary_height = float_of_int (Store.primary_height store);
    primary_leaf_pages = leaf_pages;
    label_height = float_of_int (Store.label_index_height store);
    parent_height = float_of_int (Store.parent_index_height store);
    struct_height = float_of_int (Store.struct_index_height store);
    struct_leaf_pages = float_of_int (max 1 (Store.struct_leaf_pages store));
    struct_entries = float_of_int (max 1 (Store.struct_entry_count store)) }

let quality t = t.quality
let node_count t = float_of_int (max 1 t.doc.Doc_stats.node_count)
let elem_count t = float_of_int (max 1 t.doc.Doc_stats.elem_count)
let text_count t = float_of_int (max 1 t.doc.Doc_stats.text_count)

let label_card t label =
  match t.quality with
  | Good -> float_of_int (Doc_stats.label_count t.doc label)
  | Unlucky ->
    (* The classic reciprocal bug: the estimator effectively inverts
       label frequencies, so rare labels look common and common labels
       look rare.  A uniform average anchors the scale. *)
    let distinct = max 1 (List.length t.doc.Doc_stats.label_counts) in
    let uniform = elem_count t /. float_of_int distinct in
    let real = Float.max 1.0 (float_of_int (Doc_stats.label_count t.doc label)) in
    Float.min (elem_count t) (uniform *. uniform /. real)

let text_value_card t _value =
  match t.quality with
  | Good -> max 1.0 (0.01 *. text_count t)
  | Unlucky -> 0.5 *. text_count t

let avg_depth t =
  match t.quality with
  | Good -> max 1.0 (Doc_stats.avg_depth t.doc)
  | Unlucky -> 2.0

let avg_fanout t =
  (* Children exist under elements and the root. *)
  (node_count t -. 1.0) /. max 1.0 (elem_count t +. 1.0)

(* --- per-path statistics -------------------------------------------------- *)

(* The path summary is exact, so [Good] estimates from it are exact pair
   counts — including 0, which is what makes absent structure provably
   empty.  [Unlucky] never consults paths: it degrades to the per-label
   and depth heuristics and can never prove anything empty. *)

let path_chain_card t steps =
  match t.quality with
  | Good -> Some (float_of_int (Path_summary.chain_card t.doc.Doc_stats.paths steps))
  | Unlucky -> None

let desc_pair_card t ~anc ~desc =
  match t.quality with
  | Good ->
    Some (float_of_int (Path_summary.desc_pair_card t.doc.Doc_stats.paths ~anc ~desc))
  | Unlucky -> None

let child_pair_card t ~parent ~child =
  match t.quality with
  | Good ->
    Some
      (float_of_int (Path_summary.child_pair_card t.doc.Doc_stats.paths ~parent ~child))
  | Unlucky -> None

let tuples_per_page t = t.tuples_per_page
let primary_height t = t.primary_height
let primary_leaf_pages t = t.primary_leaf_pages
let label_height t = t.label_height
let parent_height t = t.parent_height
let struct_height t = t.struct_height
let struct_leaf_pages t = t.struct_leaf_pages

(* Pages of one label's structural-index run: entries are packed
   (label, in) -> (out, level, parent) records, so a label's share of
   the leaf pages is proportional to its cardinality. *)
let struct_pages_of_label t card =
  Float.max 1.0 (Float.ceil (t.struct_leaf_pages *. card /. t.struct_entries))

let pages_of_tuples t card = Float.max 1.0 (Float.ceil (card /. t.tuples_per_page))
