module A = Xqdb_tpm.Tpm_algebra
module Xasr = Xqdb_xasr.Xasr
module Path_summary = Xqdb_xasr.Path_summary
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple

type order_strategy =
  [ `Preserve
  | `Mem_sort
  | `Ext_sort
  | `Btree_sort ]

type config = {
  use_indexes : bool;
  use_struct : bool;
  cost_based : bool;
  order : order_strategy;
  materialize : [`Disk | `Mem];
  carry_out : bool;
}

let m3_config =
  { use_indexes = false; use_struct = false; cost_based = false; order = `Preserve;
    materialize = `Disk; carry_out = true }

let m4_config =
  { use_indexes = true; use_struct = true; cost_based = true; order = `Preserve;
    materialize = `Mem; carry_out = true }

type join_kind =
  | First
  | Nl of A.pred list
  | Inl_child of A.operand
  | Inl_desc of A.operand * A.operand
  | Inl_pk of A.operand
  | Struct_desc of string * A.operand * A.operand

type step = {
  alias : string;
  access : access;
  join : join_kind;
  local : A.pred list;
  residual : A.pred list;
  semijoin_keep : A.col list option;
  est_card : float;
  est_cost : float;
}

and access =
  | Full_scan
  | Label_scan of Xasr.node_type * string
  | Struct_scan of string

type twig_step = {
  tw_alias : string;
  tw_label : string;
  tw_axis : Path_summary.axis;
  tw_card : float;
  tw_cost : float;
}

type twig = {
  tw_anchor : (A.operand * A.operand) option;
  tw_steps : twig_step list;
}

type t = {
  config : config;
  steps : step list;
  twig : twig option;
  sort_cols : A.col list;
  out_cols : A.col list;
  est_cost : float;
  est_card : float;
  provably_empty : bool;
}

type env = Xqdb_xq.Xq_ast.var -> int * int

(* --- predicate classification ------------------------------------------ *)

let is_col_of aliases = function
  | A.Ocol c -> List.mem c.A.rel aliases
  | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ -> false

(* A predicate is available once all aliases it mentions are placed. *)
let available placed p = List.for_all (fun r -> List.mem r placed) (A.pred_rels p)

let mentions alias p = List.mem alias (A.pred_rels p)

(* Predicates on alias [a] alone (constants/externs allowed). *)
let local_preds psx a =
  List.filter (fun p -> A.pred_rels p = [a] || A.pred_rels p = [a; a]) psx.A.preds

(* Predicates newly available when placing [a] after [placed], excluding
   [a]'s local ones. *)
let connecting_preds psx placed a =
  List.filter
    (fun p ->
      mentions a p
      && (not (A.pred_rels p = [a] || A.pred_rels p = [a; a]))
      && available (a :: placed) p)
    psx.A.preds

(* --- feature extraction on local predicates ----------------------------- *)

type features = {
  ntype : Xasr.node_type option;
  value : string option;
  pk : bool;  (* in = const *)
  parent_const : bool;  (* parent_in = const *)
  range_lo : A.operand option;  (* lo < in *)
  range_hi : A.operand option;  (* out < hi *)
}

let is_const = function
  | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ -> true
  | A.Ocol _ -> false

let features_of alias preds =
  let init =
    { ntype = None; value = None; pk = false; parent_const = false; range_lo = None;
      range_hi = None }
  in
  let this field = function
    | A.Ocol c -> String.equal c.A.rel alias && c.A.field = field
    | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ -> false
  in
  List.fold_left
    (fun f (p : A.pred) ->
      match p.A.op with
      | A.Eq ->
        if this A.Type_ p.A.left then
          (match p.A.right with A.Otype ty -> { f with ntype = Some ty } | _ -> f)
        else if this A.Type_ p.A.right then
          (match p.A.left with A.Otype ty -> { f with ntype = Some ty } | _ -> f)
        else if this A.Value p.A.left then
          (match p.A.right with A.Ostr v -> { f with value = Some v } | _ -> f)
        else if this A.Value p.A.right then
          (match p.A.left with A.Ostr v -> { f with value = Some v } | _ -> f)
        else if this A.In p.A.left && is_const p.A.right then { f with pk = true }
        else if this A.In p.A.right && is_const p.A.left then { f with pk = true }
        else if this A.Parent_in p.A.left && is_const p.A.right then
          { f with parent_const = true }
        else if this A.Parent_in p.A.right && is_const p.A.left then
          { f with parent_const = true }
        else f
      | A.Lt ->
        (* x < a.in ; a.out < y *)
        if this A.In p.A.right && is_const p.A.left then { f with range_lo = Some p.A.left }
        else if this A.Out p.A.left && is_const p.A.right then
          { f with range_hi = Some p.A.right }
        else f
      | A.Gt ->
        if this A.In p.A.left && is_const p.A.right then { f with range_lo = Some p.A.right }
        else if this A.Out p.A.right && is_const p.A.left then
          { f with range_hi = Some p.A.left }
        else f)
    init preds

(* --- cardinality estimation -------------------------------------------- *)

let base_card stats feats =
  let n = Stats.node_count stats in
  let typed =
    match feats.ntype, feats.value with
    | Some Xasr.Element, Some v -> Stats.label_card stats v
    | Some Xasr.Element, None -> Stats.elem_count stats
    | Some Xasr.Text, Some v -> Stats.text_value_card stats v
    | Some Xasr.Text, None -> Stats.text_count stats
    | Some Xasr.Root, _ -> 1.0
    | None, Some v -> Stats.label_card stats v +. Stats.text_value_card stats v
    | None, None -> n
  in
  let frac = typed /. n in
  if feats.pk then Float.min 1.0 typed
  else if feats.parent_const then Stats.avg_fanout stats *. frac
  else if feats.range_lo <> None || feats.range_hi <> None then begin
    (* Descendants of one node; of the root, the whole document — but an
       engine that trusts a canned average depth (Unlucky) prices every
       descendant step as a tiny subtree, root included. *)
    match feats.range_lo with
    | Some (A.Oint 1) when Stats.quality stats = Stats.Good -> typed
    | Some _ | None -> Stats.avg_depth stats *. frac
  end
  else typed

(* Selectivity of one join predicate, given both sides placed. *)
let join_pred_selectivity stats (p : A.pred) =
  let n = Stats.node_count stats in
  let field_of = function
    | A.Ocol c -> Some c.A.field
    | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ -> None
  in
  match p.A.op, field_of p.A.left, field_of p.A.right with
  | A.Eq, Some A.Parent_in, Some A.In | A.Eq, Some A.In, Some A.Parent_in -> 1.0 /. n
  | A.Eq, Some A.In, Some A.In -> 1.0 /. n
  | A.Eq, Some A.Value, Some A.Value -> 0.01
  | (A.Lt | A.Gt), Some (A.In | A.Out), Some (A.In | A.Out) ->
    (* Half of an ancestor-descendant pair; the pair together contributes
       avg_depth / n. *)
    Float.sqrt (Stats.avg_depth stats /. n)
  | (A.Eq | A.Lt | A.Gt), _, _ -> 0.5

(* --- per-path structural edges ------------------------------------------ *)

(* The label alias [a] selects on, when its local predicates pin it to
   one element label — the precondition for every per-path estimate. *)
let element_label psx a =
  let feats = features_of a (local_preds psx a) in
  match feats.ntype, feats.value with
  | Some Xasr.Element, Some v -> Some v
  | _ -> None

(* Classify a column-column predicate relative to alias [a]: the two
   halves of a descendant interval ([b.in < a.in], [a.out < b.out]) and
   the child equality ([a.parent_in = b.in]), each with the partner
   alias.  [Gt] is normalized to [Lt]. *)
let edge_of a (p : A.pred) =
  match p.A.op, p.A.left, p.A.right with
  | A.Lt, A.Ocol l, A.Ocol r | A.Gt, A.Ocol r, A.Ocol l ->
    if
      String.equal r.A.rel a && r.A.field = A.In && l.A.field = A.In
      && not (String.equal l.A.rel a)
    then `Lo l.A.rel
    else if
      String.equal l.A.rel a && l.A.field = A.Out && r.A.field = A.Out
      && not (String.equal r.A.rel a)
    then `Hi r.A.rel
    else `Other
  | A.Eq, A.Ocol l, A.Ocol r ->
    if
      String.equal l.A.rel a && l.A.field = A.Parent_in && r.A.field = A.In
      && not (String.equal r.A.rel a)
    then `Child r.A.rel
    else if
      String.equal r.A.rel a && r.A.field = A.Parent_in && l.A.field = A.In
      && not (String.equal l.A.rel a)
    then `Child l.A.rel
    else `Other
  | (A.Eq | A.Lt | A.Gt), _, _ -> `Other

(* Structural edges among [preds] where [a] is the descendant (or child)
   side and both endpoints have known labels: the predicates the edge
   spans, plus the labelled relationship. *)
let labelled_edges psx a preds =
  match element_label psx a with
  | None -> []
  | Some la ->
    let lo =
      List.filter_map
        (fun p ->
          match edge_of a p with `Lo b -> Some (p, b) | `Hi _ | `Child _ | `Other -> None)
        preds
    and hi =
      List.filter_map
        (fun p ->
          match edge_of a p with `Hi b -> Some (p, b) | `Lo _ | `Child _ | `Other -> None)
        preds
    and child =
      List.filter_map
        (fun p ->
          match edge_of a p with `Child b -> Some (p, b) | `Lo _ | `Hi _ | `Other -> None)
        preds
    in
    let desc =
      List.filter_map
        (fun (plo, b) ->
          match
            List.find_opt (fun ((_ : A.pred), b') -> String.equal b b') hi,
            element_label psx b
          with
          | Some (phi, _), Some lb -> Some ([plo; phi], `Desc (lb, la))
          | (Some _ | None), _ -> None)
        lo
    and childs =
      List.filter_map
        (fun (p, b) ->
          match element_label psx b with
          | Some lb -> Some ([p], `Child_of (lb, la))
          | None -> None)
        child
    in
    desc @ childs

let edge_pair_card stats = function
  | `Desc (anc, desc) -> Stats.desc_pair_card stats ~anc ~desc
  | `Child_of (parent, child) -> Stats.child_pair_card stats ~parent ~child

(* Selectivity of the connecting predicates when placing [a].  Where a
   structural edge carries known labels on both ends, the exact per-path
   pair count replaces the depth heuristics (Good statistics only — the
   pair estimators return [None] under Unlucky); everything else keeps
   {!join_pred_selectivity}. *)
let connecting_selectivity stats psx a connecting =
  let generic acc p = acc *. join_pred_selectivity stats p in
  let exact =
    List.find_map
      (fun (handled, edge) ->
        match edge_pair_card stats edge with
        | None -> None
        | Some pairs ->
          let (`Desc (lb, la) | `Child_of (lb, la)) = edge in
          let denom =
            Float.max 1.0 (Stats.label_card stats la)
            *. Float.max 1.0 (Stats.label_card stats lb)
          in
          Some (handled, pairs /. denom))
      (labelled_edges psx a connecting)
  in
  match exact with
  | None -> List.fold_left generic 1.0 connecting
  | Some (handled, sel) ->
    List.fold_left (fun acc p -> if List.memq p handled then acc else generic acc p) sel
      connecting

(* --- cost model --------------------------------------------------------- *)

let access_cost stats access feats =
  match access with
  | Full_scan -> Stats.primary_leaf_pages stats
  | Label_scan (ntype, value) ->
    let matches =
      match ntype with
      | Xasr.Element -> Stats.label_card stats value
      | Xasr.Text -> Stats.text_value_card stats value
      | Xasr.Root -> 1.0
    in
    ignore feats;
    Stats.label_height stats
    +. (matches /. (3.0 *. Stats.tuples_per_page stats))
    +. (matches *. Stats.primary_height stats)
  | Struct_scan value ->
    (* Index-only: the label's run of the structural index, never the
       primary. *)
    ignore feats;
    Stats.struct_height stats
    +. Stats.struct_pages_of_label stats (Stats.label_card stats value)

let probe_cost stats kind feats =
  match kind with
  | Inl_pk _ -> Stats.primary_height stats
  | Inl_child _ ->
    Stats.parent_height stats +. (Stats.avg_fanout stats *. Stats.primary_height stats)
  | Inl_desc (lo, _) ->
    let scanned =
      match lo with
      | A.Oint 1 -> Stats.node_count stats
      | A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ ->
        Stats.avg_depth stats
    in
    ignore feats;
    Stats.primary_height stats +. Stats.pages_of_tuples stats scanned
  | First | Nl _ | Struct_desc _ -> invalid_arg "probe_cost"

(* --- building one candidate plan for a fixed relation order ------------- *)

let binding_aliases psx = List.map (fun b -> b.A.brel) psx.A.bindings

(* Columns of [placed] aliases needed by predicates touching aliases not
   yet placed. *)
let future_needed_cols psx placed remaining =
  List.concat_map
    (fun (p : A.pred) ->
      let rels = A.pred_rels p in
      if List.exists (fun r -> List.mem r remaining) rels then
        List.filter_map
          (function
            | A.Ocol c when List.mem c.A.rel placed -> Some c
            | A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _
              -> None)
          [p.A.left; p.A.right]
      else [])
    psx.A.preds
  |> List.sort_uniq compare

let binding_cols config psx aliases =
  List.concat_map
    (fun (b : A.binding) ->
      if List.mem b.A.brel aliases then
        if config.carry_out then [A.col b.A.brel A.In; A.col b.A.brel A.Out]
        else [A.col b.A.brel A.In]
      else [])
    psx.A.bindings

(* Try to find an index probe for [a] among its available predicates.
   Probe operands must be constants or columns of placed aliases. *)
let find_probe placed a preds =
  let ok_operand op = is_const op || is_col_of placed op in
  let this field = function
    | A.Ocol c -> String.equal c.A.rel a && c.A.field = field
    | A.Oint _ | A.Ostr _ | A.Otype _ | A.Oextern_in _ | A.Oextern_out _ -> false
  in
  let child =
    List.find_opt
      (fun (p : A.pred) ->
        p.A.op = A.Eq
        && ((this A.Parent_in p.A.left && ok_operand p.A.right)
            || (this A.Parent_in p.A.right && ok_operand p.A.left)))
      preds
  in
  let pk =
    List.find_opt
      (fun (p : A.pred) ->
        p.A.op = A.Eq
        && ((this A.In p.A.left && ok_operand p.A.right)
            || (this A.In p.A.right && ok_operand p.A.left)))
      preds
  in
  let lo =
    List.find_opt
      (fun (p : A.pred) ->
        (p.A.op = A.Lt && this A.In p.A.right && ok_operand p.A.left)
        || (p.A.op = A.Gt && this A.In p.A.left && ok_operand p.A.right))
      preds
  in
  let hi =
    List.find_opt
      (fun (p : A.pred) ->
        (p.A.op = A.Lt && this A.Out p.A.left && ok_operand p.A.right)
        || (p.A.op = A.Gt && this A.Out p.A.right && ok_operand p.A.left))
      preds
  in
  let other_side (p : A.pred) field =
    if this field p.A.left then p.A.right else p.A.left
  in
  match pk, child, lo, hi with
  | Some p, _, _, _ -> Some (Inl_pk (other_side p A.In), [p])
  | None, Some p, _, _ -> Some (Inl_child (other_side p A.Parent_in), [p])
  | None, None, Some plo, Some phi ->
    Some (Inl_desc (other_side plo A.In, other_side phi A.Out), [plo; phi])
  | None, None, _, _ -> None

(* Build the plan for a fixed permutation, returning (steps, cost, card)
   or None if the order is invalid under `Preserve. *)
let build_for_order config stats psx order =
  let bindings = binding_aliases psx in
  let preserve = config.order = `Preserve in
  (* `Preserve validity: binding aliases must appear in binding order. *)
  let order_bindings = List.filter (fun a -> List.mem a bindings) order in
  let expected = List.filter (fun a -> List.mem a order) bindings in
  if preserve && order_bindings <> expected then None
  else begin
    let exception Invalid in
    try
      let rec go placed remaining steps card cost =
        match remaining with
        | [] -> Some (List.rev steps, card, cost)
        | a :: rest ->
          let local = local_preds psx a in
          let connecting = connecting_preds psx placed a in
          let feats = features_of a local in
          let access =
            match feats.ntype, feats.value with
            | Some Xasr.Element, Some v when config.use_indexes && config.use_struct ->
              Struct_scan v
            | Some ((Xasr.Element | Xasr.Text) as ty), Some v when config.use_indexes ->
              Label_scan (ty, v)
            | _ -> Full_scan
          in
          let a_card = base_card stats feats in
          let probe =
            if config.use_indexes then find_probe placed a (local @ connecting) else None
          in
          (* Join selectivity from connecting predicates; exact per-path
             pair counts where the structural edges carry labels. *)
          let join_sel = connecting_selectivity stats psx a connecting in
          let out_card =
            if placed = [] then a_card
            else Float.max 0.01 (card *. a_card *. join_sel)
          in
          let nl_cost () =
            let scan_cost = access_cost stats access feats in
            if placed = [] then scan_cost
            else begin
              let inner_pages = Stats.pages_of_tuples stats a_card in
              (* Order-preserving plans rescan the inner per outer tuple
                 (plain NL); the sorting strategies may use the
                 block-nested-loop join, which rescans per block. *)
              let rescan_factor =
                match config.order with
                | `Preserve -> Float.max 1.0 card
                | `Mem_sort | `Ext_sort | `Btree_sort ->
                  Float.max 1.0 (Float.ceil (card /. 64.0))
              in
              let rescans = rescan_factor *. inner_pages in
              (* An in-memory inner is roughly an order of magnitude
                 cheaper to re-iterate than a disk spool. *)
              let rescans, spill =
                match config.materialize with
                | `Disk -> (rescans, inner_pages)
                | `Mem -> (0.05 *. rescans, 0.0)
              in
              scan_cost +. rescans +. spill
            end
          in
          let step_cost, join, local_kept, residual =
            match probe with
            | Some (kind, consumed) ->
              let probe_total = Float.max 1.0 card *. probe_cost stats kind feats in
              (* The staircase join reads the inner label's structural-
                 index run once, whatever the outer cardinality — it
                 replaces a descendant-interval probe whenever the inner
                 is a labelled element. *)
              let kind, probe_total =
                match kind, feats.ntype, feats.value with
                | Inl_desc (lo, hi), Some Xasr.Element, Some v when config.use_struct ->
                  let struct_total =
                    Stats.struct_height stats
                    +. Stats.struct_pages_of_label stats (Stats.label_card stats v)
                  in
                  if (not config.cost_based) || struct_total < probe_total then
                    (Struct_desc (v, lo, hi), struct_total)
                  else (kind, probe_total)
                | _, _, _ -> (kind, probe_total)
              in
              (* Milestone-4 engines rank access methods by cost; the
                 structural engines (cost_based = false) use an index
                 whenever one applies. *)
              if config.cost_based && nl_cost () < probe_total then
                (nl_cost (), (if placed = [] then First else Nl connecting), local, connecting)
              else begin
                let local_kept = List.filter (fun p -> not (List.memq p consumed)) local in
                let residual =
                  List.filter (fun p -> not (List.memq p consumed)) connecting
                in
                (probe_total, kind, local_kept, residual)
              end
            | None ->
              (nl_cost (), (if placed = [] then First else Nl connecting), local, connecting)
          in
          (* Semijoin: drop an existential relation's columns right after
             its join when nothing downstream needs them. *)
          let semijoin_keep =
            if preserve && not (List.mem a bindings) then begin
              let needed = future_needed_cols psx (a :: placed) rest in
              let references_a =
                List.exists (fun (c : A.col) -> String.equal c.A.rel a) needed
              in
              if references_a then begin
                (* Cannot drop [a]; order stays valid only if all bindings
                   are already placed. *)
                if List.exists (fun b -> List.mem b rest) bindings then raise Invalid;
                None
              end
              else begin
                let keep =
                  List.sort_uniq compare
                    (binding_cols config psx (a :: placed) @ needed)
                in
                Some keep
              end
            end
            else begin
              (* A binding relation joined in the middle keeps everything;
                 in `Preserve mode that is fine: binding order is the sort
                 order. *)
              None
            end
          in
          let dedup_card =
            match semijoin_keep with
            | Some _ ->
              (* A semijoin filters the left side: at most one output row
                 per left row, fewer when matches are rare. *)
              Float.max 0.01 (Float.min card out_card)
            | None -> out_card
          in
          let step =
            { alias = a;
              access;
              join;
              local = local_kept;
              residual;
              semijoin_keep;
              est_card = dedup_card;
              est_cost = cost +. step_cost }
          in
          go (a :: placed) rest (step :: steps) dedup_card (cost +. step_cost)
      in
      go [] order [] 1.0 0.0
    with Invalid -> None
  end

(* --- search ------------------------------------------------------------- *)

let structural_order config psx =
  let bindings = binding_aliases psx in
  if config.order = `Preserve then
    bindings @ List.filter (fun a -> not (List.mem a bindings)) psx.A.rels
  else psx.A.rels

let permutations xs =
  let rec go = function
    | [] -> [[]]
    | xs ->
      List.concat_map
        (fun x -> List.map (fun rest -> x :: rest) (go (List.filter (( <> ) x) xs)))
        xs
  in
  go xs

let sort_cols_of psx =
  List.map (fun (b : A.binding) -> A.col b.A.brel A.In) psx.A.bindings

let out_cols_of config psx = binding_cols config psx psx.A.rels

(* With exact (Good) statistics and no updates, the path summary proves
   emptiness: a label absent from every path (the optimization behind
   the paper's observation that the non-existent-label query ran in
   under 0.01 seconds on engines that consulted their statistics), or a
   labelled structural edge whose exact pair count is zero — //a//b over
   sibling <a/><b/>.  Both estimators return [None] under Unlucky: a
   degraded engine proves nothing and executes the plan. *)
let provably_empty config stats psx =
  (config.use_indexes || config.cost_based)
  && List.exists
       (fun a ->
         let label_absent =
           match element_label psx a with
           | Some v ->
             (match Stats.path_chain_card stats [(Path_summary.Descendant, v)] with
              | Some c -> c <= 0.0
              | None -> false)
           | None -> false
         in
         label_absent
         || List.exists
              (fun ((_ : A.pred list), edge) ->
                match edge_pair_card stats edge with
                | Some c -> c <= 0.0
                | None -> false)
              (labelled_edges psx a psx.A.preds))
       psx.A.rels

let finalize config psx (steps, card, cost) =
  let sort_cost =
    match config.order with
    | `Preserve -> 0.0
    | `Mem_sort -> 1.0 +. (card /. 100.0)
    | `Ext_sort -> 3.0 *. Float.max 1.0 (card /. 100.0)
    | `Btree_sort -> 3.0 *. card
  in
  { config;
    steps;
    twig = None;
    sort_cols = sort_cols_of psx;
    out_cols = out_cols_of config psx;
    est_cost = cost +. sort_cost;
    est_card = card;
    provably_empty = false }

(* --- twig recognition ---------------------------------------------------- *)

(* A PSX is a twig (path pattern) when its relations are exactly its
   bindings in binding order, each one a labelled element with no other
   local predicates (the first may carry a constant/extern anchor
   interval), and consecutive relations are linked by exactly one child
   equality or one descendant-interval pair — the shape produced by
   step chains like //NP//NN.  Such a chain can bypass join ordering
   entirely and run as one holistic stack merge over the structural
   index streams. *)
let recognize_twig config stats psx =
  let bindings = binding_aliases psx in
  let rels = psx.A.rels in
  if
    not
      (config.use_indexes && config.use_struct && config.cost_based
       && (match config.order with
           | `Preserve -> true
           | `Mem_sort | `Ext_sort | `Btree_sort -> false))
    || List.length rels < 2
    || List.length rels <> List.length bindings
    || not (List.for_all (fun a -> List.mem a bindings) rels)
  then None
  else begin
    let exception No in
    try
      let placed_preds = ref 0 in
      let anchor = ref None in
      let rec go i placed prev acc = function
        | [] -> List.rev acc
        | a :: rest ->
          let local = local_preds psx a in
          let feats = features_of a local in
          let label =
            match feats.ntype, feats.value with
            | Some Xasr.Element, Some v -> v
            | _ -> raise No
          in
          if feats.pk || feats.parent_const then raise No;
          let expected_local =
            if i = 0 then begin
              match feats.range_lo, feats.range_hi with
              | Some lo, Some hi ->
                anchor := Some (lo, hi);
                4
              | None, None -> 2
              | Some _, None | None, Some _ -> raise No
            end
            else if feats.range_lo <> None || feats.range_hi <> None then raise No
            else 2
          in
          if List.length local <> expected_local then raise No;
          let connecting = connecting_preds psx placed a in
          let axis =
            if i = 0 then
              if connecting = [] then Path_summary.Descendant else raise No
            else begin
              match prev, List.map (edge_of a) connecting with
              | Some b0, ([`Lo b; `Hi b'] | [`Hi b'; `Lo b])
                when String.equal b b0 && String.equal b' b0 ->
                Path_summary.Descendant
              | Some b0, [`Child b] when String.equal b b0 -> Path_summary.Child
              | _, _ -> raise No
            end
          in
          placed_preds := !placed_preds + List.length local + List.length connecting;
          let sel = connecting_selectivity stats psx a connecting in
          let card =
            match acc with
            | [] -> base_card stats feats
            | last :: _ -> Float.max 0.01 (last.tw_card *. base_card stats feats *. sel)
          in
          let cost =
            (match acc with [] -> 0.0 | last :: _ -> last.tw_cost)
            +. Stats.struct_height stats
            +. Stats.struct_pages_of_label stats (Stats.label_card stats label)
          in
          let step =
            { tw_alias = a; tw_label = label; tw_axis = axis; tw_card = card;
              tw_cost = cost }
          in
          go (i + 1) (a :: placed) (Some a) (step :: acc) rest
      in
      let steps = go 0 [] None [] rels in
      if !placed_preds <> List.length psx.A.preds then raise No;
      Some { tw_anchor = !anchor; tw_steps = steps }
    with No -> None
  end

let twig_cost tw =
  match List.rev tw.tw_steps with
  | last :: _ -> last.tw_cost
  | [] -> 0.0

(* A join chain hands each intermediate binding tuple to the next step;
   the stack-based twig evaluation holds only one root-to-leaf stack per
   open path and emits solutions directly.  Charging the chain for the
   pages its non-final intermediates occupy is what makes the twig win
   on deep chains with fat middles, while a two-step chain with a small
   intermediate keeps the generic plan. *)
let intermediate_pages stats (generic : t) =
  match generic.steps with
  | [] | [_] -> 0.0
  | steps ->
    let rec sum = function
      | [] | [_] -> 0.0
      | (step : step) :: rest -> Stats.pages_of_tuples stats step.est_card +. sum rest
    in
    sum steps

let prefer_twig config stats psx generic =
  match recognize_twig config stats psx with
  | Some tw when twig_cost tw < generic.est_cost +. intermediate_pages stats generic ->
    { generic with steps = []; twig = Some tw; est_cost = twig_cost tw }
  | Some _ | None -> generic

let plan config stats psx =
  if provably_empty config stats psx then
    { config;
      steps = [];
      twig = None;
      sort_cols = sort_cols_of psx;
      out_cols = out_cols_of config psx;
      est_cost = Stats.label_height stats;
      est_card = 0.0;
      provably_empty = true }
  else if psx.A.rels = [] then finalize config psx ([], 1.0, 0.0)
  else if not config.cost_based then begin
    match build_for_order config stats psx (structural_order config psx) with
    | Some result -> finalize config psx result
    | None -> Xqdb_storage.Xqdb_error.internal "Planner: structural order invalid"
  end
  else begin
    let candidates =
      if List.length psx.A.rels <= 7 then permutations psx.A.rels
      else [structural_order config psx]
    in
    let best =
      List.fold_left
        (fun best order ->
          match build_for_order config stats psx order with
          | None -> best
          | Some (_, _, cost) as result ->
            (match best with
             | Some (_, _, best_cost) when best_cost <= cost -> best
             | Some _ | None -> result))
        None candidates
    in
    match best with
    | Some result -> prefer_twig config stats psx (finalize config psx result)
    | None ->
      (match build_for_order config stats psx (structural_order config psx) with
       | Some result -> finalize config psx result
       | None -> Xqdb_storage.Xqdb_error.internal "Planner: no valid join order")
  end

let plan_with_order config stats psx order =
  if List.sort compare order <> List.sort compare psx.A.rels then
    invalid_arg "Planner.plan_with_order: not a permutation of the PSX relations";
  match build_for_order config stats psx order with
  | Some result -> finalize config psx result
  | None -> invalid_arg "Planner.plan_with_order: order invalid under this configuration"

(* --- templates ---------------------------------------------------------- *)

let templates_built = Xqdb_storage.Metrics.counter "planner.templates_built"
let template_binds = Xqdb_storage.Metrics.counter "planner.template_binds"

type template = {
  plan : t;
  params : Tuple.params;
  ctx : Op.ctx;
  op : Op.t;
}

let operand_externs = function
  | A.Oextern_in x | A.Oextern_out x -> [x]
  | A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _ -> []

let step_externs step =
  let of_preds ps = List.concat_map A.pred_externs ps in
  of_preds step.local @ of_preds step.residual
  @ (match step.join with
     | First -> []
     | Nl preds -> of_preds preds
     | Inl_child op | Inl_pk op -> operand_externs op
     | Inl_desc (lo, hi) | Struct_desc (_, lo, hi) ->
       operand_externs lo @ operand_externs hi)

let plan_externs plan =
  let twig_externs =
    match plan.twig with
    | Some { tw_anchor = Some (lo, hi); _ } -> operand_externs lo @ operand_externs hi
    | Some { tw_anchor = None; _ } | None -> []
  in
  List.sort_uniq compare (twig_externs @ List.concat_map step_externs plan.steps)

(* Build the operator tree for a plan once.  External references stay in
   the predicates/probes: the operators compile them against the
   context's parameter slots, so the tree serves every outer binding. *)
let build_twig ctx plan tw =
  let steps =
    List.map
      (fun s ->
        { Op.tw_alias = s.tw_alias;
          tw_label = s.tw_label;
          tw_axis =
            (match s.tw_axis with
             | Path_summary.Child -> Op.Twig_child
             | Path_summary.Descendant -> Op.Twig_desc) })
      tw.tw_steps
  in
  Op.project ~cols:plan.out_cols ~dedup:`Adjacent
    (Op.twig_match ctx ~anchor:tw.tw_anchor ~steps)

let build ctx plan =
  if plan.provably_empty then Op.empty plan.out_cols
  else match plan.twig with
  | Some tw -> build_twig ctx plan tw
  | None ->
  begin
  let maybe_spool op =
    match plan.config.materialize with
    | `Disk -> Op.materialize `Disk op ctx
    | `Mem -> op
  in
  let access_op step preds =
    match step.access with
    | Full_scan ->
      (* A multi-domain context partitions the primary scan across
         domains; single-domain contexts keep the streaming scan. *)
      if ctx.Op.scan_domains > 1 then
        Op.par_scan ctx ~domains:ctx.Op.scan_domains step.alias ~preds
      else Op.full_scan ctx step.alias ~preds
    | Label_scan (ntype, value) -> Op.label_scan ctx step.alias ~ntype ~value ~preds
    | Struct_scan label -> Op.struct_scan ctx step.alias ~label ~preds
  in
  let left =
    List.fold_left
      (fun left step ->
        let local = step.local in
        let residual = step.residual in
        (* A step whose columns are immediately projected away is a pure
           existence test: its join can stop at the first match. *)
        let semi =
          match step.semijoin_keep with
          | Some keep -> not (List.exists (fun (c : A.col) -> String.equal c.A.rel step.alias) keep)
          | None -> false
        in
        let materialize_inner =
          match plan.config.materialize with
          | `Disk -> `Disk
          | `Mem -> `Mem
        in
        let join_to l =
          match step.join with
          | First -> access_op step local
          | Nl preds ->
            let inner = access_op step local in
            (match plan.config.order with
             | `Preserve -> Op.nl_join ~materialize_inner ~semi ~preds l inner ctx
             | `Mem_sort | `Ext_sort | `Btree_sort ->
               (* Order is restored by the final sort, so the cheaper,
                  order-destroying block join is allowed. *)
               Op.bnl_join ~preds l inner ctx)
          | Inl_child op ->
            Op.inl_join ~semi ctx ~probe:(Op.Probe_child op) ~alias:step.alias
              ~preds:local ~residual l
          | Inl_desc (lo, hi) ->
            Op.inl_join ~semi ctx
              ~probe:(Op.Probe_desc (lo, hi))
              ~alias:step.alias ~preds:local ~residual l
          | Inl_pk op ->
            Op.inl_join ~semi ctx ~probe:(Op.Probe_pk op) ~alias:step.alias
              ~preds:local ~residual l
          | Struct_desc (label, lo, hi) ->
            Op.struct_join ~semi ctx ~lo ~hi ~alias:step.alias ~label ~preds:local
              ~residual l
        in
        let joined =
          match step.join, left with
          | First, None -> access_op step local
          | First, Some _ -> Xqdb_storage.Xqdb_error.internal "Planner.build: First after first step"
          | (Nl _ | Inl_child _ | Inl_desc _ | Inl_pk _ | Struct_desc _), Some l -> join_to l
          | (Nl _ | Inl_child _ | Inl_desc _ | Inl_pk _ | Struct_desc _), None ->
            (* First relation accessed through an index probe from the
               unit relation (constant probe operands). *)
            join_to (Op.singleton [] [||])
        in
        let with_semijoin =
          match step.semijoin_keep with
          | Some keep -> Op.project ~cols:keep ~dedup:`Adjacent joined
          | None -> joined
        in
        Some (maybe_spool with_semijoin))
      None plan.steps
  in
  let base =
    match left with
    | Some op -> op
    | None -> Op.singleton [] [||]  (* nullary PSX over no relations *)
  in
  match plan.config.order with
  | `Preserve -> Op.project ~cols:plan.out_cols ~dedup:`Adjacent base
  | `Mem_sort ->
    Op.project ~cols:plan.out_cols ~dedup:`No
      (Op.sort ~dedup:true ~mode:`In_mem ~key_cols:plan.sort_cols base ctx)
  | `Ext_sort ->
    Op.project ~cols:plan.out_cols ~dedup:`No
      (Op.sort ~dedup:true ~mode:`External ~key_cols:plan.sort_cols base ctx)
  | `Btree_sort ->
    Op.project ~cols:plan.out_cols ~dedup:`No
      (Op.btree_sort ~dedup:true ~key_cols:plan.sort_cols base ctx)
  end

let template ctx plan =
  let params = Tuple.make_params (plan_externs plan) in
  let ctx = Op.with_params ctx params in
  let op = build ctx plan in
  Xqdb_storage.Metrics.incr templates_built;
  { plan; params; ctx; op }

let bind tmpl ~env =
  Xqdb_storage.Metrics.incr template_binds;
  Tuple.bind_params tmpl.params env;
  Op.rebind tmpl.op;
  tmpl.op.Op.reset ()

let instantiate ctx plan ~env =
  let tmpl = template ctx plan in
  bind tmpl ~env;
  tmpl.op

(* --- explain ------------------------------------------------------------ *)

let join_kind_name = function
  | First -> "access"
  | Nl _ -> "nl-join"
  | Inl_child _ -> "inl-join(child)"
  | Inl_desc _ -> "inl-join(desc)"
  | Inl_pk _ -> "inl-join(pk)"
  | Struct_desc _ -> "struct-join(desc)"

let pp ppf plan =
  Format.fprintf ppf "@[<v>";
  if plan.provably_empty then Format.fprintf ppf "provably empty (path statistics)@,";
  (match plan.twig with
   | Some tw ->
     List.iteri
       (fun i s ->
         let name =
           if i = 0 then "twig-anchor"
           else
             match s.tw_axis with
             | Path_summary.Child -> "twig(child)"
             | Path_summary.Descendant -> "twig(desc)"
         in
         Format.fprintf ppf "%-16s XASR[%s] via sidx(%s)  (card %.1f, cost %.1f)@," name
           s.tw_alias s.tw_label s.tw_card s.tw_cost)
       tw.tw_steps
   | None -> ());
  List.iter
    (fun step ->
      let access =
        match step.access, step.join with
        | _, Struct_desc (v, _, _) -> Printf.sprintf "sidx(%s)" v
        | _, (Inl_child _ | Inl_desc _ | Inl_pk _) -> "index probe"
        | Full_scan, _ -> "scan"
        | Label_scan (ty, v), _ ->
          Printf.sprintf "idx(%s,%s)" (Xasr.node_type_name ty) v
        | Struct_scan v, _ -> Printf.sprintf "sidx(%s)" v
      in
      Format.fprintf ppf "%-16s XASR[%s] via %s%s  (card %.1f, cost %.1f)@,"
        (join_kind_name step.join) step.alias access
        (match step.semijoin_keep with
         | Some _ -> ", then semijoin-project"
         | None -> "")
        step.est_card step.est_cost)
    plan.steps;
  let order =
    match plan.config.order with
    | `Preserve -> "order-preserving; one-pass dedup projection"
    | `Mem_sort -> "in-memory sort + dedup"
    | `Ext_sort -> "external sort + dedup"
    | `Btree_sort -> "clustered B-tree sort + dedup"
  in
  Format.fprintf ppf "output: %s  (est. card %.1f, est. cost %.1f)@]" order plan.est_card
    plan.est_cost

let to_string plan = Format.asprintf "%a" pp plan
