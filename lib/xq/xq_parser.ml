open Xq_ast

exception Parse_error of string

type cursor = {
  input : string;
  mutable pos : int;
  mutable gensym : int;
}
[@@domain_local]

let fail cur fmt =
  Format.kasprintf
    (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" cur.pos msg)))
    fmt

let fresh cur =
  cur.gensym <- cur.gensym + 1;
  Printf.sprintf "#g%d" cur.gensym

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let len cur = String.length cur.input
let eof cur = cur.pos >= len cur
let peek cur = if eof cur then '\000' else cur.input.[cur.pos]

let skip_ws cur =
  while (not (eof cur)) && is_ws cur.input.[cur.pos] do
    cur.pos <- cur.pos + 1
  done

(* Does [s] start at the current position? Does not consume. *)
let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= len cur && String.sub cur.input cur.pos n = s

let eat cur s =
  skip_ws cur;
  if looking_at cur s then cur.pos <- cur.pos + String.length s
  else fail cur "expected %S" s

let try_eat cur s =
  skip_ws cur;
  if looking_at cur s then begin
    cur.pos <- cur.pos + String.length s;
    true
  end
  else false

let scan_name cur =
  skip_ws cur;
  if eof cur || not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char cur.input.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  String.sub cur.input start (cur.pos - start)

(* A keyword is a name not followed by a name character; [looking_at_kw]
   does not consume. *)
let looking_at_kw cur kw =
  skip_ws cur;
  looking_at cur kw
  && (cur.pos + String.length kw >= len cur
      || not (is_name_char cur.input.[cur.pos + String.length kw]))

let eat_kw cur kw =
  if looking_at_kw cur kw then cur.pos <- cur.pos + String.length kw
  else fail cur "expected keyword %S" kw

let try_eat_kw cur kw =
  if looking_at_kw cur kw then begin
    cur.pos <- cur.pos + String.length kw;
    true
  end
  else false

let scan_var cur =
  eat cur "$";
  (* A leading '#' admits internal names (desugaring gensyms, the root
     variable), so that pretty-printed queries always re-parse. *)
  let hash = if peek cur = '#' then (cur.pos <- cur.pos + 1; "#") else "" in
  let name = hash ^ scan_name cur in
  if String.equal name "root" then root_var else name

let scan_string cur =
  skip_ws cur;
  if peek cur <> '"' then fail cur "expected a string literal";
  cur.pos <- cur.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof cur then fail cur "unterminated string literal"
    else if peek cur = '"' then begin
      cur.pos <- cur.pos + 1;
      (* XQuery-style doubled-quote escape. *)
      if peek cur = '"' then begin
        Buffer.add_char buf '"';
        cur.pos <- cur.pos + 1;
        go ()
      end
    end
    else begin
      Buffer.add_char buf (peek cur);
      cur.pos <- cur.pos + 1;
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* --- Paths ----------------------------------------------------------- *)

(* One step after '/' or '//' has been consumed. *)
let rec scan_step cur descendant =
  let axis = if descendant then Descendant else Child in
  skip_ws cur;
  if try_eat cur "*" then (axis, Star)
  else begin
    let name = scan_name cur in
    match name with
    | "text" when try_eat cur "(" ->
      eat cur ")";
      (axis, Text_test)
    | "child" when looking_at cur "::" ->
      eat cur "::";
      if descendant then fail cur "axis given twice";
      scan_step cur false
    | "descendant" when looking_at cur "::" ->
      eat cur "::";
      if descendant then fail cur "axis given twice";
      scan_step cur true
    | name -> (axis, Name name)
  end

(* Steps: ('//'|'/') step, repeated.  Assumes at least one present. *)
let scan_steps cur =
  let rec go acc =
    if try_eat cur "//" then go (scan_step cur true :: acc)
    else if try_eat cur "/" then go (scan_step cur false :: acc)
    else List.rev acc
  in
  let steps = go [] in
  if steps = [] then fail cur "expected a path step" else steps

(* A path expression: $x/..., /... or //... ; returns source and steps. *)
let scan_path cur =
  skip_ws cur;
  if peek cur = '$' then begin
    let v = scan_var cur in
    skip_ws cur;
    if peek cur = '/' then (v, scan_steps cur) else (v, [])
  end
  else (root_var, scan_steps cur)

(* --- Conditions ------------------------------------------------------ *)

let rec scan_cond cur = scan_or cur

and scan_or cur =
  let c1 = scan_and cur in
  if try_eat_kw cur "or" then Or (c1, scan_or cur) else c1

and scan_and cur =
  let c1 = scan_cond_atom cur in
  if try_eat_kw cur "and" then And (c1, scan_and cur) else c1

and scan_cond_atom cur =
  skip_ws cur;
  if try_eat_kw cur "true" then begin
    eat cur "(";
    eat cur ")";
    True
  end
  else if try_eat_kw cur "not" then begin
    eat cur "(";
    let c = scan_cond cur in
    eat cur ")";
    Not c
  end
  else if try_eat_kw cur "some" then begin
    let y = scan_var cur in
    eat_kw cur "in";
    let src, steps = scan_path cur in
    if steps = [] then fail cur "'some' must range over a path";
    eat_kw cur "satisfies";
    let c = scan_cond cur in
    desugar_some cur y src steps c
  end
  else if try_eat cur "(" then begin
    let c = scan_cond cur in
    eat cur ")";
    c
  end
  else if peek cur = '$' then begin
    let x = scan_var cur in
    eat cur "=";
    skip_ws cur;
    if peek cur = '$' then Eq_vars (x, scan_var cur)
    else Eq_const (x, scan_string cur)
  end
  else fail cur "expected a condition"

(* some $y in $x/s1/../sn satisfies c
   == some $t1 in $x/s1 satisfies ... some $y in $t(n-1)/sn satisfies c *)
and desugar_some cur y src steps c =
  match steps with
  | [] -> assert false
  | [(axis, test)] -> Some_ (y, src, axis, test, c)
  | (axis, test) :: rest ->
    let t = fresh cur in
    Some_ (t, src, axis, test, desugar_some cur y t rest c)

(* --- Queries --------------------------------------------------------- *)

let rec scan_query cur =
  let item = scan_item cur in
  if try_eat cur "," then Seq (item, scan_query cur) else item

and scan_item cur =
  skip_ws cur;
  if try_eat cur "(" then begin
    skip_ws cur;
    if try_eat cur ")" then Empty
    else begin
      let q = scan_query cur in
      eat cur ")";
      q
    end
  end
  else if looking_at_kw cur "for" then scan_for cur
  else if looking_at_kw cur "if" then scan_if cur
  else if looking_at_kw cur "text" then begin
    eat_kw cur "text";
    eat cur "{";
    let s = scan_string cur in
    eat cur "}";
    Text_lit s
  end
  else if peek cur = '<' then scan_constructor cur
  else if peek cur = '$' || peek cur = '/' then begin
    let src, steps = scan_path cur in
    desugar_path cur src steps
  end
  else fail cur "expected a query"

and scan_for cur =
  eat_kw cur "for";
  let y = scan_var cur in
  eat_kw cur "in";
  let src, steps = scan_path cur in
  if steps = [] then fail cur "'for' must range over a path";
  eat_kw cur "return";
  let body = scan_item cur in
  desugar_for cur y src steps body

(* for $y in $x/s1/../sn return q
   == for $t1 in $x/s1 return ... for $y in $t(n-1)/sn return q *)
and desugar_for cur y src steps body =
  match steps with
  | [] -> assert false
  | [(axis, test)] -> For (y, src, axis, test, body)
  | (axis, test) :: rest ->
    let t = fresh cur in
    For (t, src, axis, test, desugar_for cur y t rest body)

(* $x/s1/../sn as a query == for $t in $x/s1 return $t/s2/../sn *)
and desugar_path cur src steps =
  match steps with
  | [] -> Var src
  | [(axis, test)] -> Path (src, axis, test)
  | (axis, test) :: rest ->
    let t = fresh cur in
    For (t, src, axis, test, desugar_path cur t rest)

and scan_if cur =
  eat_kw cur "if";
  eat cur "(";
  let c = scan_cond cur in
  eat cur ")";
  eat_kw cur "then";
  let q = scan_item cur in
  if try_eat_kw cur "else" then begin
    eat cur "(";
    eat cur ")"
  end;
  If (c, q)

and scan_constructor cur =
  eat cur "<";
  let label = scan_name cur in
  skip_ws cur;
  if try_eat cur "/>" then Constr (label, Empty)
  else begin
    eat cur ">";
    let content = scan_content cur [] in
    eat cur "</";
    let closing = scan_name cur in
    if not (String.equal label closing) then
      fail cur "constructor <%s> closed by </%s>" label closing;
    eat cur ">";
    Constr (label, content)
  end

(* Content of a direct constructor: enclosed expressions, nested
   constructors and literal text, concatenated into a sequence. *)
and scan_content cur acc =
  if looking_at cur "</" then seq_of_list (List.rev acc)
  else if eof cur then fail cur "unterminated constructor content"
  else if peek cur = '{' then begin
    eat cur "{";
    let q = scan_query cur in
    eat cur "}";
    scan_content cur (q :: acc)
  end
  else if peek cur = '<' then scan_content cur (scan_constructor cur :: acc)
  else begin
    (* Literal text up to the next '<' or '{'. *)
    let start = cur.pos in
    while (not (eof cur)) && peek cur <> '<' && peek cur <> '{' do
      cur.pos <- cur.pos + 1
    done;
    let s = String.sub cur.input start (cur.pos - start) in
    let blank = String.for_all is_ws s in
    if blank then scan_content cur acc else scan_content cur (Text_lit s :: acc)
  end

let parse input =
  let cur = { input; pos = 0; gensym = 0 } in
  let q = scan_query cur in
  skip_ws cur;
  if not (eof cur) then fail cur "trailing input";
  q

let parse_result input =
  match parse input with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
