module A = Xqdb_tpm.Tpm_algebra
module Store = Xqdb_xasr.Node_store
module Xasr = Xqdb_xasr.Xasr
module Budget = Xqdb_storage.Budget

type ctx = {
  store : Store.t;
  pool : Xqdb_storage.Buffer_pool.t;
  mutable budget : Budget.t option;
  params : Tuple.params;
  batch_size : int;
  scan_domains : int;
}
(* Owned by the query's driving domain; par_scan workers only read the
   immutable fields and return their batches to the owner. *)
[@@domain_local]

let make_ctx ?budget ?(params = Tuple.no_params) ?(batch_size = 256)
    ?(scan_domains = 1) store =
  if batch_size < 1 then invalid_arg "Phys_op.make_ctx: batch_size must be positive";
  if scan_domains < 1 then invalid_arg "Phys_op.make_ctx: scan_domains must be positive";
  { store; pool = Store.pool store; budget; params; batch_size; scan_domains }

let with_params ctx params = { ctx with params }

let set_budget ctx budget = ctx.budget <- budget

let tick ctx =
  match ctx.budget with
  | None -> ()
  | Some b -> Budget.check b

(* Which preds/operands read parameter slots — decides whether a cache
   built below them survives a rebind. *)
let operand_param_dep = function
  | A.Oextern_in _ | A.Oextern_out _ -> true
  | A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _ -> false

let preds_param_dep preds =
  List.exists (fun p -> A.pred_externs p <> []) preds

type info = {
  name : string;
  detail : string;
  children : info list;
}

type stats = {
  mutable rows : int;
  mutable batches : int;
  mutable ios : int;  (* inclusive: includes the children's I/O *)
  mutable seconds : float;  (* inclusive CPU seconds *)
}
[@@domain_local]

type t = {
  schema : Tuple.schema;
  next_batch : unit -> Tuple.batch option;
  reset : unit -> unit;
  info : info;
  stats : stats;
  kids : t list;
  ios_now : unit -> int;  (* disk I/O counter this operator is attributed against *)
  param_dep : bool;  (* does this subtree's output depend on parameter slots? *)
  clear : unit -> unit;  (* drop caches invalidated by a rebind (no recursion) *)
}

(* Every constructor goes through [make], which wraps [next_batch] and
   [reset] so the operator's stats accumulate rows and batches produced
   plus the page I/Os and CPU time spent inside its call windows.  The
   measurements are inclusive — a child only ever runs inside its
   parent's [next_batch] or [reset] — so the per-operator (exclusive)
   share is recovered in {!profile} by subtracting the children's
   inclusive totals.  Measuring per batch rather than per tuple is the
   vectorization payoff on the hot path: two I/O-counter reads and two
   clock reads per batch instead of per row.

   [param_dep] is the operator's own dependence on parameter slots; the
   stored flag is the subtree's (own or any kid's).  [clear] is the
   constructor's cache-invalidation hook — constructors that cache a
   parameter-independent subtree deliberately pass [ignore] so the cache
   survives rebinds (that survival is the point of templates). *)
let make ~schema ~info ?(kids = []) ?(param_dep = false) ?(clear = ignore) ~ios_now
    ~next_batch ~reset () =
  let param_dep = param_dep || List.exists (fun k -> k.param_dep) kids in
  let stats = { rows = 0; batches = 0; ios = 0; seconds = 0. } in
  (* Wall clock (not [Sys.time], which is process CPU time): operator
     profiles must attribute I/O wait to the operator that paid it, and
     under concurrent sessions CPU time would charge every session for
     every other session's work. *)
  let measured f () =
    let io0 = ios_now () in
    let t0 = Xqdb_storage.Monotonic.now () in
    match f () with
    | result ->
      stats.ios <- stats.ios + (ios_now () - io0);
      stats.seconds <- stats.seconds +. Xqdb_storage.Monotonic.elapsed_since t0;
      result
    | exception e ->
      stats.ios <- stats.ios + (ios_now () - io0);
      stats.seconds <- stats.seconds +. Xqdb_storage.Monotonic.elapsed_since t0;
      raise e
  in
  let next_batch =
    let inner = measured next_batch in
    fun () ->
      let result = inner () in
      (match result with
       | Some b ->
         stats.rows <- stats.rows + b.Tuple.len;
         stats.batches <- stats.batches + 1
       | None -> ());
      result
  in
  { schema; next_batch; reset = measured reset; info; stats; kids; ios_now; param_dep;
    clear }

let next_batch t = t.next_batch ()

let rec rebind t =
  List.iter rebind t.kids;
  t.clear ()

(* Operators never hold page pins between [next_batch] calls — every
   access goes through the pool's scoped [with_page] — so "closing" a
   drained tree is a sanitizer checkpoint, not a resource release: under
   a sanitizing pool it asserts the discipline actually held. *)
let close ctx op =
  ignore op;
  if Xqdb_storage.Buffer_pool.sanitizing ctx.pool then
    Xqdb_storage.Buffer_pool.assert_unpinned ~where:"Phys_op.close" ctx.pool

let rec zero_stats t =
  t.stats.rows <- 0;
  t.stats.batches <- 0;
  t.stats.ios <- 0;
  t.stats.seconds <- 0.;
  List.iter zero_stats t.kids

let ctx_ios ctx =
  let disk = Xqdb_storage.Buffer_pool.disk ctx.pool in
  fun () -> Xqdb_storage.Disk.total_ios disk

type profile = {
  op : string;
  args : string;
  rows : int;
  batches : int;
  ios : int;  (** inclusive page I/Os *)
  own_ios : int;  (** exclusive: [ios] minus the inputs' [ios] *)
  seconds : float;
  own_seconds : float;
  inputs : profile list;
}

let rec profile t =
  let inputs = List.map profile t.kids in
  let kid_ios = List.fold_left (fun acc p -> acc + p.ios) 0 inputs in
  let kid_seconds = List.fold_left (fun acc p -> acc +. p.seconds) 0. inputs in
  { op = t.info.name;
    args = t.info.detail;
    rows = t.stats.rows;
    batches = t.stats.batches;
    ios = t.stats.ios;
    own_ios = max 0 (t.stats.ios - kid_ios);
    seconds = t.stats.seconds;
    own_seconds = Float.max 0. (t.stats.seconds -. kid_seconds);
    inputs }

(* Sum two profiles of the same plan shape — used when a nested relfor
   re-instantiates the same operator tree once per outer binding and the
   engine wants one aggregate breakdown per compile-time site. *)
let rec merge_profile a b =
  { op = a.op;
    args = a.args;
    rows = a.rows + b.rows;
    batches = a.batches + b.batches;
    ios = a.ios + b.ios;
    own_ios = a.own_ios + b.own_ios;
    seconds = a.seconds +. b.seconds;
    own_seconds = a.own_seconds +. b.own_seconds;
    inputs = merge_inputs a.inputs b.inputs }

and merge_inputs xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | x :: xs', y :: ys' -> merge_profile x y :: merge_inputs xs' ys'

let rec pp_profile ppf p =
  if String.equal p.args "" then Format.fprintf ppf "@[<v 2>%s" p.op
  else Format.fprintf ppf "@[<v 2>%s [%s]" p.op p.args;
  Format.fprintf ppf "  rows %d  batches %d  ios %d (own %d)  %.3fs (own %.3fs)" p.rows
    p.batches p.ios p.own_ios p.seconds p.own_seconds;
  List.iter (fun i -> Format.fprintf ppf "@,%a" pp_profile i) p.inputs;
  Format.fprintf ppf "@]"

let profile_to_string p = Format.asprintf "%a" pp_profile p

let rec pp_info ppf i =
  if String.equal i.detail "" then Format.fprintf ppf "@[<v 2>%s" i.name
  else Format.fprintf ppf "@[<v 2>%s [%s]" i.name i.detail;
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_info c) i.children;
  Format.fprintf ppf "@]"

let info_to_string i = Format.asprintf "%a" pp_info i

let drain op =
  op.reset ();
  let acc = ref [] in
  let rec go () =
    match op.next_batch () with
    | None -> List.rev !acc
    | Some b ->
      for i = 0 to b.Tuple.len - 1 do
        acc := Tuple.batch_row b i :: !acc
      done;
      go ()
  in
  go ()

let count op =
  op.reset ();
  let rec go n =
    match op.next_batch () with
    | None -> n
    | Some b -> go (n + b.Tuple.len)
  in
  go 0

(* A tuple-at-a-time view of a child's batch stream, for operators whose
   inner logic is inherently row-wise (joins, sorts, spools).  Rows are
   materialized lazily and the current batch is fully consumed before
   the child is asked for the next one, so batch reuse is safe. *)
type cursor = {
  pull : unit -> Tuple.t option;
  restart : unit -> unit;  (* reset the child and forget the held batch *)
}

let cursor_of op =
  let held = ref None in
  let idx = ref 0 in
  let rec pull () =
    match !held with
    | Some b when !idx < b.Tuple.len ->
      let t = Tuple.batch_row b !idx in
      incr idx;
      Some t
    | _ ->
      (match op.next_batch () with
       | None ->
         held := None;
         idx := 0;
         None
       | Some b ->
         held := Some b;
         idx := 0;
         pull ())
  in
  { pull;
    restart =
      (fun () ->
        op.reset ();
        held := None;
        idx := 0) }

let out_batch ctx schema = Tuple.batch_create ~width:(List.length schema) ctx.batch_size

(* Wrap a row generator into a batch producer over a reusable output
   batch; the budget is polled once per batch. *)
let batched ctx ~schema gen =
  let b = out_batch ctx schema in
  fun () ->
    tick ctx;
    Tuple.batch_clear b;
    let rec fill () =
      if Tuple.batch_full b then ()
      else
        match gen () with
        | None -> ()
        | Some tuple ->
          Tuple.batch_push b tuple;
          fill ()
    in
    fill ();
    if b.Tuple.len = 0 then None else Some b

let preds_detail preds =
  String.concat " ∧ " (List.map Xqdb_tpm.Tpm_print.pred_to_string preds)

(* --- access paths ------------------------------------------------------ *)

let cursor_op ~schema ~info ~param_dep ~ios_now ~make_cursor =
  let cursor = ref (make_cursor ()) in
  make ~schema ~info ~param_dep ~ios_now
    ~next_batch:(fun () -> !cursor ())
    ~reset:(fun () -> cursor := make_cursor ())
    ()

(* Write an XASR tuple's five columns into the batch's staging row
   (index [len]) without materializing a [Tuple.t]; the caller commits
   the row by bumping [len] once the predicates pass. *)
let stage_xasr b (xt : Xasr.tuple) =
  let row = b.Tuple.len in
  let cols = b.Tuple.cols in
  cols.(0).(row) <- Tuple.I xt.Xasr.nin;
  cols.(1).(row) <- Tuple.I xt.Xasr.nout;
  cols.(2).(row) <- Tuple.I xt.Xasr.parent_in;
  cols.(3).(row) <- Tuple.I (Xasr.node_type_code xt.Xasr.ntype);
  cols.(4).(row) <- Tuple.S xt.Xasr.value

(* Shared shape of the batch scans: a page-at-a-time cursor yields whole
   leaves of decoded XASR tuples; each [next_batch] stages rows straight
   into the output columns and evaluates the compiled predicates in
   place — no per-tuple [Tuple.t] is allocated on the scan path. *)
let xasr_page_scan ctx ~schema ~preds ~info ~make_pages =
  let keep = Tuple.compile_preds_batch ~params:ctx.params schema preds in
  let make_cursor () =
    let pages = make_pages () in
    let pending = ref [||] in
    let pos = ref 0 in
    let b = out_batch ctx schema in
    fun () ->
      tick ctx;
      Tuple.batch_clear b;
      let exhausted = ref false in
      while (not (Tuple.batch_full b)) && not !exhausted do
        if !pos < Array.length !pending then begin
          let xt = (!pending).(!pos) in
          incr pos;
          stage_xasr b xt;
          if keep b b.Tuple.len then b.Tuple.len <- b.Tuple.len + 1
        end
        else
          match pages () with
          | None -> exhausted := true
          | Some arr ->
            pending := arr;
            pos := 0
      done;
      if b.Tuple.len = 0 then None else Some b
  in
  cursor_op ~schema ~param_dep:(preds_param_dep preds) ~ios_now:(ctx_ios ctx) ~info
    ~make_cursor

let full_scan ctx alias ~preds =
  xasr_page_scan ctx ~schema:(Tuple.xasr_schema alias) ~preds
    ~info:
      { name = Printf.sprintf "scan XASR[%s]" alias;
        detail = preds_detail preds;
        children = [] }
    ~make_pages:(fun () -> Store.scan_all_pages ctx.store)

let struct_scan ctx alias ~label ~preds =
  xasr_page_scan ctx ~schema:(Tuple.xasr_schema alias) ~preds
    ~info:
      { name = Printf.sprintf "sidx-scan XASR[%s]" alias;
        detail =
          Printf.sprintf "struct(%s)%s" label
            (if preds = [] then "" else "; " ^ preds_detail preds);
        children = [] }
    ~make_pages:(fun () -> Store.struct_stream_pages ctx.store label)

let label_scan ctx alias ~ntype ~value ~preds =
  let schema = Tuple.xasr_schema alias in
  let keep = Tuple.compile_preds_batch ~params:ctx.params schema preds in
  let make_cursor () =
    (* The label index yields whole leaves of matching [in]s; each one
       still costs a primary fetch (that is the access path's nature),
       but staging and filtering stay allocation-free. *)
    let pages = Store.label_ins_pages ctx.store ntype value in
    let pending = ref [||] in
    let pos = ref 0 in
    let b = out_batch ctx schema in
    fun () ->
      tick ctx;
      Tuple.batch_clear b;
      let exhausted = ref false in
      while (not (Tuple.batch_full b)) && not !exhausted do
        if !pos < Array.length !pending then begin
          let nin = (!pending).(!pos) in
          incr pos;
          match Store.fetch ctx.store nin with
          | None ->
            Xqdb_storage.Xqdb_error.corrupt "Phys_op.label_scan: dangling label-index entry"
          | Some xt ->
            stage_xasr b xt;
            if keep b b.Tuple.len then b.Tuple.len <- b.Tuple.len + 1
        end
        else
          match pages () with
          | None -> exhausted := true
          | Some arr ->
            pending := arr;
            pos := 0
      done;
      if b.Tuple.len = 0 then None else Some b
  in
  cursor_op ~schema ~param_dep:(preds_param_dep preds) ~ios_now:(ctx_ios ctx)
    ~info:
      { name = Printf.sprintf "idx-scan XASR[%s]" alias;
        detail =
          Printf.sprintf "label(%s, %s)%s" (Xasr.node_type_name ntype) value
            (if preds = [] then "" else "; " ^ preds_detail preds);
        children = [] }
    ~make_cursor

let no_ios () = 0

let empty schema =
  make ~schema ~ios_now:no_ios
    ~info:{ name = "empty"; detail = "provably empty"; children = [] }
    ~next_batch:(fun () -> None)
    ~reset:(fun () -> ())
    ()

let singleton schema tuple =
  let b = Tuple.batch_create ~width:(List.length schema) 1 in
  Tuple.batch_push b tuple;
  let produced = ref false in
  make ~schema ~ios_now:no_ios
    ~info:{ name = "unit"; detail = ""; children = [] }
    ~next_batch:(fun () ->
      if !produced then None
      else begin
        produced := true;
        Some b
      end)
    ~reset:(fun () -> produced := false)
    ()

(* --- parallel scan ------------------------------------------------------ *)

(* Partitioned clustered scan: the document's [in] space [1, root.out]
   is split into one contiguous range per domain; each domain runs a
   page-at-a-time primary scan of its range against the shared
   (domain-safe) buffer pool and filters locally.  Concatenating the
   partitions in range order is document order, so the output is
   byte-identical to {!full_scan}.  The result is materialized once and
   replayed across [reset]s; the cache survives rebinds unless the
   predicates read parameter slots. *)
let par_scan_fill ctx ~keep ~domains () =
  if Store.tuple_count ctx.store = 0 then []
  else begin
    let root = Store.root_tuple ctx.store in
    let total = root.Xasr.nout in
    let n = max 1 (min domains total) in
    let chunk = (total + n - 1) / n in
    let ranges =
      List.init n (fun d ->
          let lo = 1 + (d * chunk) in
          let hi = min total (lo + chunk - 1) in
          (lo, hi))
      |> List.filter (fun (lo, hi) -> lo <= hi)
    in
    let scan_range (lo, hi) () =
      let pages = Store.scan_in_range_pages ctx.store ~lo ~hi in
      let acc = ref [] in
      let rec go () =
        tick ctx;
        match pages () with
        | None -> ()
        | Some arr ->
          Array.iter
            (fun xt ->
              let tuple = Tuple.of_xasr xt in
              if keep tuple then acc := tuple :: !acc)
            arr;
          go ()
      in
      go ();
      List.rev !acc
    in
    match ranges with
    | [ r ] -> scan_range r ()
    | ranges ->
      let handles = List.map (fun r -> Domain.spawn (scan_range r)) ranges in
      (* Join every domain before re-raising: an abandoned domain would
         keep scanning against the shared pool. *)
      let outcomes =
        List.map (fun h -> match Domain.join h with r -> Ok r | exception e -> Error e)
          handles
      in
      tick ctx;
      List.concat_map (function Ok part -> part | Error e -> raise e) outcomes
  end

(* --- joins ------------------------------------------------------------- *)

type probe =
  | Probe_child of A.operand
  | Probe_desc of A.operand * A.operand
  | Probe_pk of A.operand

let nl_join ?(materialize_inner = `Mem) ?(semi = false) ~preds left right ctx =
  let schema = left.schema @ right.schema in
  let keep = Tuple.compile_preds ~params:ctx.params schema preds in
  let left_cur = cursor_of left in
  (* Inner-side cache.  [clear] drops it on rebind, but only when the
     inner subtree reads parameter slots — a parameter-independent inner
     cache is valid for every outer binding and surviving rebinds is the
     template payoff. *)
  let inner_next, inner_rewind, inner_clear, cache_detail =
    match materialize_inner with
    | `None ->
      let rc = cursor_of right in
      (rc.pull, rc.restart, ignore, "recompute")
    | `Mem ->
      let cache = ref None in
      let pos = ref [] in
      let fill () =
        match !cache with
        | Some c -> c
        | None ->
          let c = drain right in
          cache := Some c;
          c
      in
      let next () =
        match !pos with
        | [] -> None
        | tuple :: rest ->
          pos := rest;
          Some tuple
      in
      let clear () =
        cache := None;
        pos := []
      in
      (next, (fun () -> pos := fill ()), clear, "inner in memory")
    | `Disk ->
      let rc = cursor_of right in
      let spool = ref None in
      let cursor = ref (fun () -> None) in
      let fill () =
        match !spool with
        | Some hf -> hf
        | None ->
          let hf = Xqdb_storage.Heap_file.create ctx.pool in
          rc.restart ();
          let rec go () =
            match rc.pull () with
            | None -> ()
            | Some tuple ->
              ignore (Xqdb_storage.Heap_file.append hf (Tuple.encode tuple));
              go ()
          in
          go ();
          spool := Some hf;
          hf
      in
      let next () =
        match !cursor () with
        | None -> None
        | Some data -> Some (Tuple.decode data)
      in
      let clear () =
        spool := None;
        cursor := (fun () -> None)
      in
      (next, (fun () -> cursor := Xqdb_storage.Heap_file.scan (fill ())), clear, "inner on disk")
  in
  let current_left = ref None in
  let gen () =
    let rec step () =
      match !current_left with
      | None ->
        (match left_cur.pull () with
         | None -> None
         | Some l ->
           current_left := Some l;
           inner_rewind ();
           step ())
      | Some l ->
        (match inner_next () with
         | None ->
           current_left := None;
           step ()
         | Some r ->
           let tuple = Tuple.concat l r in
           if keep tuple then begin
             (* Semijoin mode: one match per outer tuple suffices. *)
             if semi then current_left := None;
             Some tuple
           end
           else step ())
    in
    step ()
  in
  let reset () =
    left_cur.restart ();
    current_left := None
  in
  make ~schema ~ios_now:(ctx_ios ctx) ~kids:[left; right]
    ~next_batch:(batched ctx ~schema gen) ~reset
    ~param_dep:(preds_param_dep preds)
    ~clear:(if right.param_dep then inner_clear else ignore)
    ~info:
      { name = (if preds = [] then (if semi then "semi-product" else "product")
                else if semi then "semi-nl-join"
                else "nl-join");
        detail =
          (if preds = [] then cache_detail else preds_detail preds ^ "; " ^ cache_detail);
        children = [left.info; right.info] }
    ()

let bnl_join ?(block_size = 64) ~preds left right ctx =
  if block_size < 1 then invalid_arg "Phys_op.bnl_join: block_size must be positive";
  let schema = left.schema @ right.schema in
  let keep = Tuple.compile_preds ~params:ctx.params schema preds in
  let left_cur = cursor_of left in
  (* The inner is spooled once; each block replays it. *)
  let inner = ref None in
  let fill_inner () =
    match !inner with
    | Some tuples -> tuples
    | None ->
      let tuples = drain right in
      inner := Some tuples;
      tuples
  in
  let block = ref [||] in
  let remaining_inner = ref [] in
  let block_pos = ref 0 in
  let exhausted = ref false in
  let refill_block () =
    let buf = ref [] in
    let rec take n =
      if n > 0 then
        match left_cur.pull () with
        | None -> ()
        | Some l ->
          buf := l :: !buf;
          take (n - 1)
    in
    take block_size;
    block := Array.of_list (List.rev !buf);
    if Array.length !block = 0 then exhausted := true
    else begin
      remaining_inner := fill_inner ();
      block_pos := 0
    end
  in
  let rec gen () =
    if !exhausted then None
    else if Array.length !block = 0 then begin
      refill_block ();
      gen ()
    end
    else
      match !remaining_inner with
      | [] ->
        (* Block done: fetch the next block of outer tuples. *)
        block := [||];
        refill_block ();
        gen ()
      | r :: rest ->
        if !block_pos >= Array.length !block then begin
          remaining_inner := rest;
          block_pos := 0;
          gen ()
        end
        else begin
          let l = (!block).(!block_pos) in
          incr block_pos;
          let tuple = Tuple.concat l r in
          if keep tuple then Some tuple else gen ()
        end
  in
  let reset () =
    left_cur.restart ();
    block := [||];
    remaining_inner := [];
    block_pos := 0;
    exhausted := false
  in
  make ~schema ~ios_now:(ctx_ios ctx) ~kids:[left; right]
    ~next_batch:(batched ctx ~schema gen) ~reset
    ~param_dep:(preds_param_dep preds)
    ~clear:(if right.param_dep then (fun () -> inner := None) else ignore)
    ~info:
      { name = (if preds = [] then "bnl-product" else "bnl-join");
        detail =
          (if preds = [] then Printf.sprintf "block %d" block_size
           else preds_detail preds ^ Printf.sprintf "; block %d" block_size);
        children = [left.info; right.info] }
    ()

let inl_join ?(semi = false) ctx ~probe ~alias ~preds ~residual left =
  let inner_schema = Tuple.xasr_schema alias in
  let schema = left.schema @ inner_schema in
  let keep_inner = Tuple.compile_preds ~params:ctx.params inner_schema preds in
  let keep_residual = Tuple.compile_preds ~params:ctx.params schema residual in
  let as_int = function
    | Tuple.I v -> v
    | Tuple.S s -> invalid_arg (Printf.sprintf "inl_join: non-integer probe value %S" s)
  in
  let probe_param_dep =
    match probe with
    | Probe_child op | Probe_pk op -> operand_param_dep op
    | Probe_desc (i, o) -> operand_param_dep i || operand_param_dep o
  in
  let make_probe =
    match probe with
    | Probe_child op ->
      let v = Tuple.compile_operand ~params:ctx.params left.schema op in
      fun l ->
        let ins = Store.children_ins ctx.store (as_int (v l)) in
        let pull () =
          match ins () with
          | None -> None
          | Some nin ->
            (match Store.fetch ctx.store nin with
             | None -> Xqdb_storage.Xqdb_error.corrupt "inl_join: dangling parent-index entry"
             | Some xt -> Some xt)
        in
        pull
    | Probe_desc (in_op, out_op) ->
      let vin = Tuple.compile_operand ~params:ctx.params left.schema in_op in
      let vout = Tuple.compile_operand ~params:ctx.params left.schema out_op in
      fun l -> Store.scan_in_range ctx.store ~lo:(as_int (vin l) + 1) ~hi:(as_int (vout l) - 1)
    | Probe_pk op ->
      let v = Tuple.compile_operand ~params:ctx.params left.schema op in
      fun l ->
        let fetched = ref false in
        fun () ->
          if !fetched then None
          else begin
            fetched := true;
            Store.fetch ctx.store (as_int (v l))
          end
  in
  let left_cur = cursor_of left in
  let current = ref None in
  let gen () =
    let rec step () =
      match !current with
      | None ->
        (match left_cur.pull () with
         | None -> None
         | Some l ->
           current := Some (l, make_probe l);
           step ())
      | Some (l, cursor) ->
        (match cursor () with
         | None ->
           current := None;
           step ()
         | Some xt ->
           let inner = Tuple.of_xasr xt in
           if keep_inner inner then begin
             let tuple = Tuple.concat l inner in
             if keep_residual tuple then begin
               if semi then current := None;
               Some tuple
             end
             else step ()
           end
           else step ())
    in
    step ()
  in
  let reset () =
    left_cur.restart ();
    current := None
  in
  let probe_detail =
    match probe with
    | Probe_child op -> Printf.sprintf "%s.parent_in = %s" alias (Xqdb_tpm.Tpm_print.operand_to_string op)
    | Probe_desc (i, o) ->
      Printf.sprintf "%s.in in (%s, %s)" alias (Xqdb_tpm.Tpm_print.operand_to_string i)
        (Xqdb_tpm.Tpm_print.operand_to_string o)
    | Probe_pk op -> Printf.sprintf "%s.in = %s" alias (Xqdb_tpm.Tpm_print.operand_to_string op)
  in
  make ~schema ~ios_now:(ctx_ios ctx) ~kids:[left]
    ~next_batch:(batched ctx ~schema gen) ~reset
    ~param_dep:(probe_param_dep || preds_param_dep preds || preds_param_dep residual)
    ~info:
      { name = (if semi then "semi-inl-join" else "inl-join");
        detail =
          probe_detail
          ^ (if preds = [] then "" else "; " ^ preds_detail preds)
          ^ (if residual = [] then "" else "; residual " ^ preds_detail residual);
        children = [left.info] }
    ()

let replay_op ~schema ~info ~ios_now ~kids ~clear_on_rebind ~ctx ~fill =
  (* Materialize-on-first-use operator over a list-producing fill; the
     cached list is served out through a reusable batch. *)
  let cache = ref None in
  let serving = ref None in
  let ensure () =
    match !cache with
    | Some c -> c
    | None ->
      let c = fill () in
      cache := Some c;
      c
  in
  let out = out_batch ctx schema in
  (* A fill that must be dropped on rebind reads parameter slots, so the
     operator itself is parameter-dependent (kids contribute via make). *)
  make ~schema ~info ~ios_now ~kids ~param_dep:clear_on_rebind
    ~clear:
      (if clear_on_rebind then (fun () ->
           cache := None;
           serving := None)
       else ignore)
    ~next_batch:(fun () ->
      tick ctx;
      let items = match !serving with
        | Some items -> items
        | None -> ensure ()
      in
      Tuple.batch_clear out;
      let rec take = function
        | [] -> []
        | items when Tuple.batch_full out -> items
        | tuple :: rest ->
          Tuple.batch_push out tuple;
          take rest
      in
      let rest = take items in
      serving := Some rest;
      if out.Tuple.len = 0 then None else Some out)
    ~reset:(fun () -> serving := None)
    ()

let par_scan ctx ~domains alias ~preds =
  if domains < 1 then invalid_arg "Phys_op.par_scan: domains must be positive";
  let schema = Tuple.xasr_schema alias in
  let keep = Tuple.compile_preds ~params:ctx.params schema preds in
  replay_op ~schema ~ios_now:(ctx_ios ctx) ~kids:[] ~ctx
    ~clear_on_rebind:(preds_param_dep preds)
    ~info:
      { name = Printf.sprintf "par-scan XASR[%s]" alias;
        detail =
          Printf.sprintf "domains %d" domains
          ^ (if preds = [] then "" else "; " ^ preds_detail preds);
        children = [] }
    ~fill:(par_scan_fill ctx ~keep ~domains)

(* Staircase join over the structural index: the label's run is loaded
   once into a sorted-by-[in] array (it never depends on parameters, so
   it survives rebinds like a cached nl-join inner); each outer tuple
   binary-searches its (lo, hi) interval and emits the contained
   entries.  Output order matches {!inl_join} with [Probe_desc]:
   outer-major, inner in document order — the property the index-vs-scan
   differential oracle relies on. *)
let struct_join ?(semi = false) ctx ~lo ~hi ~alias ~label ~preds ~residual left =
  let inner_schema = Tuple.xasr_schema alias in
  let schema = left.schema @ inner_schema in
  let keep_inner = Tuple.compile_preds ~params:ctx.params inner_schema preds in
  let keep_residual = Tuple.compile_preds ~params:ctx.params schema residual in
  let as_int = function
    | Tuple.I v -> v
    | Tuple.S s -> invalid_arg (Printf.sprintf "struct_join: non-integer bound %S" s)
  in
  let vlo = Tuple.compile_operand ~params:ctx.params left.schema lo in
  let vhi = Tuple.compile_operand ~params:ctx.params left.schema hi in
  let entries = ref None in
  let load () =
    match !entries with
    | Some pair -> pair
    | None ->
      let pages = Store.struct_stream_pages ctx.store label in
      let rec go acc =
        tick ctx;
        match pages () with
        | None -> List.rev acc
        | Some arr -> go (Array.fold_left (fun acc xt -> Tuple.of_xasr xt :: acc) acc arr)
      in
      let tuples = Array.of_list (go []) in
      let ins = Array.map (fun t -> as_int t.(0)) tuples in
      let pair = (tuples, ins) in
      entries := Some pair;
      pair
  in
  (* First index whose [in] exceeds [bound]. *)
  let lower_bound ins bound =
    let rec go a b =
      if a >= b then a
      else begin
        let mid = (a + b) / 2 in
        if ins.(mid) > bound then go a mid else go (mid + 1) b
      end
    in
    go 0 (Array.length ins)
  in
  let left_cur = cursor_of left in
  let current = ref None in
  let gen () =
    let rec step () =
      match !current with
      | None ->
        (match left_cur.pull () with
         | None -> None
         | Some l ->
           let tuples, ins = load () in
           let lo_v = as_int (vlo l) in
           let hi_v = as_int (vhi l) in
           current := Some (l, hi_v, ref (lower_bound ins lo_v), tuples, ins);
           step ())
      | Some (l, hi_v, idx, tuples, ins) ->
        if !idx >= Array.length tuples || ins.(!idx) >= hi_v then begin
          current := None;
          step ()
        end
        else begin
          let inner = tuples.(!idx) in
          incr idx;
          if keep_inner inner then begin
            let tuple = Tuple.concat l inner in
            if keep_residual tuple then begin
              if semi then current := None;
              Some tuple
            end
            else step ()
          end
          else step ()
        end
    in
    step ()
  in
  let reset () =
    left_cur.restart ();
    current := None
  in
  make ~schema ~ios_now:(ctx_ios ctx) ~kids:[left]
    ~next_batch:(batched ctx ~schema gen) ~reset
    ~param_dep:
      (operand_param_dep lo || operand_param_dep hi || preds_param_dep preds
      || preds_param_dep residual)
    ~info:
      { name = (if semi then "semi-struct-join" else "struct-join");
        detail =
          Printf.sprintf "%s.in in (%s, %s); struct(%s)" alias
            (Xqdb_tpm.Tpm_print.operand_to_string lo)
            (Xqdb_tpm.Tpm_print.operand_to_string hi)
            label
          ^ (if preds = [] then "" else "; " ^ preds_detail preds)
          ^ (if residual = [] then "" else "; residual " ^ preds_detail residual);
        children = [left.info] }
    ()

(* --- twig matching ------------------------------------------------------- *)

type twig_axis =
  | Twig_child
  | Twig_desc

type twig_step = {
  tw_alias : string;
  tw_label : string;
  tw_axis : twig_axis;
}

(* PathStack (Bruno et al.): one structural-index stream and one stack
   per step, streams merged by [in].  Stack entries are (tuple, partner
   index into the previous stack); each stack holds a chain of nested
   intervals, so a stream entry's ancestors with the previous step's
   label are exactly the un-popped entries below its partner pointer.
   Solutions are enumerated at the leaf step and sorted lexicographically
   by the aliases' [in] columns, which reproduces the order of the
   equivalent left-deep nested-loop plan. *)
let twig_match ctx ~anchor ~steps =
  (match steps with
  | [] -> invalid_arg "Phys_op.twig_match: no steps"
  | _ :: _ -> ());
  let schema = List.concat_map (fun s -> Tuple.xasr_schema s.tw_alias) steps in
  let steps_arr = Array.of_list steps in
  let k = Array.length steps_arr in
  let as_int = function
    | Tuple.I v -> v
    | Tuple.S s -> invalid_arg (Printf.sprintf "twig_match: non-integer bound %S" s)
  in
  let anchor_fn =
    match anchor with
    | None -> None
    | Some (lo, hi) ->
      (* Anchor operands are constants or externs — never columns — so
         they compile against the empty schema. *)
      let vlo = Tuple.compile_operand ~params:ctx.params [] lo in
      let vhi = Tuple.compile_operand ~params:ctx.params [] hi in
      Some (fun () -> (as_int (vlo [||]), as_int (vhi [||])))
  in
  let tuple_in t = as_int t.(0) in
  let tuple_out t = as_int t.(1) in
  let fill () =
    let lo, hi =
      match anchor_fn with
      | None -> (min_int, max_int)
      | Some f -> f ()
    in
    let dummy = ([||], -1) in
    let stacks = Array.init k (fun _ -> ref (Array.make 8 dummy)) in
    let lens = Array.make k 0 in
    let push i entry =
      let arr = !(stacks.(i)) in
      if lens.(i) >= Array.length arr then begin
        let bigger = Array.make (2 * Array.length arr) dummy in
        Array.blit arr 0 bigger 0 lens.(i);
        stacks.(i) := bigger
      end;
      !(stacks.(i)).(lens.(i)) <- entry;
      lens.(i) <- lens.(i) + 1
    in
    let get i j = !(stacks.(i)).(j) in
    let pop_closed nin =
      Array.iteri
        (fun i _ ->
          let rec go () =
            if lens.(i) > 0 then begin
              let t, _ = get i (lens.(i) - 1) in
              if tuple_out t < nin then begin
                lens.(i) <- lens.(i) - 1;
                go ()
              end
            end
          in
          go ())
        lens
    in
    (* One stream per step; heads merged by ascending [in], ties broken
       by step order (two steps over the same label see the same node). *)
    let streams =
      Array.map (fun s -> Store.struct_stream ctx.store s.tw_label) steps_arr
    in
    let heads = Array.map (fun stream -> stream ()) streams in
    let advance i = heads.(i) <- streams.(i) () in
    let next_entry () =
      let best = ref (-1) in
      Array.iteri
        (fun i head ->
          match head with
          | None -> ()
          | Some xt ->
            (match !best with
            | -1 -> best := i
            | b ->
              (match heads.(b) with
              | Some bxt when bxt.Xasr.nin <= xt.Xasr.nin -> ()
              | Some _ | None -> best := i)))
        heads;
      match !best with
      | -1 -> None
      | i ->
        let xt = heads.(i) in
        advance i;
        Option.map (fun xt -> (i, xt)) xt
    in
    (* Partner index of an entry joining step [i] (> 0): for Desc, the
       topmost previous-stack entry that is a *strict* ancestor (a
       same-label node at the same [in] is excluded); for Child, the
       entry whose [in] equals the parent pointer, searched downward. *)
    let partner_of i nin parent_in =
      match steps_arr.(i).tw_axis with
      | Twig_desc ->
        let top = lens.(i - 1) - 1 in
        if top < 0 then -1
        else begin
          let t, _ = get (i - 1) top in
          if tuple_in t = nin then top - 1 else top
        end
      | Twig_child ->
        let rec find j =
          if j < 0 then -1
          else begin
            let t, _ = get (i - 1) j in
            let pin = tuple_in t in
            if pin = parent_in then j else if pin < parent_in then -1 else find (j - 1)
          end
        in
        find (lens.(i - 1) - 1)
    in
    let solutions = ref [] in
    (* All chains from stack [i] entry [j] down to stack 0, leaf-first. *)
    let rec chains i j =
      let tuple, ptr = get i j in
      if i = 0 then [ [ tuple ] ]
      else begin
        let partners =
          match steps_arr.(i).tw_axis with
          | Twig_desc -> List.init (ptr + 1) (fun p -> p)
          | Twig_child -> [ ptr ]
        in
        List.concat_map
          (fun p -> List.map (fun chain -> tuple :: chain) (chains (i - 1) p))
          partners
      end
    in
    let emit_leaf tuple ptr =
      let leaf_chains =
        if k = 1 then [ [ tuple ] ]
        else begin
          let partners =
            match steps_arr.(k - 1).tw_axis with
            | Twig_desc -> List.init (ptr + 1) (fun p -> p)
            | Twig_child -> [ ptr ]
          in
          List.concat_map
            (fun p -> List.map (fun chain -> tuple :: chain) (chains (k - 2) p))
            partners
        end
      in
      List.iter
        (fun chain ->
          let parts = List.rev chain in
          let solution =
            match parts with
            | [] -> [||]
            | first :: rest -> List.fold_left Tuple.concat first rest
          in
          solutions := solution :: !solutions)
        leaf_chains
    in
    let rec consume () =
      tick ctx;
      match next_entry () with
      | None -> ()
      | Some (i, xt) ->
        let nin = xt.Xasr.nin in
        pop_closed nin;
        (if i = 0 then begin
           if lo < nin && xt.Xasr.nout < hi then
             if k = 1 then emit_leaf (Tuple.of_xasr xt) (-1)
             else push 0 (Tuple.of_xasr xt, -1)
         end
         else begin
           let ptr = partner_of i nin xt.Xasr.parent_in in
           if ptr >= 0 then
             if i = k - 1 then emit_leaf (Tuple.of_xasr xt) ptr
             else push i (Tuple.of_xasr xt, ptr)
         end);
        consume ()
    in
    consume ();
    (* Lexicographic (a1.in, ..., ak.in) order = the nested-loop plan's
       output order. *)
    let in_positions = Array.init k (fun i -> i * 5) in
    let by_ins t1 t2 =
      let rec go i =
        if i >= k then 0
        else begin
          let c = Int.compare (as_int t1.(in_positions.(i))) (as_int t2.(in_positions.(i))) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    in
    List.sort by_ins !solutions
  in
  let clear_on_rebind =
    match anchor with
    | None -> false
    | Some (lo, hi) -> operand_param_dep lo || operand_param_dep hi
  in
  replay_op ~schema ~ios_now:(ctx_ios ctx) ~kids:[] ~clear_on_rebind ~ctx
    ~info:
      { name = "twig-match";
        detail =
          String.concat " / "
            (List.map
               (fun s ->
                 Printf.sprintf "%s%s:%s"
                   (match s.tw_axis with Twig_child -> "child " | Twig_desc -> "desc ")
                   s.tw_alias s.tw_label)
               steps)
          ^ (match anchor with
            | None -> ""
            | Some (lo, hi) ->
              Printf.sprintf "; anchor (%s, %s)"
                (Xqdb_tpm.Tpm_print.operand_to_string lo)
                (Xqdb_tpm.Tpm_print.operand_to_string hi));
        children = [] }
    ~fill

(* --- filter, project, sort, materialize -------------------------------- *)

(* Filter and project work batch-to-batch: rows of the child's batch are
   tested (and for project, remapped) column-wise into a reusable output
   batch sized off the child's, skipping the row-generator machinery
   entirely. *)

let ensure_out out ~width cap =
  match !out with
  | Some b when b.Tuple.cap >= cap -> b
  | Some _ | None ->
    let b = Tuple.batch_create ~width (max 1 cap) in
    out := Some b;
    b

let filter ?params ~preds child =
  let keep = Tuple.compile_preds_batch ?params child.schema preds in
  let width = List.length child.schema in
  let out = ref None in
  let rec next_batch () =
    match child.next_batch () with
    | None -> None
    | Some cb ->
      let b = ensure_out out ~width cb.Tuple.cap in
      Tuple.batch_clear b;
      for i = 0 to cb.Tuple.len - 1 do
        if keep cb i then Tuple.batch_copy_row cb i b
      done;
      if b.Tuple.len = 0 then next_batch () else Some b
  in
  make ~schema:child.schema ~ios_now:child.ios_now ~kids:[child] ~next_batch
    ~reset:child.reset
    ~param_dep:(preds_param_dep preds)
    ~info:{ name = "filter"; detail = preds_detail preds; children = [child.info] }
    ()

let tuples_equal t1 t2 = Array.for_all2 Tuple.value_equal t1 t2

let project ~cols ~dedup child =
  let positions = Array.of_list (List.map (Tuple.position child.schema) cols) in
  let width = Array.length positions in
  let dedup_name, fresh_state =
    match dedup with
    | `No -> ("", fun () -> fun _ -> true)
    | `Adjacent ->
      ( "dedup:adjacent",
        fun () ->
          let prev = ref None in
          fun tuple ->
            match !prev with
            | Some p when tuples_equal p tuple -> false
            | Some _ | None ->
              prev := Some tuple;
              true )
    | `Hash ->
      ( "dedup:hash",
        fun () ->
          let seen = Hashtbl.create 256 in
          fun tuple ->
            let key = Tuple.encode tuple in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end )
  in
  let accept = ref (fresh_state ()) in
  let out = ref None in
  let rec next_batch () =
    match child.next_batch () with
    | None -> None
    | Some cb ->
      let b = ensure_out out ~width cb.Tuple.cap in
      Tuple.batch_clear b;
      for i = 0 to cb.Tuple.len - 1 do
        let projected = Array.map (fun p -> cb.Tuple.cols.(p).(i)) positions in
        if !accept projected then Tuple.batch_push b projected
      done;
      if b.Tuple.len = 0 then next_batch () else Some b
  in
  make ~schema:cols ~ios_now:child.ios_now ~kids:[child] ~next_batch
    ~reset:(fun () ->
      child.reset ();
      accept := fresh_state ())
    ~info:
      { name = "project";
        detail =
          String.concat ", "
            (List.map (fun c -> Printf.sprintf "%s.%s" c.A.rel (A.field_name c.A.field)) cols)
          ^ (if String.equal dedup_name "" then "" else "; " ^ dedup_name);
        children = [child.info] }
    ()

let key_positions schema key_cols =
  Array.of_list (List.map (Tuple.position schema) key_cols)

let compare_on positions t1 t2 =
  let rec go i =
    if i >= Array.length positions then 0
    else begin
      let c = Tuple.value_compare t1.(positions.(i)) t2.(positions.(i)) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let sort ?(dedup = false) ~mode ~key_cols child ctx =
  let positions = key_positions child.schema key_cols in
  let dedup_pass tuples =
    if not dedup then tuples
    else begin
      let rec go prev = function
        | [] -> []
        | t :: rest ->
          (match prev with
           | Some p when compare_on positions p t = 0 -> go prev rest
           | Some _ | None -> t :: go (Some t) rest)
      in
      go None tuples
    end
  in
  let fill_mem () =
    dedup_pass (List.stable_sort (compare_on positions) (drain child))
  in
  let fill_external () =
    let compare_records a b =
      Xqdb_storage.Bytes_codec.compare_bytes (Tuple.key_of_encoded a) (Tuple.key_of_encoded b)
    in
    let sorter = Xqdb_storage.Ext_sort.create ctx.pool ~compare:compare_records in
    let cur = cursor_of child in
    cur.restart ();
    let rec feed () =
      match cur.pull () with
      | None -> ()
      | Some tuple ->
        Xqdb_storage.Ext_sort.feed sorter (Tuple.encode_with_key ~key_positions:positions tuple);
        feed ()
    in
    feed ();
    let cursor = Xqdb_storage.Ext_sort.sorted_cursor sorter in
    let rec collect acc =
      tick ctx;
      match cursor () with
      | None -> List.rev acc
      | Some record -> collect (snd (Tuple.decode_keyed record) :: acc)
    in
    dedup_pass (collect [])
  in
  let fill = match mode with
    | `In_mem -> fill_mem
    | `External -> fill_external
  in
  replay_op ~schema:child.schema ~ios_now:(ctx_ios ctx) ~kids:[child] ~ctx
    ~clear_on_rebind:child.param_dep
    ~info:
      { name = (match mode with `In_mem -> "sort" | `External -> "ext-sort");
        detail =
          String.concat ", "
            (List.map (fun c -> Printf.sprintf "%s.%s" c.A.rel (A.field_name c.A.field)) key_cols)
          ^ (if dedup then "; dedup" else "");
        children = [child.info] }
    ~fill

let btree_sort ?(dedup = true) ~key_cols child ctx =
  let positions = key_positions child.schema key_cols in
  let fill () =
    let bt = Xqdb_storage.Btree.create ctx.pool in
    let cur = cursor_of child in
    cur.restart ();
    let seq = ref 0 in
    let rec feed () =
      tick ctx;
      match cur.pull () with
      | None -> ()
      | Some tuple ->
        let key =
          if dedup then Tuple.key_of_encoded (Tuple.encode_with_key ~key_positions:positions tuple)
          else begin
            (* Non-dedup mode appends a sequence number as tiebreak. *)
            incr seq;
            let buf = Buffer.create 48 in
            Buffer.add_bytes buf
              (Tuple.key_of_encoded (Tuple.encode_with_key ~key_positions:positions tuple));
            Xqdb_storage.Bytes_codec.key_int buf !seq;
            Buffer.to_bytes buf
          end
        in
        Xqdb_storage.Btree.insert bt ~key ~value:(Tuple.encode tuple);
        feed ()
    in
    feed ();
    let cursor = Xqdb_storage.Btree.scan_range bt in
    let rec collect acc =
      tick ctx;
      match cursor () with
      | None -> List.rev acc
      | Some (_, value) -> collect (Tuple.decode value :: acc)
    in
    collect []
  in
  replay_op ~schema:child.schema ~ios_now:(ctx_ios ctx) ~kids:[child] ~ctx
    ~clear_on_rebind:child.param_dep
    ~info:
      { name = "btree-sort";
        detail =
          String.concat ", "
            (List.map (fun c -> Printf.sprintf "%s.%s" c.A.rel (A.field_name c.A.field)) key_cols)
          ^ (if dedup then "; dedup" else "");
        children = [child.info] }
    ~fill

let materialize where child ctx =
  match where with
  | `Mem ->
    replay_op ~schema:child.schema ~ios_now:(ctx_ios ctx) ~kids:[child] ~ctx
      ~clear_on_rebind:child.param_dep
      ~info:{ name = "materialize"; detail = "memory"; children = [child.info] }
      ~fill:(fun () -> drain child)
  | `Disk ->
    let spool = ref None in
    let cursor = ref (fun () -> None) in
    let cur = cursor_of child in
    let fill () =
      match !spool with
      | Some hf -> hf
      | None ->
        let hf = Xqdb_storage.Heap_file.create ctx.pool in
        cur.restart ();
        let rec go () =
          tick ctx;
          match cur.pull () with
          | None -> ()
          | Some tuple ->
            ignore (Xqdb_storage.Heap_file.append hf (Tuple.encode tuple));
            go ()
        in
        go ();
        spool := Some hf;
        hf
    in
    let started = ref false in
    let gen () =
      if not !started then begin
        started := true;
        cursor := Xqdb_storage.Heap_file.scan (fill ())
      end;
      match !cursor () with
      | None -> None
      | Some data -> Some (Tuple.decode data)
    in
    make ~schema:child.schema ~ios_now:(ctx_ios ctx) ~kids:[child]
      ~clear:
        (if child.param_dep then (fun () ->
             spool := None;
             cursor := (fun () -> None);
             started := false)
         else ignore)
      ~info:{ name = "materialize"; detail = "disk"; children = [child.info] }
      ~next_batch:(batched ctx ~schema:child.schema gen)
      ~reset:(fun () ->
        started := true;
        cursor := Xqdb_storage.Heap_file.scan (fill ()))
      ()
