(** Runtime tuples flowing between physical operators.

    A tuple is a flat array of values; its schema — which TPM column
    lives at which position — is carried by the operators, not the
    tuples.  Node types travel as their integer codes so that all
    comparisons are int/string comparisons. *)

type value =
  | I of int
  | S of string

type t = value array

type schema = Xqdb_tpm.Tpm_algebra.col list

val value_equal : value -> value -> bool
val value_compare : value -> value -> int

val position : schema -> Xqdb_tpm.Tpm_algebra.col -> int
(** @raise Not_found if the column is not in the schema. *)

val concat : t -> t -> t

val ground_operand : (Xqdb_xq.Xq_ast.var -> int * int) -> Xqdb_tpm.Tpm_algebra.operand -> Xqdb_tpm.Tpm_algebra.operand
(** Resolve [Oextern_in]/[Oextern_out] through an environment giving
    each outer variable's (in, out).  Templates no longer need this —
    they compile externals against {!params} slots — but it remains the
    simplest way to fully ground a predicate. *)

(** {2 Parameter slots}

    A plan template compiles each external reference into a closure over
    a mutable {!param_slot}.  {!bind_params} writes a new outer
    environment into the slots; the compiled operators observe the new
    values on their next call, so one operator tree serves every outer
    tuple. *)

type param_slot = {
  mutable bound_in : int;
  mutable bound_out : int;
}

type params = (Xqdb_xq.Xq_ast.var * param_slot) list

val no_params : params

val make_params : Xqdb_xq.Xq_ast.var list -> params
(** Fresh zero-initialized slots, one per distinct variable. *)

val param_vars : params -> Xqdb_xq.Xq_ast.var list

val bind_params : params -> (Xqdb_xq.Xq_ast.var -> int * int) -> unit
(** Write each variable's (in, out) into its slot.
    @raise the environment's own exception on an unknown variable. *)

val compile_operand :
  ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.operand -> t -> value
(** @raise Invalid_argument on an external with no slot in [params]. *)

val compile_pred : ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred -> t -> bool
val compile_preds : ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred list -> t -> bool

val xasr_schema : string -> schema
(** The five columns of one XASR copy under an alias, in storage order:
    in, out, parent_in, type, value. *)

val of_xasr : Xqdb_xasr.Xasr.tuple -> t

val project : int array -> t -> t

(* Serialization for materialization and sorting. *)
val encode : t -> bytes
val decode : bytes -> t

val encode_with_key : key_positions:int array -> t -> bytes
(** An order-preserving key built from the given positions, followed by
    the encoded tuple.  Compare records by the key returned from
    {!decode_keyed} (or {!key_of_encoded}); the record as a whole is not
    order-preserving. *)

val decode_keyed : bytes -> bytes * t
(** Returns (key bytes, tuple). *)

val key_of_encoded : bytes -> bytes
(** Extract just the key of an {!encode_with_key} record. *)

val pp : Format.formatter -> t -> unit
