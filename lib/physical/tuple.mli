(** Runtime tuples flowing between physical operators.

    A tuple is a flat array of values; its schema — which TPM column
    lives at which position — is carried by the operators, not the
    tuples.  Node types travel as their integer codes so that all
    comparisons are int/string comparisons. *)

type value =
  | I of int
  | S of string

type t = value array

type schema = Xqdb_tpm.Tpm_algebra.col list

val value_equal : value -> value -> bool
val value_compare : value -> value -> int

val position : schema -> Xqdb_tpm.Tpm_algebra.col -> int
(** @raise Not_found if the column is not in the schema. *)

val concat : t -> t -> t

val ground_operand : (Xqdb_xq.Xq_ast.var -> int * int) -> Xqdb_tpm.Tpm_algebra.operand -> Xqdb_tpm.Tpm_algebra.operand
(** Resolve [Oextern_in]/[Oextern_out] through an environment giving
    each outer variable's (in, out).  Templates no longer need this —
    they compile externals against {!params} slots — but it remains the
    simplest way to fully ground a predicate. *)

(** {2 Parameter slots}

    A plan template compiles each external reference into a closure over
    a mutable {!param_slot}.  {!bind_params} writes a new outer
    environment into the slots; the compiled operators observe the new
    values on their next call, so one operator tree serves every outer
    tuple. *)

type param_slot = {
  mutable bound_in : int;
  mutable bound_out : int;
}

type params = (Xqdb_xq.Xq_ast.var * param_slot) list

val no_params : params

val make_params : Xqdb_xq.Xq_ast.var list -> params
(** Fresh zero-initialized slots, one per distinct variable. *)

val param_vars : params -> Xqdb_xq.Xq_ast.var list

val bind_params : params -> (Xqdb_xq.Xq_ast.var -> int * int) -> unit
(** Write each variable's (in, out) into its slot.
    @raise the environment's own exception on an unknown variable. *)

val compile_operand :
  ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.operand -> t -> value
(** @raise Invalid_argument on an external with no slot in [params]. *)

val compile_pred : ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred -> t -> bool
val compile_preds : ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred list -> t -> bool

(** {2 Columnar batches}

    The unit of flow between physical operators: one value array per
    schema column plus a fill length, over backing storage the producer
    allocates once ({!batch_create}) and reuses.  A batch returned by a
    producer is valid only until the producer's next call — consumers
    drain it (or copy rows out with {!batch_row}) before asking for
    more. *)

type batch = {
  cols : value array array;  (** one array per column; length = capacity *)
  cap : int;  (** row capacity of the backing arrays *)
  mutable len : int;  (** rows currently filled, [0 <= len <= cap] *)
}

val batch_create : width:int -> int -> batch
(** [batch_create ~width cap]: empty batch with [width] column arrays of
    [cap] rows each.  @raise Invalid_argument when [cap <= 0]. *)

val batch_width : batch -> int
val batch_clear : batch -> unit
val batch_full : batch -> bool

val batch_push : batch -> t -> unit
(** Append a row (the caller checks {!batch_full} first). *)

val batch_row : batch -> int -> t
(** Materialize row [i] as a fresh tuple. *)

val batch_copy_row : batch -> int -> batch -> unit
(** [batch_copy_row src i dst]: append [src]'s row [i] to [dst]
    column-wise, without materializing a tuple.  The batches must have
    the same width. *)

val batch_of_list : width:int -> t list -> batch
val batch_to_list : batch -> t list

val compile_operand_batch :
  ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.operand -> batch -> int -> value
(** Like {!compile_operand} but reading a batch row in place — the scan
    hot paths evaluate predicates without materializing tuples. *)

val compile_pred_batch :
  ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred -> batch -> int -> bool

val compile_preds_batch :
  ?params:params -> schema -> Xqdb_tpm.Tpm_algebra.pred list -> batch -> int -> bool

val xasr_schema : string -> schema
(** The five columns of one XASR copy under an alias, in storage order:
    in, out, parent_in, type, value. *)

val of_xasr : Xqdb_xasr.Xasr.tuple -> t

val project : int array -> t -> t

(* Serialization for materialization and sorting. *)
val encode : t -> bytes
val decode : bytes -> t

val encode_with_key : key_positions:int array -> t -> bytes
(** An order-preserving key built from the given positions, followed by
    the encoded tuple.  Compare records by the key returned from
    {!decode_keyed} (or {!key_of_encoded}); the record as a whole is not
    order-preserving. *)

val decode_keyed : bytes -> bytes * t
(** Returns (key bytes, tuple). *)

val key_of_encoded : bytes -> bytes
(** Extract just the key of an {!encode_with_key} record. *)

val pp : Format.formatter -> t -> unit
