(** Physical operators (milestones 3 and 4).

    Vectorized Volcano-style pull iterators: operators exchange columnar
    {!Tuple.batch}es instead of single tuples, so the per-call costs —
    closure dispatch, budget polls, stats/I/O attribution — are paid
    once per batch.  Logical TPM/PSX expressions are compiled into trees
    of these by the planner; the key physical choices of the paper
    appear as distinct constructors:

    - order-preserving nested-loop join ({!nl_join}) — the milestone-3
      workhorse ("but no block-nested-loops join", which would destroy
      order);
    - index nested-loop join ({!inl_join}) and index-based selection
      ({!label_scan}) — milestone 4;
    - projection with one-pass duplicate removal over sorted input
      ({!project} with [`Adjacent]) — the milestone-3 "basic strategy";
    - external sort ({!sort} with [`External]) — ordering approach (a);
    - clustered-B-tree sorting ({!btree_sort}) — the students' "creative
      workaround" (approach (c));
    - disk materialization of intermediates ({!materialize}) — milestone
      3's "write each intermediate result to disk and re-read it";
    - partitioned multicore scan ({!par_scan}) — the full scan split
      across OCaml domains over the domain-safe buffer pool.

    All operators poll the context's {!Xqdb_storage.Budget} (once per
    batch) so the testbed can censor over-budget plans. *)

module A := Xqdb_tpm.Tpm_algebra

type ctx = {
  store : Xqdb_xasr.Node_store.t;
  pool : Xqdb_storage.Buffer_pool.t;  (** for temp structures *)
  mutable budget : Xqdb_storage.Budget.t option;
      (** templates outlive any single run, so the budget is swapped in
          per execution via {!set_budget} *)
  params : Tuple.params;
      (** parameter slots the operators compile external references
          against; [Tuple.no_params] outside a template *)
  batch_size : int;  (** rows per {!Tuple.batch} (validated positive) *)
  scan_domains : int;
      (** domains a {!par_scan} partitions over; 1 = sequential *)
}

val make_ctx :
  ?budget:Xqdb_storage.Budget.t ->
  ?params:Tuple.params ->
  ?batch_size:int ->
  ?scan_domains:int ->
  Xqdb_xasr.Node_store.t ->
  ctx
(** [batch_size] defaults to 256 rows, [scan_domains] to 1.
    @raise Invalid_argument when either is [< 1]. *)

val with_params : ctx -> Tuple.params -> ctx
(** A derived context sharing the store/pool but compiling against the
    given parameter slots (with its own budget cell). *)

val set_budget : ctx -> Xqdb_storage.Budget.t option -> unit

type info = {
  name : string;
  detail : string;
  children : info list;
}

type stats = {
  mutable rows : int;  (** tuples produced by [next_batch] *)
  mutable batches : int;  (** batches produced by [next_batch] *)
  mutable ios : int;  (** inclusive page I/Os during [next_batch]/[reset] *)
  mutable seconds : float;  (** inclusive CPU seconds during [next_batch]/[reset] *)
}

type t = {
  schema : Tuple.schema;
  next_batch : unit -> Tuple.batch option;
      (** the returned batch is the operator's reusable backing storage:
          valid only until the next [next_batch] call, never empty *)
  reset : unit -> unit;
  info : info;
  stats : stats;
  kids : t list;  (** operator inputs, for profile trees *)
  ios_now : unit -> int;
      (** the disk I/O counter this operator is attributed against —
          combinators without their own context inherit the child's *)
  param_dep : bool;
      (** whether this subtree's output depends on parameter slots *)
  clear : unit -> unit;
      (** drop caches a rebind invalidates (this node only; see
          {!rebind}) *)
}

val next_batch : t -> Tuple.batch option
(** Pull the operator's next batch.  Returned batches are non-empty and
    owned by the operator — consume (or copy out of) a batch before
    pulling the next one. *)

val rebind : t -> unit
(** Prepare a template's operator tree for new parameter bindings: walk
    the tree clearing every cache whose contents depend on parameter
    slots.  Parameter-independent caches (a cached inner relation of a
    join, a spooled sort) deliberately survive — reusing them across
    outer bindings is the point of plan templates.  Callers still
    [reset] afterwards to restart iteration. *)

val zero_stats : t -> unit
(** Reset the accumulated per-operator stats of the whole tree, so a
    reused template reports per-execution (not cumulative) profiles. *)

val close : ctx -> t -> unit
(** Declare an operator tree done.  Operators hold no page pins between
    [next_batch] calls (all page access is scoped through the pool), so
    this releases nothing; under a sanitizing pool
    ({!Xqdb_storage.Buffer_pool.sanitizing}) it asserts that invariant,
    raising {!Xqdb_storage.Buffer_pool.Pin_leak} with the acquisition
    backtraces if a pin escaped.  The engine closes every relfor site's
    tree after draining it. *)

val pp_info : Format.formatter -> info -> unit
val info_to_string : info -> string

(** {2 Profiles}

    Every operator measures itself: its [next_batch] and [reset]
    closures are wrapped so that rows and batches produced, page I/Os
    and CPU time spent inside them accumulate into [stats].  Attribution
    is at batch granularity — two I/O-counter reads and two clock reads
    per batch, not per row — which is where vectorization wins back the
    measurement overhead.  The measurements are inclusive (a child only
    runs inside its parent's call windows); {!profile} turns an operator
    tree into a tree of per-operator numbers with the exclusive share
    ([own_ios], [own_seconds]) recovered by subtracting the inputs'
    inclusive totals. *)

type profile = {
  op : string;  (** operator name, as in [info.name] *)
  args : string;  (** operator detail, as in [info.detail] *)
  rows : int;
  batches : int;
  ios : int;  (** inclusive page I/Os *)
  own_ios : int;  (** exclusive: [ios] minus the inputs' [ios] *)
  seconds : float;
  own_seconds : float;
  inputs : profile list;
}

val profile : t -> profile
(** Snapshot the operator tree's accumulated stats. *)

val pp_profile : Format.formatter -> profile -> unit
(** Indented tree with per-operator rows / batches / inclusive and
    exclusive I/Os / seconds — what EXPLAIN's analyze mode prints. *)

val profile_to_string : profile -> string

val merge_profile : profile -> profile -> profile
(** Pointwise sum of two profiles of the same plan shape; used to
    aggregate the instantiations a nested relfor makes per outer
    binding into one breakdown per compile-time site. *)

val drain : t -> Tuple.t list
val count : t -> int

(** {2 Row-wise consumption} *)

type cursor = {
  pull : unit -> Tuple.t option;
      (** materialize the next row of the child's batch stream *)
  restart : unit -> unit;
      (** reset the child and forget the held batch *)
}

val cursor_of : t -> cursor
(** A tuple-at-a-time view of an operator's batch stream, for consumers
    whose logic is inherently row-wise.  The held batch is fully
    consumed before the child is pulled again, so batch reuse is
    safe. *)

(* --- access paths --- *)

val full_scan : ctx -> string -> preds:A.pred list -> t
(** Clustered scan of the whole XASR relation under [alias]: whole
    primary leaves are decoded per pool access and rows are staged
    straight into the output batch's columns, where the (ground) local
    predicates are evaluated in place — no per-tuple allocation. *)

val par_scan : ctx -> domains:int -> string -> preds:A.pred list -> t
(** Partitioned clustered scan: the document's [in] space is split into
    [domains] contiguous ranges, scanned concurrently by OCaml domains
    over the shared (domain-safe) buffer pool, filtered locally, and
    concatenated in range order — which is document order, so the output
    is identical to {!full_scan}.  The partitions are materialized once
    and replayed across [reset]s; the cache survives rebinds unless
    [preds] read parameter slots.
    @raise Invalid_argument when [domains < 1]. *)

val label_scan :
  ctx -> string -> ntype:Xqdb_xasr.Xasr.node_type -> value:string -> preds:A.pred list -> t
(** Index-based selection via the label index; [preds] are the residual
    local predicates beyond type/value. *)

val struct_scan : ctx -> string -> label:string -> preds:A.pred list -> t
(** Index-only selection via the structural index: streams full element
    tuples for one label without touching the primary.  [preds] are
    residual local predicates (any type/value predicates are trivially
    true on the stream and merely re-checked). *)

val empty : Tuple.schema -> t
(** Produces nothing; the compiled form of a provably empty input. *)

val singleton : Tuple.schema -> Tuple.t -> t
(** One-tuple input; with an empty schema this is the nullary relation
    containing the empty tuple, the unit of products. *)

(* --- joins --- *)

type probe =
  | Probe_child of A.operand
      (** inner.parent_in = v: parent-index lookup *)
  | Probe_desc of A.operand * A.operand
      (** v_in < inner.in && inner.in < v_out: clustered range scan
          (the interval property makes the out comparison implicit) *)
  | Probe_pk of A.operand  (** inner.in = v: primary lookup *)

val nl_join :
  ?materialize_inner:[`Mem | `Disk | `None] ->
  ?semi:bool ->
  preds:A.pred list ->
  t ->
  t ->
  ctx ->
  t
(** Order-preserving nested-loop join (a product when [preds] is []).
    The inner input is re-iterated per outer tuple: cached in memory
    ([`Mem], default), spooled to disk ([`Disk], milestone 3's mode), or
    recomputed via [reset] ([`None]).  With [semi], at most one match is
    emitted per outer tuple (the short-circuit a semijoin affords). *)

val bnl_join :
  ?block_size:int ->
  preds:A.pred list ->
  t ->
  t ->
  ctx ->
  t
(** Block nested-loop join: buffers [block_size] outer tuples (default
    64) and scans the inner once per block instead of once per tuple.
    Cheaper than {!nl_join}, but the output comes inner-major within
    each block — it {e destroys} document order, which is why the
    paper's milestone 3 forbids it in order-preserving plans.  The
    planner only emits it under the sorting strategies. *)

val inl_join :
  ?semi:bool ->
  ctx ->
  probe:probe ->
  alias:string ->
  preds:A.pred list ->
  residual:A.pred list ->
  t ->
  t
(** Index nested-loop join: for each outer tuple, probe the inner XASR
    copy [alias] through an index.  [preds] are the inner's local
    predicates, [residual] any remaining join predicates (checked on the
    combined schema).  Probe operands are compiled against the outer
    schema. *)

val struct_join :
  ?semi:bool ->
  ctx ->
  lo:A.operand ->
  hi:A.operand ->
  alias:string ->
  label:string ->
  preds:A.pred list ->
  residual:A.pred list ->
  t ->
  t
(** Staircase structural join: emits, per outer tuple, the inner label's
    elements with [lo < in < hi], located by binary search in the
    label's structural-index run.  The run is loaded once (whole index
    leaves per pool access) and — being parameter-independent — survives
    template rebinds.  Output order and semantics match {!inl_join} with
    [Probe_desc]; the page I/O cost does not scale with outer
    cardinality. *)

type twig_axis =
  | Twig_child
  | Twig_desc

type twig_step = {
  tw_alias : string;
  tw_label : string;
  tw_axis : twig_axis;
      (** relationship to the {e previous} step; the first step's axis
          is relative to the anchor interval and is always treated as
          descendant containment *)
}

val twig_match :
  ctx -> anchor:(A.operand * A.operand) option -> steps:twig_step list -> t
(** Stack-based holistic twig (path-pattern) matching over the
    structural index, PathStack-style: one index stream and one stack
    per step, merged by [in], near-linear in the input streams plus the
    output.  [anchor], when given, restricts the first step to
    [lo < in && out < hi]; its operands must be constants or externs.
    The output schema is the concatenation of the steps' XASR schemas;
    solutions come lexicographically ordered by the steps' [in] columns,
    i.e. exactly the order of the equivalent left-deep order-preserving
    nested-loop plan. *)

(* --- projection, dedup, sort, materialization --- *)

val project : cols:A.col list -> dedup:[`No | `Adjacent | `Hash] -> t -> t

val filter : ?params:Tuple.params -> preds:A.pred list -> t -> t

val sort :
  ?dedup:bool ->
  mode:[`In_mem | `External] ->
  key_cols:A.col list ->
  t ->
  ctx ->
  t

val btree_sort : ?dedup:bool -> key_cols:A.col list -> t -> ctx -> t
(** Sort by inserting into a scratch clustered B+-tree and scanning it —
    approach (c).  With [dedup] (default true) key collisions overwrite,
    which is exactly the duplicate elimination wanted on vartuples. *)

val materialize : [`Mem | `Disk] -> t -> ctx -> t
(** Spool the input once; [reset] then re-reads the spool. *)
