module A = Xqdb_tpm.Tpm_algebra
module Codec = Xqdb_storage.Bytes_codec

type value =
  | I of int
  | S of string

type t = value array

type schema = A.col list

let value_equal v1 v2 =
  match v1, v2 with
  | I a, I b -> Int.equal a b
  | S a, S b -> String.equal a b
  | I _, S _ | S _, I _ -> false

let value_compare v1 v2 =
  match v1, v2 with
  | I a, I b -> Int.compare a b
  | S a, S b -> String.compare a b
  | I _, S _ -> -1
  | S _, I _ -> 1

let position schema col =
  let rec go i = function
    | [] -> raise Not_found
    | c :: rest -> if c = col then i else go (i + 1) rest
  in
  go 0 schema

let concat = Array.append

let ground_operand env = function
  | A.Oextern_in x -> A.Oint (fst (env x))
  | A.Oextern_out x -> A.Oint (snd (env x))
  | (A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _) as op -> op

(* Parameter slots: a template's outer-variable references compile to
   closures that read these mutable cells, so re-binding a plan to a new
   outer environment is a handful of writes, not a recompilation. *)

type param_slot = {
  mutable bound_in : int;
  mutable bound_out : int;
}
[@@domain_local]

type params = (Xqdb_xq.Xq_ast.var * param_slot) list

let no_params : params = []

let make_params vars : params =
  List.sort_uniq String.compare vars
  |> List.map (fun v -> (v, { bound_in = 0; bound_out = 0 }))

let param_vars (params : params) = List.map fst params

let bind_params (params : params) env =
  List.iter
    (fun (v, slot) ->
      let nin, nout = env v in
      slot.bound_in <- nin;
      slot.bound_out <- nout)
    params

let compile_operand ?(params = no_params) schema operand =
  let slot x =
    match List.assoc_opt x params with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Tuple.compile_operand: unresolved external %s"
           (Xqdb_xq.Xq_print.var x))
  in
  match operand with
  | A.Ocol c ->
    let i = position schema c in
    fun tuple -> tuple.(i)
  | A.Oint v -> Fun.const (I v)
  | A.Ostr s -> Fun.const (S s)
  | A.Otype ty -> Fun.const (I (Xqdb_xasr.Xasr.node_type_code ty))
  | A.Oextern_in x ->
    let s = slot x in
    fun _ -> I s.bound_in
  | A.Oextern_out x ->
    let s = slot x in
    fun _ -> I s.bound_out

let compile_pred ?params schema (p : A.pred) =
  let left = compile_operand ?params schema p.A.left in
  let right = compile_operand ?params schema p.A.right in
  match p.A.op with
  | A.Eq -> fun tuple -> value_equal (left tuple) (right tuple)
  | A.Lt -> fun tuple -> value_compare (left tuple) (right tuple) < 0
  | A.Gt -> fun tuple -> value_compare (left tuple) (right tuple) > 0

let compile_preds ?params schema preds =
  let compiled = List.map (compile_pred ?params schema) preds in
  fun tuple -> List.for_all (fun p -> p tuple) compiled

(* Columnar batches: one value array per schema column plus a fill
   length, over backing storage an operator allocates once and reuses
   across [next_batch] calls.  A consumer must finish with a batch before
   asking its producer for the next one — the arrays are overwritten in
   place. *)

type batch = {
  cols : value array array;
  cap : int;
  mutable len : int;
}
(* Producer-owned: a batch is filled and consumed on one domain. *)
[@@domain_local]

let batch_create ~width cap =
  if cap <= 0 then invalid_arg "Tuple.batch_create: capacity must be positive";
  { cols = Array.init width (fun _ -> Array.make cap (I 0)); cap; len = 0 }

let batch_width b = Array.length b.cols
let batch_clear b = b.len <- 0
let batch_full b = b.len >= b.cap

let batch_push b tuple =
  let row = b.len in
  Array.iteri (fun c col -> col.(row) <- tuple.(c)) b.cols;
  b.len <- row + 1

let batch_row b i =
  Array.map (fun col -> col.(i)) b.cols

let batch_copy_row src i dst =
  let row = dst.len in
  Array.iteri (fun c col -> col.(row) <- src.cols.(c).(i)) dst.cols;
  dst.len <- row + 1

let batch_of_list ~width tuples =
  let cap = max 1 (List.length tuples) in
  let b = batch_create ~width cap in
  List.iter (batch_push b) tuples;
  b

let batch_to_list b =
  List.init b.len (batch_row b)

(* Batch-compiled operands and predicates read column arrays directly —
   no per-row tuple is materialized on the scan hot paths. *)

let compile_operand_batch ?(params = no_params) schema operand =
  let slot x =
    match List.assoc_opt x params with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Tuple.compile_operand_batch: unresolved external %s"
           (Xqdb_xq.Xq_print.var x))
  in
  match operand with
  | A.Ocol c ->
    let i = position schema c in
    fun b row -> b.cols.(i).(row)
  | A.Oint v ->
    let v = I v in
    fun _ _ -> v
  | A.Ostr s ->
    let v = S s in
    fun _ _ -> v
  | A.Otype ty ->
    let v = I (Xqdb_xasr.Xasr.node_type_code ty) in
    fun _ _ -> v
  | A.Oextern_in x ->
    let s = slot x in
    fun _ _ -> I s.bound_in
  | A.Oextern_out x ->
    let s = slot x in
    fun _ _ -> I s.bound_out

let compile_pred_batch ?params schema (p : A.pred) =
  let left = compile_operand_batch ?params schema p.A.left in
  let right = compile_operand_batch ?params schema p.A.right in
  match p.A.op with
  | A.Eq -> fun b row -> value_equal (left b row) (right b row)
  | A.Lt -> fun b row -> value_compare (left b row) (right b row) < 0
  | A.Gt -> fun b row -> value_compare (left b row) (right b row) > 0

let compile_preds_batch ?params schema preds =
  let compiled = List.map (compile_pred_batch ?params schema) preds in
  fun b row -> List.for_all (fun p -> p b row) compiled

let xasr_schema alias =
  [ A.col alias A.In;
    A.col alias A.Out;
    A.col alias A.Parent_in;
    A.col alias A.Type_;
    A.col alias A.Value ]

let of_xasr (x : Xqdb_xasr.Xasr.tuple) =
  [| I x.Xqdb_xasr.Xasr.nin;
     I x.nout;
     I x.parent_in;
     I (Xqdb_xasr.Xasr.node_type_code x.ntype);
     S x.value |]

let project positions tuple = Array.map (fun i -> tuple.(i)) positions

let encode tuple =
  let buf = Buffer.create 32 in
  Codec.write_uvarint buf (Array.length tuple);
  Array.iter
    (fun v ->
      match v with
      | I x ->
        Buffer.add_char buf '\000';
        Codec.write_uvarint buf x
      | S s ->
        Buffer.add_char buf '\001';
        Codec.write_string buf s)
    tuple;
  Buffer.to_bytes buf

let decode_reader r =
  let n = Codec.read_uvarint r in
  Array.init n (fun _ ->
      let tag = Bytes.get r.Codec.data r.Codec.pos in
      r.Codec.pos <- r.Codec.pos + 1;
      match tag with
      | '\000' -> I (Codec.read_uvarint r)
      | '\001' -> S (Codec.read_string r)
      | c -> invalid_arg (Printf.sprintf "Tuple.decode: bad tag %C" c))

let decode data = decode_reader (Codec.reader data)

let encode_with_key ~key_positions tuple =
  (* Layout: uvarint key length, key bytes, then the encoded tuple.
     Compare by the {e extracted} key bytes, not the whole record — the
     length prefix is not order-preserving for variable-width keys. *)
  let key_buf = Buffer.create 48 in
  Array.iter
    (fun i ->
      match tuple.(i) with
      | I v -> Codec.key_int key_buf v
      | S s -> Codec.key_string key_buf s)
    key_positions;
  let out = Buffer.create 80 in
  Codec.write_uvarint out (Buffer.length key_buf);
  Buffer.add_buffer out key_buf;
  Buffer.add_bytes out (encode tuple);
  Buffer.to_bytes out

let decode_keyed data =
  let r = Codec.reader data in
  let klen = Codec.read_uvarint r in
  let key = Bytes.sub r.Codec.data r.Codec.pos klen in
  r.Codec.pos <- r.Codec.pos + klen;
  (key, decode_reader r)

let key_of_encoded data =
  let r = Codec.reader data in
  let klen = Codec.read_uvarint r in
  Bytes.sub r.Codec.data r.Codec.pos klen

let pp ppf tuple =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (function
               | I v -> string_of_int v
               | S s -> Printf.sprintf "%S" s)
             tuple)))
