module A = Xqdb_tpm.Tpm_algebra
module Ast = Xqdb_xq.Xq_ast
module Xq_check = Xqdb_xq.Xq_check
module Xq_print = Xqdb_xq.Xq_print
module Planner = Xqdb_optimizer.Planner
module Tuple = Xqdb_physical.Tuple

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let var = Xq_print.var

let distinct xs = List.length (List.sort_uniq compare xs) = List.length xs

let check_psx ~scope (psx : A.psx) =
  if not (distinct psx.A.rels) then
    fail "duplicate relation alias among [%s]" (String.concat ", " psx.A.rels);
  List.iter
    (fun (b : A.binding) ->
      if not (List.mem b.A.brel psx.A.rels) then
        fail "binding %s projects alias %s, which is not among the relations" (var b.A.var)
          b.A.brel)
    psx.A.bindings;
  if not (distinct (List.map (fun (b : A.binding) -> b.A.var) psx.A.bindings)) then
    fail "a variable is bound twice by one PSX";
  List.iter
    (fun (p : A.pred) ->
      List.iter
        (fun r ->
          if not (List.mem r psx.A.rels) then
            fail "predicate %s mentions unknown alias %s" (Xqdb_tpm.Tpm_print.pred_to_string p)
              r)
        (A.pred_rels p))
    psx.A.preds;
  List.iter
    (fun x ->
      if not (List.mem x scope) then fail "PSX reads outer variable %s, not in scope" (var x))
    (A.psx_externs psx)

let check_scoped_var ~scope x =
  if not (List.mem x scope) then fail "variable %s used out of scope" (var x)

let check_guard ~scope c =
  List.iter (check_scoped_var ~scope) (Ast.cond_free_vars c)

let check_tpm tpm =
  let rec go scope (e : A.t) =
    match e with
    | A.Empty | A.Text_out _ -> ()
    | A.Out_var x -> check_scoped_var ~scope x
    | A.Constr (label, body) ->
      if String.equal label "" then fail "empty constructor label";
      go scope body
    | A.Seq (t1, t2) ->
      go scope t1;
      go scope t2
    | A.Guard (c, body) ->
      check_guard ~scope c;
      go scope body
    | A.Relfor r ->
      if r.A.vars <> List.map (fun (b : A.binding) -> b.A.var) r.A.source.A.bindings then
        fail "relfor vartuple disagrees with its PSX bindings";
      check_psx ~scope r.A.source;
      go (r.A.vars @ scope) r.A.body
  in
  go [Ast.root_var] tpm

let check_site ~scope (s : Plan_ir.site) =
  if s.Plan_ir.bindings <> s.Plan_ir.source.A.bindings then
    fail "site %d: bindings disagree with the source PSX" s.Plan_ir.id;
  check_psx ~scope s.Plan_ir.source;
  let tmpl = s.Plan_ir.template in
  let plan = tmpl.Planner.plan in
  let width = if plan.Planner.config.Planner.carry_out then 2 else 1 in
  let expected = width * List.length s.Plan_ir.bindings in
  if List.length plan.Planner.out_cols <> expected then
    fail "site %d: plan projects %d columns, vartuple needs %d" s.Plan_ir.id
      (List.length plan.Planner.out_cols) expected;
  List.iter
    (fun x ->
      if not (List.mem x scope) then
        fail "site %d: parameter %s not in scope" s.Plan_ir.id (var x))
    (Tuple.param_vars tmpl.Planner.params);
  if plan.Planner.provably_empty && plan.Planner.steps <> [] then
    fail "site %d: provably empty plan still has steps" s.Plan_ir.id;
  if plan.Planner.twig <> None && plan.Planner.steps <> [] then
    fail "site %d: twig plan still has join steps" s.Plan_ir.id;
  let aliases =
    match plan.Planner.twig with
    | Some tw ->
      List.map (fun (st : Planner.twig_step) -> st.Planner.tw_alias) tw.Planner.tw_steps
    | None -> List.map (fun (st : Planner.step) -> st.Planner.alias) plan.Planner.steps
  in
  if not (distinct aliases) then fail "site %d: plan places an alias twice" s.Plan_ir.id;
  List.iter
    (fun a ->
      if not (List.mem a s.Plan_ir.source.A.rels) then
        fail "site %d: plan places alias %s, not in the PSX" s.Plan_ir.id a)
    aliases;
  if (not plan.Planner.provably_empty) && s.Plan_ir.source.A.rels <> []
     && List.sort compare aliases <> List.sort compare s.Plan_ir.source.A.rels
  then fail "site %d: plan does not place every PSX relation" s.Plan_ir.id

let check_phys phys =
  let seen_ids = ref [] in
  let rec go scope (p : Plan_ir.phys) =
    match p with
    | Plan_ir.P_empty | Plan_ir.P_text _ -> ()
    | Plan_ir.P_out x -> check_scoped_var ~scope x
    | Plan_ir.P_constr (label, body) ->
      if String.equal label "" then fail "empty constructor label";
      go scope body
    | Plan_ir.P_seq (p1, p2) ->
      go scope p1;
      go scope p2
    | Plan_ir.P_guard (c, body) ->
      check_guard ~scope c;
      go scope body
    | Plan_ir.P_relfor s ->
      if List.mem s.Plan_ir.id !seen_ids then fail "duplicate site id %d" s.Plan_ir.id;
      seen_ids := s.Plan_ir.id :: !seen_ids;
      check_site ~scope s;
      go (List.map (fun (b : A.binding) -> b.A.var) s.Plan_ir.bindings @ scope) s.Plan_ir.body
  in
  go [Ast.root_var] phys

let check (ir : Plan_ir.t) =
  match ir with
  | Plan_ir.Ast q ->
    (match Xq_check.check q with
     | Ok () -> Ok ()
     | Error e -> Error (Xq_check.error_to_string e))
  | Plan_ir.Tpm tpm -> (try Ok (check_tpm tpm) with Bad msg -> Error msg)
  | Plan_ir.Phys phys -> (try Ok (check_phys phys) with Bad msg -> Error msg)
