(** The shared plan IR the compilation pipeline's passes transform.

    A query moves through three representations: the parsed XQ AST, the
    TPM algebra (relfors over PSX expressions), and the physical form —
    the TPM shell with every relfor compiled to a {e parameterized plan
    template} ({!Xqdb_optimizer.Planner.template}).  Each relfor becomes
    a {!site}, numbered in prefix order; the template is built exactly
    once per site and re-bound per outer environment at execution time,
    which is what makes [planner.templates_built] O(#sites) instead of
    O(outer tuples). *)

module A := Xqdb_tpm.Tpm_algebra

type phys =
  | P_empty
  | P_text of string
  | P_constr of string * phys
  | P_seq of phys * phys
  | P_out of Xqdb_xq.Xq_ast.var
  | P_guard of Xqdb_xq.Xq_ast.cond * phys
  | P_relfor of site

and site = {
  id : int;  (** compile-time id, prefix order; profiles key on it *)
  bindings : A.binding list;
  source : A.psx;  (** the PSX the plan was compiled from, for validation/explain *)
  template : Xqdb_optimizer.Planner.template;
  body : phys;
}

(** One stage of the pipeline. *)
type t =
  | Ast of Xqdb_xq.Xq_ast.query
  | Tpm of A.t
  | Phys of phys

val stage_kind : t -> string
(** ["xq-ast"], ["tpm"] or ["physical"]. *)

val iter_sites : (site -> unit) -> phys -> unit
(** Visit every relfor site, outer before inner (prefix order). *)

val sites : phys -> site list
(** All sites in id order. *)

val site_count : phys -> int

val tpm_relfors : A.t -> A.relfor list
(** The relfors of a TPM expression in prefix order — the logical
    counterpart of {!sites}. *)
