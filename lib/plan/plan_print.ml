module A = Xqdb_tpm.Tpm_algebra
module Planner = Xqdb_optimizer.Planner
module Tuple = Xqdb_physical.Tuple
module Xq_print = Xqdb_xq.Xq_print

let vartuple bindings =
  String.concat ", " (List.map (fun (b : A.binding) -> Xq_print.var b.A.var) bindings)

let params_detail (tmpl : Planner.template) =
  match Tuple.param_vars tmpl.Planner.params with
  | [] -> "none"
  | vars -> String.concat ", " (List.map Xq_print.var vars)

(* The physical stage prints in two halves: the TPM shell as a skeleton
   with each relfor reduced to its site header, then one plan block per
   site.  The skeleton shows where templates hang; the blocks show what
   each template does. *)
let rec pp_skeleton ppf (p : Plan_ir.phys) =
  match p with
  | Plan_ir.P_empty -> Format.fprintf ppf "()"
  | Plan_ir.P_text s -> Format.fprintf ppf "text %S" s
  | Plan_ir.P_constr (label, body) ->
    Format.fprintf ppf "@[<v 2><%s>@,%a@]" label pp_skeleton body
  | Plan_ir.P_seq (p1, p2) ->
    Format.fprintf ppf "%a@,%a" pp_skeleton p1 pp_skeleton p2
  | Plan_ir.P_out x -> Format.fprintf ppf "out %s" (Xq_print.var x)
  | Plan_ir.P_guard (c, body) ->
    Format.fprintf ppf "@[<v 2>guard %s@,%a@]" (Xq_print.cond_to_string c) pp_skeleton body
  | Plan_ir.P_relfor s ->
    Format.fprintf ppf "@[<v 2>relfor site %d (%s)  params: %s@,%a@]" s.Plan_ir.id
      (vartuple s.Plan_ir.bindings) (params_detail s.Plan_ir.template) pp_skeleton
      s.Plan_ir.body

let pp_site ppf (s : Plan_ir.site) =
  Format.fprintf ppf "@[<v>plan for relfor (%s)  [site %d; params: %s]@,%a@]"
    (vartuple s.Plan_ir.bindings) s.Plan_ir.id (params_detail s.Plan_ir.template) Planner.pp
    s.Plan_ir.template.Planner.plan

let pp_phys ppf phys =
  Format.fprintf ppf "@[<v>%a@]" pp_skeleton phys;
  List.iter (fun s -> Format.fprintf ppf "@.@.%a" pp_site s) (Plan_ir.sites phys)

let pp_ir ppf (ir : Plan_ir.t) =
  match ir with
  | Plan_ir.Ast q -> Xq_print.pp_query ppf q
  | Plan_ir.Tpm tpm -> Xqdb_tpm.Tpm_print.pp ppf tpm
  | Plan_ir.Phys phys -> pp_phys ppf phys

let ir_to_string ir = Format.asprintf "%a" pp_ir ir
