module A = Xqdb_tpm.Tpm_algebra
module Planner = Xqdb_optimizer.Planner

type phys =
  | P_empty
  | P_text of string
  | P_constr of string * phys
  | P_seq of phys * phys
  | P_out of Xqdb_xq.Xq_ast.var
  | P_guard of Xqdb_xq.Xq_ast.cond * phys
  | P_relfor of site

and site = {
  id : int;
  bindings : A.binding list;
  source : A.psx;
  template : Planner.template;
  body : phys;
}

type t =
  | Ast of Xqdb_xq.Xq_ast.query
  | Tpm of A.t
  | Phys of phys

let stage_kind = function
  | Ast _ -> "xq-ast"
  | Tpm _ -> "tpm"
  | Phys _ -> "physical"

let rec iter_sites f = function
  | P_empty | P_text _ | P_out _ -> ()
  | P_constr (_, body) | P_guard (_, body) -> iter_sites f body
  | P_seq (p1, p2) ->
    iter_sites f p1;
    iter_sites f p2
  | P_relfor site ->
    f site;
    iter_sites f site.body

let sites phys =
  let acc = ref [] in
  iter_sites (fun s -> acc := s :: !acc) phys;
  List.sort (fun a b -> Int.compare a.id b.id) !acc

let site_count phys = List.length (sites phys)

let rec tpm_relfors (e : A.t) =
  match e with
  | A.Empty | A.Text_out _ | A.Out_var _ -> []
  | A.Constr (_, body) | A.Guard (_, body) -> tpm_relfors body
  | A.Seq (t1, t2) -> tpm_relfors t1 @ tpm_relfors t2
  | A.Relfor r -> r :: tpm_relfors r.A.body
