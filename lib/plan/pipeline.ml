module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats
module Op = Xqdb_physical.Phys_op

type config = {
  rewrite : Rewrite.config;
  merge_relfors : bool;
  planner : Planner.config;
  batch_size : int;
  scan_domains : int;
}

type ctx = {
  config : config;
  stats : Stats.t;
  store : Xqdb_xasr.Node_store.t;
}

type pass = {
  name : string;
  describe : string;
  run : ctx -> Plan_ir.t -> Plan_ir.t;
}

let wrong_stage pass ir =
  invalid_arg
    (Printf.sprintf "Pipeline: pass %s cannot run on a %s stage" pass (Plan_ir.stage_kind ir))

let rewrite_pass =
  { name = "rewrite";
    describe = "XQ to TPM: for-loops and rewritable conditions become relfors over PSX";
    run =
      (fun ctx ir ->
        match ir with
        | Plan_ir.Ast q -> Plan_ir.Tpm (Rewrite.query ~config:ctx.config.rewrite q)
        | Plan_ir.Tpm _ | Plan_ir.Phys _ -> wrong_stage "rewrite" ir) }

let merge_pass =
  { name = "merge";
    describe = "fuse directly nested relfors into one PSX (milestone 3's algebraic step)";
    run =
      (fun _ctx ir ->
        match ir with
        | Plan_ir.Tpm tpm -> Plan_ir.Tpm (Merge.merge tpm)
        | Plan_ir.Ast _ | Plan_ir.Phys _ -> wrong_stage "merge" ir) }

let plan_pass =
  { name = "plan";
    describe = "compile each relfor site once into a parameterized physical plan template";
    run =
      (fun ctx ir ->
        match ir with
        | Plan_ir.Tpm tpm ->
          let base =
            Op.make_ctx ~batch_size:ctx.config.batch_size
              ~scan_domains:ctx.config.scan_domains ctx.store
          in
          let next_site = ref 0 in
          let rec go (e : A.t) : Plan_ir.phys =
            match e with
            | A.Empty -> Plan_ir.P_empty
            | A.Text_out s -> Plan_ir.P_text s
            | A.Constr (label, body) -> Plan_ir.P_constr (label, go body)
            | A.Seq (t1, t2) -> Plan_ir.P_seq (go t1, go t2)
            | A.Out_var x -> Plan_ir.P_out x
            | A.Guard (c, body) -> Plan_ir.P_guard (c, go body)
            | A.Relfor r ->
              let id = !next_site in
              incr next_site;
              let plan = Planner.plan ctx.config.planner ctx.stats r.A.source in
              let template = Planner.template base plan in
              Plan_ir.P_relfor
                { Plan_ir.id;
                  bindings = r.A.source.A.bindings;
                  source = r.A.source;
                  template;
                  body = go r.A.body }
          in
          Plan_ir.Phys (go tpm)
        | Plan_ir.Ast _ | Plan_ir.Phys _ -> wrong_stage "plan" ir) }

let source_pass =
  { name = "source"; describe = "the parsed and checked XQ query"; run = (fun _ ir -> ir) }

let passes config =
  [rewrite_pass] @ (if config.merge_relfors then [merge_pass] else []) @ [plan_pass]

type staged = {
  stages : (pass * Plan_ir.t) list;
  phys : Plan_ir.phys;
}

let validate ~pass ir =
  match Plan_validate.check ir with
  | Ok () -> ()
  | Error msg ->
    invalid_arg (Printf.sprintf "Pipeline: stage after pass %s is invalid: %s" pass msg)

let compile ctx query =
  let init = Plan_ir.Ast query in
  validate ~pass:source_pass.name init;
  let stages, last =
    List.fold_left
      (fun (acc, ir) pass ->
        let ir' = pass.run ctx ir in
        validate ~pass:pass.name ir';
        ((pass, ir') :: acc, ir'))
      ([(source_pass, init)], init)
      (passes ctx.config)
  in
  match last with
  | Plan_ir.Phys phys -> { stages = List.rev stages; phys }
  | Plan_ir.Ast _ | Plan_ir.Tpm _ -> invalid_arg "Pipeline: final stage is not physical"

let front ctx query =
  let tpm = Rewrite.query ~config:ctx.config.rewrite query in
  let tpm = if ctx.config.merge_relfors then Merge.merge tpm else tpm in
  validate ~pass:"front" (Plan_ir.Tpm tpm);
  tpm

let render_staged staged =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (pass, ir) ->
      Buffer.add_string buf
        (Printf.sprintf "== %s: %s ==\n" pass.name (Plan_ir.stage_kind ir));
      Buffer.add_string buf (Plan_print.ir_to_string ir);
      Buffer.add_string buf "\n\n")
    staged.stages;
  Buffer.contents buf
