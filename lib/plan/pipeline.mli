(** The staged query-compilation pipeline.

    A query compiles through named passes over the shared {!Plan_ir}:

    {v
    source   xq-ast     the parsed, checked query
    rewrite  tpm        for-loops/conditions -> relfors over PSX
    merge    tpm        fuse directly nested relfors (if configured)
    plan     physical   one parameterized plan template per relfor site
    v}

    Every stage is validated ({!Plan_validate}) as it is produced, and
    every stage is retained in the {!staged} result so EXPLAIN can show
    the whole derivation.  Templates are built exactly once per site —
    execution binds parameters ({!Xqdb_optimizer.Planner.bind}) instead
    of replanning per outer tuple. *)

type config = {
  rewrite : Xqdb_tpm.Rewrite.config;
  merge_relfors : bool;
  planner : Xqdb_optimizer.Planner.config;
  batch_size : int;  (** rows per operator batch (validated upstream) *)
  scan_domains : int;
      (** domains the planner may split a full scan across (1 = off) *)
}

type ctx = {
  config : config;
  stats : Xqdb_optimizer.Stats.t;
  store : Xqdb_xasr.Node_store.t;
}

type pass = {
  name : string;
  describe : string;
  run : ctx -> Plan_ir.t -> Plan_ir.t;
}

val rewrite_pass : pass
val merge_pass : pass
val plan_pass : pass

val passes : config -> pass list
(** The passes a configuration runs, in order (merge only when
    [merge_relfors]). *)

type staged = {
  stages : (pass * Plan_ir.t) list;
      (** every stage in order, starting with the source AST *)
  phys : Plan_ir.phys;  (** the final physical form *)
}

val compile : ctx -> Xqdb_xq.Xq_ast.query -> staged
(** Run all passes, validating after each.
    @raise Invalid_argument if any stage fails validation.
    May perform page I/O: building templates opens cursors over the
    store. *)

val front : ctx -> Xqdb_xq.Xq_ast.query -> Xqdb_tpm.Tpm_algebra.t
(** Just the logical front half (rewrite + optional merge), validated —
    for tools like the plan laboratory that plan the resulting PSX
    themselves. *)

val render_staged : staged -> string
(** All stages pretty-printed under "== pass: kind ==" headers. *)
