(** Per-stage validation of the plan IR.

    The pipeline runs this after every pass, so a pass that produces an
    ill-formed stage fails loudly at compile time rather than as a
    runtime lookup error deep in an operator tree.  Checked per stage:

    - {b xq-ast}: {!Xqdb_xq.Xq_check} (unbound/shadowed variables,
      empty labels);
    - {b tpm}: PSX well-formedness (binding aliases among the
      relations, distinct aliases, predicates only over placed aliases)
      and scoping — every external an inner PSX or guard reads is bound
      by an enclosing relfor or is [$root];
    - {b physical}: all of the above on each site's retained source
      PSX, plus template consistency — the plan projects exactly the
      vartuple's columns, parameter slots only name in-scope outer
      variables, every PSX relation is placed exactly once, and site
      ids are unique. *)

val check : Plan_ir.t -> (unit, string) result
