(** Per-stage pretty-printing of the plan IR.

    The AST stage prints as XQ surface syntax, the TPM stage in the
    paper's Figures 3-5 style, and the physical stage as the TPM shell
    skeleton (each relfor reduced to its site header with its parameter
    signature) followed by one plan block per site. *)

val pp_ir : Format.formatter -> Plan_ir.t -> unit
val ir_to_string : Plan_ir.t -> string

val pp_site : Format.formatter -> Plan_ir.site -> unit
(** One site's "plan for relfor (vars)" block. *)
