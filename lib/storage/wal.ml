(* A redo-only physical write-ahead log.

   Records are page after-images: whenever the buffer pool finishes a
   mutation it appends the page's full contents here, and before a dirty
   frame is written back the log is synced up to that record.  Recovery
   is then a blind, idempotent rewrite of every durable after-image in
   LSN order — no undo, because a page write-back never happens before
   its record is durable, so the database file can only be {e behind}
   the log, never ahead of it.

   The log distinguishes durable bytes (survive a crash) from pending
   bytes (appended but not yet synced; a crash drops them).  For the
   file backend "durable" means flushed to the OS; for the in-memory
   backend — used by the crash-point harness — the split is explicit so
   a simulated crash can discard exactly the unsynced suffix. *)

type op =
  | Append
  | Sync

type fault =
  | No_fault
  | Fail of string
  | Torn of string

type backend =
  | Mem of { durable : Buffer.t }
  | File of {
      path : string;
      mutable out : out_channel;
    }

type t = {
  backend : backend;
  mutable next_lsn : int;
  mutable last_lsn : int;
  mutable synced_lsn : int;
  (* Encoded records appended but not yet durable, newest first. *)
  mutable pending : (int * bytes) list;
  mutable pending_bytes : int;
  mutable durable_size : int;
  mutable injector : (op -> fault) option;
  mutable no_sync : bool;
}
(* Append/sync run under the owning pool's table mutex (mutation-time
   logging and write-back both happen inside the pool's bracket). *)
[@@guarded_by pool_table_lock]

type replay_stats = {
  applied : int;
  discarded_bytes : int;
  torn_tail : bool;
}

let m_appends = Metrics.counter "wal.appends"
let m_syncs = Metrics.counter "wal.syncs"
let m_checkpoints = Metrics.counter "wal.checkpoints"
let m_replayed = Metrics.counter "wal.recovery_replayed"

let make backend durable_size =
  { backend;
    next_lsn = 1;
    last_lsn = 0;
    synced_lsn = 0;
    pending = [];
    pending_bytes = 0;
    durable_size;
    injector = None;
    no_sync = false }

let in_memory () = make (Mem { durable = Buffer.create 4096 }) 0

let on_file path =
  let out = open_out_gen [Open_wronly; Open_creat; Open_trunc; Open_binary] 0o644 path in
  make (File { path; out }) 0

let open_existing path =
  let out = open_out_gen [Open_append; Open_creat; Open_binary] 0o644 path in
  let inp = open_in_bin path in
  let size = in_channel_length inp in
  close_in inp;
  make (File { path; out }) size

let set_injector t injector = t.injector <- injector

let consult t op =
  match t.injector with
  | None -> No_fault
  | Some f -> f op

let last_lsn t = t.last_lsn
let synced_lsn t = t.synced_lsn
let size_bytes t = t.durable_size + t.pending_bytes
let unsafe_no_sync t flag = t.no_sync <- flag

(* --- record encoding ---------------------------------------------------

   [ kind:u8=1 | lsn:i64 LE | page_id:u32 | len:u32 | payload | crc:u32 ]

   The CRC covers everything before it, so a record whose tail never
   reached the disk — a torn log write — fails verification and marks
   the end of the replayable prefix. *)

let record_kind = 1
let header_len = 17

let encode ~lsn ~page_id ~data =
  let plen = Bytes.length data in
  let buf = Bytes.create (header_len + plen + 4) in
  Bytes.set_uint8 buf 0 record_kind;
  Bytes.set_int64_le buf 1 (Int64.of_int lsn);
  Page.set_u32 buf 9 page_id;
  Page.set_u32 buf 13 plen;
  Bytes.blit data 0 buf header_len plen;
  let crc = Crc32.finish (Crc32.feed Crc32.start buf 0 (header_len + plen)) in
  Page.set_u32 buf (header_len + plen) crc;
  buf

let append t ~page_id ~data =
  (match consult t Append with
   | No_fault -> ()
   | Fail msg | Torn msg -> raise (Disk.Disk_error msg));
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.last_lsn <- lsn;
  let record = encode ~lsn ~page_id ~data in
  t.pending <- (lsn, record) :: t.pending;
  t.pending_bytes <- t.pending_bytes + Bytes.length record;
  Metrics.incr m_appends;
  lsn

(* --- durability --------------------------------------------------------- *)

let persist_durable t chunks =
  List.iter
    (fun chunk ->
      t.durable_size <- t.durable_size + Bytes.length chunk;
      match t.backend with
      | Mem m -> Buffer.add_bytes m.durable chunk
      | File f -> output_bytes f.out chunk)
    chunks;
  match t.backend with
  | Mem _ -> ()
  | File f -> flush f.out

let clear_pending t =
  t.pending <- [];
  t.pending_bytes <- 0

let sync t =
  if (not t.no_sync) && t.pending <> [] then begin
    match consult t Sync with
    | Fail msg -> raise (Disk.Disk_error msg)
    | Torn msg ->
      (* A torn sync: the older half of the pending records reach the
         disk whole, plus a damaged prefix of the next one — the torn
         log tail recovery must skip.  Everything else is lost, as it
         would be in a crash moments later. *)
      let recs = List.rev t.pending in
      let keep = List.length recs / 2 in
      let rec split i = function
        | [] -> ([], None)
        | (lsn, r) :: rest ->
          if i < keep then
            let whole, half = split (i + 1) rest in
            ((lsn, r) :: whole, half)
          else ([], Some r)
      in
      let whole, half = split 0 recs in
      persist_durable t (List.map snd whole);
      (match half with
       | Some r -> persist_durable t [Bytes.sub r 0 (Bytes.length r / 2)]
       | None -> ());
      (match List.rev whole with
       | (lsn, _) :: _ -> t.synced_lsn <- lsn
       | [] -> ());
      t.last_lsn <- t.synced_lsn;
      clear_pending t;
      raise (Disk.Disk_error msg)
    | No_fault ->
      persist_durable t (List.rev_map snd t.pending);
      clear_pending t;
      t.synced_lsn <- t.last_lsn;
      Metrics.incr m_syncs
  end

let crash_discard t =
  clear_pending t;
  t.last_lsn <- t.synced_lsn

let checkpoint t =
  (match t.backend with
   | Mem m -> Buffer.clear m.durable
   | File f ->
     close_out f.out;
     f.out <- open_out_gen [Open_wronly; Open_creat; Open_trunc; Open_binary] 0o644 f.path);
  t.durable_size <- 0;
  clear_pending t;
  t.synced_lsn <- t.last_lsn;
  Metrics.incr m_checkpoints

(* --- recovery ----------------------------------------------------------- *)

let durable_bytes t =
  match t.backend with
  | Mem m -> Buffer.to_bytes m.durable
  | File f ->
    flush f.out;
    let inp = open_in_bin f.path in
    let n = in_channel_length inp in
    let buf = Bytes.create n in
    really_input inp buf 0 n;
    close_in inp;
    buf

(* Explicit bounds and CRC checks, not exception handling: every exit
   from the decode loop names the reason the remaining bytes are not a
   record. *)
let replay t ~apply =
  let data = durable_bytes t in
  let len = Bytes.length data in
  let pos = ref 0 in
  let applied = ref 0 in
  let complete = ref true in
  let running = ref true in
  while !running do
    if !pos >= len then running := false
    else if !pos + header_len + 4 > len then begin
      complete := false;
      running := false
    end
    else begin
      let kind = Bytes.get_uint8 data !pos in
      let plen = Page.get_u32 data (!pos + 13) in
      if kind <> record_kind || !pos + header_len + plen + 4 > len then begin
        complete := false;
        running := false
      end
      else begin
        let body = header_len + plen in
        let stored = Page.get_u32 data (!pos + body) in
        let crc = Crc32.finish (Crc32.feed Crc32.start data !pos body) in
        if not (Int.equal stored crc) then begin
          complete := false;
          running := false
        end
        else begin
          let lsn = Int64.to_int (Bytes.get_int64_le data (!pos + 1)) in
          let page_id = Page.get_u32 data (!pos + 9) in
          apply ~lsn ~page_id (Bytes.sub data (!pos + header_len) plen);
          incr applied;
          Metrics.incr m_replayed;
          if lsn > t.last_lsn then begin
            t.last_lsn <- lsn;
            t.synced_lsn <- lsn;
            t.next_lsn <- lsn + 1
          end;
          pos := !pos + body + 4
        end
      end
    end
  done;
  { applied = !applied; discarded_bytes = len - !pos; torn_tail = not !complete }

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    flush f.out;
    close_out f.out
