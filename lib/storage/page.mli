(** Byte-level page access and the slotted-page record layout.

    A slotted page stores variable-length records:

    {v
    [ header | record area ->   ...   <- slot directory ]
    v}

    The header layout is [ next:u32 | nslots:u16 | free_off:u16 |
    flags:u16 | crc:u32 ] (14 bytes); [next] is a chain pointer used by
    {!Heap_file} and by B+-tree leaves (internal B+-tree nodes reuse it
    as the leftmost-child pointer), and [flags] is free for the client
    (the B+-tree stores the node kind there).  Each slot is a [u16 offset, u16 length] pair growing from
    the page end; slot order is the caller's business (insertion order
    for heaps, key order for B+-tree nodes). *)

(* Scalar accessors (little-endian). *)
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit

exception Page_full of string
(** Raised by {!add_slot} and {!insert_slot_at} when the record (plus
    its slot entry) does not fit in the page's free space.  A typed
    error rather than a bare [Failure] so the engine can surface it as a
    run status instead of letting it escape. *)

val header_size : int

(* Slotted-page operations.  [init] must be called on a fresh page. *)
val init : bytes -> unit
val next : bytes -> int
val set_next : bytes -> int -> unit
val flags : bytes -> int
val set_flags : bytes -> int -> unit
val slot_count : bytes -> int

val free_space : bytes -> int
(** Bytes available for one more record {e including} its slot entry. *)

val read_slot : bytes -> int -> bytes
(** [read_slot page i] copies record [i]. *)

val add_slot : bytes -> bytes -> int
(** [add_slot page record] appends a record, returning its slot index.
    @raise Page_full if the record does not fit; callers check
    {!free_space} first. *)

val insert_slot_at : bytes -> int -> bytes -> unit
(** [insert_slot_at page i record] inserts a record so that it becomes
    slot [i], shifting slots [i..] up by one.  Used by B+-tree nodes to
    keep slots in key order. *)

(** {2 Checksums}

    Every page carries a CRC-32 of its full contents (excluding the CRC
    slot itself) in the header.  {!Disk} stamps it on every write-back
    and allocation and verifies it on every read, so a torn or bit-flipped
    page surfaces as a typed {!Xqdb_error.Corrupt} instead of being
    returned as data.  Clients of the slotted layout never touch these. *)

val checksum : bytes -> int
(** CRC-32 over the whole page, skipping the header's CRC slot. *)

val stored_checksum : bytes -> int

val stamp_checksum : bytes -> unit
(** Store {!checksum} into the header slot. *)

val checksum_matches : bytes -> bool

val remove_slot_at : bytes -> int -> unit
(** Remove slot [i], shifting higher slots down.  The record bytes are
    dead space until {!compact}. *)

val set_slot_count : bytes -> int -> unit
(** Truncate (or logically extend) the slot directory; used by node
    splits.  Record bytes of dropped slots become dead space. *)

val compact : bytes -> unit
(** Rewrite the record area dropping dead space, preserving slot order. *)

val live_bytes : bytes -> int
(** Total bytes of live records plus their slots (excludes the header);
    used by split heuristics. *)
