let get_u16 page off = Bytes.get_uint16_le page off
let set_u16 page off v = Bytes.set_uint16_le page off v

let get_u32 page off =
  Int32.to_int (Bytes.get_int32_le page off) land 0xFFFFFFFF

let set_u32 page off v = Bytes.set_int32_le page off (Int32.of_int v)

exception Page_full of string

let header_size = 14

(* Header fields. *)
let off_next = 0
let off_nslots = 4
let off_free = 6
let off_flags = 8
let off_crc = 10

let init page =
  set_u32 page off_next 0;
  set_u16 page off_nslots 0;
  set_u16 page off_free header_size;
  set_u16 page off_flags 0;
  set_u32 page off_crc 0

(* The stored CRC covers every byte of the page except its own header
   slot, so stamping does not disturb the value being checked. *)
let checksum page =
  let acc = Crc32.feed Crc32.start page 0 off_crc in
  let tail = off_crc + 4 in
  Crc32.finish (Crc32.feed acc page tail (Bytes.length page - tail))

let stored_checksum page = get_u32 page off_crc
let stamp_checksum page = set_u32 page off_crc (checksum page)
let checksum_matches page = Int.equal (stored_checksum page) (checksum page)

let next page = get_u32 page off_next
let flags page = get_u16 page off_flags
let set_flags page v = set_u16 page off_flags v
let set_next page v = set_u32 page off_next v
let slot_count page = get_u16 page off_nslots
let set_slot_count page n = set_u16 page off_nslots n

let slot_pos page i = Bytes.length page - 4 * (i + 1)

let slot page i =
  let p = slot_pos page i in
  (get_u16 page p, get_u16 page (p + 2))

let set_slot page i (off, len) =
  let p = slot_pos page i in
  set_u16 page p off;
  set_u16 page (p + 2) len

let free_space page =
  let nslots = slot_count page in
  let free_off = get_u16 page off_free in
  let dir_start = Bytes.length page - 4 * nslots in
  dir_start - free_off - 4

let read_slot page i =
  let off, len = slot page i in
  Bytes.sub page off len

let add_slot page record =
  let len = Bytes.length record in
  if free_space page < len then
    raise (Page_full (Printf.sprintf "Page.add_slot: %d bytes, %d free" len (free_space page)));
  let free_off = get_u16 page off_free in
  Bytes.blit record 0 page free_off len;
  let i = slot_count page in
  set_slot_count page (i + 1);
  set_slot page i (free_off, len);
  set_u16 page off_free (free_off + len);
  i

let insert_slot_at page i record =
  let n = slot_count page in
  if i < 0 || i > n then invalid_arg "Page.insert_slot_at";
  let len = Bytes.length record in
  if free_space page < len then
    raise
      (Page_full
         (Printf.sprintf "Page.insert_slot_at: %d bytes, %d free" len (free_space page)));
  let free_off = get_u16 page off_free in
  Bytes.blit record 0 page free_off len;
  set_slot_count page (n + 1);
  (* Shift slots i..n-1 up to i+1..n. *)
  let rec shift j =
    if j > i then begin
      set_slot page j (slot page (j - 1));
      shift (j - 1)
    end
  in
  shift n;
  set_slot page i (free_off, len);
  set_u16 page off_free (free_off + len)

let remove_slot_at page i =
  let n = slot_count page in
  if i < 0 || i >= n then invalid_arg "Page.remove_slot_at";
  for j = i to n - 2 do
    set_slot page j (slot page (j + 1))
  done;
  set_slot_count page (n - 1)

let live_bytes page =
  let n = slot_count page in
  let records = ref 0 in
  for i = 0 to n - 1 do
    let _, len = slot page i in
    records := !records + len
  done;
  !records + 4 * n

let compact page =
  let n = slot_count page in
  let records = Array.init n (fun i -> read_slot page i) in
  let free_off = ref header_size in
  Array.iteri
    (fun i record ->
      let len = Bytes.length record in
      Bytes.blit record 0 page !free_off len;
      set_slot page i (!free_off, len);
      free_off := !free_off + len)
    records;
  set_u16 page off_free !free_off
