type backend =
  | Mem of {
      mutable pages : bytes array;  (* grows geometrically *)
    }
  | File of {
      path : string;
      out : out_channel;
      inp : in_channel;
      mutable flushed : bool;
    }

let m_torn_writes = Metrics.counter "disk.torn_writes"
let m_checksum_failures = Metrics.counter "disk.checksum_failures"

type counters = {
  reads : int;
  writes : int;
  allocs : int;
}

exception Disk_error of string

type op =
  | Read
  | Write
  | Alloc

type fault =
  | No_fault
  | Fail of string
  | Torn of string

type t = {
  psize : int;
  backend : backend;
  mutable count : int;
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable injector : (op -> int -> fault) option;
}
(* Every disk call in a multi-domain run goes through the owning buffer
   pool, which holds its table mutex across the call. *)
[@@guarded_by pool_table_lock]

let set_injector t injector = t.injector <- injector

let consult t op id =
  match t.injector with
  | None -> No_fault
  | Some f -> f op id

let label t =
  match t.backend with
  | Mem _ -> "<mem>"
  | File f -> f.path

(* A fresh zeroed page, checksum already stamped: even a page that is
   allocated and then read before any write verifies cleanly. *)
let blank_page psize =
  let page = Bytes.make psize '\000' in
  Page.stamp_checksum page;
  page

let do_alloc t =
  (match consult t Alloc t.count with
   | No_fault -> ()
   | Fail msg | Torn msg -> raise (Disk_error msg));
  let id = t.count in
  t.count <- t.count + 1;
  t.allocs <- t.allocs + 1;
  (match t.backend with
   | Mem m ->
     if id >= Array.length m.pages then begin
       let bigger = Array.make (max 8 (2 * Array.length m.pages)) Bytes.empty in
       Array.blit m.pages 0 bigger 0 (Array.length m.pages);
       m.pages <- bigger
     end;
     m.pages.(id) <- blank_page t.psize
   | File f ->
     seek_out f.out (id * t.psize);
     output_bytes f.out (blank_page t.psize);
     f.flushed <- false);
  id

let with_catalog_page t =
  (* Page 0 is reserved for the catalog. *)
  let id = do_alloc t in
  assert (id = 0);
  t

let check_page_size page_size =
  if page_size < 2 * Page.header_size then
    invalid_arg
      (Printf.sprintf "Disk: page size %d is too small for the %d-byte page header"
         page_size Page.header_size)

let in_memory ?(page_size = 4096) () =
  check_page_size page_size;
  with_catalog_page
    { psize = page_size;
      backend = Mem { pages = Array.make 8 Bytes.empty };
      count = 0;
      reads = 0;
      writes = 0;
      allocs = 0;
      injector = None }

let on_file ?(page_size = 4096) path =
  check_page_size page_size;
  let out = open_out_gen [Open_wronly; Open_creat; Open_trunc; Open_binary] 0o644 path in
  let inp = open_in_bin path in
  with_catalog_page
    { psize = page_size;
      backend = File { path; out; inp; flushed = true };
      count = 0;
      reads = 0;
      writes = 0;
      allocs = 0;
      injector = None }

let open_existing ?(page_size = 4096) path =
  check_page_size page_size;
  let out = open_out_gen [Open_wronly; Open_binary] 0o644 path in
  let inp = open_in_bin path in
  let size = in_channel_length inp in
  if size = 0 || size mod page_size <> 0 then begin
    close_out out;
    close_in inp;
    invalid_arg
      (Printf.sprintf "Disk.open_existing: %s has %d bytes, not a whole number of %d-byte pages"
         path size page_size)
  end;
  { psize = page_size;
    backend = File { path; out; inp; flushed = true };
    count = size / page_size;
    reads = 0;
    writes = 0;
    allocs = 0;
    injector = None }

let page_size t = t.psize
let page_count t = t.count

let check_id t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" id t.count)

let alloc t = do_alloc t

let fetch t id =
  match t.backend with
  | Mem m -> Bytes.copy m.pages.(id)
  | File f ->
    if not f.flushed then begin
      flush f.out;
      f.flushed <- true
    end;
    seek_in f.inp (id * t.psize);
    let buf = Bytes.create t.psize in
    really_input f.inp buf 0 t.psize;
    buf

let read_page t id =
  check_id t id;
  (match consult t Read id with
   | No_fault -> ()
   | Fail msg | Torn msg -> raise (Disk_error msg));
  t.reads <- t.reads + 1;
  let buf = fetch t id in
  if not (Page.checksum_matches buf) then begin
    Metrics.incr m_checksum_failures;
    Xqdb_error.corrupt "Disk: checksum mismatch on page %d of %s" id (label t)
  end;
  buf

let read_page_raw t id =
  check_id t id;
  fetch t id

let persist t id buf len =
  match t.backend with
  | Mem m -> Bytes.blit buf 0 m.pages.(id) 0 len
  | File f ->
    seek_out f.out (id * t.psize);
    output_bytes f.out (if len = t.psize then buf else Bytes.sub buf 0 len);
    f.flushed <- false

let write_page t id buf =
  check_id t id;
  if Bytes.length buf <> t.psize then
    invalid_arg "Disk.write_page: buffer size mismatch";
  Page.stamp_checksum buf;
  match consult t Write id with
  | Fail msg -> raise (Disk_error msg)
  | Torn msg ->
    (* Torn (short) write: only the first half of the buffer reaches the
       disk before the fault, and one byte of that half is garbled in
       flight, so the page's stored checksum cannot match.  The damage is
       applied to a copy — the caller's buffer stays intact, so a retry
       with the same buffer repairs the page. *)
    t.writes <- t.writes + 1;
    Metrics.incr m_torn_writes;
    let half = Bytes.sub buf 0 (t.psize / 2) in
    let victim = t.psize / 4 in
    Bytes.set half victim (Char.chr (Char.code (Bytes.get half victim) lxor 0xff));
    persist t id half (t.psize / 2);
    raise (Disk_error msg)
  | No_fault ->
    t.writes <- t.writes + 1;
    persist t id buf t.psize

let sync t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    flush f.out;
    f.flushed <- true

let counters t = { reads = t.reads; writes = t.writes; allocs = t.allocs }

let total_ios t = t.reads + t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    flush f.out;
    close_out f.out;
    close_in f.inp
