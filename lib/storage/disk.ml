type backend =
  | Mem of {
      mutable pages : bytes array;  (* grows geometrically *)
    }
  | File of {
      out : out_channel;
      inp : in_channel;
      mutable flushed : bool;
    }

type counters = {
  reads : int;
  writes : int;
  allocs : int;
}

exception Disk_error of string

type op =
  | Read
  | Write
  | Alloc

type fault =
  | No_fault
  | Fail of string
  | Torn of string

type t = {
  psize : int;
  backend : backend;
  mutable count : int;
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable injector : (op -> int -> fault) option;
}

let set_injector t injector = t.injector <- injector

let consult t op id =
  match t.injector with
  | None -> No_fault
  | Some f -> f op id

let do_alloc t =
  (match consult t Alloc t.count with
   | No_fault -> ()
   | Fail msg | Torn msg -> raise (Disk_error msg));
  let id = t.count in
  t.count <- t.count + 1;
  t.allocs <- t.allocs + 1;
  (match t.backend with
   | Mem m ->
     if id >= Array.length m.pages then begin
       let bigger = Array.make (max 8 (2 * Array.length m.pages)) Bytes.empty in
       Array.blit m.pages 0 bigger 0 (Array.length m.pages);
       m.pages <- bigger
     end;
     m.pages.(id) <- Bytes.make t.psize '\000'
   | File f ->
     seek_out f.out (id * t.psize);
     output_bytes f.out (Bytes.make t.psize '\000');
     f.flushed <- false);
  id

let with_catalog_page t =
  (* Page 0 is reserved for the catalog. *)
  let id = do_alloc t in
  assert (id = 0);
  t

let in_memory ?(page_size = 4096) () =
  with_catalog_page
    { psize = page_size;
      backend = Mem { pages = Array.make 8 Bytes.empty };
      count = 0;
      reads = 0;
      writes = 0;
      allocs = 0;
      injector = None }

let on_file ?(page_size = 4096) path =
  let out = open_out_gen [Open_wronly; Open_creat; Open_trunc; Open_binary] 0o644 path in
  let inp = open_in_bin path in
  with_catalog_page
    { psize = page_size;
      backend = File { out; inp; flushed = true };
      count = 0;
      reads = 0;
      writes = 0;
      allocs = 0;
      injector = None }

let open_existing ?(page_size = 4096) path =
  let out = open_out_gen [Open_wronly; Open_binary] 0o644 path in
  let inp = open_in_bin path in
  let size = in_channel_length inp in
  if size = 0 || size mod page_size <> 0 then begin
    close_out out;
    close_in inp;
    invalid_arg
      (Printf.sprintf "Disk.open_existing: %s has %d bytes, not a whole number of %d-byte pages"
         path size page_size)
  end;
  { psize = page_size;
    backend = File { out; inp; flushed = true };
    count = size / page_size;
    reads = 0;
    writes = 0;
    allocs = 0;
    injector = None }

let page_size t = t.psize
let page_count t = t.count

let check_id t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" id t.count)

let alloc t = do_alloc t

let read_page t id =
  check_id t id;
  (match consult t Read id with
   | No_fault -> ()
   | Fail msg | Torn msg -> raise (Disk_error msg));
  t.reads <- t.reads + 1;
  match t.backend with
  | Mem m -> Bytes.copy m.pages.(id)
  | File f ->
    if not f.flushed then begin
      flush f.out;
      f.flushed <- true
    end;
    seek_in f.inp (id * t.psize);
    let buf = Bytes.create t.psize in
    really_input f.inp buf 0 t.psize;
    buf

let persist t id buf len =
  match t.backend with
  | Mem m -> Bytes.blit buf 0 m.pages.(id) 0 len
  | File f ->
    seek_out f.out (id * t.psize);
    output_bytes f.out (if len = t.psize then buf else Bytes.sub buf 0 len);
    f.flushed <- false

let write_page t id buf =
  check_id t id;
  if Bytes.length buf <> t.psize then
    invalid_arg "Disk.write_page: buffer size mismatch";
  match consult t Write id with
  | Fail msg -> raise (Disk_error msg)
  | Torn msg ->
    (* Torn (short) write: only the first half of the buffer reaches the
       disk before the fault; the rest of the page keeps its previous
       contents.  The failure is reported, so a caller that retries with
       the full buffer repairs the page. *)
    t.writes <- t.writes + 1;
    persist t id buf (t.psize / 2);
    raise (Disk_error msg)
  | No_fault ->
    t.writes <- t.writes + 1;
    persist t id buf t.psize

let counters t = { reads = t.reads; writes = t.writes; allocs = t.allocs }

let total_ios t = t.reads + t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
    flush f.out;
    close_out f.out;
    close_in f.inp
