type policy = {
  read_fault_rate : float;
  write_fault_rate : float;
  alloc_fault_rate : float;
  transient_fraction : float;
  torn_fraction : float;
}

let uniform ~rate =
  { read_fault_rate = rate;
    write_fault_rate = rate;
    alloc_fault_rate = rate;
    transient_fraction = 0.5;
    torn_fraction = 0.5 }

type counts = {
  injected : int;
  transient : int;
  hard : int;
  torn : int;
}

type key = {
  k_op : Disk.op;
  k_page : int;
}

type t = {
  disk : Disk.t;
  policy : policy;
  rng : Random.State.t;
  broken : (key, string) Hashtbl.t;  (* hard faults persist per (op, page) *)
  mutable active : bool;
  mutable injected_n : int;
  mutable transient_n : int;
  mutable hard_n : int;
  mutable torn_n : int;
}
(* Runs as a [Disk] injector, i.e. under the pool's table mutex. *)
[@@guarded_by pool_table_lock]

let op_name = function
  | Disk.Read -> "read"
  | Disk.Write -> "write"
  | Disk.Alloc -> "alloc"

let rate_of t op =
  match op with
  | Disk.Read -> t.policy.read_fault_rate
  | Disk.Write -> t.policy.write_fault_rate
  | Disk.Alloc -> t.policy.alloc_fault_rate

(* Decide the fate of one disk operation.  A hard fault is remembered and
   repeats on every later attempt against the same (op, page) — that is
   what defeats the buffer pool's bounded retry and forces the engine to
   surface [Io_error].  A transient fault fails this attempt only. *)
let decide t op page =
  if not t.active then Disk.No_fault
  else begin
    let key = { k_op = op; k_page = page } in
    match Hashtbl.find_opt t.broken key with
    | Some msg -> Disk.Fail msg
    | None ->
      if Random.State.float t.rng 1.0 >= rate_of t op then Disk.No_fault
      else begin
        t.injected_n <- t.injected_n + 1;
        let transient = Random.State.float t.rng 1.0 < t.policy.transient_fraction in
        let msg =
          Printf.sprintf "injected %s%s fault on page %d" (op_name op)
            (if transient then " (transient)" else "")
            page
        in
        if transient then t.transient_n <- t.transient_n + 1
        else begin
          t.hard_n <- t.hard_n + 1;
          Hashtbl.replace t.broken key msg
        end;
        match op with
        | Disk.Write when Random.State.float t.rng 1.0 < t.policy.torn_fraction ->
          t.torn_n <- t.torn_n + 1;
          Disk.Torn msg
        | Disk.Read | Disk.Write | Disk.Alloc -> Disk.Fail msg
      end
  end

let attach ?(policy = uniform ~rate:0.01) ~seed disk =
  let t =
    { disk;
      policy;
      rng = Random.State.make [| 0xfa17; seed |];
      broken = Hashtbl.create 16;
      active = true;
      injected_n = 0;
      transient_n = 0;
      hard_n = 0;
      torn_n = 0 }
  in
  Disk.set_injector disk (Some (decide t));
  t

let detach t =
  t.active <- false;
  Disk.set_injector t.disk None

let set_active t active = t.active <- active

let counts t =
  { injected = t.injected_n; transient = t.transient_n; hard = t.hard_n; torn = t.torn_n }
