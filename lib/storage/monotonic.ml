(* Wall-clock timing for measurements and budgets.

   [Sys.time] is *process CPU* time: under concurrent sessions every
   domain's work inflates every other session's reading, and time spent
   blocked on I/O or a latch does not show up at all.  Everything that
   reports or limits elapsed time goes through this module instead. *)

let now () = Unix.gettimeofday ()

let elapsed_since start = now () -. start
