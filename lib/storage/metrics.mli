(** A process-wide registry of cheap monotonic counters.

    The storage structures (buffer pool, B+-tree, external sort, heap
    files) register named counters here and bump them on their hot paths
    — one mutable-field write per event, no allocation.  The engine
    attributes activity to a query by taking a {!snapshot} before and
    after the run and reporting the {!diff}; this is what feeds the
    [counters] section of an {!Xqdb_core.Engine} profile and the
    machine-readable [BENCH_*.json] benchmark output.

    Counter names are dotted paths, subsystem first:
    [pool.hits], [pool.misses], [pool.evictions], [pool.retries],
    [btree.node_reads], [btree.splits], [btree.inserts],
    [ext_sort.runs], [ext_sort.merge_passes],
    [heap.appends], [heap.scans].

    Counters are global, not per-structure: with several pools or trees
    in one process the registry reports the sum.  Per-structure numbers
    stay available where they always were (e.g.
    {!Buffer_pool.stats}).

    Counters are domain-safe: increments are atomic fetch-and-adds, so
    parallel scan domains bumping the same counter never lose updates,
    and the registry itself is guarded by a mutex. *)

type counter

val counter : string -> counter
(** Find or create the counter registered under this name.  Call once at
    module initialization and keep the handle; lookups hash the name. *)

val name : counter -> string
val value : counter -> int

val incr : counter -> unit
val add : counter -> int -> unit

val time : counter -> (unit -> 'a) -> 'a
(** Run the thunk and add its elapsed CPU time, in microseconds, to the
    counter (also on exception).  For coarse-grained phases only — it
    costs two [Sys.time] calls. *)

type snapshot = (string * int) list
(** Sorted by counter name. *)

val snapshot : unit -> snapshot

val get : snapshot -> string -> int
(** 0 for a counter absent from the snapshot. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-counter deltas, zero entries dropped. *)

val reset : unit -> unit
(** Zero every registered counter.  Benchmark-harness bookkeeping;
    engines attribute by delta and never need it. *)
