(* The latch-order (lockdep) checker.

   One global directed graph over (class, instance) lock keys: an edge
   src -> dst means "some domain acquired dst while holding src".  Each
   edge stores the raw acquisition backtraces of both ends; cycle
   detection runs at edge-insertion time, so the offending acquisition
   is reported before it blocks.  Everything below [lock] is guarded by
   it; backtrace symbolization happens only on the (rare) violation
   path, mirroring the pin sanitizer's lazy design. *)

type key = { cls : string; inst : int }

exception Lock_order_violation of string

let m_edges = Metrics.counter "latch.order_edges"
let m_violations = Metrics.counter "latch.order_violations"

let key_equal a b = String.equal a.cls b.cls && a.inst = b.inst

let key_label k =
  if k.inst < 0 then k.cls else Printf.sprintf "%s %d" k.cls k.inst

(* One end of the graph: the key plus where it was acquired, raw. *)
type hold = { h_key : key; h_trace : Printexc.raw_backtrace }

type edge = {
  e_src : key;
  e_dst : key;
  e_src_trace : Printexc.raw_backtrace;  (* [e_src] was held here ... *)
  e_dst_trace : Printexc.raw_backtrace;  (* ... when [e_dst] was acquired here *)
}

let lock = Mutex.create ()

(* Per-domain held stacks, most recent acquisition first. *)
let held : (int, hold list) Hashtbl.t = Hashtbl.create 8 [@@guarded_by lock]

(* Adjacency: source key label -> outgoing edges. *)
let edges : (string, edge list) Hashtbl.t = Hashtbl.create 64 [@@guarded_by lock]

let domain_id () = (Domain.self () :> int)

let held_of d = match Hashtbl.find_opt held d with Some hs -> hs | None -> []

let out_edges k = match Hashtbl.find_opt edges (key_label k) with
  | Some es -> es
  | None -> []

let edge_exists src dst =
  List.exists (fun e -> key_equal e.e_dst dst) (out_edges src)

(* DFS for a path [src ==> dst]; returns the edges along one such path
   (in walk order) or [] when unreachable.  The graph is small (one node
   per latched page class/instance seen so far) and this only runs on
   acquisitions that extend the graph, so plain recursion is fine. *)
let find_path src dst =
  let visited = Hashtbl.create 16 in
  let rec go k =
    if Hashtbl.mem visited (key_label k) then None
    else begin
      Hashtbl.add visited (key_label k) ();
      let rec try_edges = function
        | [] -> None
        | e :: rest ->
          if key_equal e.e_dst dst then Some [ e ]
          else (
            match go e.e_dst with
            | Some path -> Some (e :: path)
            | None -> try_edges rest)
      in
      try_edges (out_edges k)
    end
  in
  if key_equal src dst then Some [] else go src

let bt = Printexc.raw_backtrace_to_string

let render_edge e =
  Printf.sprintf "  %s -> %s\n    %s held, acquired at:\n%s    %s acquired at:\n%s"
    (key_label e.e_src) (key_label e.e_dst) (key_label e.e_src)
    (bt e.e_src_trace) (key_label e.e_dst) (bt e.e_dst_trace)

(* The violation report: the dependency being added plus the recorded
   reverse path that closes the cycle, both with their backtraces. *)
let violation_message ~(holding : hold) ~(acquiring : key) ~trace ~path =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "lock order violation: acquiring %s while holding %s closes a cycle\n"
       (key_label acquiring) (key_label holding.h_key));
  Buffer.add_string b "new dependency:\n";
  Buffer.add_string b
    (render_edge
       { e_src = holding.h_key;
         e_dst = acquiring;
         e_src_trace = holding.h_trace;
         e_dst_trace = trace });
  Buffer.add_string b "recorded reverse path:\n";
  List.iter (fun e -> Buffer.add_string b (render_edge e)) path;
  Buffer.contents b

let before_acquire ~cls ~inst =
  let k = { cls; inst } in
  let d = domain_id () in
  let trace = Printexc.get_callstack 24 in
  Mutex.protect lock (fun () ->
      let hs = held_of d in
      List.iter
        (fun h ->
          if not (key_equal h.h_key k) && not (edge_exists h.h_key k) then begin
            (match find_path k h.h_key with
             | Some path ->
               Metrics.incr m_violations;
               raise
                 (Lock_order_violation
                    (violation_message ~holding:h ~acquiring:k ~trace ~path))
             | None -> ());
            Hashtbl.replace edges (key_label h.h_key)
              ({ e_src = h.h_key;
                 e_dst = k;
                 e_src_trace = h.h_trace;
                 e_dst_trace = trace }
               :: out_edges h.h_key);
            Metrics.incr m_edges
          end)
        hs;
      Hashtbl.replace held d ({ h_key = k; h_trace = trace } :: hs))

let after_release ~cls ~inst =
  let k = { cls; inst } in
  let d = domain_id () in
  Mutex.protect lock (fun () ->
      let rec drop_first = function
        | [] -> []
        | h :: rest -> if key_equal h.h_key k then rest else h :: drop_first rest
      in
      match drop_first (held_of d) with
      | [] -> Hashtbl.remove held d
      | hs -> Hashtbl.replace held d hs)

let held_by_self () =
  let d = domain_id () in
  Mutex.protect lock (fun () -> List.map (fun h -> h.h_key) (held_of d))

let assert_none_held ~where =
  let d = domain_id () in
  let leaked = Mutex.protect lock (fun () -> held_of d) in
  if leaked <> [] then begin
    Metrics.incr m_violations;
    let traces =
      String.concat ""
        (List.map
           (fun h ->
             Printf.sprintf "\n%s acquired at:\n%s" (key_label h.h_key)
               (bt h.h_trace))
           leaked)
    in
    raise
      (Lock_order_violation
         (Printf.sprintf "%s: latch-order stack not empty: [%s]%s" where
            (String.concat ", " (List.map (fun h -> key_label h.h_key) leaked))
            traces))
  end

let edges_recorded () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun _ es acc -> acc + List.length es) edges 0)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset held;
      Hashtbl.reset edges)
