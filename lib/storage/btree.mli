(** B+-trees over variable-length byte keys and values.

    Keys compare by unsigned lexicographic byte order — use
    {!Bytes_codec}'s order-preserving key encoders to build composite
    keys.  Keys are unique; inserting an existing key replaces its value.
    Leaves are chained left-to-right, so range scans are sequential.

    Milestone 4 builds three of these per document: the clustered primary
    index on [in] (tuples stored in the leaves), the label index on
    [(type, value, in)] and the parent index on [(parent_in, in)].
    Students' "creative workaround" — sorting by inserting into a
    clustered B-tree — is {!of_cursor} plus a full scan.

    Deletion is lazy (no rebalancing): the course kept updates minimal,
    and bulk-load-then-query is the only write pattern the system needs.

    Each tree owns a meta page recording the root and entry count, so a
    tree can be reopened from just that page id (via the {!Catalog}). *)

type t

val create : Buffer_pool.t -> t
val open_existing : Buffer_pool.t -> meta_page:int -> t
val meta_page : t -> int

val entry_count : t -> int
val height : t -> int
(** 1 for a lone leaf. *)

val leaf_pages : t -> int
(** Number of leaf pages, from meta statistics (maintained on split). *)

val insert : t -> key:bytes -> value:bytes -> unit
(** @raise Invalid_argument if the cell exceeds a quarter page. *)

val find : t -> key:bytes -> bytes option

val delete : t -> key:bytes -> bool
(** Lazy delete; [true] if the key was present. *)

val scan_range : ?lo:bytes -> ?hi:bytes -> t -> unit -> (bytes * bytes) option
(** Pull cursor over entries with [lo <= key <= hi] (both inclusive,
    both optional) in key order. *)

val scan_prefix : t -> prefix:bytes -> unit -> (bytes * bytes) option
(** All entries whose key starts with [prefix], in key order. *)

val scan_range_pages :
  ?lo:bytes -> ?hi:bytes -> t -> unit -> (bytes * bytes) array option
(** Page-at-a-time variant of {!scan_range}: each pull pins one leaf and
    returns all its qualifying cells (never an empty array), decoded
    inside a single [with_page] window instead of one pool round-trip
    per entry.  The batch scan operators are built on this. *)

val scan_prefix_pages : t -> prefix:bytes -> unit -> (bytes * bytes) array option
(** Page-at-a-time variant of {!scan_prefix}. *)

val iter : t -> (bytes -> bytes -> unit) -> unit

val of_cursor : Buffer_pool.t -> (unit -> (bytes * bytes) option) -> t
(** Bulk-load from a cursor yielding entries in strictly increasing key
    order; builds packed leaves bottom-up.
    @raise Invalid_argument if keys are not strictly increasing. *)

val check_invariants : ?min_fill:float -> t -> unit
(** Walk the whole tree verifying key order, separator correctness,
    balance, meta accounting (entry and leaf counts) and leaf chaining;
    raises [Failure] with a diagnostic otherwise.  Used by the property
    tests.

    [min_fill] (a fraction of the usable page, default [0.]) additionally
    requires every non-root node to carry at least that many live bytes —
    a meaningful occupancy floor only for insert-only workloads, since
    lazy deletion may legally empty a leaf. *)
