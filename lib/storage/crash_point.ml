(* A deterministic crash injector over a {Disk, Wal} pair.

   The harness counts {e durability events} — page writes, log appends,
   log syncs — and at a chosen event simulates pulling the plug: a
   dedicated [Crash] exception tears through the workload, and from that
   moment every storage operation raises [Crash] too, so nothing can
   "finish the job" after the crash.  Sweeping the crash point over
   every event in a workload exercises every prefix of its durability
   schedule; recovery must produce a consistent database from each.

   [Crash] deliberately is not [Disk.Disk_error]: the buffer pool's
   bounded retry absorbs disk errors, but a crash must not be retried
   away.  (A {e torn} crash first reports an ordinary torn-write error —
   which the pool does retry — and the retry then hits the dead
   storage and raises [Crash].) *)

exception Crash of string

type t = {
  crash_at : int;
  torn : bool;
  disk : Disk.t;
  wal : Wal.t;
  mutable events : int;
  mutable crashed : bool;
}
(* Crash sweeps are single-domain by design. *)
[@@domain_local]

let events t = t.events
let crashed t = t.crashed

let crash_msg t = Printf.sprintf "Crash_point: simulated crash at event %d" t.events

(* Count one durability event; decide whether this is the one. *)
let tick t =
  t.events <- t.events + 1;
  t.crash_at > 0 && t.events >= t.crash_at && not t.crashed

let disk_fault t op _id =
  if t.crashed then raise (Crash (crash_msg t));
  match op with
  | Disk.Write ->
    if tick t then begin
      t.crashed <- true;
      if t.torn then Disk.Torn (crash_msg t) else raise (Crash (crash_msg t))
    end
    else Disk.No_fault
  | Disk.Read | Disk.Alloc -> Disk.No_fault

let wal_fault t op =
  if t.crashed then raise (Crash (crash_msg t));
  match op with
  | Wal.Append ->
    if tick t then begin
      t.crashed <- true;
      raise (Crash (crash_msg t))
    end
    else Wal.No_fault
  | Wal.Sync ->
    if tick t then begin
      t.crashed <- true;
      if t.torn then Wal.Torn (crash_msg t) else raise (Crash (crash_msg t))
    end
    else Wal.No_fault

let install ?(crash_at = 0) ?(torn = false) ~disk ~wal () =
  let t = { crash_at; torn; disk; wal; events = 0; crashed = false } in
  Disk.set_injector disk (Some (fun op id -> disk_fault t op id));
  Wal.set_injector wal (Some (fun op -> wal_fault t op));
  t

let disarm t =
  Disk.set_injector t.disk None;
  Wal.set_injector t.wal None
