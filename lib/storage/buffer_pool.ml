type frame = {
  page_id : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
  (* LSN of the WAL record holding this frame's current contents; 0 when
     the latest mutation is not yet logged.  Write-back appends a record
     only when this is 0, so a retried write-back never duplicates one. *)
  mutable logged_lsn : int;
  (* Intrusive LRU list links: [lru_prev] points toward the MRU head,
     [lru_next] toward the LRU tail. *)
  mutable lru_prev : frame option;
  mutable lru_next : frame option;
  (* Sanitizer shadow buffer: while the frame is pinned under a
     sanitizing pool, callbacks work on this copy; the last unpin blits
     it back and poisons it, so a retained reference reads garbage. *)
  mutable shadow : bytes option;
}

type pin = {
  pin_frame : frame;
  (* Acquisition backtrace, kept raw: symbolization is deferred to the
     (rare) moment a violation is reported, so taking a pin stays cheap
     enough to run whole suites under the sanitizer. *)
  pin_trace : Printexc.raw_backtrace;
  mutable released : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;
}

type t = {
  disk : Disk.t;
  wal : Wal.t option;
  cap : int;
  sanitize : bool;
  frames : (int, frame) Hashtbl.t;  (* page id -> frame *)
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  mutable live : pin list;  (* outstanding pins, sanitize mode only *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable retries : int;
}

exception Pool_exhausted of string
exception Sanitizer_violation of string
exception Pin_leak of string

let poison_byte = '\xde'

let m_hits = Metrics.counter "pool.hits"
let m_misses = Metrics.counter "pool.misses"
let m_evictions = Metrics.counter "pool.evictions"
let m_retries = Metrics.counter "pool.retries"

(* The environment gate lets whole suites run under the sanitizer
   without touching call sites: XQDB_PIN_SANITIZE=1 dune runtest. *)
let env_sanitize =
  match Sys.getenv_opt "XQDB_PIN_SANITIZE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let create ?(capacity = 64) ?(sanitize = env_sanitize) ?wal disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { disk;
    wal;
    cap = capacity;
    sanitize;
    frames = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    live = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    retries = 0 }

let disk t = t.disk
let wal t = t.wal
let capacity t = t.cap
let sanitizing t = t.sanitize

let max_attempts = 3

(* Transient disk faults (see Fault_disk) clear on retry; anything that
   still fails after [max_attempts] propagates as Disk_error. *)
let with_retries t f =
  let rec go attempt =
    try f () with
    | Disk.Disk_error _ when attempt < max_attempts ->
      t.retries <- t.retries + 1;
      Metrics.incr m_retries;
      go (attempt + 1)
  in
  go 1

(* --- the LRU list ------------------------------------------------------ *)

let detach t frame =
  (match frame.lru_prev with
   | Some p -> p.lru_next <- frame.lru_next
   | None -> t.head <- frame.lru_next);
  (match frame.lru_next with
   | Some n -> n.lru_prev <- frame.lru_prev
   | None -> t.tail <- frame.lru_prev);
  frame.lru_prev <- None;
  frame.lru_next <- None

let push_front t frame =
  frame.lru_prev <- None;
  frame.lru_next <- t.head;
  (match t.head with
   | Some h -> h.lru_prev <- Some frame
   | None -> t.tail <- Some frame);
  t.head <- Some frame

let touch t frame =
  match t.head with
  | Some h when h == frame -> ()
  | Some _ | None ->
    detach t frame;
    push_front t frame

let write_back t frame =
  if frame.dirty then begin
    (* Under the sanitizer, in-flight changes live in the shadow; fold
       them in so a flush during an active pin persists what a
       non-sanitizing pool would. *)
    (match frame.shadow with
     | Some s -> Bytes.blit s 0 frame.buf 0 (Bytes.length s)
     | None -> ());
    (* WAL before data: the after-image must be durable before the page
       itself is.  Frames whose latest contents are already logged (the
       common case — mutation-time logging) are not re-appended, so a
       retried write-back never duplicates a record. *)
    (match t.wal with
     | None -> ()
     | Some wal ->
       if frame.logged_lsn = 0 then
         frame.logged_lsn <- Wal.append wal ~page_id:frame.page_id ~data:frame.buf;
       Wal.sync wal;
       if t.sanitize && Wal.synced_lsn wal < frame.logged_lsn then
         raise
           (Sanitizer_violation
              (Printf.sprintf
                 "Buffer_pool: writing back page %d logged at LSN %d but WAL synced only to %d"
                 frame.page_id frame.logged_lsn (Wal.synced_lsn wal))));
    with_retries t (fun () -> Disk.write_page t.disk frame.page_id frame.buf);
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame: walk from the tail
   toward the head, skipping pinned frames.  O(1) amortized — pins are
   rare and short-lived — and deterministic, unlike the old full-table
   fold whose tie-break depended on hashtable iteration order. *)
let evict_one t =
  let rec find = function
    | None ->
      raise
        (Pool_exhausted
           (Printf.sprintf "Buffer_pool: all %d frames pinned" t.cap))
    | Some frame -> if frame.pins = 0 then frame else find frame.lru_prev
  in
  let victim = find t.tail in
  (* A failing write-back raises before the frame is unlinked, so a
     dirty page is never dropped. *)
  write_back t victim;
  detach t victim;
  Hashtbl.remove t.frames victim.page_id;
  t.evictions <- t.evictions + 1;
  Metrics.incr m_evictions

let insert_frame t page_id buf dirty =
  if Hashtbl.length t.frames >= t.cap then evict_one t;
  let frame =
    { page_id;
      buf;
      pins = 0;
      dirty;
      logged_lsn = 0;
      lru_prev = None;
      lru_next = None;
      shadow = None }
  in
  Hashtbl.replace t.frames page_id frame;
  push_front t frame;
  frame

let find t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    insert_frame t page_id (with_retries t (fun () -> Disk.read_page t.disk page_id)) false

let alloc_page t =
  let page_id = with_retries t (fun () -> Disk.alloc t.disk) in
  let buf = Bytes.make (Disk.page_size t.disk) '\000' in
  ignore (insert_frame t page_id buf true);
  page_id

(* --- pins and the sanitizer -------------------------------------------- *)

let no_trace = Printexc.get_callstack 0

let pin_frame t frame =
  frame.pins <- frame.pins + 1;
  if not t.sanitize then { pin_frame = frame; pin_trace = no_trace; released = false }
  else begin
    (match frame.shadow with
     | Some _ -> ()
     | None -> frame.shadow <- Some (Bytes.copy frame.buf));
    let p =
      { pin_frame = frame; pin_trace = Printexc.get_callstack 24; released = false }
    in
    t.live <- p :: t.live;
    p
  end

let pin t page_id = pin_frame t (find t page_id)

let pin_buffer p =
  match p.pin_frame.shadow with
  | Some s -> s
  | None -> p.pin_frame.buf

let unpin t p =
  if t.sanitize && p.released then
    raise
      (Sanitizer_violation
         (Printf.sprintf "double unpin of page %d; pin acquired at:\n%s"
            p.pin_frame.page_id
            (Printexc.raw_backtrace_to_string p.pin_trace)));
  p.released <- true;
  let frame = p.pin_frame in
  frame.pins <- frame.pins - 1;
  if t.sanitize then begin
    t.live <- List.filter (fun q -> q != p) t.live;
    match frame.shadow with
    | None -> ()
    | Some s ->
      (* Commit the shadow's contents, and on the last unpin poison it:
         any callback that retained the buffer past its pin window now
         reads 0xde bytes instead of silently-stale page data. *)
      Bytes.blit s 0 frame.buf 0 (Bytes.length s);
      if frame.pins = 0 then begin
        Bytes.fill s 0 (Bytes.length s) poison_byte;
        frame.shadow <- None
      end
  end

let live_pins t =
  List.map
    (fun p -> (p.pin_frame.page_id, Printexc.raw_backtrace_to_string p.pin_trace))
    t.live

let pinned_pages t =
  Hashtbl.fold
    (fun _ frame acc -> if frame.pins > 0 then (frame.page_id, frame.pins) :: acc else acc)
    t.frames []

let assert_unpinned ~where t =
  match pinned_pages t with
  | [] -> ()
  | leaked ->
    let pages =
      String.concat ", "
        (List.map (fun (id, pins) -> Printf.sprintf "%d (%d pins)" id pins) leaked)
    in
    let traces =
      if not t.sanitize then ""
      else
        String.concat ""
          (List.map
             (fun (id, trace) -> Printf.sprintf "\npage %d pinned at:\n%s" id trace)
             (live_pins t))
    in
    raise (Pin_leak (Printf.sprintf "%s: leaked pins on pages [%s]%s" where pages traces))

type pin_baseline = {
  base_total : int;  (* total pin count across frames at capture time *)
  base_live : pin list;  (* the tokens live then (sanitize mode; [] otherwise) *)
}

let pin_baseline t =
  { base_total = List.fold_left (fun acc (_, n) -> acc + n) 0 (pinned_pages t);
    base_live = t.live }

let assert_balanced ~where ~baseline t =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (pinned_pages t) in
  if total > baseline.base_total then begin
    let fresh = List.filter (fun p -> not (List.memq p baseline.base_live)) t.live in
    let traces =
      if not t.sanitize then ""
      else
        String.concat ""
          (List.map
             (fun p ->
               Printf.sprintf "\npage %d pinned at:\n%s" p.pin_frame.page_id
                 (Printexc.raw_backtrace_to_string p.pin_trace))
             fresh)
    in
    raise
      (Pin_leak
         (Printf.sprintf "%s: %d pin(s) acquired but never released (%d held before, %d now)%s"
            where (total - baseline.base_total) baseline.base_total total traces))
  end

let use t page_id ~mut f =
  let frame = find t page_id in
  let p = pin_frame t frame in
  if mut then begin
    frame.dirty <- true;
    frame.logged_lsn <- 0
  end;
  let result = Fun.protect ~finally:(fun () -> unpin t p) (fun () -> f (pin_buffer p)) in
  (* Mutation-time logging: append the after-image as soon as the
     mutation completes (after the unpin, so the sanitizer's shadow has
     been folded into [buf]).  A callback that raises leaves the frame
     with [logged_lsn = 0]; write-back logs it then.  Logging outside
     [Fun.protect] keeps an injected crash out of [~finally]. *)
  (match t.wal with
   | None -> ()
   | Some wal ->
     if mut then frame.logged_lsn <- Wal.append wal ~page_id ~data:frame.buf);
  result

let with_page t page_id f = use t page_id ~mut:false f
let with_page_mut t page_id f = use t page_id ~mut:true f

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let drop_all t =
  if t.sanitize then assert_unpinned ~where:"Buffer_pool.drop_all" t;
  flush_all t;
  Hashtbl.reset t.frames;
  t.head <- None;
  t.tail <- None

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; retries = t.retries }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.retries <- 0
