type frame = {
  page_id : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
  (* Intrusive LRU list links: [lru_prev] points toward the MRU head,
     [lru_next] toward the LRU tail. *)
  mutable lru_prev : frame option;
  mutable lru_next : frame option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;
}

type t = {
  disk : Disk.t;
  cap : int;
  frames : (int, frame) Hashtbl.t;  (* page id -> frame *)
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable retries : int;
}

exception Pool_exhausted of string

let m_hits = Metrics.counter "pool.hits"
let m_misses = Metrics.counter "pool.misses"
let m_evictions = Metrics.counter "pool.evictions"
let m_retries = Metrics.counter "pool.retries"

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { disk;
    cap = capacity;
    frames = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    retries = 0 }

let disk t = t.disk
let capacity t = t.cap

let max_attempts = 3

(* Transient disk faults (see Fault_disk) clear on retry; anything that
   still fails after [max_attempts] propagates as Disk_error. *)
let with_retries t f =
  let rec go attempt =
    try f () with
    | Disk.Disk_error _ when attempt < max_attempts ->
      t.retries <- t.retries + 1;
      Metrics.incr m_retries;
      go (attempt + 1)
  in
  go 1

(* --- the LRU list ------------------------------------------------------ *)

let detach t frame =
  (match frame.lru_prev with
   | Some p -> p.lru_next <- frame.lru_next
   | None -> t.head <- frame.lru_next);
  (match frame.lru_next with
   | Some n -> n.lru_prev <- frame.lru_prev
   | None -> t.tail <- frame.lru_prev);
  frame.lru_prev <- None;
  frame.lru_next <- None

let push_front t frame =
  frame.lru_prev <- None;
  frame.lru_next <- t.head;
  (match t.head with
   | Some h -> h.lru_prev <- Some frame
   | None -> t.tail <- Some frame);
  t.head <- Some frame

let touch t frame =
  match t.head with
  | Some h when h == frame -> ()
  | Some _ | None ->
    detach t frame;
    push_front t frame

let write_back t frame =
  if frame.dirty then begin
    with_retries t (fun () -> Disk.write_page t.disk frame.page_id frame.buf);
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame: walk from the tail
   toward the head, skipping pinned frames.  O(1) amortized — pins are
   rare and short-lived — and deterministic, unlike the old full-table
   fold whose tie-break depended on hashtable iteration order. *)
let evict_one t =
  let rec find = function
    | None ->
      raise
        (Pool_exhausted
           (Printf.sprintf "Buffer_pool: all %d frames pinned" t.cap))
    | Some frame -> if frame.pins = 0 then frame else find frame.lru_prev
  in
  let victim = find t.tail in
  (* A failing write-back raises before the frame is unlinked, so a
     dirty page is never dropped. *)
  write_back t victim;
  detach t victim;
  Hashtbl.remove t.frames victim.page_id;
  t.evictions <- t.evictions + 1;
  Metrics.incr m_evictions

let insert_frame t page_id buf dirty =
  if Hashtbl.length t.frames >= t.cap then evict_one t;
  let frame = { page_id; buf; pins = 0; dirty; lru_prev = None; lru_next = None } in
  Hashtbl.replace t.frames page_id frame;
  push_front t frame;
  frame

let find t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    insert_frame t page_id (with_retries t (fun () -> Disk.read_page t.disk page_id)) false

let alloc_page t =
  let page_id = with_retries t (fun () -> Disk.alloc t.disk) in
  let buf = Bytes.make (Disk.page_size t.disk) '\000' in
  ignore (insert_frame t page_id buf true);
  page_id

let use t page_id ~mut f =
  let frame = find t page_id in
  frame.pins <- frame.pins + 1;
  if mut then frame.dirty <- true;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame.buf)

let with_page t page_id f = use t page_id ~mut:false f
let with_page_mut t page_id f = use t page_id ~mut:true f

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let drop_all t =
  flush_all t;
  Hashtbl.reset t.frames;
  t.head <- None;
  t.tail <- None

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; retries = t.retries }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.retries <- 0
