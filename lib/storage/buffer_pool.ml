type frame = {
  page_id : int;
  buf : bytes;
  (* Guards the frame's *contents* while a callback works on them:
     shared for [with_page], exclusive for [with_page_mut].  The pool's
     table mutex is never held while waiting on a latch. *)
  latch : Latch.t;
  (* Latch holds taken via [use], as (domain, exclusive) pairs — guarded
     by the table mutex.  The latch itself is not reentrant, so a nested
     [use] of the same page by the same domain (the sanitizer tests do
     this; btree never does) skips re-acquisition when its entry here
     already covers the requested mode.  At most one entry per domain. *)
  mutable latch_holds : (int * bool) list;
  mutable pins : int;
  mutable dirty : bool;
  (* LSN of the WAL record holding this frame's current contents; 0 when
     the latest mutation is not yet logged.  Write-back appends a record
     only when this is 0, so a retried write-back never duplicates one. *)
  mutable logged_lsn : int;
  (* Intrusive LRU list links: [lru_prev] points toward the MRU head,
     [lru_next] toward the LRU tail. *)
  mutable lru_prev : frame option;
  mutable lru_next : frame option;
  (* Sanitizer shadow buffer: while the frame is pinned under a
     sanitizing pool, callbacks work on this copy; the last unpin blits
     it back and poisons it, so a retained reference reads garbage. *)
  mutable shadow : bytes option;
}
[@@guarded_by lock]

type pin = {
  pin_frame : frame;
  (* The domain that took the pin: balance checks are per domain, so one
     session's checkpoint does not see another session's in-flight pins. *)
  pin_domain : int;
  (* Acquisition backtrace, kept raw: symbolization is deferred to the
     (rare) moment a violation is reported, so taking a pin stays cheap
     enough to run whole suites under the sanitizer. *)
  pin_trace : Printexc.raw_backtrace;
  (* Whether this pin currently holds the frame latch ([use] sets and
     clears it); an unpin with the latch still held is a latch leak. *)
  mutable pin_latched : bool;
  mutable released : bool;
}
[@@guarded_by lock]

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;
}

type t = {
  disk : Disk.t;
  wal : Wal.t option;
  cap : int;
  sanitize : bool;
  (* Backoff schedule for transient disk/WAL faults; Retry.run sleeps
     under the table mutex, so the policy must keep the whole window in
     the low milliseconds (the default does). *)
  retry_policy : Retry.policy;
  (* The table mutex: frames, LRU links, pin counts, counters, the
     sanitizer's live list, and all disk/WAL traffic happen under it.
     Frame *contents* are guarded by the per-frame latches instead, so
     callbacks overlap across domains; the mutex is never held while a
     callback runs or a latch is awaited. *)
  lock : Mutex.t;
  frames : (int, frame) Hashtbl.t;  (* page id -> frame *)
  (* Outstanding pins per domain id — the balance the sanitizer checks
     at per-session quiescent points. *)
  domain_pins : (int, int) Hashtbl.t;
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  mutable live : pin list;  (* outstanding pins, sanitize mode only *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable retries : int;
  (* Lockdep class names for this pool's frame latches and table mutex —
     unique per pool so two pools' page ids never alias in the global
     order graph (see {!Lock_order}). *)
  lockdep_page : string;
  lockdep_table : string;
}
[@@guarded_by lock]

exception Pool_exhausted of string
exception Sanitizer_violation of string
exception Pin_leak of string

let poison_byte = '\xde'

let m_hits = Metrics.counter "pool.hits"
let m_misses = Metrics.counter "pool.misses"
let m_evictions = Metrics.counter "pool.evictions"
let m_retries = Metrics.counter "pool.retries"

(* The environment gate lets whole suites run under the sanitizer
   without touching call sites: XQDB_PIN_SANITIZE=1 dune runtest. *)
let env_sanitize =
  match Sys.getenv_opt "XQDB_PIN_SANITIZE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* Pool sequence for lockdep class names; Atomic because pools are
   created from any domain. *)
let pool_seq = Atomic.make 0

let create ?(capacity = 64) ?(sanitize = env_sanitize) ?(retry_policy = Retry.default)
    ?wal disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  let seq = Atomic.fetch_and_add pool_seq 1 in
  { disk;
    wal;
    cap = capacity;
    sanitize;
    retry_policy;
    lock = Mutex.create ();
    frames = Hashtbl.create (2 * capacity);
    domain_pins = Hashtbl.create 8;
    head = None;
    tail = None;
    live = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    retries = 0;
    lockdep_page = Printf.sprintf "pool%d.page" seq;
    lockdep_table = Printf.sprintf "pool%d.table" seq }

let disk t = t.disk
let wal t = t.wal
let capacity t = t.cap
let sanitizing t = t.sanitize

(* Every public entry point brackets its table work with this; helpers
   below assume the mutex is already held and never re-take it.  Under
   the sanitizer the table mutex participates in lockdep: latch -> table
   edges are expected (nested page use and mutation-time WAL logging run
   table work under a held latch), but a table -> latch edge — waiting
   on a latch while holding the table mutex — would close a cycle and is
   exactly the protocol violation the checker exists to catch. *)
let locked t f =
  if t.sanitize then Lock_order.before_acquire ~cls:t.lockdep_table ~inst:(-1);
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      if t.sanitize then Lock_order.after_release ~cls:t.lockdep_table ~inst:(-1))
    f

let domain_id () = (Domain.self () :> int)

let domain_pin_count t d =
  match Hashtbl.find_opt t.domain_pins d with Some n -> n | None -> 0

let bump_domain_pins t d delta =
  let n = domain_pin_count t d + delta in
  if n = 0 then Hashtbl.remove t.domain_pins d else Hashtbl.replace t.domain_pins d n

(* Transient disk faults (see Fault_disk) clear on retry; a fault that
   survives the whole backoff window propagates as Disk_error.  The
   classification is Retry.transient_disk_fault: a checksum Corrupt is
   a hard fault and is never retried — re-reading wrong bytes cannot
   make them right, it can only hide real corruption. *)
let with_retries t f =
  Retry.run ~policy:t.retry_policy
    ~on_retry:(fun ~attempt:_ _ ->
      t.retries <- t.retries + 1;
      Metrics.incr m_retries)
    ~retryable:Retry.transient_disk_fault f

(* --- the LRU list ------------------------------------------------------ *)

let detach t frame =
  (match frame.lru_prev with
   | Some p -> p.lru_next <- frame.lru_next
   | None -> t.head <- frame.lru_next);
  (match frame.lru_next with
   | Some n -> n.lru_prev <- frame.lru_prev
   | None -> t.tail <- frame.lru_prev);
  frame.lru_prev <- None;
  frame.lru_next <- None

let push_front t frame =
  frame.lru_prev <- None;
  frame.lru_next <- t.head;
  (match t.head with
   | Some h -> h.lru_prev <- Some frame
   | None -> t.tail <- Some frame);
  t.head <- Some frame

let touch t frame =
  match t.head with
  | Some h when h == frame -> ()
  | Some _ | None ->
    detach t frame;
    push_front t frame

let write_back t frame =
  if frame.dirty then begin
    (* Under the sanitizer, in-flight changes live in the shadow; fold
       them in so a flush during an active pin persists what a
       non-sanitizing pool would. *)
    (match frame.shadow with
     | Some s -> Bytes.blit s 0 frame.buf 0 (Bytes.length s)
     | None -> ());
    (* WAL before data: the after-image must be durable before the page
       itself is.  Frames whose latest contents are already logged (the
       common case — mutation-time logging) are not re-appended, so a
       retried write-back never duplicates a record. *)
    (match t.wal with
     | None -> ()
     | Some wal ->
       (* The log-and-sync pair is retried as a unit.  A torn sync may
          have dropped this frame's pending record and rolled the log's
          [last_lsn] back past it; in that case [logged_lsn] points at a
          record that no longer exists, and skipping the append would
          write the page with no durable record — violating WAL before
          data.  So re-append whenever the frame's record is unlogged
          ([= 0]) or fell off the log ([> last_lsn]). *)
       with_retries t (fun () ->
           if frame.logged_lsn = 0 || frame.logged_lsn > Wal.last_lsn wal then
             frame.logged_lsn <- Wal.append wal ~page_id:frame.page_id ~data:frame.buf;
           Wal.sync wal);
       if t.sanitize && Wal.synced_lsn wal < frame.logged_lsn then
         raise
           (Sanitizer_violation
              (Printf.sprintf
                 "Buffer_pool: writing back page %d logged at LSN %d but WAL synced only to %d"
                 frame.page_id frame.logged_lsn (Wal.synced_lsn wal))));
    with_retries t (fun () -> Disk.write_page t.disk frame.page_id frame.buf);
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame: walk from the tail
   toward the head, skipping pinned frames.  O(1) amortized — pins are
   rare and short-lived — and deterministic, unlike the old full-table
   fold whose tie-break depended on hashtable iteration order.  A frame
   with zero pins has no latch holders either (latches are only taken
   under a pin), so the victim's contents are quiescent. *)
let evict_one t =
  let rec find = function
    | None ->
      raise
        (Pool_exhausted
           (Printf.sprintf "Buffer_pool: all %d frames pinned" t.cap))
    | Some frame -> if frame.pins = 0 then frame else find frame.lru_prev
  in
  let victim = find t.tail in
  (* A failing write-back raises before the frame is unlinked, so a
     dirty page is never dropped. *)
  write_back t victim;
  detach t victim;
  Hashtbl.remove t.frames victim.page_id;
  t.evictions <- t.evictions + 1;
  Metrics.incr m_evictions

let insert_frame t page_id buf dirty =
  if Hashtbl.length t.frames >= t.cap then evict_one t;
  let frame =
    { page_id;
      buf;
      latch = Latch.create ();
      latch_holds = [];
      pins = 0;
      dirty;
      logged_lsn = 0;
      lru_prev = None;
      lru_next = None;
      shadow = None }
  in
  Hashtbl.replace t.frames page_id frame;
  push_front t frame;
  frame

let find t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    insert_frame t page_id (with_retries t (fun () -> Disk.read_page t.disk page_id)) false

let alloc_page t =
  locked t (fun () ->
      let page_id = with_retries t (fun () -> Disk.alloc t.disk) in
      let buf = Bytes.make (Disk.page_size t.disk) '\000' in
      ignore (insert_frame t page_id buf true);
      page_id)

(* --- pins and the sanitizer -------------------------------------------- *)

let no_trace = Printexc.get_callstack 0

let pin_frame t frame =
  frame.pins <- frame.pins + 1;
  bump_domain_pins t (domain_id ()) 1;
  if not t.sanitize then
    { pin_frame = frame;
      pin_domain = domain_id ();
      pin_trace = no_trace;
      pin_latched = false;
      released = false }
  else begin
    (match frame.shadow with
     | Some _ -> ()
     | None -> frame.shadow <- Some (Bytes.copy frame.buf));
    let p =
      { pin_frame = frame;
        pin_domain = domain_id ();
        pin_trace = Printexc.get_callstack 24;
        pin_latched = false;
        released = false }
    in
    t.live <- p :: t.live;
    p
  end

let pin t page_id = locked t (fun () -> pin_frame t (find t page_id))

let pin_buffer p =
  match p.pin_frame.shadow with
  | Some s -> s
  | None -> p.pin_frame.buf

(* Assumes the table mutex is held. *)
let unpin_locked t p =
  if t.sanitize && p.released then
    raise
      (Sanitizer_violation
         (Printf.sprintf "double unpin of page %d; pin acquired at:\n%s"
            p.pin_frame.page_id
            (Printexc.raw_backtrace_to_string p.pin_trace)));
  if t.sanitize && p.pin_latched then
    raise
      (Sanitizer_violation
         (Printf.sprintf "unpin of page %d while its frame latch is still held; pin acquired at:\n%s"
            p.pin_frame.page_id
            (Printexc.raw_backtrace_to_string p.pin_trace)));
  p.released <- true;
  let frame = p.pin_frame in
  frame.pins <- frame.pins - 1;
  bump_domain_pins t p.pin_domain (-1);
  if t.sanitize then begin
    t.live <- List.filter (fun q -> q != p) t.live;
    match frame.shadow with
    | None -> ()
    | Some s ->
      (* Commit the shadow's contents, and on the last unpin poison it:
         any callback that retained the buffer past its pin window now
         reads 0xde bytes instead of silently-stale page data. *)
      Bytes.blit s 0 frame.buf 0 (Bytes.length s);
      if frame.pins = 0 then begin
        Bytes.fill s 0 (Bytes.length s) poison_byte;
        frame.shadow <- None
      end
  end

let unpin t p = locked t (fun () -> unpin_locked t p)

let live_pins t =
  locked t (fun () ->
      List.map
        (fun p -> (p.pin_frame.page_id, Printexc.raw_backtrace_to_string p.pin_trace))
        t.live)

let pinned_pages_locked t =
  Hashtbl.fold
    (fun _ frame acc -> if frame.pins > 0 then (frame.page_id, frame.pins) :: acc else acc)
    t.frames []

let pinned_pages t = locked t (fun () -> pinned_pages_locked t)

let latched_pages_locked t =
  Hashtbl.fold
    (fun _ frame acc ->
      let h = Latch.holders frame.latch in
      if h <> 0 then (frame.page_id, h) :: acc else acc)
    t.frames []

let latched_pages t = locked t (fun () -> latched_pages_locked t)

(* The leak report for [where]: the pins (and held latches) attributable
   to the calling domain.  Assumes the mutex is held. *)
let domain_leak_report ~where t d =
  let mine = List.filter (fun p -> p.pin_domain = d) t.live in
  let pages =
    if mine <> [] then
      String.concat ", "
        (List.map (fun p -> string_of_int p.pin_frame.page_id) mine)
    else
      String.concat ", "
        (List.map (fun (id, pins) -> Printf.sprintf "%d (%d pins)" id pins)
           (pinned_pages_locked t))
  in
  let traces =
    String.concat ""
      (List.map
         (fun p ->
           Printf.sprintf "\npage %d pinned at:\n%s" p.pin_frame.page_id
             (Printexc.raw_backtrace_to_string p.pin_trace))
         mine)
  in
  Printf.sprintf "%s: leaked pins on pages [%s]%s" where pages traces

(* Per-domain: a session's checkpoint must not trip over another
   session's in-flight pins, so the balance checked here is the calling
   domain's outstanding count, not the global one. *)
let assert_unpinned ~where t =
  locked t (fun () ->
      let d = domain_id () in
      if domain_pin_count t d > 0 then raise (Pin_leak (domain_leak_report ~where t d));
      if t.sanitize then
        match latched_pages_locked t with
        | [] -> ()
        | leaked ->
          let held = List.filter (fun p -> p.pin_latched && p.pin_domain = d) t.live in
          if held <> [] then
            raise
              (Sanitizer_violation
                 (Printf.sprintf "%s: frame latches still held on pages [%s]" where
                    (String.concat ", "
                       (List.map (fun (id, h) -> Printf.sprintf "%d (%d)" id h) leaked)))));
  (* Outside [locked]: the table mutex itself is lockdep-tracked, so
     checking inside the bracket would report our own bracket as held. *)
  if t.sanitize then Lock_order.assert_none_held ~where

type pin_baseline = {
  base_domain : int;  (* the domain that captured the baseline *)
  base_total : int;  (* that domain's outstanding pins at capture time *)
  base_live : pin list;  (* the tokens live then (sanitize mode; [] otherwise) *)
}

let pin_baseline t =
  locked t (fun () ->
      let d = domain_id () in
      { base_domain = d; base_total = domain_pin_count t d; base_live = t.live })

let assert_balanced ~where ~baseline t =
  locked t (fun () ->
      let d = baseline.base_domain in
      let total = domain_pin_count t d in
      if total > baseline.base_total then begin
        let fresh =
          List.filter
            (fun p -> p.pin_domain = d && not (List.memq p baseline.base_live))
            t.live
        in
        let traces =
          if not t.sanitize then ""
          else
            String.concat ""
              (List.map
                 (fun p ->
                   Printf.sprintf "\npage %d pinned at:\n%s" p.pin_frame.page_id
                     (Printexc.raw_backtrace_to_string p.pin_trace))
                 fresh)
        in
        raise
          (Pin_leak
             (Printf.sprintf
                "%s: %d pin(s) acquired but never released (%d held before, %d now)%s"
                where (total - baseline.base_total) baseline.base_total total traces))
      end)

let use t page_id ~mut f =
  let d = domain_id () in
  let p, acquire =
    locked t (fun () ->
        let frame = find t page_id in
        (* The latch is not reentrant: a nested [use] of the same page by
           the same domain rides on the hold already registered for it.
           A shared hold cannot cover a nested mutation — upgrading
           in place would self-deadlock, so refuse loudly instead. *)
        let acquire =
          match List.assoc_opt d frame.latch_holds with
          | None ->
            frame.latch_holds <- (d, mut) :: frame.latch_holds;
            true
          | Some exclusive ->
            if mut && not exclusive then
              raise
                (Latch.Latch_error
                   (Printf.sprintf
                      "Buffer_pool: nested latch upgrade (shared -> exclusive) on \
                       page %d within one domain"
                      page_id));
            false
        in
        let p = pin_frame t frame in
        if mut then begin
          frame.dirty <- true;
          frame.logged_lsn <- 0
        end;
        (p, acquire))
  in
  let frame = p.pin_frame in
  (* Latch outside the table mutex: waiting here must not block other
     domains' table traffic.  The pin already protects the frame from
     eviction, so the frame (and its latch) stay alive while we wait. *)
  if acquire then begin
    (match
       if t.sanitize then Lock_order.before_acquire ~cls:t.lockdep_page ~inst:page_id
     with
     | () ->
       if mut then Latch.acquire_exclusive frame.latch
       else Latch.acquire_shared frame.latch;
       p.pin_latched <- true
     | exception e ->
       (* The latch was never taken: roll back the hold registration and
          the pin so the violation propagates from a consistent pool. *)
       locked t (fun () ->
           frame.latch_holds <- List.filter (fun (d', _) -> d' <> d) frame.latch_holds;
           unpin_locked t p);
       raise e)
  end;
  let result =
    Fun.protect
      ~finally:(fun () ->
        if p.pin_latched then begin
          p.pin_latched <- false;
          if t.sanitize then Lock_order.after_release ~cls:t.lockdep_page ~inst:page_id;
          Latch.release frame.latch
        end;
        locked t (fun () ->
            if acquire then
              frame.latch_holds <-
                List.filter (fun (d', _) -> d' <> d) frame.latch_holds;
            unpin_locked t p))
      (fun () -> f (pin_buffer p))
  in
  (* Mutation-time logging: append the after-image as soon as the
     mutation completes (after the unpin, so the sanitizer's shadow has
     been folded into [buf]).  A callback that raises leaves the frame
     with [logged_lsn = 0]; write-back logs it then.  Logging outside
     [Fun.protect] keeps an injected crash out of [~finally]. *)
  (match t.wal with
   | None -> ()
   | Some wal ->
     if mut then
       locked t (fun () ->
           frame.logged_lsn <-
             with_retries t (fun () -> Wal.append wal ~page_id ~data:frame.buf)));
  result

let with_page t page_id f = use t page_id ~mut:false f
let with_page_mut t page_id f = use t page_id ~mut:true f

let flush_all t = locked t (fun () -> Hashtbl.iter (fun _ frame -> write_back t frame) t.frames)

let drop_all t =
  locked t (fun () ->
      (* Dropping frames with outstanding pins — anyone's, not just this
         domain's — would invalidate live buffers. *)
      (match pinned_pages_locked t with
       | [] -> ()
       | leaked ->
         let pages =
           String.concat ", "
             (List.map (fun (id, pins) -> Printf.sprintf "%d (%d pins)" id pins) leaked)
         in
         raise (Pin_leak (Printf.sprintf "Buffer_pool.drop_all: leaked pins on pages [%s]" pages)));
      Hashtbl.iter (fun _ frame -> write_back t frame) t.frames;
      Hashtbl.reset t.frames;
      t.head <- None;
      t.tail <- None)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions; retries = t.retries })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.retries <- 0)
