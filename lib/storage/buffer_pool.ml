type frame = {
  page_id : int;
  buf : bytes;
  mutable pins : int;
  mutable dirty : bool;
  mutable last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;
}

type t = {
  disk : Disk.t;
  cap : int;
  frames : (int, frame) Hashtbl.t;  (* page id -> frame *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable retries : int;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { disk;
    cap = capacity;
    frames = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    retries = 0 }

let disk t = t.disk
let capacity t = t.cap

let max_attempts = 3

(* Transient disk faults (see Fault_disk) clear on retry; anything that
   still fails after [max_attempts] propagates as Disk_error. *)
let with_retries t f =
  let rec go attempt =
    try f () with
    | Disk.Disk_error _ when attempt < max_attempts ->
      t.retries <- t.retries + 1;
      go (attempt + 1)
  in
  go 1

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let write_back t frame =
  if frame.dirty then begin
    with_retries t (fun () -> Disk.write_page t.disk frame.page_id frame.buf);
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some b when b.last_used <= frame.last_used -> best
          | Some _ | None -> Some frame)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some frame ->
    write_back t frame;
    Hashtbl.remove t.frames frame.page_id;
    t.evictions <- t.evictions + 1

let insert_frame t page_id buf dirty =
  if Hashtbl.length t.frames >= t.cap then evict_one t;
  let frame = { page_id; buf; pins = 0; dirty; last_used = tick t } in
  Hashtbl.replace t.frames page_id frame;
  frame

let find t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
    t.hits <- t.hits + 1;
    frame.last_used <- tick t;
    frame
  | None ->
    t.misses <- t.misses + 1;
    insert_frame t page_id (with_retries t (fun () -> Disk.read_page t.disk page_id)) false

let alloc_page t =
  let page_id = with_retries t (fun () -> Disk.alloc t.disk) in
  let buf = Bytes.make (Disk.page_size t.disk) '\000' in
  let frame = insert_frame t page_id buf true in
  frame.last_used <- tick t;
  page_id

let use t page_id ~mut f =
  let frame = find t page_id in
  frame.pins <- frame.pins + 1;
  if mut then frame.dirty <- true;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame.buf)

let with_page t page_id f = use t page_id ~mut:false f
let with_page_mut t page_id f = use t page_id ~mut:true f

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let drop_all t =
  flush_all t;
  Hashtbl.reset t.frames

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; retries = t.retries }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.retries <- 0
