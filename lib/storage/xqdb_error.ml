exception Internal of string
exception Corrupt of string

let internal fmt = Printf.ksprintf (fun s -> raise (Internal s)) fmt
let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
