(* A readers-writer latch for page frames.

   Shared acquisitions admit any number of concurrent readers; an
   exclusive acquisition waits for the frame to drain and then blocks
   everyone else.  Writers are preferred: once one is waiting, new
   readers queue behind it, so a stream of readers cannot starve a
   write-back.

   Built on the stdlib [Mutex]/[Condition] (domain-safe in OCaml 5);
   acquisition order is pool table first, latch second, and the pool's
   mutex is never held while waiting on a latch, so the two layers
   cannot deadlock against each other. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  (* > 0: that many readers; 0: free; -1: one writer. *)
  mutable holders : int;
  mutable writers_waiting : int;
}
[@@guarded_by mutex]

exception Latch_error of string

let m_shared = Metrics.counter "latch.shared_acquisitions"
let m_exclusive = Metrics.counter "latch.exclusive_acquisitions"
let m_waits = Metrics.counter "latch.waits"

let create () =
  { mutex = Mutex.create ();
    cond = Condition.create ();
    holders = 0;
    writers_waiting = 0 }

let acquire_shared t =
  Mutex.lock t.mutex;
  let waited = ref false in
  while t.holders < 0 || t.writers_waiting > 0 do
    waited := true;
    Condition.wait t.cond t.mutex
  done;
  t.holders <- t.holders + 1;
  Mutex.unlock t.mutex;
  Metrics.incr m_shared;
  if !waited then Metrics.incr m_waits

let acquire_exclusive t =
  Mutex.lock t.mutex;
  let waited = ref false in
  t.writers_waiting <- t.writers_waiting + 1;
  while t.holders <> 0 do
    waited := true;
    Condition.wait t.cond t.mutex
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.holders <- -1;
  Mutex.unlock t.mutex;
  Metrics.incr m_exclusive;
  if !waited then Metrics.incr m_waits

let release t =
  Mutex.lock t.mutex;
  (match t.holders with
   | 0 ->
     Mutex.unlock t.mutex;
     raise (Latch_error "Latch.release: latch is not held")
   | -1 -> t.holders <- 0
   | _ -> t.holders <- t.holders - 1);
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let holders t =
  Mutex.lock t.mutex;
  let h = t.holders in
  Mutex.unlock t.mutex;
  h

let idle t = holders t = 0
