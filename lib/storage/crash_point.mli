(** Deterministic crash injection over a {!Disk} / {!Wal} pair.

    The injector counts {e durability events} — disk page writes, WAL
    appends, WAL syncs — and at event [crash_at] simulates the machine
    dying: the pending operation raises {!Crash}, and {e every}
    subsequent storage operation raises {!Crash} as well, so no code
    path can keep writing after the crash.  A workload run first with
    [crash_at = 0] (observe only) reports its total event count; a
    driver then sweeps [crash_at] over 1..N and checks that recovery
    from each prefix yields a consistent database.

    With [~torn:true] the crashing event is reported as an ordinary
    torn-write {!Disk.Disk_error} (a damaged half-page, or a torn log
    tail at a sync) — the buffer pool dutifully retries, and the retry
    hits the now-dead storage and raises {!Crash}.  This models the
    plug being pulled {e mid}-write rather than between writes. *)

type t

exception Crash of string
(** The simulated power loss.  Deliberately not {!Disk.Disk_error}:
    retries must not absorb it. *)

val install : ?crash_at:int -> ?torn:bool -> disk:Disk.t -> wal:Wal.t -> unit -> t
(** Install injectors on both [disk] and [wal] (replacing any already
    installed).  [crash_at = 0] (the default) never crashes — it only
    counts events.  [torn] defaults to [false]. *)

val events : t -> int
(** Durability events observed so far. *)

val crashed : t -> bool
(** Whether the crash point has been reached.  Harness code uses this to
    tell a crash-induced {!Disk.Disk_error} (from a torn crashing write)
    apart from an unexpected one. *)

val disarm : t -> unit
(** Remove the injectors from both devices, e.g. before recovery. *)
