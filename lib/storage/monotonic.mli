(** Wall-clock timing.

    [Sys.time] measures {e process CPU} seconds — correct only while the
    process runs exactly one query at a time, and even then blind to
    I/O wait.  Per-operator profiles, run timing and time budgets use
    this wall clock instead, so a session's [seconds] stay its own under
    concurrency. *)

val now : unit -> float
(** Seconds since the epoch, wall clock, sub-millisecond resolution. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0]. *)
