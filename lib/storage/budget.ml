type t = {
  disk : Disk.t;
  base_ios : int;
  start : float;
  max_page_ios : int option;
  max_seconds : float option;
  (* Absolute wall-clock instant ({!Monotonic.now} scale) after which
     the request is dead.  Unlike [max_seconds] — a relative cap the
     server clamps — the deadline travels with the request, so queue
     time before execution counts against it. *)
  deadline : float option;
}

exception Exhausted of string
exception Deadline_exceeded of string

let ios_of disk =
  let c = Disk.counters disk in
  c.Disk.reads + c.Disk.writes

let create ?max_page_ios ?max_seconds ?deadline disk =
  (* Wall clock, not [Sys.time]: a time budget bounds how long the
     caller waits, which includes I/O wait and — under concurrent
     sessions — time spent blocked on latches. *)
  { disk;
    base_ios = ios_of disk;
    start = Monotonic.now ();
    max_page_ios;
    max_seconds;
    deadline }

let unlimited disk = create disk
let page_ios t = ios_of t.disk - t.base_ios
let elapsed t = Monotonic.elapsed_since t.start

let check t =
  (* Deadline first: a request that is already dead should be censored
     as [Timeout] even if a budget cap would also have tripped. *)
  (match t.deadline with
   | Some d ->
     let now = Monotonic.now () in
     if now > d then
       raise
         (Deadline_exceeded
            (Printf.sprintf "deadline exceeded (%.3fs past it)" (now -. d)))
   | None -> ());
  (match t.max_page_ios with
   | Some cap when page_ios t > cap ->
     raise (Exhausted (Printf.sprintf "page I/O budget exceeded (%d > %d)" (page_ios t) cap))
   | Some _ | None -> ());
  match t.max_seconds with
  | Some cap when elapsed t > cap ->
    raise (Exhausted (Printf.sprintf "time budget exceeded (%.2fs > %.2fs)" (elapsed t) cap))
  | Some _ | None -> ()
