(** CRC-32 (IEEE, reflected polynomial [0xEDB88320]), the checksum behind
    {!Page}'s header slot and the {!Wal}'s per-record integrity check.

    The streaming interface ([start]/[feed]/[finish]) lets a caller
    checksum a buffer while skipping a hole — {!Page.checksum} skips the
    page's own CRC field.  Values fit in 32 bits, so they round-trip
    through a u32 header slot unchanged on any platform. *)

val start : int
(** The initial accumulator. *)

val feed : int -> bytes -> int -> int -> int
(** [feed acc buf pos len] folds [len] bytes of [buf] starting at [pos]
    into the accumulator. *)

val finish : int -> int
(** Final xor; the value to store or compare. *)

val digest : bytes -> int
(** [finish (feed start buf 0 (length buf))]. *)
