type counter = {
  name : string;
  value : int Atomic.t;
}

(* The registry is global and append-only: counters are created once (at
   module initialization of the instrumented subsystem) and bumped with a
   single atomic fetch-and-add on the hot path — parallel scan domains
   bump the same counters, so a plain mutable field would silently lose
   updates.  Readers work on snapshots, so per-query attribution is done
   by delta, never by resetting behind a running engine's back. *)
let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
[@@guarded_by registry_mutex]

let registry_mutex = Mutex.create ()

let counter name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.replace registry name c;
        c)

let name c = c.name
let value c = Atomic.get c.value
let incr c = ignore (Atomic.fetch_and_add c.value 1)
let add c n = ignore (Atomic.fetch_and_add c.value n)

let time c f =
  let start = Sys.time () in
  Fun.protect
    ~finally:(fun () -> add c (int_of_float ((Sys.time () -. start) *. 1e6)))
    f

type snapshot = (string * int) list

let snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.value) :: acc) registry [])
  |> List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2)

let get snap name =
  match List.assoc_opt name snap with
  | Some v -> v
  | None -> 0

(* [diff later earlier]: per-counter deltas, dropping zero entries so a
   profile only reports the subsystems a query actually touched. *)
let diff later earlier =
  List.filter_map
    (fun (name, v) ->
      let d = v - get earlier name in
      if d = 0 then None else Some (name, d))
    later

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) registry)
