(** The catalog: a small persistent string map rooted at page 0 (chained
    across further pages when it grows).

    Stores the bootstrap metadata of a database — for each loaded
    document, the meta pages of its primary/label/parent B+-trees and
    its serialized statistics — so a database file can be reopened.
    Values are strings; helpers cover the common integer case. *)

type t

val attach : Buffer_pool.t -> t
(** Attach to page 0, reading any entries already there. *)

val epoch : t -> int
(** A counter that advances whenever the set of registered documents
    changes ({!bump_epoch}).  Prepared-plan caches stamp their entries
    with the epoch they were compiled under and treat a moved epoch as
    wholesale invalidation: plans reference node stores and statistics
    by page, both of which a load/drop can change. *)

val bump_epoch : t -> unit
(** Advance {!epoch}.  Called by [Node_store.register]/[unregister]. *)

val set : t -> string -> string -> unit
val get : t -> string -> string option
val get_int : t -> string -> int option
val set_int : t -> string -> int -> unit
val remove : t -> string -> unit
val entries : t -> (string * string) list

val flush : t -> unit
(** Serialize to page 0, chaining overflow pages as needed. *)
