(* Table-driven CRC-32 (the IEEE 802.3 polynomial, reflected form
   0xEDB88320) over OCaml's native ints.  All arithmetic stays inside 32
   bits, so results are identical on 64-bit platforms and round-trip
   through a page's u32 header slot. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let start = 0xFFFFFFFF

let feed acc buf pos len =
  let table = Lazy.force table in
  let acc = ref acc in
  for i = pos to pos + len - 1 do
    acc := table.((!acc lxor Char.code (Bytes.get buf i)) land 0xFF) lxor (!acc lsr 8)
  done;
  !acc

let finish acc = acc lxor 0xFFFFFFFF

let digest buf = finish (feed start buf 0 (Bytes.length buf))
