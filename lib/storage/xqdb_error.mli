(** Typed failure modes shared across the engine's layers.

    The paper's testbed grades engines by checking invariants
    mechanically, and the repo's own lint pass ([xqdb-lint], rule L1)
    forbids bare [failwith]/[Failure]: every "cannot happen" branch must
    say {e which kind} of cannot-happen it is, because the two kinds are
    handled differently.

    {!Internal} is a code bug — a planner or engine invariant violated.
    Nothing catches it; it must crash loudly so the differential harness
    records it as a crash.

    {!Corrupt} is a data problem — a dangling index entry, a missing
    catalog key, an impossible tuple shape read back from a page.  The
    engine maps it to an [Io_error] run status (censored, like a disk
    fault that survived retries), because corrupt storage is an
    environmental condition a server must absorb, not a reason to die. *)

exception Internal of string
(** An engine invariant was violated: a bug in this codebase.  Never
    caught by the engine; surfaces as a crash. *)

exception Corrupt of string
(** Stored data is inconsistent with the storage layer's invariants.
    Mapped by {!Xqdb_core.Engine} to an [Io_error] status. *)

val internal : ('a, unit, string, 'b) format4 -> 'a
(** [internal fmt ...] raises {!Internal} with the formatted message. *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with the formatted message. *)
