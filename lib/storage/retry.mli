(** Bounded retry with exponential backoff — the one retry policy the
    storage layer uses.

    Extracted from the buffer pool's ad-hoc loop so every retried
    operation (disk reads, write-backs, WAL append/sync) shares one
    notion of "how many attempts, how long between them, and what is
    worth retrying at all".  The serving stack depends on the
    classification being strict: a {e transient} fault (an injected
    {!Fault_disk} blip, a busy device) clears on retry and must be
    absorbed below the session layer, while a {e hard} fault — above
    all a checksum {!Xqdb_error.Corrupt} — must propagate immediately,
    because retrying it can only hide real corruption.

    Backoff is exponential with {e deterministic seeded jitter}: the
    delay schedule for a given policy is a pure function of its [seed],
    so a chaos run replays byte-identically and a test can assert the
    exact schedule.  Delays are kept small (sub-millisecond defaults) —
    the pool retries while holding its table mutex, so a retry window
    must stay bounded and short.

    Never call {!run} while holding a frame latch: sleeping under a
    latch stalls every domain queued on it (lint rule L9 flags
    [Retry.run] as a blocking call). *)

type policy = {
  attempts : int;  (** total tries including the first; [>= 1] *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** backoff factor between consecutive retries *)
  max_delay : float;  (** per-retry cap, pre-jitter *)
  jitter : float;  (** fraction of each delay randomized, [0..1] *)
  seed : int;  (** jitter seed — same seed, same schedule *)
}

val default : policy
(** 3 attempts, 0.5 ms base, doubling, 2 ms cap, 25% jitter, seed 0 —
    tuned so a fully exhausted retry window costs single-digit
    milliseconds. *)

val delays : policy -> float array
(** The exact sleep schedule [run] uses between attempts
    ([attempts - 1] entries): deterministic in the policy, including
    its jitter.  Exposed so tests can assert reproducibility. *)

val transient_disk_fault : exn -> bool
(** The storage layer's retryability classifier: [true] exactly for
    {!Disk.Disk_error} (the transient shape {!Fault_disk} injects and
    real devices exhibit).  {!Xqdb_error.Corrupt} — a checksum mismatch
    — and every other exception are hard: never retried. *)

val run :
  ?policy:policy ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  ?sleep:(float -> unit) ->
  retryable:(exn -> bool) ->
  (unit -> 'a) ->
  'a
(** [run ~retryable f] calls [f]; on an exception [e] with
    [retryable e], sleeps per the backoff schedule and tries again, up
    to [policy.attempts] total tries.  [on_retry] fires before each
    re-attempt (with the 1-based number of the attempt that just
    failed) — the pool uses it to feed its per-pool retry counter.
    [sleep] defaults to [Unix.sleepf]; tests inject a recorder.

    Counters: [retry.attempts] counts every re-attempt,
    [retry.giveups] every window that exhausted its attempts and
    re-raised.  A non-retryable exception propagates immediately and
    bumps neither. *)
