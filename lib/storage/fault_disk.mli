(** Seeded fault injection for {!Disk}: the storage half of the
    robustness harness.

    [attach] installs a policy-driven injector into an existing disk.
    Every subsequent [read_page]/[write_page]/[alloc] consults a seeded
    RNG and may fail with {!Disk.Disk_error}, tear the write (persist a
    damaged first half of the page, then fail — the page's checksum then
    refuses any verified read until a retry repairs it), or — for
    {e hard} faults — keep failing on every retry against the same page.  Transient faults clear after a
    single failure, so the {!Buffer_pool}'s bounded retry absorbs them;
    hard faults defeat the retry and must surface as the engine's
    [Io_error] status.

    Determinism: the same seed and policy over the same operation
    sequence injects the same faults, so a failing fault sweep replays
    exactly from its seed. *)

type policy = {
  read_fault_rate : float;  (** probability a read faults *)
  write_fault_rate : float;  (** probability a write faults *)
  alloc_fault_rate : float;  (** probability an alloc faults *)
  transient_fraction : float;
      (** of injected faults, the fraction that clear after one failure;
          the rest are hard and persist for the page *)
  torn_fraction : float;
      (** of injected write faults, the fraction that also tear the page
          (persist a damaged first half, detectable by checksum) before
          failing *)
}

val uniform : rate:float -> policy
(** All three operation rates set to [rate]; half the faults transient,
    half the write faults torn. *)

type t

val attach : ?policy:policy -> seed:int -> Disk.t -> t
(** Install the injector.  Default policy is [uniform ~rate:0.01]. *)

val detach : t -> unit
(** Remove the injector; the disk behaves normally again.  Hard-fault
    bookkeeping is kept (for [counts]) but no longer consulted. *)

val set_active : t -> bool -> unit
(** Temporarily mute or re-arm the injector without detaching it —
    the harness mutes it around its own bookkeeping I/O. *)

type counts = {
  injected : int;  (** faults injected in total *)
  transient : int;
  hard : int;
  torn : int;
}

val counts : t -> counts
