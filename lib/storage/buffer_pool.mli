(** The buffer pool: a fixed number of page frames over a {!Disk}, with
    pin counts, dirty tracking and LRU replacement.

    The frame capacity is the knob behind the paper's "20 MB of memory"
    constraint in the efficiency tests: an engine configured with a small
    pool pays real page I/O for plans with poor locality.

    All access goes through [with_page]/[with_page_mut], which pin the
    frame for the duration of the callback; nesting is allowed as long as
    at most [capacity] distinct pages are pinned at once.  When a fetch
    finds every frame pinned, {!Pool_exhausted} is raised.

    Replacement is strict LRU over an intrusive doubly-linked frame
    list: victim selection is O(1) amortized (a tail-ward walk skipping
    pinned frames) and fully deterministic.

    {2 Concurrency}

    The pool is safe to share across domains.  A single table mutex
    guards the frame table, the LRU list, pin counts, counters and all
    disk/WAL traffic; frame {e contents} are guarded by a per-frame
    readers-writer {!Latch} instead, so callbacks overlap: any number of
    [with_page] readers may work on the same frame at once, while a
    [with_page_mut] callback holds its frame exclusively.  Lock order is
    fixed — table mutex first, frame latch second — and the table mutex
    is never held while a callback runs or a latch is awaited, so the
    two layers cannot deadlock against each other.  The latch is not
    reentrant, but the pool tracks which domain holds each frame's latch:
    a nested access to the {e same} page from the same domain rides on
    the hold it already has rather than self-deadlocking.  The one
    unsupported shape is a latch {e upgrade} — [with_page_mut] nested
    inside [with_page] on the same page — which raises
    {!Latch.Latch_error} instead of deadlocking.

    Pin-balance accounting ({!assert_unpinned}, {!pin_baseline} /
    {!assert_balanced}) is {e per domain}: a session's quiescent-point
    checks see only its own outstanding pins, not other sessions'
    in-flight ones.  {!drop_all} is the one global quiescent point — it
    requires zero pins from {e everyone}.

    Disk faults ({!Disk.Disk_error}) are retried through {!Retry} — a
    bounded exponential-backoff window with deterministic jitter
    (transient faults injected by {!Fault_disk} clear on retry); a
    checksum {!Xqdb_error.Corrupt} is a {e hard} fault and is never
    retried.  A fault that persists propagates to the caller with the
    pool left consistent.  In particular a dirty frame whose write-back keeps
    failing stays cached and dirty — it is never dropped silently — so
    once the disk recovers, the next eviction or [flush_all] persists
    it.

    {2 Write-ahead logging}

    A pool created with [~wal] logs every page mutation to the {!Wal}:
    the after-image is appended when [with_page_mut] completes, and
    before a dirty frame is written back the log is synced at least to
    that frame's record (WAL before data).  A frame records the LSN of
    its logged contents, so a write-back retried after a fault does not
    append a duplicate record.  Under the sanitizer, writing back a page
    whose record is not yet durable raises {!Sanitizer_violation}.

    {2 Pin sanitizer}

    A pool created with [~sanitize:true] (or with [XQDB_PIN_SANITIZE=1]
    in the environment) becomes a dynamic oracle for the pin discipline:

    - every pin records its acquisition backtrace, so {!assert_unpinned}
      and {!live_pins} can say {e who} leaked;
    - a double {!unpin} of the same pin raises {!Sanitizer_violation},
      as does an unpin while the pin's frame latch is still held (a
      latch leak); {!assert_unpinned} additionally checks that no frame
      latch is held at the quiescent point;
    - callbacks work on a {e shadow copy} of the frame which is blitted
      back on unpin and filled with {!poison_byte} once the last pin
      drops — a callback that retained the buffer past its pin window
      (use-after-unpin) reads poison instead of silently-stale data.

    The engine asserts zero outstanding pins at the end of every
    measured run and at [with_config]; the fault-injection and
    differential suites run under the sanitizer in CI. *)

type t

exception Pool_exhausted of string
(** Raised when a page must be brought in but every frame is pinned.
    Like {!Disk.Disk_error} — and unlike a caller bug — this is a
    runtime resource condition the engine is expected to absorb: it maps
    to an [Io_error] run status, never to an escaped [Failure]. *)

exception Sanitizer_violation of string
(** Sanitize mode only: a discipline the pool can observe directly was
    broken — a double unpin (the message carries the offending pin's
    acquisition backtrace), or a write-back of a page whose WAL record
    is not yet durable (WAL-before-data). *)

exception Pin_leak of string
(** Raised by {!assert_unpinned} when frames are still pinned at a point
    where the caller asserts none should be; under the sanitizer the
    message carries each leaked pin's acquisition backtrace. *)

val create :
  ?capacity:int -> ?sanitize:bool -> ?retry_policy:Retry.policy -> ?wal:Wal.t -> Disk.t -> t
(** Default capacity is 64 frames.  [sanitize] defaults to the
    [XQDB_PIN_SANITIZE] environment variable ([1]/[true]/[yes]).
    [retry_policy] governs the transient-fault backoff (see {!Retry});
    it must keep the whole window short — retries sleep under the
    table mutex.  [wal], when given, enables write-ahead logging of
    every mutation. *)

val disk : t -> Disk.t

val wal : t -> Wal.t option
(** The log this pool writes ahead to, if any. *)

val capacity : t -> int

val sanitizing : t -> bool
(** Whether this pool was created in sanitize mode. *)

val alloc_page : t -> int
(** Allocate a fresh page on the disk and cache it (dirty) in the pool. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** Read access.  The callback must not retain the buffer. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Write access; the frame is marked dirty and flushed on eviction or
    {!flush_all}. *)

val flush_all : t -> unit
(** Write back all dirty frames (they stay cached). *)

val drop_all : t -> unit
(** Flush and forget every frame; the next access re-reads from disk.
    Used by benches to measure cold-cache behaviour.  Under the
    sanitizer, raises {!Pin_leak} if any frame is still pinned — a drop
    with outstanding pins would invalidate live buffers. *)

(** {2 Low-level pins}

    [with_page]/[with_page_mut] are the normal interface; the explicit
    pin API exists for callers that need a pin to outlive a single
    callback and for the sanitizer's own tests.  Every [pin] must be
    matched by exactly one [unpin] on the same token. *)

type pin
(** A single pin of a single frame. *)

val pin : t -> int -> pin
(** Pin the page's frame (faulting it in if needed).  The frame cannot
    be evicted until every pin on it is released. *)

val unpin : t -> pin -> unit
(** Release a pin.  Sanitize mode: a second [unpin] of the same token
    raises {!Sanitizer_violation} carrying the acquisition backtrace. *)

val pin_buffer : pin -> bytes
(** The pinned frame's buffer — the shadow copy under the sanitizer,
    the frame itself otherwise.  Invalid after [unpin] (the sanitizer
    poisons it with {!poison_byte}). *)

val poison_byte : char
(** The byte ([0xde]) the sanitizer fills released shadow buffers with. *)

val live_pins : t -> (int * string) list
(** Sanitize mode: the outstanding pins as [(page_id, backtrace)] pairs;
    [[]] when not sanitizing or nothing is pinned. *)

val pinned_pages : t -> (int * int) list
(** Frames with a nonzero pin count, as [(page_id, pins)] — works in
    both modes. *)

val latched_pages : t -> (int * int) list
(** Frames whose latch is not idle, as [(page_id, holders)] where
    [holders] follows {!Latch.holders} ([> 0] readers, [-1] writer). *)

val assert_unpinned : where:string -> t -> unit
(** Raise {!Pin_leak} (tagged with [where]) unless the {e calling
    domain} holds no pins.  Under the sanitizer, also raise
    {!Sanitizer_violation} if any frame latch is still held.  The engine
    calls this at [with_config]; harnesses call it between trials. *)

type pin_baseline
(** A snapshot of the outstanding pins at some instant, for balance
    checks across a window in which the {e caller} may legitimately hold
    pins of its own. *)

val pin_baseline : t -> pin_baseline

val assert_balanced : where:string -> baseline:pin_baseline -> t -> unit
(** Raise {!Pin_leak} if the {e baseline's domain} holds more pins now
    than at [baseline] — i.e. the window acquired pins it never
    released.  Under
    the sanitizer the message carries the acquisition backtraces of
    exactly the pins taken since the baseline.  [Engine.run] brackets
    every measured run with this, so a query must release everything it
    pinned even when the caller holds pins across the call. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;  (** disk operations retried after a {!Disk.Disk_error} *)
}

val stats : t -> stats
val reset_stats : t -> unit
