(** The buffer pool: a fixed number of page frames over a {!Disk}, with
    pin counts, dirty tracking and LRU replacement.

    The frame capacity is the knob behind the paper's "20 MB of memory"
    constraint in the efficiency tests: an engine configured with a small
    pool pays real page I/O for plans with poor locality.

    All access goes through [with_page]/[with_page_mut], which pin the
    frame for the duration of the callback; nesting is allowed as long as
    at most [capacity] distinct pages are pinned at once.  When a fetch
    finds every frame pinned, {!Pool_exhausted} is raised.

    Replacement is strict LRU over an intrusive doubly-linked frame
    list: victim selection is O(1) amortized (a tail-ward walk skipping
    pinned frames) and fully deterministic.

    Disk faults ({!Disk.Disk_error}) are retried a bounded number of
    times (transient faults injected by {!Fault_disk} clear on retry);
    a fault that persists propagates to the caller with the pool left
    consistent.  In particular a dirty frame whose write-back keeps
    failing stays cached and dirty — it is never dropped silently — so
    once the disk recovers, the next eviction or [flush_all] persists
    it. *)

type t

exception Pool_exhausted of string
(** Raised when a page must be brought in but every frame is pinned.
    Like {!Disk.Disk_error} — and unlike a caller bug — this is a
    runtime resource condition the engine is expected to absorb: it maps
    to an [Io_error] run status, never to an escaped [Failure]. *)

val create : ?capacity:int -> Disk.t -> t
(** Default capacity is 64 frames. *)

val disk : t -> Disk.t
val capacity : t -> int

val alloc_page : t -> int
(** Allocate a fresh page on the disk and cache it (dirty) in the pool. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** Read access.  The callback must not retain the buffer. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Write access; the frame is marked dirty and flushed on eviction or
    {!flush_all}. *)

val flush_all : t -> unit
(** Write back all dirty frames (they stay cached). *)

val drop_all : t -> unit
(** Flush and forget every frame; the next access re-reads from disk.
    Used by benches to measure cold-cache behaviour. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  retries : int;  (** disk operations retried after a {!Disk.Disk_error} *)
}

val stats : t -> stats
val reset_stats : t -> unit
