type t = {
  pool : Buffer_pool.t;
  table : (string, string) Hashtbl.t;
  (* Bumped on every document registration/unregistration; prepared-plan
     caches compare their stamped epoch against this to notice that the
     plans (and the statistics they were costed against) are stale. *)
  mutable epoch : int;
}
(* Catalog writers hold page 0's frame latch exclusively for the whole
   mutation, so [table] and [epoch] have a single writer at a time. *)
[@@guarded_by catalog_page_latch]

let catalog_page = 0

(* The catalog starts on page 0 and chains through the pages' [next]
   pointers when it outgrows one page.  Each record is [key, value] with
   uvarint length prefixes; a magic in the flags field distinguishes an
   initialized catalog page. *)
let magic = 0xCA7A

let attach pool =
  let table = Hashtbl.create 16 in
  let needs_init =
    Buffer_pool.with_page pool catalog_page (fun p -> Page.flags p <> magic)
  in
  if needs_init then
    Buffer_pool.with_page_mut pool catalog_page (fun p ->
        Page.init p;
        Page.set_flags p magic)
  else begin
    (* A damaged [next] pointer must surface as typed corruption, not an
       infinite loop or an out-of-range crash deeper down. *)
    let rec read_chain seen page_id =
      let next =
        Buffer_pool.with_page pool page_id (fun p ->
            if Page.flags p <> magic then
              Xqdb_error.corrupt "Catalog: chain page %d lacks the catalog magic" page_id;
            for i = 0 to Page.slot_count p - 1 do
              let r = Bytes_codec.reader (Page.read_slot p i) in
              let key = Bytes_codec.read_string r in
              let value = Bytes_codec.read_string r in
              Hashtbl.replace table key value
            done;
            Page.next p)
      in
      if next <> 0 then begin
        if next >= Disk.page_count (Buffer_pool.disk pool) then
          Xqdb_error.corrupt "Catalog: chain pointer %d points past the end of the file" next;
        if List.mem next seen then
          Xqdb_error.corrupt "Catalog: page chain cycles back to page %d" next;
        read_chain (next :: seen) next
      end
    in
    read_chain [catalog_page] catalog_page
  end;
  { pool; table; epoch = 0 }

let epoch t = t.epoch
let bump_epoch t = t.epoch <- t.epoch + 1

let set t key value = Hashtbl.replace t.table key value
let get t key = Hashtbl.find_opt t.table key
let get_int t key = Option.map int_of_string (get t key)
let set_int t key v = set t key (string_of_int v)
let remove t key = Hashtbl.remove t.table key

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

let flush t =
  (* Rewrite the whole chain, reusing existing overflow pages and
     allocating more as needed.  Chain pages are never reclaimed (the
     catalog only ever grows by a page at a time and stays tiny). *)
  let records =
    List.map
      (fun (key, value) ->
        let buf = Buffer.create 64 in
        Bytes_codec.write_string buf key;
        Bytes_codec.write_string buf value;
        Buffer.to_bytes buf)
      (entries t)
  in
  let rec write page_id records =
    let old_next, leftover =
      Buffer_pool.with_page_mut t.pool page_id (fun p ->
          let old_next = Page.next p in
          Page.init p;
          Page.set_flags p magic;
          let rec fill = function
            | [] -> []
            | record :: rest when Page.free_space p >= Bytes.length record ->
              ignore (Page.add_slot p record);
              fill rest
            | record :: _ when Page.slot_count p = 0 ->
              (* A record too large for an empty page would chain fresh
                 overflow pages forever; oversized values must be
                 chunked by the caller. *)
              Xqdb_error.internal
                "Catalog: record of %d bytes cannot fit a page; chunk the value"
                (Bytes.length record)
            | leftover -> leftover
          in
          (old_next, fill records))
    in
    match leftover with
    | [] ->
      (* Terminate the chain here; stale overflow pages stay allocated
         but unreachable. *)
      Buffer_pool.with_page_mut t.pool page_id (fun p -> Page.set_next p 0)
    | _ :: _ ->
      let next =
        if old_next <> 0 then old_next
        else begin
          let fresh = Buffer_pool.alloc_page t.pool in
          Buffer_pool.with_page_mut t.pool fresh (fun p ->
              Page.init p;
              Page.set_flags p magic);
          fresh
        end
      in
      Buffer_pool.with_page_mut t.pool page_id (fun p -> Page.set_next p next);
      write next leftover
  in
  write catalog_page records
