type policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default =
  { attempts = 3;
    base_delay = 0.0005;
    multiplier = 2.0;
    max_delay = 0.002;
    jitter = 0.25;
    seed = 0 }

let m_attempts = Metrics.counter "retry.attempts"
let m_giveups = Metrics.counter "retry.giveups"

(* The schedule is materialized up front from a private PRNG state, so
   two runs of the same policy sleep identically no matter what else
   drew random numbers in the process. *)
let delays p =
  if p.attempts < 1 then invalid_arg "Retry: policy.attempts must be >= 1";
  (* Field-by-field jitter seeding (not a structural hash): every knob
     of the policy perturbs the schedule, deterministically. *)
  let float_bits f = Int64.to_int (Int64.bits_of_float f) in
  let st =
    Random.State.make
      [| p.seed; p.attempts; float_bits p.base_delay; float_bits p.multiplier;
         float_bits p.max_delay; float_bits p.jitter |]
  in
  Array.init (p.attempts - 1) (fun i ->
      let raw = p.base_delay *. (p.multiplier ** float_of_int i) in
      let capped = Float.min raw p.max_delay in
      (* Jitter shifts the delay within [1-j, 1+j] of its nominal value
         — enough to de-synchronize retry storms, deterministic per
         seed. *)
      let spread = p.jitter *. ((2.0 *. Random.State.float st 1.0) -. 1.0) in
      Float.max 0.0 (capped *. (1.0 +. spread)))

let transient_disk_fault = function
  | Disk.Disk_error _ -> true
  (* Corrupt is a checksum mismatch: the bytes on disk are wrong, and
     re-reading them cannot make them right.  Listed explicitly (not
     just "anything else") because this is the classification the
     chaos harness leans on. *)
  | Xqdb_error.Corrupt _ -> false
  | _ -> false

let run ?(policy = default) ?(on_retry = fun ~attempt:_ _ -> ()) ?(sleep = Unix.sleepf)
    ~retryable f =
  (* Lazy: the fault-free path — every buffered disk op — must not pay
     for materializing a schedule it never sleeps on. *)
  let schedule = lazy (delays policy) in
  let rec go attempt =
    try f () with
    | e when retryable e && attempt < policy.attempts ->
      Metrics.incr m_attempts;
      on_retry ~attempt e;
      let d = (Lazy.force schedule).(attempt - 1) in
      if d > 0.0 then sleep d;
      go (attempt + 1)
    | e when retryable e ->
      Metrics.incr m_giveups;
      raise e
  in
  go 1
