type t = {
  pool : Buffer_pool.t;
  first : int;
  mutable last : int;
  mutable pages : int;
  mutable records : int;
}
(* Mutated only by the loading/spilling domain that owns the file. *)
[@@domain_local]

type rid = {
  page : int;
  slot : int;
}

let m_appends = Metrics.counter "heap.appends"
let m_scans = Metrics.counter "heap.scans"

let fresh_page pool =
  let id = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool id Page.init;
  id

let create pool =
  let first = fresh_page pool in
  { pool; first; last = first; pages = 1; records = 0 }

let open_existing pool ~first_page =
  let t = { pool; first = first_page; last = first_page; pages = 1; records = 0 } in
  let rec walk page_id =
    let nslots, next =
      Buffer_pool.with_page pool page_id (fun p -> (Page.slot_count p, Page.next p))
    in
    t.records <- t.records + nslots;
    if next = 0 then t.last <- page_id
    else begin
      t.pages <- t.pages + 1;
      walk next
    end
  in
  walk first_page;
  t

let first_page t = t.first
let page_count t = t.pages
let record_count t = t.records

let append t record =
  Metrics.incr m_appends;
  let len = Bytes.length record in
  let psize = Disk.page_size (Buffer_pool.disk t.pool) in
  if len + 4 + Page.header_size > psize then
    invalid_arg (Printf.sprintf "Heap_file.append: record of %d bytes exceeds page" len);
  let fits =
    Buffer_pool.with_page t.pool t.last (fun p -> Page.free_space p >= len)
  in
  if not fits then begin
    let fresh = fresh_page t.pool in
    Buffer_pool.with_page_mut t.pool t.last (fun p -> Page.set_next p fresh);
    t.last <- fresh;
    t.pages <- t.pages + 1
  end;
  let slot = Buffer_pool.with_page_mut t.pool t.last (fun p -> Page.add_slot p record) in
  t.records <- t.records + 1;
  { page = t.last; slot }

let get t rid = Buffer_pool.with_page t.pool rid.page (fun p -> Page.read_slot p rid.slot)

let iter t f =
  Metrics.incr m_scans;
  let rec go page_id =
    let nslots, next =
      Buffer_pool.with_page t.pool page_id (fun p -> (Page.slot_count p, Page.next p))
    in
    for slot = 0 to nslots - 1 do
      let record = Buffer_pool.with_page t.pool page_id (fun p -> Page.read_slot p slot) in
      f { page = page_id; slot } record
    done;
    if next <> 0 then go next
  in
  go t.first

let scan t =
  Metrics.incr m_scans;
  let page_id = ref t.first in
  let slot = ref 0 in
  let finished = ref false in
  let rec pull () =
    if !finished then None
    else begin
      let nslots, next =
        Buffer_pool.with_page t.pool !page_id (fun p -> (Page.slot_count p, Page.next p))
      in
      if !slot < nslots then begin
        let record =
          Buffer_pool.with_page t.pool !page_id (fun p -> Page.read_slot p !slot)
        in
        incr slot;
        Some record
      end
      else if next = 0 then begin
        finished := true;
        None
      end
      else begin
        page_id := next;
        slot := 0;
        pull ()
      end
    end
  in
  pull
