(** Readers-writer latches for buffer-pool frames.

    A latch guards one frame's {e contents} while a callback works on
    them: any number of shared holders (readers) may overlap, one
    exclusive holder (a mutator) excludes everyone.  Writers are
    preferred — a waiting exclusive acquisition blocks new shared ones —
    so readers cannot starve write-backs.

    Latches order {e after} the pool's table mutex: the pool pins a
    frame (which protects it from eviction) under its own lock, releases
    that lock, and only then blocks on the frame latch.  Counters:
    [latch.shared_acquisitions], [latch.exclusive_acquisitions] and
    [latch.waits] (acquisitions that had to block). *)

type t

exception Latch_error of string
(** Raised on misuse — releasing a latch that is not held. *)

val create : unit -> t
(** A free latch. *)

val acquire_shared : t -> unit
(** Block until no writer holds or awaits the latch, then join the
    readers. *)

val acquire_exclusive : t -> unit
(** Block until the latch is completely free, then hold it exclusively. *)

val release : t -> unit
(** Release one holder (the caller's own shared or exclusive hold).
    @raise Latch_error if the latch is not held at all. *)

val holders : t -> int
(** > 0: that many shared holders; 0: free; -1: held exclusively. *)

val idle : t -> bool
(** [holders t = 0]. *)
