(** A redo-only physical write-ahead log.

    The {!Buffer_pool} appends a page's full after-image after every
    mutation and syncs the log before writing the page back, so the
    database file is never ahead of the durable log.  Recovery
    ({!replay}) blindly rewrites every durable after-image in LSN order
    — idempotent, so recovering twice (or crashing during recovery and
    recovering again) is safe.

    Record layout, little-endian:

    {v
    [ kind:u8 | lsn:i64 | page_id:u32 | len:u32 | payload | crc:u32 ]
    v}

    The trailing CRC-32 covers everything before it; a record that fails
    it (a torn log write) ends the replayable prefix, and the bytes
    after it are discarded.

    Like {!Disk}, a log can misbehave on demand via {!set_injector} —
    the seam the {!Crash_point} harness uses to crash a workload between
    any two log operations. *)

type t

type op =
  | Append
  | Sync

type fault =
  | No_fault
  | Fail of string  (** raise {!Disk.Disk_error} without logging *)
  | Torn of string
      (** sync only: persist the older half of the pending records plus
          a damaged prefix of the next, drop the rest, then raise
          {!Disk.Disk_error}; treated as [Fail] on append *)

val in_memory : unit -> t
(** A log whose "durable" store is a buffer in this process — the
    crash-point harness's backend, where {!crash_discard} plays the
    crash. *)

val on_file : string -> t
(** Create or truncate a log file. *)

val open_existing : string -> t
(** Open a log left by an earlier process ({e the} recovery entry
    point); a missing file is treated as an empty log. *)

val set_injector : t -> (op -> fault) option -> unit

val append : t -> page_id:int -> data:bytes -> int
(** Append an after-image and return its LSN (LSNs start at 1 and
    increase).  The record is {e pending} — not durable — until the next
    {!sync}.  @raise Disk.Disk_error on an injected fault (nothing is
    appended). *)

val sync : t -> unit
(** Make every pending record durable.  No-op when nothing is pending.
    @raise Disk.Disk_error on an injected fault; a torn sync leaves a
    prefix of the pending records durable (possibly ending mid-record)
    and drops the rest. *)

val last_lsn : t -> int
(** The LSN of the newest appended record; 0 for an empty log. *)

val synced_lsn : t -> int
(** The LSN up to which the log is durable; [synced_lsn <= last_lsn].
    The buffer pool's write-back sanitizer checks a page's record LSN
    against this. *)

val size_bytes : t -> int
(** Durable plus pending bytes — what the auto-checkpoint threshold
    watches. *)

val checkpoint : t -> unit
(** Truncate the log.  Callers must first make the database file itself
    durable (flush the pool, {!Disk.sync}); see
    [Xqdb_core.Database.checkpoint] for the full protocol. *)

type replay_stats = {
  applied : int;  (** records replayed *)
  discarded_bytes : int;  (** torn/garbage tail bytes skipped *)
  torn_tail : bool;  (** whether the log ended mid-record *)
}

val replay : t -> apply:(lsn:int -> page_id:int -> bytes -> unit) -> replay_stats
(** Decode the durable log and feed each after-image to [apply] in LSN
    order, stopping at the first record that is truncated or fails its
    CRC.  Also advances this log's LSN counters past the highest LSN
    seen, so appends after recovery do not reuse LSNs. *)

val crash_discard : t -> unit
(** Simulate the crash: drop every pending (unsynced) record, leaving
    only the durable prefix.  In-memory harness use; a real crash does
    this for free. *)

val unsafe_no_sync : t -> bool -> unit
(** Test seam: while set, {!sync} does nothing, so the WAL-before-data
    invariant can be made to fail and the pin sanitizer's check
    exercised. *)

val close : t -> unit
(** Flush and close the backing file, if any. *)
