(* Node kinds, stored in the page-header flags. *)
let kind_leaf = 0
let kind_internal = 1
let kind_meta = 2

let m_node_reads = Metrics.counter "btree.node_reads"
let m_splits = Metrics.counter "btree.splits"
let m_inserts = Metrics.counter "btree.inserts"

type t = {
  pool : Buffer_pool.t;
  meta : int;  (* page id of the meta page *)
  mutable root : int;
  mutable count : int;
  mutable leaves : int;
  mutable height_ : int;
}
(* Mutated only while the loading domain builds the tree; published to
   reader domains through catalog registration (epoch bump). *)
[@@domain_local]

(* --- meta page -------------------------------------------------------- *)

(* Meta payload at fixed offsets after the slotted header:
   root:u32, count:u32, leaves:u32, height:u32. *)
let meta_off_root = Page.header_size
let meta_off_count = Page.header_size + 4
let meta_off_leaves = Page.header_size + 8
let meta_off_height = Page.header_size + 12

let save_meta t =
  Buffer_pool.with_page_mut t.pool t.meta (fun p ->
      Page.set_u32 p meta_off_root t.root;
      Page.set_u32 p meta_off_count t.count;
      Page.set_u32 p meta_off_leaves t.leaves;
      Page.set_u32 p meta_off_height t.height_)

let fresh_node pool kind =
  let id = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool id (fun p ->
      Page.init p;
      Page.set_flags p kind);
  id

let create pool =
  let meta = fresh_node pool kind_meta in
  let root = fresh_node pool kind_leaf in
  let t = { pool; meta; root; count = 0; leaves = 1; height_ = 1 } in
  save_meta t;
  t

let open_existing pool ~meta_page =
  Buffer_pool.with_page pool meta_page (fun p ->
      if Page.flags p <> kind_meta then invalid_arg "Btree.open_existing: not a meta page";
      { pool;
        meta = meta_page;
        root = Page.get_u32 p meta_off_root;
        count = Page.get_u32 p meta_off_count;
        leaves = Page.get_u32 p meta_off_leaves;
        height_ = Page.get_u32 p meta_off_height })

let meta_page t = t.meta
let entry_count t = t.count
let height t = t.height_
let leaf_pages t = t.leaves

(* --- cell encodings --------------------------------------------------- *)

let leaf_cell ~key ~value =
  let klen = Bytes.length key in
  let cell = Bytes.create (2 + klen + Bytes.length value) in
  Page.set_u16 cell 0 klen;
  Bytes.blit key 0 cell 2 klen;
  Bytes.blit value 0 cell (2 + klen) (Bytes.length value);
  cell

let leaf_cell_key cell =
  let klen = Page.get_u16 cell 0 in
  Bytes.sub cell 2 klen

let leaf_cell_value cell =
  let klen = Page.get_u16 cell 0 in
  Bytes.sub cell (2 + klen) (Bytes.length cell - 2 - klen)

let internal_cell ~child ~key =
  let cell = Bytes.create (4 + Bytes.length key) in
  Page.set_u32 cell 0 child;
  Bytes.blit key 0 cell 4 (Bytes.length key);
  cell

let internal_cell_child cell = Page.get_u32 cell 0
let internal_cell_key cell = Bytes.sub cell 4 (Bytes.length cell - 4)

(* --- searching within a node ----------------------------------------- *)

(* Smallest slot whose key is >= [key]; also reports an exact hit. *)
let leaf_lower_bound page key =
  let n = Page.slot_count page in
  let rec go lo hi =
    (* invariant: keys below lo are < key, keys at/after hi are >= key *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      let k = leaf_cell_key (Page.read_slot page mid) in
      if Bytes.compare k key < 0 then go (mid + 1) hi else go lo mid
    end
  in
  let pos = go 0 n in
  let exact =
    pos < n && Bytes.equal (leaf_cell_key (Page.read_slot page pos)) key
  in
  (pos, exact)

(* Child to descend into for [key]: the child of the largest separator
   <= key, or the leftmost child. *)
let internal_child page key =
  let n = Page.slot_count page in
  let rec go lo hi =
    (* invariant: separators below lo are <= key, at/after hi are > key *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      let k = internal_cell_key (Page.read_slot page mid) in
      if Bytes.compare k key <= 0 then go (mid + 1) hi else go lo mid
    end
  in
  let pos = go 0 n in
  if pos = 0 then Page.next page
  else internal_cell_child (Page.read_slot page (pos - 1))

(* --- find ------------------------------------------------------------- *)

let rec find_from t pid key =
  Metrics.incr m_node_reads;
  let step =
    Buffer_pool.with_page t.pool pid (fun p ->
        if Page.flags p = kind_leaf then begin
          let pos, exact = leaf_lower_bound p key in
          if exact then `Found (leaf_cell_value (Page.read_slot p pos)) else `Missing
        end
        else `Descend (internal_child p key))
  in
  match step with
  | `Found v -> Some v
  | `Missing -> None
  | `Descend child -> find_from t child key

let find t ~key = find_from t t.root key

(* --- insert ----------------------------------------------------------- *)

let max_cell_size t = Disk.page_size (Buffer_pool.disk t.pool) / 4

(* Rewrite [page] to contain exactly [cells] (already key-sorted). *)
let rewrite page kind ~next cells =
  Page.init page;
  Page.set_flags page kind;
  Page.set_next page next;
  Array.iter (fun cell -> ignore (Page.add_slot page cell)) cells

let all_cells page = Array.init (Page.slot_count page) (fun i -> Page.read_slot page i)

let array_insert arr i x =
  Array.append (Array.sub arr 0 i) (Array.append [|x|] (Array.sub arr i (Array.length arr - i)))

(* Split position: first index such that the left part exceeds half the
   total cell bytes.  Guarantees both sides non-empty for n >= 2. *)
let split_point cells =
  let total = Array.fold_left (fun acc c -> acc + Bytes.length c + 4) 0 cells in
  let rec go i acc =
    if i >= Array.length cells - 1 then i
    else begin
      let acc = acc + Bytes.length cells.(i) + 4 in
      if acc * 2 >= total then i + 1 else go (i + 1) acc
    end
  in
  max 1 (go 0 0)

type split = {
  sep : bytes;
  right : int;
}

(* Insert [cell] (with key [key]) into the leaf [pid]; on overflow split
   and return the separator and the new right page. *)
let leaf_insert t pid ~key ~cell =
  Buffer_pool.with_page_mut t.pool pid (fun p ->
      let pos, exact = leaf_lower_bound p key in
      if exact then begin
        Page.remove_slot_at p pos;
        t.count <- t.count - 1
      end;
      t.count <- t.count + 1;
      let need = Bytes.length cell + 4 in
      if Page.free_space p >= need then begin
        Page.insert_slot_at p pos cell;
        None
      end
      else begin
        Page.compact p;
        if Page.free_space p >= need then begin
          Page.insert_slot_at p pos cell;
          None
        end
        else begin
          (* Split: redistribute all cells plus the new one. *)
          let cells = array_insert (all_cells p) pos cell in
          let cut = split_point cells in
          let left = Array.sub cells 0 cut in
          let right_cells = Array.sub cells cut (Array.length cells - cut) in
          let right = fresh_node t.pool kind_leaf in
          let old_next = Page.next p in
          rewrite p kind_leaf ~next:right left;
          Buffer_pool.with_page_mut t.pool right (fun rp ->
              rewrite rp kind_leaf ~next:old_next right_cells);
          t.leaves <- t.leaves + 1;
          Metrics.incr m_splits;
          Some { sep = leaf_cell_key right_cells.(0); right }
        end
      end)

(* Insert a (separator, child) produced by a child split into internal
   node [pid]. *)
let internal_insert t pid split_info =
  Buffer_pool.with_page_mut t.pool pid (fun p ->
      let cell = internal_cell ~child:split_info.right ~key:split_info.sep in
      (* Position: keep separators sorted. *)
      let n = Page.slot_count p in
      let rec find_pos i =
        if i >= n then i
        else if Bytes.compare (internal_cell_key (Page.read_slot p i)) split_info.sep > 0
        then i
        else find_pos (i + 1)
      in
      let pos = find_pos 0 in
      let need = Bytes.length cell + 4 in
      if Page.free_space p >= need then begin
        Page.insert_slot_at p pos cell;
        None
      end
      else begin
        Page.compact p;
        if Page.free_space p >= need then begin
          Page.insert_slot_at p pos cell;
          None
        end
        else begin
          let cells = array_insert (all_cells p) pos cell in
          let cut = split_point cells in
          (* The cell at [cut] is promoted: its key moves up, its child
             becomes the leftmost pointer of the right node. *)
          let promoted = cells.(cut) in
          let left = Array.sub cells 0 cut in
          let right_cells = Array.sub cells (cut + 1) (Array.length cells - cut - 1) in
          let right = fresh_node t.pool kind_internal in
          let p0 = Page.next p in
          rewrite p kind_internal ~next:p0 left;
          Buffer_pool.with_page_mut t.pool right (fun rp ->
              rewrite rp kind_internal ~next:(internal_cell_child promoted) right_cells);
          Metrics.incr m_splits;
          Some { sep = internal_cell_key promoted; right }
        end
      end)

let rec insert_rec t pid ~key ~cell =
  Metrics.incr m_node_reads;
  let kind = Buffer_pool.with_page t.pool pid Page.flags in
  if kind = kind_leaf then leaf_insert t pid ~key ~cell
  else begin
    let child = Buffer_pool.with_page t.pool pid (fun p -> internal_child p key) in
    match insert_rec t child ~key ~cell with
    | None -> None
    | Some split_info -> internal_insert t pid split_info
  end

let insert t ~key ~value =
  Metrics.incr m_inserts;
  let cell = leaf_cell ~key ~value in
  if Bytes.length cell + 4 > max_cell_size t then
    invalid_arg
      (Printf.sprintf "Btree.insert: cell of %d bytes exceeds max %d" (Bytes.length cell)
         (max_cell_size t));
  (match insert_rec t t.root ~key ~cell with
   | None -> ()
   | Some { sep; right } ->
     (* Root split: grow the tree by one level. *)
     Metrics.incr m_splits;
     let new_root = fresh_node t.pool kind_internal in
     Buffer_pool.with_page_mut t.pool new_root (fun p ->
         Page.set_next p t.root;
         ignore (Page.add_slot p (internal_cell ~child:right ~key:sep)));
     t.root <- new_root;
     t.height_ <- t.height_ + 1);
  save_meta t

(* --- delete (lazy) ---------------------------------------------------- *)

let rec delete_rec t pid key =
  let kind = Buffer_pool.with_page t.pool pid Page.flags in
  if kind = kind_leaf then
    Buffer_pool.with_page_mut t.pool pid (fun p ->
        let pos, exact = leaf_lower_bound p key in
        if exact then begin
          Page.remove_slot_at p pos;
          true
        end
        else false)
  else begin
    let child = Buffer_pool.with_page t.pool pid (fun p -> internal_child p key) in
    delete_rec t child key
  end

let delete t ~key =
  let removed = delete_rec t t.root key in
  if removed then begin
    t.count <- t.count - 1;
    save_meta t
  end;
  removed

(* --- scans ------------------------------------------------------------ *)

let rec leftmost_leaf t pid =
  Metrics.incr m_node_reads;
  let step =
    Buffer_pool.with_page t.pool pid (fun p ->
        if Page.flags p = kind_leaf then None else Some (Page.next p))
  in
  match step with
  | None -> pid
  | Some child -> leftmost_leaf t child

let rec leaf_for t pid key =
  Metrics.incr m_node_reads;
  let step =
    Buffer_pool.with_page t.pool pid (fun p ->
        if Page.flags p = kind_leaf then None else Some (internal_child p key))
  in
  match step with
  | None -> pid
  | Some child -> leaf_for t child key

let scan_range ?lo ?hi t =
  let leaf, start =
    match lo with
    | None -> (leftmost_leaf t t.root, 0)
    | Some key ->
      let leaf = leaf_for t t.root key in
      let pos, _ = Buffer_pool.with_page t.pool leaf (fun p -> leaf_lower_bound p key) in
      (leaf, pos)
  in
  let cur_leaf = ref leaf in
  let cur_pos = ref start in
  let finished = ref false in
  let rec pull () =
    if !finished then None
    else begin
      let n, nxt =
        Buffer_pool.with_page t.pool !cur_leaf (fun p -> (Page.slot_count p, Page.next p))
      in
      if !cur_pos >= n then begin
        if nxt = 0 then begin
          finished := true;
          None
        end
        else begin
          cur_leaf := nxt;
          cur_pos := 0;
          pull ()
        end
      end
      else begin
        let cell =
          Buffer_pool.with_page t.pool !cur_leaf (fun p -> Page.read_slot p !cur_pos)
        in
        incr cur_pos;
        let key = leaf_cell_key cell in
        match hi with
        | Some hi_key when Bytes.compare key hi_key > 0 ->
          finished := true;
          None
        | Some _ | None -> Some (key, leaf_cell_value cell)
      end
    end
  in
  pull

let scan_prefix t ~prefix =
  let plen = Bytes.length prefix in
  let inner = scan_range ~lo:prefix t in
  let finished = ref false in
  fun () ->
    if !finished then None
    else
      match inner () with
      | None -> None
      | Some (key, value) ->
        if Bytes.length key >= plen && Bytes.equal (Bytes.sub key 0 plen) prefix then
          Some (key, value)
        else begin
          finished := true;
          None
        end

(* Page-at-a-time scans: where [scan_range] re-enters the pool for every
   entry (a slot-count probe plus a slot read per pull), these cursors
   pin each leaf once and decode all its qualifying cells inside that
   single [with_page] window.  The batch-execution scan operators are
   built on these. *)

let scan_range_pages ?lo ?hi t =
  let leaf, start =
    match lo with
    | None -> (leftmost_leaf t t.root, 0)
    | Some key ->
      let leaf = leaf_for t t.root key in
      let pos, _ = Buffer_pool.with_page t.pool leaf (fun p -> leaf_lower_bound p key) in
      (leaf, pos)
  in
  let cur_leaf = ref leaf in
  let cur_pos = ref start in
  let finished = ref false in
  let rec pull () =
    if !finished then None
    else begin
      Metrics.incr m_node_reads;
      let cells, nxt, past_hi =
        Buffer_pool.with_page t.pool !cur_leaf (fun p ->
            let n = Page.slot_count p in
            let acc = ref [] in
            let past_hi = ref false in
            let pos = ref !cur_pos in
            while (not !past_hi) && !pos < n do
              let cell = Page.read_slot p !pos in
              let key = leaf_cell_key cell in
              match hi with
              | Some hi_key when Bytes.compare key hi_key > 0 -> past_hi := true
              | Some _ | None ->
                acc := (key, leaf_cell_value cell) :: !acc;
                incr pos
            done;
            (Array.of_list (List.rev !acc), Page.next p, !past_hi))
      in
      if past_hi || nxt = 0 then finished := true
      else begin
        cur_leaf := nxt;
        cur_pos := 0
      end;
      if Array.length cells = 0 then if !finished then None else pull ()
      else Some cells
    end
  in
  pull

let scan_prefix_pages t ~prefix =
  let plen = Bytes.length prefix in
  let inner = scan_range_pages ~lo:prefix t in
  let finished = ref false in
  let rec pull () =
    if !finished then None
    else
      match inner () with
      | None ->
        finished := true;
        None
      | Some cells ->
        let matches (key, _) =
          Bytes.length key >= plen && Bytes.equal (Bytes.sub key 0 plen) prefix
        in
        let n = Array.length cells in
        let keep = ref n in
        (try
           for i = 0 to n - 1 do
             if not (matches cells.(i)) then begin
               keep := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !keep < n then finished := true;
        if !keep = 0 then if !finished then None else pull ()
        else if !keep = n then Some cells
        else Some (Array.sub cells 0 !keep)
  in
  pull

let iter t f =
  let cursor = scan_range t in
  let rec go () =
    match cursor () with
    | None -> ()
    | Some (k, v) ->
      f k v;
      go ()
  in
  go ()

(* --- bulk load -------------------------------------------------------- *)

let of_cursor pool cursor =
  let t = create pool in
  let psize = Disk.page_size (Buffer_pool.disk pool) in
  let capacity = psize - Page.header_size in
  (* Build the leaf level. *)
  let leaves = ref [] in  (* (first_key, pid) in reverse order *)
  let current = ref t.root in
  let current_first = ref None in
  let used = ref 0 in
  let last_key = ref None in
  let n = ref 0 in
  let rec fill () =
    match cursor () with
    | None -> ()
    | Some (key, value) ->
      (match !last_key with
       | Some k when Bytes.compare k key >= 0 ->
         invalid_arg "Btree.of_cursor: keys not strictly increasing"
       | Some _ | None -> ());
      last_key := Some key;
      let cell = leaf_cell ~key ~value in
      if Bytes.length cell + 4 > psize / 4 then invalid_arg "Btree.of_cursor: cell too large";
      if !used + Bytes.length cell + 4 > capacity then begin
        (* Start a new leaf, chain it. *)
        let fresh = fresh_node pool kind_leaf in
        Buffer_pool.with_page_mut pool !current (fun p -> Page.set_next p fresh);
        (match !current_first with
         | Some fk -> leaves := (fk, !current) :: !leaves
         | None -> assert false);
        current := fresh;
        current_first := None;
        used := 0;
        t.leaves <- t.leaves + 1
      end;
      Buffer_pool.with_page_mut pool !current (fun p -> ignore (Page.add_slot p cell));
      if !current_first = None then current_first := Some key;
      used := !used + Bytes.length cell + 4;
      incr n;
      fill ()
  in
  fill ();
  (match !current_first with
   | Some fk -> leaves := (fk, !current) :: !leaves
   | None -> leaves := (Bytes.empty, !current) :: !leaves);
  t.count <- !n;
  (* Build internal levels until one node remains.  The input is
     [(first_key, pid)] per node; [first_key] doubles as the separator
     when the node becomes a non-leftmost child. *)
  let rec build_level nodes =
    match nodes with
    | [] -> assert false
    | [(_, pid)] -> pid
    | (first_key, first_child) :: rest ->
      let parents = ref [] in  (* reversed (first_key, pid) of the level above *)
      let node = ref (fresh_node pool kind_internal) in
      Buffer_pool.with_page_mut pool !node (fun p -> Page.set_next p first_child);
      let node_first = ref first_key in
      let used = ref 0 in
      let finalize () = parents := (!node_first, !node) :: !parents in
      List.iter
        (fun (sep, child) ->
          let cell = internal_cell ~child ~key:sep in
          if !used + Bytes.length cell + 4 > capacity then begin
            finalize ();
            node := fresh_node pool kind_internal;
            Buffer_pool.with_page_mut pool !node (fun p -> Page.set_next p child);
            node_first := sep;
            used := 0
          end
          else begin
            Buffer_pool.with_page_mut pool !node (fun p -> ignore (Page.add_slot p cell));
            used := !used + Bytes.length cell + 4
          end)
        rest;
      finalize ();
      t.height_ <- t.height_ + 1;
      build_level (List.rev !parents)
  in
  let nodes = List.rev !leaves in
  t.height_ <- 1;
  t.root <- build_level nodes;
  save_meta t;
  t

(* --- invariant checking ----------------------------------------------- *)

let check_invariants ?(min_fill = 0.) t =
  let fail fmt = Format.kasprintf (fun s -> raise (Xqdb_error.Corrupt s)) fmt in
  let capacity = Disk.page_size (Buffer_pool.disk t.pool) - Page.header_size in
  let min_live = int_of_float (min_fill *. float_of_int capacity) in
  let leaf_list = ref [] in
  (* Returns (leaf depth, number of keys). *)
  let rec walk pid lo hi =
    Buffer_pool.with_page t.pool pid (fun p ->
        let n = Page.slot_count p in
        (* Occupancy bounds: no node overflows its page, and — when the
           caller asserts a fill floor, as the insert-only workload tests
           do — every non-root node carries at least [min_fill] of the
           usable page.  (No unconditional floor: lazy deletion may
           legally empty a leaf.) *)
        let live = Page.live_bytes p in
        if live > capacity then fail "page %d overflows: %d live of %d" pid live capacity;
        if pid <> t.root && live < min_live then
          fail "page %d underfull: %d live bytes < required %d" pid live min_live;
        let check_bounds key =
          (match lo with
           | Some l when Bytes.compare key l < 0 ->
             fail "key below subtree lower bound on page %d" pid
           | Some _ | None -> ());
          match hi with
          | Some h when Bytes.compare key h >= 0 ->
            fail "key above subtree upper bound on page %d" pid
          | Some _ | None -> ()
        in
        if Page.flags p = kind_leaf then begin
          leaf_list := pid :: !leaf_list;
          let prev = ref None in
          for i = 0 to n - 1 do
            let key = leaf_cell_key (Page.read_slot p i) in
            check_bounds key;
            (match !prev with
             | Some k when Bytes.compare k key >= 0 -> fail "unsorted leaf %d" pid
             | Some _ | None -> ());
            prev := Some key
          done;
          (1, n)
        end
        else begin
          let seps = Array.init n (fun i -> internal_cell_key (Page.read_slot p i)) in
          Array.iteri
            (fun i sep ->
              check_bounds sep;
              if i > 0 && Bytes.compare seps.(i - 1) sep >= 0 then
                fail "unsorted internal node %d" pid)
            seps;
          let children =
            Page.next p
            :: List.init n (fun i -> internal_cell_child (Page.read_slot p i))
          in
          let bounds i =
            let l = if i = 0 then lo else Some seps.(i - 1) in
            let h = if i = n then hi else Some seps.(i) in
            (l, h)
          in
          let depths_counts =
            List.mapi
              (fun i child ->
                let l, h = bounds i in
                walk child l h)
              children
          in
          let depths = List.map fst depths_counts in
          (match depths with
           | d :: rest when List.for_all (Int.equal d) rest -> ()
           | _ -> fail "unbalanced subtree under page %d" pid);
          let keys = List.fold_left (fun acc (_, c) -> acc + c) 0 depths_counts in
          (List.nth depths 0 + 1, keys)
        end)
  in
  let depth, keys = walk t.root None None in
  if depth <> t.height_ then fail "height mismatch: meta %d, actual %d" t.height_ depth;
  if keys <> t.count then fail "count mismatch: meta %d, actual %d" t.count keys;
  (* Leaf chain must visit exactly the leaves found by the walk, left to
     right. *)
  let chain = ref [] in
  let rec follow pid =
    if pid <> 0 then begin
      chain := pid :: !chain;
      follow (Buffer_pool.with_page t.pool pid Page.next)
    end
  in
  follow (leftmost_leaf t t.root);
  if not (List.equal Int.equal (List.rev !chain) (List.rev !leaf_list)) then
    fail "leaf chain does not match tree walk";
  if List.length !leaf_list <> t.leaves then
    fail "leaf count mismatch: meta %d, actual %d" t.leaves (List.length !leaf_list)
