type reader = {
  data : bytes;
  mutable pos : int;
}
[@@domain_local]

let reader data = { data; pos = 0 }

let write_uvarint buf v =
  if v < 0 then invalid_arg "Bytes_codec.write_uvarint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let read_uvarint r =
  let rec go shift acc =
    let byte = Char.code (Bytes.get r.data r.pos) in
    r.pos <- r.pos + 1;
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let write_string buf s =
  write_uvarint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let len = read_uvarint r in
  let s = Bytes.sub_string r.data r.pos len in
  r.pos <- r.pos + len;
  s

let key_int buf v =
  if v < 0 then invalid_arg "Bytes_codec.key_int: negative";
  for byte = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * byte)) land 0xFF))
  done

let read_key_int r =
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

(* '\000' in the payload becomes "\000\255"; the terminator "\000\000"
   is then smaller than any continuation, preserving prefix order. *)
let key_string buf s =
  String.iter
    (fun c ->
      if c = '\000' then Buffer.add_string buf "\000\255"
      else Buffer.add_char buf c)
    s;
  Buffer.add_string buf "\000\000"

let read_key_string r =
  let out = Buffer.create 16 in
  let rec go () =
    let c = Bytes.get r.data r.pos in
    r.pos <- r.pos + 1;
    if c <> '\000' then begin
      Buffer.add_char out c;
      go ()
    end
    else begin
      let c2 = Bytes.get r.data r.pos in
      r.pos <- r.pos + 1;
      if c2 = '\255' then begin
        Buffer.add_char out '\000';
        go ()
      end
      (* else: terminator *)
    end
  in
  go ();
  Buffer.contents out

let compare_bytes = Bytes.compare
