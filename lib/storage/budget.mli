(** Execution budgets: the mechanism behind the testbed's resource caps.

    The paper's efficiency tests ran each engine under "20 MB of memory
    and 2 or 30 minutes per query" and censored over-budget engines at
    the cap.  Here a budget bounds page I/Os (the simulator's proxy for
    time, independent of host speed) and elapsed wall-clock seconds
    ({!Monotonic} — [Sys.time]'s CPU seconds never advance while a
    session blocks on I/O or another domain runs); operators poll
    [check] in their inner loops.

    The I/O count is the {e global} disk counter delta since creation,
    so under concurrency other sessions' page I/Os can charge this
    budget too — page caps are approximate across concurrent sessions
    (DESIGN.md, "Serving traffic"). *)

type t

exception Exhausted of string

exception Deadline_exceeded of string
(** The request's absolute deadline has passed.  Distinct from
    {!Exhausted} so the engine can censor it as a typed [Timeout]
    rather than a generic over-budget status. *)

val unlimited : Disk.t -> t

val create : ?max_page_ios:int -> ?max_seconds:float -> ?deadline:float -> Disk.t -> t
(** Counts I/Os relative to the disk counters at creation time.
    [deadline] is an {e absolute} instant on the {!Monotonic.now}
    scale — the wire layer converts a client's relative deadline to
    absolute at admission, so time spent queued counts against it. *)

val check : t -> unit
(** @raise Deadline_exceeded when the deadline has passed (checked
    first — a dead request reports [Timeout] even if a cap also
    tripped).
    @raise Exhausted when a page-I/O or time cap is exceeded. *)

val page_ios : t -> int
(** Page I/Os (reads + writes) consumed since creation. *)

val elapsed : t -> float
(** Wall-clock seconds since creation. *)
