(** Execution budgets: the mechanism behind the testbed's resource caps.

    The paper's efficiency tests ran each engine under "20 MB of memory
    and 2 or 30 minutes per query" and censored over-budget engines at
    the cap.  Here a budget bounds page I/Os (the simulator's proxy for
    time, independent of host speed) and elapsed wall-clock seconds
    ({!Monotonic} — [Sys.time]'s CPU seconds never advance while a
    session blocks on I/O or another domain runs); operators poll
    [check] in their inner loops.

    The I/O count is the {e global} disk counter delta since creation,
    so under concurrency other sessions' page I/Os can charge this
    budget too — page caps are approximate across concurrent sessions
    (DESIGN.md, "Serving traffic"). *)

type t

exception Exhausted of string

val unlimited : Disk.t -> t

val create : ?max_page_ios:int -> ?max_seconds:float -> Disk.t -> t
(** Counts I/Os relative to the disk counters at creation time. *)

val check : t -> unit
(** @raise Exhausted when a cap is exceeded. *)

val page_ios : t -> int
(** Page I/Os (reads + writes) consumed since creation. *)

val elapsed : t -> float
(** Wall-clock seconds since creation. *)
