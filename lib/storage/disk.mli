(** The disk abstraction under the storage manager.

    A disk is an array of fixed-size pages addressed by page id, with
    read/write/alloc counters.  Two backends are provided: a real file
    (what a deployment would use) and an in-memory page table (what the
    benchmarks use, so that page-I/O counts — the currency of the cost
    model of milestone 4 — are measured without OS-cache noise).

    Page 0 is reserved for the {!Catalog} and is allocated eagerly.

    Disks can misbehave on demand: an installed {e fault injector}
    (see {!set_injector} and the {!Fault_disk} policy driver) may make
    any operation raise {!Disk_error}, or tear a write so that only a
    damaged prefix of the page is persisted before the failure is
    reported.  This is the machinery behind the robustness half of the
    testbed's differential harness.

    Every page carries a CRC-32 in its header ({!Page.stamp_checksum}):
    {!write_page} and {!alloc} stamp it, {!read_page} verifies it and
    raises {!Xqdb_error.Corrupt} on a mismatch, so a torn page that
    reaches a reader is detected rather than returned as data. *)

type t

exception Disk_error of string
(** An injected (or, conceptually, real) I/O failure.  Unlike
    [Invalid_argument] — which flags caller bugs such as out-of-range
    page ids — this is an environmental fault callers are expected to
    handle: the {!Buffer_pool} retries a bounded number of times, and the
    engine surfaces what remains as an [Io_error] run status. *)

type op =
  | Read
  | Write
  | Alloc

type fault =
  | No_fault
  | Fail of string  (** raise {!Disk_error} without touching the disk *)
  | Torn of string
      (** writes only: persist the first half of the buffer with one byte
          garbled (so the page's checksum cannot verify), then raise
          {!Disk_error}; treated as [Fail] for reads and allocs *)

val set_injector : t -> (op -> int -> fault) option -> unit
(** Install (or with [None] remove) a fault injector.  It is consulted
    with the operation and page id (for [Alloc], the id the new page
    would get) before counters are bumped or state is touched, so a
    failed operation is not counted and allocates nothing. *)

val in_memory : ?page_size:int -> unit -> t
(** Default page size is 4096 bytes. *)

val on_file : ?page_size:int -> string -> t
(** Creates or truncates [path]. *)

val open_existing : ?page_size:int -> string -> t
(** Open a database file created earlier by {!on_file}; the page count
    is recovered from the file size.
    @raise Invalid_argument if the size is not a whole number of pages
    or the file is empty. *)

val page_size : t -> int
val page_count : t -> int

val alloc : t -> int
(** Allocate a fresh zeroed page (checksum pre-stamped) and return its
    id.  @raise Disk_error on an injected allocation fault. *)

val read_page : t -> int -> bytes
(** A fresh copy of the page contents, checksum-verified.
    @raise Invalid_argument on an unallocated page id.
    @raise Disk_error on an injected read fault.
    @raise Xqdb_error.Corrupt if the stored checksum does not match the
    contents (the [disk.checksum_failures] counter is bumped). *)

val read_page_raw : t -> int -> bytes
(** Like {!read_page} but without checksum verification, fault
    injection, or counter updates — for tests and recovery tooling that
    inspect possibly-damaged pages.
    @raise Invalid_argument on an unallocated page id. *)

val write_page : t -> int -> bytes -> unit
(** Stamps the page checksum into [buf] (in place), then persists it.
    @raise Invalid_argument if the buffer size differs from the page
    size or the page id was never allocated.
    @raise Disk_error on an injected write fault; a torn fault persists
    a damaged half of the buffer first ([disk.torn_writes] is bumped),
    so retrying the full write repairs the page. *)

val sync : t -> unit
(** Flush buffered writes to the backing file (no-op for the in-memory
    backend).  The durability point the {!Wal} checkpoint protocol
    relies on. *)

type counters = {
  reads : int;
  writes : int;
  allocs : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val total_ios : t -> int
(** [reads + writes], without allocating a {!counters} record — the
    accessor the per-operator I/O attribution polls on every tuple. *)

val close : t -> unit
(** Close the backing file, if any.  The disk must not be used after. *)
