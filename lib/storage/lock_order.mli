(** A lockdep-style latch-order checker.

    Deadlocks need four latches' worth of bad luck to reproduce but only
    two edges to prove: if one code path ever acquires latch B while
    holding latch A, and another acquires A while holding B, the two can
    deadlock under the right interleaving — even if the test run that
    recorded the edges never actually deadlocked.  This module records
    every (held -> acquired) dependency in a global order graph and
    raises {!Lock_order_violation} at the acquisition that would close a
    cycle, {e before} the caller blocks on the latch, with the
    acquisition backtraces of both directions.

    Participants are keyed by a lock {e class} (a string naming the
    family — the buffer pool registers one class per pool for its frame
    latches and one for its table mutex) plus an integer instance
    (the page id; [-1] for singletons).  Edges survive release: ordering
    facts accumulate across the whole run, so a violation is detected as
    soon as any two paths disagree, not only when they overlap in time.

    Shared (reader) acquisitions are tracked like exclusive ones on
    purpose: the frame latches are writer-preferred, so even a
    shared/shared cycle deadlocks once a writer queues on each side.

    Like the pin sanitizer, backtraces are kept raw and symbolized only
    when a violation is reported, so sanitized full suites run at near
    zero extra cost.  The checker is driven by sanitizing pools
    ({!Buffer_pool.create} [~sanitize:true] or [XQDB_PIN_SANITIZE=1]);
    it has no enable flag of its own — instrumented call sites decide.

    Counters: [latch.order_edges] (distinct dependencies recorded) and
    [latch.order_violations] (cycles detected; each also raises). *)

type key = { cls : string; inst : int }

exception Lock_order_violation of string
(** A latch acquisition that would close a cycle in the order graph, or
    a latch-order stack leaked past a quiescent point.  The message
    carries the symbolized acquisition backtraces of both the new
    dependency and the recorded reverse path. *)

val before_acquire : cls:string -> inst:int -> unit
(** Record the calling domain's intent to acquire [(cls, inst)].  Checks
    every currently-held lock for a reverse path in the order graph and
    raises {!Lock_order_violation} if one exists — before the caller
    blocks, so the deadlock is reported instead of entered.  Otherwise
    records the new edges and pushes the lock onto the domain's held
    stack.  Call immediately {e before} the real acquisition. *)

val after_release : cls:string -> inst:int -> unit
(** Pop [(cls, inst)] from the calling domain's held stack.  Unmatched
    releases are ignored (instrumentation may be enabled mid-run). *)

val held_by_self : unit -> key list
(** The calling domain's held stack, most recent first. *)

val assert_none_held : where:string -> unit
(** Quiescent-point check: raises {!Lock_order_violation} (and counts
    it) if the calling domain still holds tracked locks. *)

val edges_recorded : unit -> int
(** Distinct dependencies currently in the order graph. *)

val reset : unit -> unit
(** Drop the order graph and all held stacks — test isolation between
    scenarios that reuse (class, instance) keys.  Counters are global
    {!Metrics} and are not reset. *)
