type phase =
  | Feeding
  | Draining

let m_runs = Metrics.counter "ext_sort.runs"
let m_merge_passes = Metrics.counter "ext_sort.merge_passes"

type t = {
  pool : Buffer_pool.t;
  compare : bytes -> bytes -> int;
  run_bytes : int;
  fan_in : int;
  mutable phase : phase;
  mutable buffer : bytes list;  (* current run, reversed *)
  mutable buffered_bytes : int;
  mutable runs : Heap_file.t list;  (* spilled runs, reversed *)
  mutable fed : int;
  mutable initial_runs : int;
}
(* A sort belongs to the single operator (and domain) draining it. *)
[@@domain_local]

let create ?(run_bytes = 256 * 1024) ?(fan_in = 16) pool ~compare =
  if fan_in < 2 then invalid_arg "Ext_sort.create: fan_in must be >= 2";
  { pool;
    compare;
    run_bytes;
    fan_in;
    phase = Feeding;
    buffer = [];
    buffered_bytes = 0;
    runs = [];
    fed = 0;
    initial_runs = 0 }

let spill t =
  if t.buffer <> [] then begin
    Metrics.incr m_runs;
    let records = List.fast_sort t.compare (List.rev t.buffer) in
    let run = Heap_file.create t.pool in
    List.iter (fun r -> ignore (Heap_file.append run r)) records;
    t.runs <- run :: t.runs;
    t.buffer <- [];
    t.buffered_bytes <- 0
  end

let feed t record =
  (match t.phase with
   | Feeding -> ()
   | Draining -> invalid_arg "Ext_sort.feed: already draining");
  t.buffer <- record :: t.buffer;
  t.buffered_bytes <- t.buffered_bytes + Bytes.length record;
  t.fed <- t.fed + 1;
  if t.buffered_bytes >= t.run_bytes then spill t

let fed_count t = t.fed
let run_count t = t.initial_runs

(* Merge the cursors into one, with a simple tournament over the heads.
   Run counts are small (fan_in-bounded), so a linear minimum is fine. *)
let merge_cursors compare cursors =
  let heads = Array.map (fun c -> c ()) (Array.of_list cursors) in
  let cursors = Array.of_list cursors in
  fun () ->
    let best = ref (-1) in
    Array.iteri
      (fun i head ->
        match head with
        | None -> ()
        | Some r ->
          (match !best with
           | -1 -> best := i
           | b ->
             (match heads.(b) with
              | Some rb when compare r rb < 0 -> best := i
              | Some _ | None -> ())))
      heads;
    match !best with
    | -1 -> None
    | i ->
      let r = heads.(i) in
      heads.(i) <- cursors.(i) ();
      (match r with
       | Some _ -> r
       | None -> assert false)

let run_cursor run = Heap_file.scan run

(* Merge [runs] down to a single cursor, respecting the fan-in. *)
let rec merge_all t runs =
  match runs with
  | [] -> fun () -> None
  | [run] -> run_cursor run
  | runs when List.length runs <= t.fan_in ->
    merge_cursors t.compare (List.map run_cursor runs)
  | runs ->
    (* One full merge pass: groups of fan_in runs each merge into a new
       run on disk, then recurse. *)
    Metrics.incr m_merge_passes;
    let rec take n acc rest =
      match rest with
      | [] -> (List.rev acc, [])
      | x :: rest' when n > 0 -> take (n - 1) (x :: acc) rest'
      | _ :: _ -> (List.rev acc, rest)
    in
    let rec pass acc rest =
      match rest with
      | [] -> List.rev acc
      | _ :: _ ->
        let group, rest = take t.fan_in [] rest in
        let merged = merge_cursors t.compare (List.map run_cursor group) in
        let out = Heap_file.create t.pool in
        let rec drain () =
          match merged () with
          | None -> ()
          | Some r ->
            ignore (Heap_file.append out r);
            drain ()
        in
        drain ();
        pass (out :: acc) rest
    in
    merge_all t (pass [] runs)

let sorted_cursor t =
  (match t.phase with
   | Feeding ->
     t.phase <- Draining;
     if t.runs = [] then begin
       (* Everything fits in memory: no spill at all. *)
       let records = List.fast_sort t.compare (List.rev t.buffer) in
       t.buffer <- records;
       t.initial_runs <- 0
     end
     else begin
       spill t;
       t.initial_runs <- List.length t.runs
     end
   | Draining -> ());
  if t.initial_runs = 0 then begin
    let remaining = ref t.buffer in
    fun () ->
      match !remaining with
      | [] -> None
      | r :: rest ->
        remaining := rest;
        Some r
  end
  else merge_all t (List.rev t.runs)
