module Codec = Xqdb_storage.Bytes_codec

type node_type =
  | Root
  | Element
  | Text

type tuple = {
  nin : int;
  nout : int;
  parent_in : int;
  ntype : node_type;
  value : string;
}

let node_type_code = function
  | Root -> 0
  | Element -> 1
  | Text -> 2

let node_type_of_code = function
  | 0 -> Root
  | 1 -> Element
  | 2 -> Text
  | c -> invalid_arg (Printf.sprintf "Xasr.node_type_of_code: %d" c)

let node_type_name = function
  | Root -> "root"
  | Element -> "element"
  | Text -> "text"

let is_child_of t ~parent = t.parent_in = parent.nin
let is_descendant_of t ~ancestor = ancestor.nin < t.nin && t.nout < ancestor.nout

let encode t =
  let buf = Buffer.create (16 + String.length t.value) in
  Codec.write_uvarint buf t.nin;
  Codec.write_uvarint buf t.nout;
  Codec.write_uvarint buf t.parent_in;
  Codec.write_uvarint buf (node_type_code t.ntype);
  Codec.write_string buf t.value;
  Buffer.to_bytes buf

let decode data =
  let r = Codec.reader data in
  let nin = Codec.read_uvarint r in
  let nout = Codec.read_uvarint r in
  let parent_in = Codec.read_uvarint r in
  let ntype = node_type_of_code (Codec.read_uvarint r) in
  let value = Codec.read_string r in
  { nin; nout; parent_in; ntype; value }

let pp ppf t =
  Format.fprintf ppf "(%d, %d, %d, %s, %s)" t.nin t.nout t.parent_in
    (node_type_name t.ntype)
    (match t.ntype with
     | Root -> "NULL"
     | Element | Text -> t.value)

let primary_key nin =
  let buf = Buffer.create 8 in
  Codec.key_int buf nin;
  Buffer.to_bytes buf

let label_prefix ntype value =
  let buf = Buffer.create 16 in
  Codec.key_int buf (node_type_code ntype);
  Codec.key_string buf value;
  Buffer.to_bytes buf

let label_key ntype value nin =
  let buf = Buffer.create 24 in
  Codec.key_int buf (node_type_code ntype);
  Codec.key_string buf value;
  Codec.key_int buf nin;
  Buffer.to_bytes buf

let parent_prefix parent_in =
  let buf = Buffer.create 8 in
  Codec.key_int buf parent_in;
  Buffer.to_bytes buf

let parent_key parent_in nin =
  let buf = Buffer.create 16 in
  Codec.key_int buf parent_in;
  Codec.key_int buf nin;
  Buffer.to_bytes buf

let struct_prefix label =
  let buf = Buffer.create 16 in
  Codec.key_string buf label;
  Buffer.to_bytes buf

let struct_key label nin =
  let buf = Buffer.create 24 in
  Codec.key_string buf label;
  Codec.key_int buf nin;
  Buffer.to_bytes buf

type struct_entry = {
  s_nout : int;
  s_level : int;
  s_parent_in : int;
}

let encode_struct e =
  let buf = Buffer.create 12 in
  Codec.write_uvarint buf e.s_nout;
  Codec.write_uvarint buf e.s_level;
  Codec.write_uvarint buf e.s_parent_in;
  Buffer.to_bytes buf

let decode_struct data =
  let r = Codec.reader data in
  let s_nout = Codec.read_uvarint r in
  let s_level = Codec.read_uvarint r in
  let s_parent_in = Codec.read_uvarint r in
  { s_nout; s_level; s_parent_in }

(* The trailing 8 bytes of all index keys hold [in]. *)
let trailing_int key =
  let r = Codec.reader key in
  r.Codec.pos <- Bytes.length key - 8;
  Codec.read_key_int r

let in_of_label_key = trailing_int
let in_of_parent_key = trailing_int
let in_of_struct_key = trailing_int
