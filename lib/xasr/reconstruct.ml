module Tree = Xqdb_xml.Xml_tree

(* One pass over tuples sorted by [in], maintaining the stack of open
   ancestors.  When the next tuple's [in] is beyond the top's [out], the
   top is complete and folds into its parent. *)

type frame = {
  tuple : Xasr.tuple;
  mutable children_rev : Tree.node list;
}
[@@domain_local]

let to_node frame =
  match frame.tuple.Xasr.ntype with
  | Xasr.Text -> Tree.Text frame.tuple.Xasr.value
  | Xasr.Element -> Tree.Elem (frame.tuple.Xasr.value, List.rev frame.children_rev)
  | Xasr.Root -> invalid_arg "Reconstruct: root tuple inside a subtree"

(* Build the forest of completed top-level frames from a tuple cursor
   whose first tuple is the subtree root (excluded from the output when
   [drop_first]). *)
let build cursor =
  let stack = ref [] in
  let out_rev = ref [] in
  let complete frame =
    let node = to_node frame in
    match !stack with
    | parent :: _ -> parent.children_rev <- node :: parent.children_rev
    | [] -> out_rev := node :: !out_rev
  in
  let rec pop_until nin =
    match !stack with
    | top :: rest when top.tuple.Xasr.nout < nin ->
      stack := rest;
      complete top;
      pop_until nin
    | _ :: _ | [] -> ()
  in
  let rec go () =
    match cursor () with
    | None -> ()
    | Some tuple ->
      pop_until tuple.Xasr.nin;
      (match tuple.Xasr.ntype with
       | Xasr.Text ->
         (* Texts have no children; complete immediately. *)
         (match !stack with
          | parent :: _ -> parent.children_rev <- Tree.Text tuple.Xasr.value :: parent.children_rev
          | [] -> out_rev := Tree.Text tuple.Xasr.value :: !out_rev)
       | Xasr.Element | Xasr.Root -> stack := { tuple; children_rev = [] } :: !stack);
      go ()
  in
  go ();
  pop_until max_int;
  List.rev !out_rev

let subtree store tuple =
  match tuple.Xasr.ntype with
  | Xasr.Root -> invalid_arg "Reconstruct.subtree: virtual root"
  | Xasr.Text -> Tree.Text tuple.Xasr.value
  | Xasr.Element ->
    let cursor = Node_store.scan_in_range store ~lo:tuple.Xasr.nin ~hi:tuple.Xasr.nout in
    (match build cursor with
     | [node] -> node
     | forest ->
       Xqdb_storage.Xqdb_error.corrupt "Reconstruct.subtree: expected one tree, got %d"
         (List.length forest))

let subtree_by_in store nin =
  match Node_store.fetch store nin with
  | Some tuple -> subtree store tuple
  | None -> raise Not_found

let root_forest store =
  let root = Node_store.root_tuple store in
  (* Skip the root tuple itself: scan strictly inside its interval. *)
  let cursor =
    Node_store.scan_in_range store ~lo:(root.Xasr.nin + 1) ~hi:(root.Xasr.nout - 1)
  in
  build cursor

let document_string store = Xqdb_xml.Xml_print.forest_to_string (root_forest store)
