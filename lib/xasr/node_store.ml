module Storage = Xqdb_storage
module Btree = Storage.Btree
module Codec = Storage.Bytes_codec

type t = {
  pool : Storage.Buffer_pool.t;
  name : string;
  primary : Btree.t;
  label_idx : Btree.t;
  parent_idx : Btree.t;
  struct_idx : Btree.t;
}

let create pool ~name =
  { pool;
    name;
    primary = Btree.create pool;
    label_idx = Btree.create pool;
    parent_idx = Btree.create pool;
    struct_idx = Btree.create pool }

let name t = t.name
let pool t = t.pool

(* The serialized statistics embed the path summary, whose size scales
   with the document's distinct label paths — far past one page on deep
   documents.  Catalog records must each fit a page, so the blob is
   split into page-bounded chunks under [name.stats.<i>], with the
   chunk count under [name.stats.n]. *)
let stats_chunk_size t =
  max 64 (Storage.Disk.page_size (Storage.Buffer_pool.disk t.pool) / 4)

let register t catalog ~stats =
  let module C = Storage.Catalog in
  C.set_int catalog (t.name ^ ".primary") (Btree.meta_page t.primary);
  C.set_int catalog (t.name ^ ".label") (Btree.meta_page t.label_idx);
  C.set_int catalog (t.name ^ ".parent") (Btree.meta_page t.parent_idx);
  C.set_int catalog (t.name ^ ".struct") (Btree.meta_page t.struct_idx);
  let blob = Doc_stats.serialize stats in
  let chunk = stats_chunk_size t in
  let chunks = (String.length blob + chunk - 1) / chunk in
  for i = 0 to chunks - 1 do
    let off = i * chunk in
    let len = min chunk (String.length blob - off) in
    C.set catalog (Printf.sprintf "%s.stats.%d" t.name i) (String.sub blob off len)
  done;
  C.set_int catalog (t.name ^ ".stats.n") chunks;
  C.bump_epoch catalog;
  C.flush catalog

let open_existing pool catalog ~name =
  let module C = Storage.Catalog in
  let meta key =
    match C.get_int catalog (name ^ key) with
    | Some page -> page
    | None -> Storage.Xqdb_error.corrupt "Node_store.open_existing: no %s%s in catalog" name key
  in
  { pool;
    name;
    primary = Btree.open_existing pool ~meta_page:(meta ".primary");
    label_idx = Btree.open_existing pool ~meta_page:(meta ".label");
    parent_idx = Btree.open_existing pool ~meta_page:(meta ".parent");
    struct_idx = Btree.open_existing pool ~meta_page:(meta ".struct") }

(* The chunk-count key doubles as the registration marker: a document
   exists exactly when [name.stats.n] does, and it is the last thing
   [register] sets before flushing. *)
let stats_count_suffix = ".stats.n"

let registered_names catalog =
  let module C = Storage.Catalog in
  let suffix_len = String.length stats_count_suffix in
  List.filter_map
    (fun (key, _) ->
      let n = String.length key in
      if n > suffix_len
         && String.equal (String.sub key (n - suffix_len) suffix_len) stats_count_suffix
      then Some (String.sub key 0 (n - suffix_len))
      else None)
    (C.entries catalog)
  |> List.sort String.compare

let unregister catalog ~name =
  let module C = Storage.Catalog in
  (match C.get_int catalog (name ^ stats_count_suffix) with
  | Some chunks ->
    for i = 0 to chunks - 1 do
      C.remove catalog (Printf.sprintf "%s.stats.%d" name i)
    done
  | None -> ());
  List.iter
    (fun suffix -> C.remove catalog (name ^ suffix))
    [".primary"; ".label"; ".parent"; ".struct"; stats_count_suffix];
  C.bump_epoch catalog

let stats_of_catalog catalog ~name =
  let module C = Storage.Catalog in
  match C.get_int catalog (name ^ ".stats.n") with
  | Some chunks ->
    let buf = Buffer.create 256 in
    for i = 0 to chunks - 1 do
      match C.get catalog (Printf.sprintf "%s.stats.%d" name i) with
      | Some s -> Buffer.add_string buf s
      | None ->
        Storage.Xqdb_error.corrupt "Node_store.stats_of_catalog: %s stats chunk %d missing"
          name i
    done;
    Doc_stats.deserialize (Buffer.contents buf)
  | None ->
    Storage.Xqdb_error.corrupt "Node_store.stats_of_catalog: no stats for %s" name

let insert t ~level tuple =
  Btree.insert t.primary ~key:(Xasr.primary_key tuple.Xasr.nin) ~value:(Xasr.encode tuple);
  Btree.insert t.label_idx
    ~key:(Xasr.label_key tuple.Xasr.ntype tuple.Xasr.value tuple.Xasr.nin)
    ~value:Bytes.empty;
  Btree.insert t.parent_idx
    ~key:(Xasr.parent_key tuple.Xasr.parent_in tuple.Xasr.nin)
    ~value:Bytes.empty;
  match tuple.Xasr.ntype with
  | Xasr.Root | Xasr.Text -> ()
  | Xasr.Element ->
    Btree.insert t.struct_idx
      ~key:(Xasr.struct_key tuple.Xasr.value tuple.Xasr.nin)
      ~value:
        (Xasr.encode_struct
           { Xasr.s_nout = tuple.Xasr.nout;
             s_level = level;
             s_parent_in = tuple.Xasr.parent_in })

let tuple_count t = Btree.entry_count t.primary

let fetch t nin =
  Option.map Xasr.decode (Btree.find t.primary ~key:(Xasr.primary_key nin))

let root_tuple t =
  match fetch t 1 with
  | Some tuple -> tuple
  | None -> Storage.Xqdb_error.corrupt "Node_store.root_tuple: empty store"

let scan_in_range t ~lo ~hi =
  let cursor =
    Btree.scan_range ~lo:(Xasr.primary_key lo) ~hi:(Xasr.primary_key hi) t.primary
  in
  fun () -> Option.map (fun (_, v) -> Xasr.decode v) (cursor ())

let scan_all t =
  let cursor = Btree.scan_range t.primary in
  fun () -> Option.map (fun (_, v) -> Xasr.decode v) (cursor ())

(* Page-at-a-time cursors: one pull decodes every qualifying entry of
   one leaf page, pinned once.  These feed the batch scan operators. *)

let decode_page cells = Array.map (fun (_, v) -> Xasr.decode v) cells

let scan_in_range_pages t ~lo ~hi =
  let cursor =
    Btree.scan_range_pages ~lo:(Xasr.primary_key lo) ~hi:(Xasr.primary_key hi) t.primary
  in
  fun () -> Option.map decode_page (cursor ())

let scan_all_pages t =
  let cursor = Btree.scan_range_pages t.primary in
  fun () -> Option.map decode_page (cursor ())

let children_ins t parent_in =
  let cursor = Btree.scan_prefix t.parent_idx ~prefix:(Xasr.parent_prefix parent_in) in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_parent_key k) (cursor ())

let label_ins t ntype value =
  let cursor = Btree.scan_prefix t.label_idx ~prefix:(Xasr.label_prefix ntype value) in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_label_key k) (cursor ())

let label_ins_pages t ntype value =
  let cursor =
    Btree.scan_prefix_pages t.label_idx ~prefix:(Xasr.label_prefix ntype value)
  in
  fun () -> Option.map (Array.map (fun (k, _) -> Xasr.in_of_label_key k)) (cursor ())

let label_ins_all_of_type t ntype =
  let prefix =
    let buf = Buffer.create 8 in
    Codec.key_int buf (Xasr.node_type_code ntype);
    Buffer.to_bytes buf
  in
  let cursor = Btree.scan_prefix t.label_idx ~prefix in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_label_key k) (cursor ())

let struct_tuple label key data =
  let nin = Xasr.in_of_struct_key key in
  let e = Xasr.decode_struct data in
  { Xasr.nin;
    nout = e.Xasr.s_nout;
    parent_in = e.Xasr.s_parent_in;
    ntype = Xasr.Element;
    value = label }

let struct_stream t label =
  let cursor = Btree.scan_prefix t.struct_idx ~prefix:(Xasr.struct_prefix label) in
  fun () -> Option.map (fun (k, v) -> struct_tuple label k v) (cursor ())

let struct_stream_pages t label =
  let cursor = Btree.scan_prefix_pages t.struct_idx ~prefix:(Xasr.struct_prefix label) in
  fun () -> Option.map (Array.map (fun (k, v) -> struct_tuple label k v)) (cursor ())

let struct_entry_count t = Btree.entry_count t.struct_idx

(* Every element of the primary must have a structural entry agreeing on
   (out, level, parent); equal entry counts rule out extras.  This is
   the "agrees with a from-scratch rebuild" oracle the crash sweep runs
   over recovered stores. *)
let check_struct_agreement t =
  let next = scan_all t in
  (* Open-element stack, innermost first: nout per open ancestor. *)
  let stack = ref [] in
  let elements = ref 0 in
  let rec pop_closed nin =
    match !stack with
    | nout :: rest when nout < nin ->
      stack := rest;
      pop_closed nin
    | _ -> ()
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some tuple ->
      pop_closed tuple.Xasr.nin;
      (match tuple.Xasr.ntype with
      | Xasr.Root | Xasr.Text -> ()
      | Xasr.Element ->
        incr elements;
        let level = List.length !stack + 1 in
        (match Btree.find t.struct_idx ~key:(Xasr.struct_key tuple.Xasr.value tuple.Xasr.nin) with
        | None ->
          Storage.Xqdb_error.corrupt "Node_store.check_invariants: %s: element (%s, in %d) missing from struct index"
            t.name tuple.Xasr.value tuple.Xasr.nin
        | Some data ->
          let e = Xasr.decode_struct data in
          let nout = e.Xasr.s_nout and elevel = e.Xasr.s_level
          and eparent = e.Xasr.s_parent_in in
          if nout <> tuple.Xasr.nout || elevel <> level || eparent <> tuple.Xasr.parent_in
          then
            Storage.Xqdb_error.corrupt
              "Node_store.check_invariants: %s: struct entry (%s, in %d) disagrees: \
               (out %d, level %d, parent %d) vs primary (out %d, level %d, parent %d)"
              t.name tuple.Xasr.value tuple.Xasr.nin nout elevel eparent tuple.Xasr.nout
              level tuple.Xasr.parent_in);
        stack := tuple.Xasr.nout :: !stack);
      loop ()
  in
  loop ();
  let entries = struct_entry_count t in
  let elements = !elements in
  if entries <> elements then
    Storage.Xqdb_error.corrupt "Node_store.check_invariants: %s: struct index has %d entries for %d elements"
      t.name entries elements

let check_invariants ?min_fill t =
  Btree.check_invariants ?min_fill t.primary;
  Btree.check_invariants ?min_fill t.label_idx;
  Btree.check_invariants ?min_fill t.parent_idx;
  Btree.check_invariants ?min_fill t.struct_idx;
  check_struct_agreement t

let primary_height t = Btree.height t.primary
let primary_leaf_pages t = Btree.leaf_pages t.primary
let label_index_height t = Btree.height t.label_idx
let parent_index_height t = Btree.height t.parent_idx
let struct_index_height t = Btree.height t.struct_idx
let struct_leaf_pages t = Btree.leaf_pages t.struct_idx
