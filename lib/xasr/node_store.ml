module Storage = Xqdb_storage
module Btree = Storage.Btree
module Codec = Storage.Bytes_codec

type t = {
  pool : Storage.Buffer_pool.t;
  name : string;
  primary : Btree.t;
  label_idx : Btree.t;
  parent_idx : Btree.t;
}

let create pool ~name =
  { pool;
    name;
    primary = Btree.create pool;
    label_idx = Btree.create pool;
    parent_idx = Btree.create pool }

let name t = t.name
let pool t = t.pool

let register t catalog ~stats =
  let module C = Storage.Catalog in
  C.set_int catalog (t.name ^ ".primary") (Btree.meta_page t.primary);
  C.set_int catalog (t.name ^ ".label") (Btree.meta_page t.label_idx);
  C.set_int catalog (t.name ^ ".parent") (Btree.meta_page t.parent_idx);
  C.set catalog (t.name ^ ".stats") (Doc_stats.serialize stats);
  C.flush catalog

let open_existing pool catalog ~name =
  let module C = Storage.Catalog in
  let meta key =
    match C.get_int catalog (name ^ key) with
    | Some page -> page
    | None -> Storage.Xqdb_error.corrupt "Node_store.open_existing: no %s%s in catalog" name key
  in
  { pool;
    name;
    primary = Btree.open_existing pool ~meta_page:(meta ".primary");
    label_idx = Btree.open_existing pool ~meta_page:(meta ".label");
    parent_idx = Btree.open_existing pool ~meta_page:(meta ".parent") }

let stats_of_catalog catalog ~name =
  match Storage.Catalog.get catalog (name ^ ".stats") with
  | Some s -> Doc_stats.deserialize s
  | None -> Storage.Xqdb_error.corrupt "Node_store.stats_of_catalog: no stats for %s" name

let insert t tuple =
  Btree.insert t.primary ~key:(Xasr.primary_key tuple.Xasr.nin) ~value:(Xasr.encode tuple);
  Btree.insert t.label_idx
    ~key:(Xasr.label_key tuple.Xasr.ntype tuple.Xasr.value tuple.Xasr.nin)
    ~value:Bytes.empty;
  Btree.insert t.parent_idx
    ~key:(Xasr.parent_key tuple.Xasr.parent_in tuple.Xasr.nin)
    ~value:Bytes.empty

let tuple_count t = Btree.entry_count t.primary

let fetch t nin =
  Option.map Xasr.decode (Btree.find t.primary ~key:(Xasr.primary_key nin))

let root_tuple t =
  match fetch t 1 with
  | Some tuple -> tuple
  | None -> Storage.Xqdb_error.corrupt "Node_store.root_tuple: empty store"

let scan_in_range t ~lo ~hi =
  let cursor =
    Btree.scan_range ~lo:(Xasr.primary_key lo) ~hi:(Xasr.primary_key hi) t.primary
  in
  fun () -> Option.map (fun (_, v) -> Xasr.decode v) (cursor ())

let scan_all t =
  let cursor = Btree.scan_range t.primary in
  fun () -> Option.map (fun (_, v) -> Xasr.decode v) (cursor ())

let children_ins t parent_in =
  let cursor = Btree.scan_prefix t.parent_idx ~prefix:(Xasr.parent_prefix parent_in) in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_parent_key k) (cursor ())

let label_ins t ntype value =
  let cursor = Btree.scan_prefix t.label_idx ~prefix:(Xasr.label_prefix ntype value) in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_label_key k) (cursor ())

let label_ins_all_of_type t ntype =
  let prefix =
    let buf = Buffer.create 8 in
    Codec.key_int buf (Xasr.node_type_code ntype);
    Buffer.to_bytes buf
  in
  let cursor = Btree.scan_prefix t.label_idx ~prefix in
  fun () -> Option.map (fun (k, _) -> Xasr.in_of_label_key k) (cursor ())

let check_invariants ?min_fill t =
  Btree.check_invariants ?min_fill t.primary;
  Btree.check_invariants ?min_fill t.label_idx;
  Btree.check_invariants ?min_fill t.parent_idx

let primary_height t = Btree.height t.primary
let primary_leaf_pages t = Btree.leaf_pages t.primary
let label_index_height t = Btree.height t.label_idx
let parent_index_height t = Btree.height t.parent_idx
