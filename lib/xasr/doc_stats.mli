(** Per-document data statistics (milestone 4).

    The paper's minimum: "the selectivity of each of the element node
    labels occurring in the document, and the average depth of a node in
    the data tree, as a gross measure for the selectivities of
    ancestor-descendant joins".  We keep exactly that, plus the basic
    counts needed to turn selectivities into cardinalities, plus a
    {!Path_summary} giving exact per-path cardinalities for the
    structural-index planner.

    Statistics are collected during shredding and persisted through the
    catalog as a string. *)

type t = {
  node_count : int;  (** all nodes incl. the virtual root *)
  elem_count : int;
  text_count : int;
  depth_sum : int;  (** sum of node depths; root has depth 0 *)
  max_depth : int;
  label_counts : (string * int) list;  (** element label -> occurrences, sorted *)
  paths : Path_summary.t;  (** per-path cardinality and fan-out *)
}

val empty : t

val avg_depth : t -> float

val label_count : t -> string -> int
(** 0 for labels that do not occur — this exactness is what makes the
    non-existent-label query (test 4 of Figure 7) instant for engines
    that consult statistics. *)

val label_selectivity : t -> string -> float
(** [label_count / node_count]. *)

val descendant_selectivity : t -> float
(** Estimated fraction of node pairs in ancestor-descendant relation:
    [avg_depth / node_count] (each node has [depth] ancestors). *)

val serialize : t -> string
val deserialize : string -> t

val pp : Format.formatter -> t -> unit

(** Incremental builder used by the shredder. *)
module Builder : sig
  type stats := t
  type t

  val create : unit -> t
  val add_node : t -> depth:int -> Xasr.node_type -> string -> unit

  val add_element_path : t -> string list -> unit
  (** Feed one element's full root-first label path into the embedded
      {!Path_summary.Builder}. *)

  val finish : t -> stats
end
