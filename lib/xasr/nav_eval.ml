open Xqdb_xq.Xq_ast
module Tree = Xqdb_xml.Xml_tree
module Budget = Xqdb_storage.Budget
module Xq_eval = Xqdb_xq.Xq_eval
module Xq_print = Xqdb_xq.Xq_print

type env = (var * Xasr.tuple) list

let lookup env x =
  match List.assoc_opt x env with
  | Some tuple -> tuple
  | None -> invalid_arg (Printf.sprintf "Nav_eval: unbound variable %s" (Xq_print.var x))

let tuple_matches tuple = function
  | Name a -> tuple.Xasr.ntype = Xasr.Element && String.equal tuple.Xasr.value a
  | Star -> tuple.Xasr.ntype = Xasr.Element
  | Text_test -> tuple.Xasr.ntype = Xasr.Text

let filter_cursor test cursor =
  let rec pull () =
    match cursor () with
    | None -> None
    | Some tuple -> if tuple_matches tuple test then Some tuple else pull ()
  in
  pull

let axis_cursor store binding axis test =
  match axis with
  | Child ->
    let ins = Node_store.children_ins store binding.Xasr.nin in
    let fetch () =
      match ins () with
      | None -> None
      | Some nin ->
        (match Node_store.fetch store nin with
         | Some tuple -> Some tuple
         | None -> Xqdb_storage.Xqdb_error.corrupt "Nav_eval: dangling parent-index entry")
    in
    filter_cursor test fetch
  | Descendant ->
    (* Strictly inside the interval: (in, out). *)
    let scan =
      Node_store.scan_in_range store ~lo:(binding.Xasr.nin + 1) ~hi:(binding.Xasr.nout - 1)
    in
    filter_cursor test scan

let checked budget cursor =
  match budget with
  | None -> cursor
  | Some b ->
    fun () ->
      Budget.check b;
      cursor ()

let text_value env x =
  let tuple = lookup env x in
  match tuple.Xasr.ntype with
  | Xasr.Text -> tuple.Xasr.value
  | Xasr.Element ->
    raise
      (Xq_eval.Type_error
         (Printf.sprintf "%s is bound to element <%s>, not a text node" (Xq_print.var x)
            tuple.Xasr.value))
  | Xasr.Root ->
    raise
      (Xq_eval.Type_error
         (Printf.sprintf "%s is bound to the document root" (Xq_print.var x)))

let rec eval_cond ?budget store env = function
  | True -> true
  | Eq_vars (x, y) -> String.equal (text_value env x) (text_value env y)
  | Eq_const (x, s) -> String.equal (text_value env x) s
  | Some_ (y, x, axis, test, c) ->
    let cursor = checked budget (axis_cursor store (lookup env x) axis test) in
    let rec exists () =
      match cursor () with
      | None -> false
      | Some tuple -> eval_cond ?budget store ((y, tuple) :: env) c || exists ()
    in
    exists ()
  | And (c1, c2) -> eval_cond ?budget store env c1 && eval_cond ?budget store env c2
  | Or (c1, c2) -> eval_cond ?budget store env c1 || eval_cond ?budget store env c2
  | Not c -> not (eval_cond ?budget store env c)

let output_tuple store tuple =
  match tuple.Xasr.ntype with
  | Xasr.Root -> Reconstruct.root_forest store
  | Xasr.Element | Xasr.Text -> [Reconstruct.subtree store tuple]

let rec eval_in_env ?budget store env = function
  | Empty -> []
  | Text_lit s -> [Tree.Text s]
  | Constr (a, q) -> [Tree.Elem (a, eval_in_env ?budget store env q)]
  | Seq (q1, q2) -> eval_in_env ?budget store env q1 @ eval_in_env ?budget store env q2
  | Var x -> output_tuple store (lookup env x)
  | Path (x, axis, test) ->
    let cursor = checked budget (axis_cursor store (lookup env x) axis test) in
    let rec collect acc =
      match cursor () with
      | None -> List.rev acc
      | Some tuple -> collect (Reconstruct.subtree store tuple :: acc)
    in
    collect []
  | For (y, x, axis, test, body) ->
    let cursor = checked budget (axis_cursor store (lookup env x) axis test) in
    let rec collect acc =
      match cursor () with
      | None -> List.concat (List.rev acc)
      | Some tuple -> collect (eval_in_env ?budget store ((y, tuple) :: env) body :: acc)
    in
    collect []
  | If (c, q) ->
    if eval_cond ?budget store env c then eval_in_env ?budget store env q else []

let eval ?budget store q =
  eval_in_env ?budget store [(root_var, Node_store.root_tuple store)] q

let eval_string ?budget store q =
  Xqdb_xml.Xml_print.forest_to_string (eval ?budget store q)
