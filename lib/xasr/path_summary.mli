(** DataGuide-style path summary.

    One entry per distinct root-to-node {e label path} of the document
    (element nodes only — the virtual root and text nodes have no
    label), written ["/a/b/c"].  Each entry carries the number of
    elements with that path and the summed element fan-out under it, so
    the optimizer can derive {e per-path} selectivities instead of
    per-label ones.

    The summary is exact, not an estimate: [chain_card] of an absent
    path is 0, which is what lets the planner prove queries over
    non-existent structure empty (Figure 7, test 4). *)

type entry = {
  count : int;  (** elements with exactly this root path *)
  child_sum : int;  (** element children summed over those occurrences *)
}

type t

type axis =
  | Child
  | Descendant

val empty : t

val paths : t -> (string * entry) list
(** All entries, sorted by path string. *)

val distinct : t -> int
val count : t -> string -> int
val total_count : t -> int

val fanout : t -> string -> float
(** Average element fan-out of elements with this path; 0 if absent. *)

val equal : t -> t -> bool

val chain_card : t -> (axis * string) list -> int
(** Exact number of elements reachable by the step chain from the
    document root, e.g. [[(Descendant, "NP"); (Child, "NN")]] for
    [//NP/NN].  0 when the chain matches no stored path. *)

val desc_pair_card : t -> anc:string -> desc:string -> int
(** Exact number of (ancestor, descendant) element pairs with the given
    labels. *)

val child_pair_card : t -> parent:string -> child:string -> int
(** Exact number of (parent, child) element pairs with the given
    labels. *)

val serialize : t -> string
val deserialize : string -> t

val pp : Format.formatter -> t -> unit

(** Incremental builder fed by the shredder at element close. *)
module Builder : sig
  type summary := t
  type t

  val create : unit -> t

  val add_element_path : t -> string list -> unit
  (** Full label path of one element, root-first, ending with the
      element's own label. *)

  val finish : t -> summary
end

val of_scan : (unit -> Xasr.tuple option) -> t
(** Rebuild the summary from a document-order tuple cursor (e.g.
    {!Node_store.scan_all}), reconstructing nesting from the
    (in, out) intervals.  Must equal the incrementally built summary —
    the property the QCheck suite pins. *)
