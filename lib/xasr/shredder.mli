(** Shredding: loading an XML document into a {!Node_store}.

    The shredder consumes SAX events, maintains the open-tag stack and
    the in/out counter of Figure 2, and emits each node's XASR tuple at
    its {e closing} tag — so the whole load runs in memory proportional
    to document depth, never building a DOM (the milestone-2
    requirement).  Statistics for milestone 4 are collected on the fly. *)

type t

exception Shred_error of string
(** Malformed input: mismatched, stray or unclosed tags in the event
    stream.  A typed error, never a bare [Failure] — the engine surfaces
    it as an [Error] run status rather than a crash (lint rule L1). *)

val start : Node_store.t -> t

val push : t -> Xqdb_xml.Xml_parser.event -> unit
(** @raise Shred_error on mismatched or stray tags. *)

val finish : t -> Doc_stats.t
(** Emit the virtual-root tuple and return the collected statistics.
    @raise Shred_error if tags remain open. *)

(* Convenience wrappers. *)

val shred_string :
  Xqdb_storage.Buffer_pool.t -> name:string -> string -> Node_store.t * Doc_stats.t

val shred_forest :
  Xqdb_storage.Buffer_pool.t ->
  name:string ->
  Xqdb_xml.Xml_tree.forest ->
  Node_store.t * Doc_stats.t

val shred_file :
  Xqdb_storage.Buffer_pool.t -> name:string -> string -> Node_store.t * Doc_stats.t
