module Xml_parser = Xqdb_xml.Xml_parser
module Xml_print = Xqdb_xml.Xml_print

exception Shred_error of string

let shred_fail fmt = Printf.ksprintf (fun s -> raise (Shred_error s)) fmt

type open_tag = {
  label : string;
  tag_in : int;
}

type t = {
  store : Node_store.t;
  stats : Doc_stats.Builder.t;
  mutable counter : int;  (* last assigned in/out value *)
  mutable stack : open_tag list;  (* open elements, innermost first *)
}
(* One shred = one loading domain. *)
[@@domain_local]

let root_in = 1

let start store =
  let t = { store; stats = Doc_stats.Builder.create (); counter = root_in; stack = [] } in
  (* The virtual root opens before any event; its tuple is emitted by
     [finish] once its out value is known. *)
  t

let parent_in t =
  match t.stack with
  | [] -> root_in
  | top :: _ -> top.tag_in

let depth t = List.length t.stack + 1  (* depth of a node being emitted now *)

let push t event =
  match event with
  | Xml_parser.Start_tag label ->
    t.counter <- t.counter + 1;
    t.stack <- { label; tag_in = t.counter } :: t.stack
  | Xml_parser.Text value ->
    t.counter <- t.counter + 1;
    let nin = t.counter in
    t.counter <- t.counter + 1;
    let tuple =
      { Xasr.nin;
        nout = t.counter;
        parent_in = parent_in t;
        ntype = Xasr.Text;
        value }
    in
    Doc_stats.Builder.add_node t.stats ~depth:(depth t) Xasr.Text value;
    Node_store.insert t.store ~level:(depth t) tuple
  | Xml_parser.End_tag label ->
    (match t.stack with
     | [] -> shred_fail "Shredder: stray end tag </%s>" label
     | top :: rest ->
       if not (String.equal top.label label) then
         shred_fail "Shredder: <%s> closed by </%s>" top.label label;
       t.counter <- t.counter + 1;
       t.stack <- rest;
       let tuple =
         { Xasr.nin = top.tag_in;
           nout = t.counter;
           parent_in = parent_in t;
           ntype = Xasr.Element;
           value = label }
       in
       Doc_stats.Builder.add_node t.stats ~depth:(depth t) Xasr.Element label;
       (* Root-first label path: the popped stack still holds every
          open ancestor, innermost first. *)
       Doc_stats.Builder.add_element_path t.stats
         (List.rev (label :: List.map (fun o -> o.label) rest));
       Node_store.insert t.store ~level:(depth t) tuple)

let finish t =
  (match t.stack with
   | [] -> ()
   | top :: _ -> shred_fail "Shredder: unclosed <%s> at end of input" top.label);
  t.counter <- t.counter + 1;
  let root =
    { Xasr.nin = root_in; nout = t.counter; parent_in = 0; ntype = Xasr.Root; value = "" }
  in
  Doc_stats.Builder.add_node t.stats ~depth:0 Xasr.Root "";
  Node_store.insert t.store ~level:0 root;
  Doc_stats.Builder.finish t.stats

let shred_string pool ~name input =
  let store = Node_store.create pool ~name in
  let shredder = start store in
  Xml_parser.iter_events input (push shredder);
  let stats = finish shredder in
  (store, stats)

let shred_forest pool ~name forest =
  (* Reuses the string path: serialize and re-lex.  Documents are loaded
     once; simplicity wins over the double scan. *)
  shred_string pool ~name (Xml_print.forest_to_string forest)

let shred_file pool ~name path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  shred_string pool ~name content
