(** The extended access support relation (XASR) of Fiebig & Moerkotte,
    as used in the paper's milestone 2: the relation

    {v Node(in, out, parent_in, type, value) v}

    with one tuple per node of the document.  [in]/[out] are the tag
    counters of Figure 2 ([in]/[out] of the paper), [parent_in] is the
    parent's [in] (0 for the virtual root), [type] distinguishes root /
    element / text, and [value] is the label, the text content, or [""]
    (the paper's NULL) for the root.

    Structural relationships on tuples:
    - [y] is a child of [x]       iff  [y.parent_in = x.in]
    - [y] is a descendant of [x]  iff  [x.in < y.in && y.out < x.out]

    This module defines the tuple, its payload codec, its index-key
    codecs, and the relation's column names used by the TPM algebra. *)

type node_type =
  | Root
  | Element
  | Text

type tuple = {
  nin : int;
  nout : int;
  parent_in : int;
  ntype : node_type;
  value : string;
}

val node_type_code : node_type -> int
val node_type_of_code : int -> node_type
val node_type_name : node_type -> string

val is_child_of : tuple -> parent:tuple -> bool
val is_descendant_of : tuple -> ancestor:tuple -> bool

val encode : tuple -> bytes
val decode : bytes -> tuple

val pp : Format.formatter -> tuple -> unit
(** The paper's Example 1 rendering, e.g. [(2, 17, 1, element, journal)]. *)

(* Index-key encodings (order-preserving, see {!Xqdb_storage.Bytes_codec}). *)

val primary_key : int -> bytes
(** Clustered primary index: key is [in]. *)

val label_key : node_type -> string -> int -> bytes
(** Label index: [(type, value, in)]; supports prefix scans on
    [(type, value)] via {!label_prefix}. *)

val label_prefix : node_type -> string -> bytes

val parent_key : int -> int -> bytes
(** Parent index: [(parent_in, in)]; prefix scans via {!parent_prefix}. *)

val parent_prefix : int -> bytes

val struct_key : string -> int -> bytes
(** Structural index: [(label, in)]; prefix scans on [label] via
    {!struct_prefix}.  Element nodes only. *)

val struct_prefix : string -> bytes

(** Payload of a structural-index entry: with the key's [(label, in)]
    this is the full (label, pre, post, level) record, so structural
    joins never touch the primary index. *)
type struct_entry = {
  s_nout : int;
  s_level : int;  (** depth in the tree; the virtual root has level 0 *)
  s_parent_in : int;
}

val encode_struct : struct_entry -> bytes
val decode_struct : bytes -> struct_entry

val in_of_label_key : bytes -> int
(** Decode the trailing [in] of a label-index key. *)

val in_of_parent_key : bytes -> int
val in_of_struct_key : bytes -> int
