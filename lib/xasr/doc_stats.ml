type t = {
  node_count : int;
  elem_count : int;
  text_count : int;
  depth_sum : int;
  max_depth : int;
  label_counts : (string * int) list;
  paths : Path_summary.t;
}

let empty =
  { node_count = 0;
    elem_count = 0;
    text_count = 0;
    depth_sum = 0;
    max_depth = 0;
    label_counts = [];
    paths = Path_summary.empty }

let avg_depth t =
  if t.node_count = 0 then 0.0 else float_of_int t.depth_sum /. float_of_int t.node_count

let label_count t label =
  match List.assoc_opt label t.label_counts with
  | Some n -> n
  | None -> 0

let label_selectivity t label =
  if t.node_count = 0 then 0.0
  else float_of_int (label_count t label) /. float_of_int t.node_count

let descendant_selectivity t =
  if t.node_count = 0 then 0.0 else avg_depth t /. float_of_int t.node_count

(* Serialized as lines: the counts, one "label count" line each, then a
   "#paths" separator and the path-summary lines.  Labels are XML names,
   so they contain no whitespace, newlines or a leading '#'. *)
let paths_separator = "#paths"

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d\n" t.node_count t.elem_count t.text_count t.depth_sum
       t.max_depth);
  List.iter
    (fun (label, n) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" label n))
    t.label_counts;
  Buffer.add_string buf (paths_separator ^ "\n");
  Buffer.add_string buf (Path_summary.serialize t.paths);
  Buffer.contents buf

let deserialize s =
  match String.split_on_char '\n' s with
  | [] -> invalid_arg "Doc_stats.deserialize: empty"
  | header :: rest ->
    let node_count, elem_count, text_count, depth_sum, max_depth =
      Scanf.sscanf header "%d %d %d %d %d" (fun a b c d e -> (a, b, c, d, e))
    in
    (* Stats written before path summaries existed have no separator;
       they deserialize with an empty summary. *)
    let rec split_label_lines acc = function
      | [] -> (List.rev acc, [])
      | line :: tl when String.equal line paths_separator -> (List.rev acc, tl)
      | line :: tl -> split_label_lines (line :: acc) tl
    in
    let label_lines, path_lines = split_label_lines [] rest in
    let label_counts =
      List.filter_map
        (fun line ->
          if String.equal line "" then None
          else Some (Scanf.sscanf line "%s %d" (fun l n -> (l, n))))
        label_lines
    in
    let paths = Path_summary.deserialize (String.concat "\n" path_lines) in
    { node_count; elem_count; text_count; depth_sum; max_depth; label_counts; paths }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d (elements %d, texts %d)@,avg depth: %.2f (max %d)@,labels:@,%a@,paths:@,%a@]"
    t.node_count t.elem_count t.text_count (avg_depth t) t.max_depth
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (l, n) ->
         Format.fprintf ppf "  %-20s %d" l n))
    t.label_counts Path_summary.pp t.paths

module Builder = struct
  type nonrec stats = t

  type t = {
    mutable node_count : int;
    mutable elem_count : int;
    mutable text_count : int;
    mutable depth_sum : int;
    mutable max_depth : int;
    labels : (string, int) Hashtbl.t;
    paths : Path_summary.Builder.t;
  }

  let create () =
    { node_count = 0;
      elem_count = 0;
      text_count = 0;
      depth_sum = 0;
      max_depth = 0;
      labels = Hashtbl.create 64;
      paths = Path_summary.Builder.create () }

  let add_node b ~depth ntype value =
    b.node_count <- b.node_count + 1;
    b.depth_sum <- b.depth_sum + depth;
    if depth > b.max_depth then b.max_depth <- depth;
    match (ntype : Xasr.node_type) with
    | Xasr.Root -> ()
    | Xasr.Text -> b.text_count <- b.text_count + 1
    | Xasr.Element ->
      b.elem_count <- b.elem_count + 1;
      let n = try Hashtbl.find b.labels value with Not_found -> 0 in
      Hashtbl.replace b.labels value (n + 1)

  let add_element_path b segments = Path_summary.Builder.add_element_path b.paths segments

  let finish b : stats =
    { node_count = b.node_count;
      elem_count = b.elem_count;
      text_count = b.text_count;
      depth_sum = b.depth_sum;
      max_depth = b.max_depth;
      label_counts =
        Hashtbl.fold (fun l n acc -> (l, n) :: acc) b.labels []
        |> List.sort (fun (l1, _) (l2, _) -> String.compare l1 l2);
      paths = Path_summary.Builder.finish b.paths }
end
