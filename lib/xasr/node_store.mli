(** Secondary storage for one shredded document.

    Milestone 2/4 storage layout, one Berkeley-DB-style keyed store per
    access path:

    - {b primary}: clustered B+-tree on [in], the whole tuple in the
      leaf.  [in] was "the natural choice" for the clustered primary
      index; range scans over [in] intervals enumerate subtrees in
      document order.
    - {b label index}: [(type, value, in)] — the access path behind
      index-based selection on element labels and text values.
    - {b parent index}: [(parent_in, in)] — the access path behind
      index-based nested-loop child joins.
    - {b structural index}: [(label, in)] keys carrying
      [(out, level, parent_in)] payloads — together the (label, pre,
      post, level) record of the structural-join literature, so
      staircase and twig operators stream whole element tuples per
      label without touching the primary.

    All cursors yield results in document order (ascending [in]). *)

type t

val create : Xqdb_storage.Buffer_pool.t -> name:string -> t
val name : t -> string
val pool : t -> Xqdb_storage.Buffer_pool.t

val register : t -> Xqdb_storage.Catalog.t -> stats:Doc_stats.t -> unit
(** Record the index meta pages and serialized statistics under
    ["<name>.*"] keys and flush the catalog. *)

val open_existing : Xqdb_storage.Buffer_pool.t -> Xqdb_storage.Catalog.t -> name:string -> t
val stats_of_catalog : Xqdb_storage.Catalog.t -> name:string -> Doc_stats.t

val registered_names : Xqdb_storage.Catalog.t -> string list
(** The documents registered in the catalog, sorted.  A document exists
    exactly when its ["<name>.stats.n"] chunk-count key does. *)

val unregister : Xqdb_storage.Catalog.t -> name:string -> unit
(** Remove every catalog key [register] wrote for [name] — index meta
    pages and all statistics chunks.  Does not flush. *)

val insert : t -> level:int -> Xasr.tuple -> unit
(** Insert into the primary and all secondary indexes.  [level] is the
    node's depth (root 0); it is persisted in the structural index for
    element nodes. *)

val tuple_count : t -> int

val fetch : t -> int -> Xasr.tuple option
(** Primary lookup by [in]. *)

val root_tuple : t -> Xasr.tuple
(** The virtual-root tuple ([in] = 1).  @raise Failure on an empty store. *)

val scan_in_range : t -> lo:int -> hi:int -> unit -> Xasr.tuple option
(** Clustered scan of tuples with [lo <= in <= hi], in document order. *)

val scan_all : t -> unit -> Xasr.tuple option

val scan_in_range_pages : t -> lo:int -> hi:int -> unit -> Xasr.tuple array option
(** Page-at-a-time variant of {!scan_in_range}: each pull pins one
    primary leaf once and decodes all its qualifying tuples (never an
    empty array).  Document order across pulls. *)

val scan_all_pages : t -> unit -> Xasr.tuple array option

val children_ins : t -> int -> unit -> int option
(** [in]s of the children of the node with the given [in], via the
    parent index, in document order. *)

val label_ins : t -> Xasr.node_type -> string -> unit -> int option
(** [in]s of all nodes with the given type and value, via the label
    index, in document order. *)

val label_ins_pages : t -> Xasr.node_type -> string -> unit -> int array option
(** Page-at-a-time variant of {!label_ins}. *)

val label_ins_all_of_type : t -> Xasr.node_type -> unit -> int option
(** [in]s of all nodes of a type regardless of value (e.g. all text
    nodes), via the label index; {e index order} (value-major), not
    document order. *)

val struct_stream : t -> string -> unit -> Xasr.tuple option
(** Full element tuples with the given label, streamed from the
    structural index alone in document order — no primary fetches. *)

val struct_stream_pages : t -> string -> unit -> Xasr.tuple array option
(** Page-at-a-time variant of {!struct_stream}. *)

val struct_entry_count : t -> int

val check_invariants : ?min_fill:float -> t -> unit
(** Run {!Xqdb_storage.Btree.check_invariants} over the primary and all
    secondary indexes, then rescan the primary and require the
    structural index to agree entry-for-entry with a from-scratch
    rebuild (same (out, level, parent) per element, equal counts) — the
    structural oracle the crash-recovery harness applies to every
    recovered document.
    @raise Xqdb_storage.Xqdb_error.Corrupt on any violation. *)

(* Index shape, for the cost model. *)
val primary_height : t -> int
val primary_leaf_pages : t -> int
val label_index_height : t -> int
val parent_index_height : t -> int
val struct_index_height : t -> int
val struct_leaf_pages : t -> int
