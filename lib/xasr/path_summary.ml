(* DataGuide-style path summary: one entry per distinct root-to-node
   label path, with occurrence count and summed element fan-out.  Paths
   are element-only; the virtual root and text nodes contribute none. *)

type entry = {
  count : int;
  child_sum : int;
}

(* Sorted by path string, so equality and serialization are canonical. *)
type t = (string * entry) list

type axis =
  | Child
  | Descendant

let empty = []

let path_of_segments segments = "/" ^ String.concat "/" segments

let paths t = t
let distinct t = List.length t

let count t path =
  match List.assoc_opt path t with
  | Some e -> e.count
  | None -> 0

let total_count t = List.fold_left (fun acc (_, e) -> acc + e.count) 0 t

let fanout t path =
  match List.assoc_opt path t with
  | Some e when e.count > 0 -> float_of_int e.child_sum /. float_of_int e.count
  | Some _ | None -> 0.0

let equal a b =
  List.equal
    (fun (p1, e1) (p2, e2) ->
      String.equal p1 p2 && e1.count = e2.count && e1.child_sum = e2.child_sum)
    a b

(* Segments are XML names: no '/', no whitespace — safe to split on. *)
let segments_of_path path =
  match String.split_on_char '/' path with
  | "" :: segs -> segs
  | segs -> segs

(* Does the label path [segs] (root-first) match the step chain?  The
   chain is anchored at both ends: the first step starts at the document
   root, the last step must name the final segment. *)
let rec chain_matches steps segs =
  match steps with
  | [] -> (match segs with [] -> true | _ :: _ -> false)
  | (Child, l) :: rest -> (
    match segs with
    | s :: tl when String.equal s l -> chain_matches rest tl
    | _ -> false)
  | (Descendant, l) :: rest ->
    let rec try_from segs =
      match segs with
      | [] -> false
      | s :: tl ->
        (String.equal s l && chain_matches rest tl) || try_from tl
    in
    try_from segs

let chain_card t steps =
  match steps with
  | [] -> 0
  | _ :: _ ->
    List.fold_left
      (fun acc (path, e) ->
        if chain_matches steps (segments_of_path path) then acc + e.count else acc)
      0 t

(* Every element's path ends with its own label; its ancestors labeled
   [anc] are exactly the occurrences of [anc] in the proper prefix.
   Summing count * occurrences over paths ending in [desc] yields the
   exact number of (ancestor, descendant) element pairs. *)
let desc_pair_card t ~anc ~desc =
  List.fold_left
    (fun acc (path, e) ->
      match List.rev (segments_of_path path) with
      | last :: prefix_rev when String.equal last desc ->
        let occurrences =
          List.fold_left
            (fun n s -> if String.equal s anc then n + 1 else n)
            0 prefix_rev
        in
        acc + (e.count * occurrences)
      | _ -> acc)
    0 t

let child_pair_card t ~parent ~child =
  List.fold_left
    (fun acc (path, e) ->
      match List.rev (segments_of_path path) with
      | last :: up :: _ when String.equal last child && String.equal up parent ->
        acc + e.count
      | _ -> acc)
    0 t

(* --- serialization ------------------------------------------------------- *)

(* One "path count child_sum" line per entry; paths contain no
   whitespace, so Scanf round-trips them. *)
let serialize t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, e) ->
      Buffer.add_string buf (Printf.sprintf "%s %d %d\n" path e.count e.child_sum))
    t;
  Buffer.contents buf

let deserialize s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.equal line "" then None
         else
           Some
             (Scanf.sscanf line "%s %d %d" (fun path count child_sum ->
                  (path, { count; child_sum }))))

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf (path, e) ->
      Format.fprintf ppf "  %-32s %d (fanout %.2f)" path e.count (fanout t path))
    ppf t

(* --- builder ------------------------------------------------------------- *)

module Builder = struct
  type summary = t

  type t = {
    counts : (string, int) Hashtbl.t;
    child_sums : (string, int) Hashtbl.t;
  }

  let create () = { counts = Hashtbl.create 64; child_sums = Hashtbl.create 64 }

  let bump tbl key =
    let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
    Hashtbl.replace tbl key (n + 1)

  let add_element_path b segments =
    (match segments with
    | [] -> invalid_arg "Path_summary.Builder.add_element_path: empty path"
    | _ :: _ -> ());
    bump b.counts (path_of_segments segments);
    match List.rev segments with
    | _ :: (_ :: _ as parent_rev) ->
      bump b.child_sums (path_of_segments (List.rev parent_rev))
    | _ -> ()

  let finish b : summary =
    Hashtbl.fold
      (fun path count acc ->
        let child_sum =
          match Hashtbl.find_opt b.child_sums path with Some n -> n | None -> 0
        in
        (path, { count; child_sum }) :: acc)
      b.counts []
    |> List.sort (fun (p1, _) (p2, _) -> String.compare p1 p2)
end

(* Rebuild from a document-order tuple cursor (ascending [in]), e.g.
   [Node_store.scan_all]: the interval stack mirrors the shredder's
   open-tag stack, so the result must equal the incrementally built
   summary — the QCheck equivalence oracle. *)
let of_scan next =
  let b = Builder.create () in
  (* Open-element stack, innermost first: (label, nout). *)
  let stack = ref [] in
  let rec pop_closed nin =
    match !stack with
    | (_, nout) :: rest when nout < nin ->
      stack := rest;
      pop_closed nin
    | _ -> ()
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some t ->
      pop_closed t.Xasr.nin;
      (match t.Xasr.ntype with
      | Xasr.Root | Xasr.Text -> ()
      | Xasr.Element ->
        let segments = List.rev (t.Xasr.value :: List.map fst !stack) in
        Builder.add_element_path b segments;
        stack := (t.Xasr.value, t.Xasr.nout) :: !stack);
      loop ()
  in
  loop ();
  Builder.finish b
