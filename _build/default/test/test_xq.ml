(* Tests for the XQ front end: parser, printer, checker, evaluator. *)

open Xqdb_xq.Xq_ast
module Parser = Xqdb_xq.Xq_parser
module Print = Xqdb_xq.Xq_print
module Check = Xqdb_xq.Xq_check
module Eval = Xqdb_xq.Xq_eval
module Doc = Xqdb_xml.Xml_doc
module Xml_parser = Xqdb_xml.Xml_parser

let query = Alcotest.testable (fun ppf q -> Print.pp_query ppf q) equal_query

(* --- parser ------------------------------------------------------------- *)

let test_parse_atoms () =
  Alcotest.check query "empty" Empty (Parser.parse "()");
  Alcotest.check query "variable" (Var "x") (Parser.parse "$x");
  Alcotest.check query "root variable" (Var root_var) (Parser.parse "$root");
  Alcotest.check query "text constructor" (Text_lit "hi") (Parser.parse {|text { "hi" }|});
  Alcotest.check query "string escape" (Text_lit {|say "hi"|})
    (Parser.parse {|text { "say ""hi""" }|})

let test_parse_paths () =
  Alcotest.check query "child step" (Path ("x", Child, Name "a")) (Parser.parse "$x/a");
  Alcotest.check query "descendant step" (Path ("x", Descendant, Name "a"))
    (Parser.parse "$x//a");
  Alcotest.check query "star" (Path ("x", Child, Star)) (Parser.parse "$x/*");
  Alcotest.check query "text test" (Path ("x", Child, Text_test)) (Parser.parse "$x/text()");
  Alcotest.check query "explicit axes" (Path ("x", Descendant, Name "a"))
    (Parser.parse "$x/descendant::a");
  Alcotest.check query "root path" (Path (root_var, Child, Name "a")) (Parser.parse "/a");
  Alcotest.check query "root descendant" (Path (root_var, Descendant, Name "a"))
    (Parser.parse "//a")

let test_parse_compound () =
  Alcotest.check query "for loop"
    (For ("y", "x", Child, Name "a", Var "y"))
    (Parser.parse "for $y in $x/a return $y");
  Alcotest.check query "conditional with else"
    (If (True, Var "x"))
    (Parser.parse "if (true()) then $x else ()");
  Alcotest.check query "conditional without else"
    (If (True, Var "x"))
    (Parser.parse "if (true()) then $x");
  Alcotest.check query "sequence"
    (Seq (Var "x", Seq (Empty, Var "y")))
    (Parser.parse "$x, (), $y");
  Alcotest.check query "constructor with brace content"
    (Constr ("a", Var "x"))
    (Parser.parse "<a>{ $x }</a>");
  Alcotest.check query "self-closing constructor" (Constr ("a", Empty)) (Parser.parse "<a/>");
  Alcotest.check query "literal text content"
    (Constr ("a", Text_lit "hi"))
    (Parser.parse "<a>hi</a>");
  Alcotest.check query "mixed constructor content"
    (Constr ("a", Seq (Text_lit "n: ", Constr ("b", Var "x"))))
    (Parser.parse "<a>n: <b>{ $x }</b></a>")

let test_parse_conditions () =
  let parse_cond s =
    match Parser.parse (Printf.sprintf "if (%s) then () else ()" s) with
    | If (c, Empty) -> c
    | _ -> Alcotest.fail "expected a conditional"
  in
  Alcotest.(check bool) "eq vars" true (parse_cond "$x = $y" = Eq_vars ("x", "y"));
  Alcotest.(check bool) "eq const" true (parse_cond {|$x = "s"|} = Eq_const ("x", "s"));
  Alcotest.(check bool) "precedence: and binds tighter" true
    (parse_cond "true() or true() and not(true())" = Or (True, And (True, Not True)));
  Alcotest.(check bool) "some" true
    (parse_cond "some $t in $x/text() satisfies true()"
     = Some_ ("t", "x", Child, Text_test, True))

let test_multistep_desugaring () =
  Alcotest.check query "two-step path becomes a for"
    (For ("#g1", root_var, Child, Name "a", Path ("#g1", Child, Name "b")))
    (Parser.parse "/a/b");
  (match Parser.parse "for $y in $x/a//b return $y" with
   | For (t, "x", Child, Name "a", For ("y", t', Descendant, Name "b", Var "y")) ->
     Alcotest.(check string) "fresh variable threads through" t t'
   | q -> Alcotest.failf "unexpected desugaring: %s" (Print.to_string q));
  (match Parser.parse "if (some $t in $x/a/text() satisfies true()) then () else ()" with
   | If (Some_ (_, "x", Child, Name "a", Some_ ("t", _, Child, Text_test, True)), Empty) -> ()
   | q -> Alcotest.failf "unexpected some desugaring: %s" (Print.to_string q))

let test_parse_errors () =
  let expect_error msg input =
    match Parser.parse input with
    | q -> Alcotest.failf "%s: parsed as %s" msg (Print.to_string q)
    | exception Parser.Parse_error _ -> ()
  in
  expect_error "else must be empty" "if (true()) then $x else $y";
  expect_error "for needs a path" "for $y in $x return $y";
  expect_error "mismatched constructor" "<a>{ () }</b>";
  expect_error "trailing input" "$x $y";
  expect_error "unterminated string" {|text { "abc }|}

(* Random input never crashes the query parser with anything but
   Parse_error. *)
let xq_parser_total =
  QCheck2.Test.make ~name:"query parser is total" ~count:500
    QCheck2.Gen.(string_size ~gen:(oneofa [|'$'; '/'; 'a'; 'x'; '<'; '>'; '{'; '}'; '('; ')'; '"'; '='; ','; ' '; 'f'; 'o'; 'r'; 'i'; 'n'|]) (int_bound 40))
    (fun junk ->
      match Parser.parse junk with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

(* --- printer ------------------------------------------------------------- *)

let print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse round trip" ~count:500 Test_support.Gen.xq_gen
    (fun q -> equal_query q (Parser.parse (Print.to_string q)))

let test_print_examples () =
  let roundtrip s = Print.to_string (Parser.parse s) in
  Alcotest.(check string) "example 2 survives printing"
    "<names>{ for $j in /journal return for $n in $j//name return $n }</names>"
    (roundtrip "<names>{ for $j in /journal return for $n in $j//name return $n }</names>")

(* --- checker ------------------------------------------------------------- *)

let test_checker () =
  let check_of s = Check.check (Parser.parse s) in
  Alcotest.(check bool) "good query" true (check_of "for $x in //a return $x" = Ok ());
  Alcotest.(check bool) "unbound" true
    (check_of "for $x in //a return $y" = Error (Check.Unbound_variable "y"));
  Alcotest.(check bool) "shadowing rejected" true
    (check_of "for $x in //a return for $x in //b return $x"
     = Error (Check.Shadowed_variable "x"));
  Alcotest.(check bool) "root rebind rejected" true
    (check_of "for $root in //a return ()" = Error Check.Root_rebound);
  Alcotest.(check bool) "some binding scoped to condition" true
    (check_of "if (some $t in //a satisfies true()) then () else ()" = Ok ());
  Alcotest.(check bool) "some var does not escape" true
    (check_of "(if (some $t in //a satisfies true()) then () else ()), $t"
     = Error (Check.Unbound_variable "t"));
  Alcotest.(check bool) "sibling loops may reuse names" true
    (check_of "(for $x in //a return $x), (for $x in //b return $x)" = Ok ())

let test_ast_utils () =
  let q =
    Parser.parse
      "for $x in //a return if (some $t in $x/text() satisfies true()) then $x else ()"
  in
  Alcotest.(check (list string)) "bound vars" ["x"; "t"] (bound_vars q);
  Alcotest.(check (list string)) "free vars" [] (free_vars q);
  Alcotest.(check (list string)) "free vars of open query" ["z"]
    (free_vars (Parser.parse "$z/a"));
  Alcotest.(check bool) "query size positive" true (query_size q > 3);
  (match q with
   | For (_, _, _, _, If (c, _)) ->
     Alcotest.(check (list string)) "cond free vars" ["x"] (cond_free_vars c)
   | _ -> Alcotest.fail "unexpected query shape");
  let c2 =
    Some_ ("t", "a", Child, Text_test, And (Eq_vars ("t", "b"), Not (Eq_const ("c", "s"))))
  in
  Alcotest.(check (list string)) "cond free vars excluding bound" ["a"; "b"; "c"]
    (cond_free_vars c2)

(* --- milestone 1 evaluator ------------------------------------------------ *)

let journal =
  "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>"

let eval_str doc_src query_src =
  let doc = Doc.of_forest (Xml_parser.parse_forest doc_src) in
  Eval.eval_string doc (Parser.parse query_src)

let test_eval_basics () =
  Alcotest.(check string) "empty" "" (eval_str journal "()");
  Alcotest.(check string) "construction" "<a><b/></a>" (eval_str journal "<a><b/></a>");
  Alcotest.(check string) "path" "<name>Ana</name><name>Bob</name>"
    (eval_str journal "for $a in /journal/authors return $a/name");
  Alcotest.(check string) "descendant text" "AnaBobDB" (eval_str journal "//text()");
  Alcotest.(check string) "star" "<name>Ana</name><name>Bob</name>"
    (eval_str journal "for $a in //authors return $a/*");
  Alcotest.(check string) "document order preserved" "<b>1</b><b>2</b><b>3</b>"
    (eval_str "<r><b>1</b><x><b>2</b></x><b>3</b></r>" "//b")

let test_eval_conditions () =
  Alcotest.(check string) "eq const" "<hit/>"
    (eval_str journal
       "if (some $n in //name satisfies (some $t in $n/text() satisfies $t = \"Ana\")) \
        then <hit/> else ()");
  Alcotest.(check string) "eq vars (same binding)" "<y/>"
    (eval_str journal "if (some $t in //text() satisfies $t = $t) then <y/> else ()");
  Alcotest.(check string) "not" "<none/>"
    (eval_str journal "if (not(some $q in //query satisfies true())) then <none/> else ()");
  Alcotest.(check string) "and short-circuits to false" ""
    (eval_str journal "if (true() and (some $q in //query satisfies true())) then <q/> else ()");
  Alcotest.(check string) "or" "<q/>"
    (eval_str journal "if ((some $q in //query satisfies true()) or true()) then <q/> else ()")

let test_eval_type_errors () =
  let expect_type_error q =
    let doc = Doc.of_forest (Xml_parser.parse_forest journal) in
    match Eval.eval doc (Parser.parse q) with
    | _ -> Alcotest.fail "expected a type error"
    | exception Eval.Type_error _ -> ()
  in
  (* The paper: comparisons require text nodes. *)
  expect_type_error "for $n in //name return if ($n = \"Ana\") then $n else ()";
  expect_type_error
    "for $n in //name return for $m in //title return if ($n = $m) then $n else ()";
  expect_type_error "if ($root = \"x\") then () else ()"

let test_eval_var_output () =
  Alcotest.(check string) "element variable copies subtree" "<title>DB</title>"
    (eval_str journal "for $t in //title return $t");
  Alcotest.(check string) "text variable copies text" "Ana"
    (eval_str journal
       "for $n in //name return if (some $t in $n/text() satisfies $t = \"Ana\") then \
        (for $u in $n/text() return $u) else ()");
  Alcotest.(check string) "root variable emits document" journal (eval_str journal "$root")

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "xq"
    [ ( "parser",
        [ Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "paths" `Quick test_parse_paths;
          Alcotest.test_case "compound" `Quick test_parse_compound;
          Alcotest.test_case "conditions" `Quick test_parse_conditions;
          Alcotest.test_case "multi-step desugaring" `Quick test_multistep_desugaring;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          prop xq_parser_total ] );
      ( "printer",
        [ Alcotest.test_case "examples" `Quick test_print_examples;
          prop print_parse_roundtrip ] );
      ( "checker",
        [ Alcotest.test_case "scoping" `Quick test_checker;
          Alcotest.test_case "ast utilities" `Quick test_ast_utils ] );
      ( "evaluator",
        [ Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "conditions" `Quick test_eval_conditions;
          Alcotest.test_case "type errors" `Quick test_eval_type_errors;
          Alcotest.test_case "variable output" `Quick test_eval_var_output ] ) ]
