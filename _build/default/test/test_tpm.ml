(* Tests for the TPM algebra: rewriting, merging, redundant-relation
   dropping and the figure-style pretty printer. *)

module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Print = Xqdb_tpm.Tpm_print
module Parser = Xqdb_xq.Xq_parser

let parse = Parser.parse
let rewrite ?config s = Rewrite.query ?config (parse s)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let example2 = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>"

(* --- structural rewriting ------------------------------------------------ *)

let rec relfors = function
  | A.Empty | A.Text_out _ | A.Out_var _ -> []
  | A.Constr (_, t) | A.Guard (_, t) -> relfors t
  | A.Seq (t1, t2) -> relfors t1 @ relfors t2
  | A.Relfor r -> r :: relfors r.A.body

let test_child_rule () =
  match rewrite "for $y in $x/a return $y" with
  | A.Relfor { vars = ["y"]; source; body = A.Out_var "y" } ->
    Alcotest.(check (list string)) "one relation" ["Y"] source.A.rels;
    Alcotest.(check int) "three predicates" 3 (List.length source.A.preds);
    Alcotest.(check bool) "parent_in equated to the outer variable" true
      (List.exists
         (fun (p : A.pred) ->
           p.A.op = A.Eq
           && p.A.left = A.Ocol (A.col "Y" A.Parent_in)
           && p.A.right = A.Oextern_in "x")
         source.A.preds)
  | t -> Alcotest.failf "unexpected rewrite: %s" (Print.to_string t)

let test_descendant_rules () =
  (* Carry-out mode: a single relation constrained by the vartuple. *)
  (match rewrite "for $y in $x//a return $y" with
   | A.Relfor { source; _ } ->
     Alcotest.(check (list string)) "carry-out: one relation" ["Y"] source.A.rels;
     Alcotest.(check bool) "uses out($x)" true (List.mem "x" (A.psx_externs source))
   | t -> Alcotest.failf "unexpected: %s" (Print.to_string t));
  (* Naive mode: the paper's two-relation self-join. *)
  match rewrite ~config:Rewrite.naive "for $y in $x//a return $y" with
  | A.Relfor { source; _ } ->
    Alcotest.(check (list string)) "naive: two relations" ["Y1"; "Y"] source.A.rels
  | t -> Alcotest.failf "unexpected: %s" (Print.to_string t)

let test_root_is_constant () =
  match rewrite "for $j in /journal return $j" with
  | A.Relfor { source; _ } ->
    Alcotest.(check bool) "parent_in = 1 appears" true
      (List.exists
         (fun (p : A.pred) -> p.A.right = A.Oint 1 || p.A.left = A.Oint 1)
         source.A.preds)
  | t -> Alcotest.failf "unexpected: %s" (Print.to_string t)

let test_if_rewriting () =
  (* Rewritable conditions become nullary relfors. *)
  (match rewrite "if (some $t in $x/text() satisfies true()) then <y/> else ()" with
   | A.Relfor { vars = []; source; body = A.Constr ("y", A.Empty) } ->
     Alcotest.(check int) "nullary bindings" 0 (List.length source.A.bindings)
   | t -> Alcotest.failf "unexpected: %s" (Print.to_string t));
  (* true() alone is the empty PSX. *)
  (match rewrite "if (true()) then <y/> else ()" with
   | A.Relfor { vars = []; source; _ } ->
     Alcotest.(check (list string)) "no relations" [] source.A.rels
   | t -> Alcotest.failf "unexpected: %s" (Print.to_string t));
  (* or / not fall back to guards, as in the paper. *)
  (match rewrite "if (not(true())) then <y/> else ()" with
   | A.Guard (_, A.Constr ("y", A.Empty)) -> ()
   | t -> Alcotest.failf "not should guard: %s" (Print.to_string t));
  match rewrite "if (true() or true()) then <y/> else ()" with
  | A.Guard _ -> ()
  | t -> Alcotest.failf "or should guard: %s" (Print.to_string t)

let test_eq_rewriting () =
  (* A comparison on a some-bound variable needs no extra relation. *)
  (match rewrite "if (some $t in $x/text() satisfies $t = \"s\") then <y/> else ()" with
   | A.Relfor { source; _ } ->
     Alcotest.(check int) "one relation for the chain" 1 (List.length source.A.rels)
   | t -> Alcotest.failf "unexpected: %s" (Print.to_string t));
  (* A comparison on an outer variable pins a copy of XASR. *)
  match rewrite "for $t in //text() return if ($t = \"s\") then <y/> else ()" with
  | A.Relfor { body = A.Relfor { source; _ }; _ } ->
    Alcotest.(check int) "pinned copy" 1 (List.length source.A.rels);
    Alcotest.(check bool) "pinned via in = $t" true
      (List.exists (fun (p : A.pred) -> p.A.right = A.Oextern_in "t") source.A.preds)
  | t -> Alcotest.failf "unexpected: %s" (Print.to_string t)

(* --- merging --------------------------------------------------------------- *)

let test_merge_example_3_4 () =
  let unmerged = rewrite ~config:Rewrite.naive example2 in
  Alcotest.(check int) "two relfors before merging" 2 (A.relfor_count unmerged);
  let merged = Merge.merge unmerged in
  Alcotest.(check int) "one relfor after merging" 1 (A.relfor_count merged);
  match relfors merged with
  | [{ A.vars = ["j"; "n"]; source; _ }] ->
    (* Example 4: N1 was dropped, leaving XASR[J] and XASR[N]. *)
    Alcotest.(check (list string)) "relations of Figure 4" ["J"; "N"] source.A.rels;
    Alcotest.(check int) "bindings" 2 (List.length source.A.bindings);
    (* All externals were substituted by columns. *)
    Alcotest.(check (list string)) "no externals remain" [] (A.psx_externs source)
  | _ -> Alcotest.fail "expected a single merged relfor"

let test_merge_blocked_by_constructor () =
  (* The paper's counterexample: a constructor between the loops must
     keep them separate (empty groups still construct). *)
  let t =
    Merge.merge
      (rewrite
         "<names>{ for $j in /journal return <j>{ for $n in $j//name return $n }</j> }</names>")
  in
  Alcotest.(check int) "still two relfors" 2 (A.relfor_count t)

let test_merge_example5 () =
  let t =
    Merge.merge
      (rewrite ~config:Rewrite.naive
         "<names>{ for $j in /journal return if (some $t in $j//text() satisfies true()) \
          then (for $n in $j//name return $n) else () }</names>")
  in
  Alcotest.(check int) "all three relfors merge" 1 (A.relfor_count t);
  match relfors t with
  | [{ A.source; _ }] ->
    (* J, T (existential) and N; the T1/N1 copies were dropped. *)
    Alcotest.(check (list string)) "relations" ["J"; "T"; "N"] source.A.rels
  | _ -> Alcotest.fail "expected one relfor"

let test_guard_blocks_merging () =
  let t =
    Merge.merge
      (rewrite
         "for $x in //a return if (not(some $t in $x/text() satisfies true())) then \
          (for $y in $x/b return $y) else ()")
  in
  Alcotest.(check int) "guard keeps relfors apart" 2 (A.relfor_count t);
  Alcotest.(check int) "one guard" 1 (A.guard_count t)

(* Merged relfors have pairwise distinct aliases. *)
let aliases_distinct =
  QCheck2.Test.make ~name:"merged relfor aliases are pairwise distinct" ~count:300
    Test_support.Gen.xq_gen (fun q ->
      let merged = Merge.merge (Rewrite.query q) in
      List.for_all
        (fun (r : A.relfor) ->
          let rels = r.A.source.A.rels in
          List.length rels = List.length (List.sort_uniq compare rels))
        (relfors merged))

let merge_idempotent =
  QCheck2.Test.make ~name:"merging is idempotent" ~count:300 Test_support.Gen.xq_gen
    (fun q ->
      let once = Merge.merge (Rewrite.query q) in
      A.equal (Merge.merge once) once)

let merge_reduces_relfors =
  QCheck2.Test.make ~name:"merging never increases relfor count" ~count:300
    Test_support.Gen.xq_gen (fun q ->
      let t = Rewrite.query q in
      A.relfor_count (Merge.merge t) <= A.relfor_count t)

(* The bindings of every relfor match its vars, in order. *)
let bindings_match_vars =
  QCheck2.Test.make ~name:"relfor vars match PSX bindings" ~count:300
    Test_support.Gen.xq_gen (fun q ->
      List.for_all
        (fun (r : A.relfor) ->
          r.A.vars = List.map (fun (b : A.binding) -> b.A.var) r.A.source.A.bindings)
        (relfors (Merge.merge (Rewrite.query q))))

(* --- dropping redundant self-join relations ---------------------------------- *)

let test_drop_redundant () =
  (* R2 pinned to R1.in by equality: droppable, predicates transfer. *)
  let psx =
    { A.bindings = [{ A.var = "x"; brel = "R1" }];
      preds =
        [ { A.left = A.Ocol (A.col "R2" A.In); op = A.Eq; right = A.Ocol (A.col "R1" A.In) };
          { A.left = A.Ocol (A.col "R2" A.Value); op = A.Eq; right = A.Ostr "a" } ];
      rels = ["R1"; "R2"] }
  in
  let dropped = A.drop_redundant_self_rels psx in
  Alcotest.(check (list string)) "R2 dropped" ["R1"] dropped.A.rels;
  Alcotest.(check bool) "value predicate transferred to R1" true
    (List.exists
       (fun (p : A.pred) -> p.A.left = A.Ocol (A.col "R1" A.Value))
       dropped.A.preds);
  (* A binding relation is never dropped: with the binding on R2, the
     pin is read the other way round and R1 is the redundant copy. *)
  let psx_bound = { psx with A.bindings = [{ A.var = "x"; brel = "R2" }] } in
  Alcotest.(check (list string)) "binding relation kept" ["R2"]
    (A.drop_redundant_self_rels psx_bound).A.rels

let test_drop_redundant_extern_pin () =
  (* Pinned to an external: only in/out columns can transfer. *)
  let pin field =
    { A.bindings = [];
      preds =
        [ { A.left = A.Ocol (A.col "R" A.In); op = A.Eq; right = A.Oextern_in "x" };
          { A.left = A.Ocol (A.col "R" field); op = A.Lt; right = A.Oint 9 } ];
      rels = ["R"] }
  in
  Alcotest.(check (list string)) "in/out-only usage drops" []
    (A.drop_redundant_self_rels (pin A.Out)).A.rels;
  Alcotest.(check (list string)) "value usage blocks dropping" ["R"]
    (A.drop_redundant_self_rels (pin A.Value)).A.rels

(* --- pretty printer ----------------------------------------------------------- *)

let test_figure_rendering () =
  let merged = Merge.merge (rewrite ~config:Rewrite.naive example2) in
  let rendered = Print.to_string merged in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " appears") true (contains rendered fragment))
    [ "relfor ($j, $n)"; "π[J.in, N.in]"; "J.parent_in = 1"; "J.value = journal";
      "J.in < N.in"; "N.out < J.out"; "N.value = name"; "XASR[J], XASR[N]" ]

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "tpm"
    [ ( "rewriting",
        [ Alcotest.test_case "child rule" `Quick test_child_rule;
          Alcotest.test_case "descendant rules" `Quick test_descendant_rules;
          Alcotest.test_case "root constant" `Quick test_root_is_constant;
          Alcotest.test_case "if rules and guards" `Quick test_if_rewriting;
          Alcotest.test_case "equality rules" `Quick test_eq_rewriting ] );
      ( "merging",
        [ Alcotest.test_case "examples 3-4" `Quick test_merge_example_3_4;
          Alcotest.test_case "constructor blocks merging" `Quick
            test_merge_blocked_by_constructor;
          Alcotest.test_case "example 5" `Quick test_merge_example5;
          Alcotest.test_case "guards block merging" `Quick test_guard_blocks_merging;
          prop aliases_distinct;
          prop merge_idempotent;
          prop merge_reduces_relfors;
          prop bindings_match_vars ] );
      ( "redundant relations",
        [ Alcotest.test_case "column pins" `Quick test_drop_redundant;
          Alcotest.test_case "external pins" `Quick test_drop_redundant_extern_pin ] );
      ( "printing",
        [ Alcotest.test_case "figure 4 fragments" `Quick test_figure_rendering ] ) ]
