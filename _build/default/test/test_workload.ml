(* Tests for the workload generators: determinism, scale, and the
   structural properties the experiments rely on. *)

module W = Xqdb_workload
module Tree = Xqdb_xml.Xml_tree

let test_figure2 () =
  Alcotest.(check string) "figure 2 document"
    "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>"
    W.Docs.figure2_string;
  Alcotest.(check bool) "tiny document parses back" true
    (Tree.equal W.Docs.tiny (Xqdb_xml.Xml_parser.parse W.Docs.tiny_string))

let test_dblp_determinism () =
  let a = W.Dblp_gen.generate W.Dblp_gen.default in
  let b = W.Dblp_gen.generate W.Dblp_gen.default in
  Alcotest.(check bool) "same seed, same document" true (Tree.equal a b);
  let c = W.Dblp_gen.generate { W.Dblp_gen.default with W.Dblp_gen.seed = 7 } in
  Alcotest.(check bool) "different seed, different document" false (Tree.equal a c)

let test_dblp_shape () =
  let doc = W.Dblp_gen.generate (W.Dblp_gen.scaled 300) in
  (* Shallow: max depth 3 below the dblp element (publication/field/text). *)
  Alcotest.(check int) "shallow" 4 (Tree.depth doc);
  let labels = Tree.count_labels [doc] in
  let count l = try List.assoc l labels with Not_found -> 0 in
  Alcotest.(check int) "article count" 200 (count "article");
  Alcotest.(check int) "inproceedings count" 100 (count "inproceedings");
  (* The skew of Example 6: many authors, few volumes. *)
  Alcotest.(check bool) "many authors" true (count "author" > 5 * count "volume");
  Alcotest.(check bool) "some volumes" true (count "volume" > 0);
  (* Only articles carry volumes. *)
  let rec check_volumes_under_articles = function
    | Tree.Text _ -> ()
    | Tree.Elem (label, children) ->
      List.iter
        (fun child ->
          (match child with
           | Tree.Elem ("volume", _) ->
             Alcotest.(check string) "volume parent" "article" label
           | _ -> ());
          check_volumes_under_articles child)
        children
  in
  check_volumes_under_articles doc

let test_dblp_scaling () =
  let small = Tree.size (W.Dblp_gen.generate (W.Dblp_gen.scaled 50)) in
  let large = Tree.size (W.Dblp_gen.generate (W.Dblp_gen.scaled 500)) in
  Alcotest.(check bool) "size grows with scale" true (large > 5 * small)

let test_treebank_shape () =
  let doc = W.Treebank_gen.generate (W.Treebank_gen.scaled 60) in
  Alcotest.(check bool) "deep nesting" true (Tree.depth doc > 12);
  let labels = Tree.count_labels [doc] in
  (* 60 top-level sentences; SBAR recursion adds nested S elements. *)
  (match doc with
   | Tree.Elem ("treebank", sentences) ->
     Alcotest.(check int) "top-level sentences" 60 (List.length sentences)
   | _ -> Alcotest.fail "expected a treebank element");
  Alcotest.(check bool) "nested sentences exist" true (List.assoc "S" labels > 60);
  Alcotest.(check bool) "grammar labels present" true
    (List.mem_assoc "NP" labels && List.mem_assoc "VP" labels && List.mem_assoc "NN" labels)

let test_treebank_determinism () =
  let a = W.Treebank_gen.generate W.Treebank_gen.default in
  let b = W.Treebank_gen.generate W.Treebank_gen.default in
  Alcotest.(check bool) "same seed, same trees" true (Tree.equal a b)

let () =
  Alcotest.run "workload"
    [ ( "fixed documents", [Alcotest.test_case "figure 2 and tiny" `Quick test_figure2] );
      ( "dblp",
        [ Alcotest.test_case "determinism" `Quick test_dblp_determinism;
          Alcotest.test_case "shape" `Quick test_dblp_shape;
          Alcotest.test_case "scaling" `Quick test_dblp_scaling ] );
      ( "treebank",
        [ Alcotest.test_case "shape" `Quick test_treebank_shape;
          Alcotest.test_case "determinism" `Quick test_treebank_determinism ] ) ]
