test/support/gen.ml: List Printf QCheck2 Xqdb_xml Xqdb_xq
