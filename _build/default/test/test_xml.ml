(* Tests for the XML substrate: parser, printer, labeled documents. *)

module Tree = Xqdb_xml.Xml_tree
module Parser = Xqdb_xml.Xml_parser
module Print = Xqdb_xml.Xml_print
module Doc = Xqdb_xml.Xml_doc

let check_parse msg input expected =
  Alcotest.(check string) msg expected (Print.forest_to_string (Parser.parse_forest input))

(* --- parser ------------------------------------------------------------- *)

let test_basic () =
  check_parse "element with text" "<a>hi</a>" "<a>hi</a>";
  check_parse "nested" "<a><b/><c>x</c></a>" "<a><b/><c>x</c></a>";
  check_parse "self-closing" "<a/>" "<a/>";
  check_parse "two top-level nodes" "<a/><b/>" "<a/><b/>";
  check_parse "mixed content" "<a>one<b/>two</a>" "<a>one<b/>two</a>"

let test_whitespace () =
  check_parse "inter-element whitespace stripped" "<a>\n  <b/>\n  <c/>\n</a>" "<a><b/><c/></a>";
  check_parse "significant text kept" "<a> x </a>" "<a> x </a>";
  let forest = Parser.parse_forest ~strip_ws:false "<a> <b/> </a>" in
  Alcotest.(check string) "strip_ws:false keeps blanks" "<a> <b/> </a>"
    (Print.forest_to_string forest)

let test_entities () =
  check_parse "predefined entities" "<a>&lt;&gt;&amp;&quot;&apos;</a>" "<a>&lt;&gt;&amp;\"'</a>";
  check_parse "decimal reference" "<a>&#65;</a>" "<a>A</a>";
  check_parse "hex reference" "<a>&#x41;</a>" "<a>A</a>";
  (* Multi-byte code points survive a round trip. *)
  let forest = Parser.parse_forest "<a>&#228;</a>" in
  (match forest with
   | [Tree.Elem ("a", [Tree.Text s])] ->
     Alcotest.(check string) "utf-8 encoding of U+00E4" "\xc3\xa4" s
   | _ -> Alcotest.fail "unexpected shape")

let test_skipped_markup () =
  check_parse "attributes skipped" "<a x=\"1\" y='2'>t</a>" "<a>t</a>";
  check_parse "comments skipped" "<a><!-- hidden -->t</a>" "<a>t</a>";
  check_parse "xml declaration skipped" "<?xml version=\"1.0\"?><a/>" "<a/>";
  check_parse "processing instruction skipped" "<a><?php echo ?>t</a>" "<a>t</a>";
  check_parse "doctype skipped" "<!DOCTYPE dblp SYSTEM \"dblp.dtd\"><a/>" "<a/>";
  check_parse "cdata becomes text" "<a><![CDATA[<raw>&stuff]]></a>" "<a>&lt;raw&gt;&amp;stuff</a>"

let expect_error msg input =
  match Parser.parse_forest input with
  | _ -> Alcotest.fail (msg ^ ": expected a parse error")
  | exception Parser.Parse_error _ -> ()

let test_errors () =
  expect_error "unclosed tag" "<a><b></a>";
  expect_error "stray end tag" "</a>";
  expect_error "unterminated start" "<a";
  expect_error "unterminated entity" "<a>&amp</a>";
  expect_error "unterminated cdata" "<a><![CDATA[x</a>";
  expect_error "garbage attribute" "<a =x>t</a>";
  (match Parser.parse "<a/><b/>" with
   | _ -> Alcotest.fail "parse should reject multiple roots"
   | exception Parser.Parse_error _ -> ())

let test_events () =
  let events = ref [] in
  Parser.iter_events "<a>x<b/></a>" (fun e -> events := e :: !events);
  let rendered =
    List.rev_map
      (function
        | Parser.Start_tag l -> "<" ^ l
        | Parser.End_tag l -> ">" ^ l
        | Parser.Text t -> "t:" ^ t)
      !events
  in
  Alcotest.(check (list string)) "event stream" ["<a"; "t:x"; "<b"; ">b"; ">a"] rendered

(* Random bytes never crash the parser with anything but Parse_error. *)
let parser_total =
  QCheck2.Test.make ~name:"parser is total (Parse_error or result)" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_bound 60))
    (fun junk ->
      match Parser.parse_forest junk with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

(* Angle-bracket-heavy soup is the interesting region. *)
let parser_total_soup =
  QCheck2.Test.make ~name:"parser is total on tag soup" ~count:500
    QCheck2.Gen.(string_size ~gen:(oneofa [|'<'; '>'; '/'; 'a'; 'b'; '&'; ';'; '!'; '-'; '['; ']'; '?'; '"'; ' '|]) (int_bound 40))
    (fun junk ->
      match Parser.parse_forest junk with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

(* Round trip: print then reparse gives back the same forest. *)
let print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse round trip" ~count:300 Test_support.Gen.forest_gen
    (fun forest ->
      let printed = Print.forest_to_string forest in
      Tree.equal_forest forest (Parser.parse_forest printed))

(* --- tree utilities ------------------------------------------------------ *)

let test_tree_utils () =
  let t = Parser.parse "<a><b>x</b><b><c/></b></a>" in
  Alcotest.(check int) "size" 5 (Tree.size t);
  Alcotest.(check int) "depth" 3 (Tree.depth t);
  Alcotest.(check string) "text content" "x" (Tree.text_content t);
  Alcotest.(check (list (pair string int)))
    "label counts" [("a", 1); ("b", 2); ("c", 1)] (Tree.count_labels [t])

(* --- labeled documents --------------------------------------------------- *)

let figure2 = Xqdb_workload.Docs.figure2

let test_figure2_labels () =
  let doc = Doc.of_node figure2 in
  let labels =
    List.map (fun v -> (Doc.value doc v, Doc.nin doc v, Doc.nout doc v))
      (Doc.descendants doc (Doc.root doc))
  in
  Alcotest.(check (list (triple string int int)))
    "Figure 2 in/out numbering"
    [ ("journal", 2, 17); ("authors", 3, 12); ("name", 4, 7); ("Ana", 5, 6);
      ("name", 8, 11); ("Bob", 9, 10); ("title", 13, 16); ("DB", 14, 15) ]
    labels;
  Alcotest.(check int) "root in" 1 (Doc.nin doc (Doc.root doc));
  Alcotest.(check int) "root out" 18 (Doc.nout doc (Doc.root doc))

let test_doc_navigation () =
  let doc = Doc.of_node figure2 in
  let journal = Doc.node_by_in doc 2 in
  Alcotest.(check int) "children of journal" 2 (List.length (Doc.children doc journal));
  Alcotest.(check int) "descendants of journal" 7 (List.length (Doc.descendants doc journal));
  Alcotest.(check (option int)) "parent of journal" (Some 0) (Doc.parent doc journal);
  let ana = Doc.node_by_in doc 5 in
  Alcotest.(check int) "depth of Ana" 4 (Doc.depth doc ana);
  Alcotest.(check string) "to_tree round trip" (Print.to_string figure2)
    (Print.to_string (Doc.to_tree doc journal));
  (match Doc.node_by_in doc 99 with
   | _ -> Alcotest.fail "node_by_in should raise"
   | exception Not_found -> ())

(* Structural invariants of the labeling, on random forests. *)
let labeling_invariants =
  QCheck2.Test.make ~name:"in/out labeling invariants" ~count:300 Test_support.Gen.forest_gen
    (fun forest ->
      let doc = Doc.of_forest forest in
      let n = Doc.count doc in
      let ok = ref true in
      for v = 0 to n - 1 do
        (* in < out *)
        if Doc.nin doc v >= Doc.nout doc v then ok := false;
        (* children are strictly inside the parent's interval *)
        List.iter
          (fun c ->
            if not (Doc.nin doc v < Doc.nin doc c && Doc.nout doc c < Doc.nout doc v) then
              ok := false;
            if Doc.parent doc c <> Some v then ok := false)
          (Doc.children doc v);
        (* node_by_in inverts nin *)
        if Doc.node_by_in doc (Doc.nin doc v) <> v then ok := false
      done;
      (* every label value 1..nout(root) is used exactly once as in or out *)
      let seen = Array.make (Doc.nout doc 0 + 1) 0 in
      for v = 0 to n - 1 do
        seen.(Doc.nin doc v) <- seen.(Doc.nin doc v) + 1;
        seen.(Doc.nout doc v) <- seen.(Doc.nout doc v) + 1
      done;
      for i = 1 to Doc.nout doc 0 do
        if seen.(i) <> 1 then ok := false
      done;
      !ok)

let doc_tree_roundtrip =
  QCheck2.Test.make ~name:"of_forest/to_forest round trip" ~count:300
    Test_support.Gen.forest_gen (fun forest ->
      let doc = Doc.of_forest forest in
      Tree.equal_forest forest (Doc.to_forest doc (Doc.root doc)))

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "xml"
    [ ( "parser",
        [ Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "whitespace" `Quick test_whitespace;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "skipped markup" `Quick test_skipped_markup;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "events" `Quick test_events;
          prop parser_total;
          prop parser_total_soup;
          prop print_parse_roundtrip ] );
      ( "tree",
        [ Alcotest.test_case "utilities" `Quick test_tree_utils ] );
      ( "labeled documents",
        [ Alcotest.test_case "figure 2" `Quick test_figure2_labels;
          Alcotest.test_case "navigation" `Quick test_doc_navigation;
          prop labeling_invariants;
          prop doc_tree_roundtrip ] ) ]
