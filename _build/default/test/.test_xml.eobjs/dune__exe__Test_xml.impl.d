test/test_xml.ml: Alcotest Array List QCheck2 QCheck_alcotest Test_support Xqdb_workload Xqdb_xml
