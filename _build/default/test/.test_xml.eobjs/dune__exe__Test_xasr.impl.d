test/test_xasr.ml: Alcotest Format Fun List Option QCheck2 QCheck_alcotest String Test_support Xqdb_storage Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
