test/test_testbed.ml: Alcotest List String Xqdb_core Xqdb_testbed Xqdb_xq
