test/test_storage.ml: Alcotest Array Buffer Bytes Filename Int List Map Option Printf QCheck2 QCheck_alcotest Random String Sys Xqdb_storage
