test/test_xq.mli:
