test/test_tpm.ml: Alcotest List QCheck2 QCheck_alcotest String Test_support Xqdb_tpm Xqdb_xq
