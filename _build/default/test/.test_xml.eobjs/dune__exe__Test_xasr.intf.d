test/test_xasr.mli:
