test/test_physical.ml: Alcotest Array Bytes List Printf QCheck2 QCheck_alcotest String Xqdb_physical Xqdb_storage Xqdb_tpm Xqdb_workload Xqdb_xasr
