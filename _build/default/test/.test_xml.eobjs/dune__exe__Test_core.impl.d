test/test_core.ml: Alcotest Filename Lazy List QCheck2 QCheck_alcotest String Sys Test_support Xqdb_core Xqdb_optimizer Xqdb_tpm Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
