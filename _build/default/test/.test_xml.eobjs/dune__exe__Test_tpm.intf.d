test/test_tpm.mli:
