test/test_testbed.mli:
