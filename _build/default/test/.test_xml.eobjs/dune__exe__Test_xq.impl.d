test/test_xq.ml: Alcotest Printf QCheck2 QCheck_alcotest Test_support Xqdb_xml Xqdb_xq
