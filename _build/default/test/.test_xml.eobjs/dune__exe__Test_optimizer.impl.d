test/test_optimizer.ml: Alcotest List String Xqdb_optimizer Xqdb_physical Xqdb_storage Xqdb_testbed Xqdb_tpm Xqdb_workload Xqdb_xasr Xqdb_xq
