test/test_workload.ml: Alcotest List Xqdb_workload Xqdb_xml
