bin/xqdb.mli:
