bin/xqdb.ml: Arg Cmd Cmdliner Format List Printf String Sys Term Xqdb_core Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
