bin/testbed.mli:
