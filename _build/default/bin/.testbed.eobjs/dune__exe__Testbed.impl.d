bin/testbed.ml: Arg Cmd Cmdliner List Printf Term Xqdb_core Xqdb_testbed
