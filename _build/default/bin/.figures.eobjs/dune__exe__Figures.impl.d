bin/figures.ml: Array Format List Printf String Sys Xqdb_core Xqdb_storage Xqdb_testbed Xqdb_tpm Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
