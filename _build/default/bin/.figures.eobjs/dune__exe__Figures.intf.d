bin/figures.mli:
