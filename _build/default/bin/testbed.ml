(* The course's submission & test system, batch mode: run the public
   correctness tests for every engine preset on every testbed document,
   then the efficiency tests for the five Figure-7 engines. *)

open Cmdliner
module T = Xqdb_testbed

let correctness_only =
  Arg.(value & flag & info ["correctness-only"] ~doc:"Skip the efficiency tests.")

let efficiency_only =
  Arg.(value & flag & info ["efficiency-only"] ~doc:"Skip the correctness tests.")

let scale =
  Arg.(value & opt int 2500 & info ["scale"] ~docv:"N" ~doc:"DBLP scale for efficiency tests.")

let grade =
  Arg.(value & flag & info ["grade"] ~doc:"Also run the Section-3 grading demo course.")

let action correctness_only efficiency_only scale grade =
  let failed = ref false in
  if not efficiency_only then begin
    let outcomes = T.Correctness.run () in
    print_string (T.Correctness.summary outcomes);
    if T.Correctness.failures outcomes <> [] then failed := true
  end;
  if not correctness_only then begin
    let table = T.Efficiency.run ~scale () in
    print_newline ();
    print_string (T.Efficiency.render table)
  end;
  if grade then begin
    let module Config = Xqdb_core.Engine_config in
    let submissions =
      List.mapi
        (fun i config ->
          T.Grading.submission
            ~exam_points:(92 - (10 * i))
            (Printf.sprintf "team-%d" (i + 1))
            config)
        Config.figure7_engines
    in
    print_newline ();
    print_string (T.Grading.render (T.Grading.grade_course ~scale:250 submissions))
  end;
  if !failed then exit 1

let () =
  let info =
    Cmd.info "xqdb-testbed" ~doc:"Correctness and efficiency testbed for the XQ engines"
  in
  let term = Term.(const action $ correctness_only $ efficiency_only $ scale $ grade) in
  exit (Cmd.eval (Cmd.v info term))
