(* The Example 6 plan laboratory: build QP0, QP1 and QP2 by hand,
   explain them, run them, and check the paper's ranking.

   Run with: dune exec examples/plan_lab.exe *)

module Plan_lab = Xqdb_testbed.Plan_lab

let () =
  Printf.printf "query: %s\n\n" Xqdb_testbed.Queries.example6;
  let measurements = Plan_lab.run () in
  print_string (Plan_lab.render measurements);
  match measurements with
  | [qp0; qp1; qp2] ->
    assert (qp2.Plan_lab.page_ios <= qp1.Plan_lab.page_ios);
    assert (qp1.Plan_lab.page_ios <= qp0.Plan_lab.page_ios);
    assert (qp0.Plan_lab.rows = qp1.Plan_lab.rows && qp1.Plan_lab.rows = qp2.Plan_lab.rows);
    Printf.printf "ranking checked: QP2 (%d) <= QP1 (%d) <= QP0 (%d) page I/Os\n"
      qp2.Plan_lab.page_ios qp1.Plan_lab.page_ios qp0.Plan_lab.page_ios
  | _ -> assert false
