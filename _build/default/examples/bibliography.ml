(* The paper's motivating scenario: bibliography data (DBLP-like).

   Loads a generated bibliography, then walks through the kinds of
   queries the course's efficiency tests were built from, comparing the
   milestone-4 engine against the unoptimized milestone-2 evaluator.

   Run with: dune exec examples/bibliography.exe *)

module Engine = Xqdb_core.Engine
module Config = Xqdb_core.Engine_config
module W = Xqdb_workload

let queries =
  [ ( "titles of all articles",
      "<titles>{ for $x in //article return $x/title }</titles>" );
    ( "volumes (rare label: index-based selection shines)",
      "for $v in //volume return $v/text()" );
    ( "authors of articles that have volume information (Example 6)",
      Xqdb_testbed.Queries.example6 );
    ( "co-author check: did Ana Koch write an inproceedings? (XQ conditionals \
       have no alternative branch, so yes/no takes two of them)",
      "(if (some $p in //inproceedings satisfies (some $a in $p/author satisfies \
       (some $t in $a/text() satisfies $t = \"Ana Koch\"))) then <yes/> else ()), \
       (if (not(some $p in //inproceedings satisfies (some $a in $p/author satisfies \
       (some $t in $a/text() satisfies $t = \"Ana Koch\")))) then <no/> else ())" ) ]

let truncate s = if String.length s <= 100 then s else String.sub s 0 97 ^ "..."

let () =
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled 400)] in
  Printf.printf "document: %d nodes\n\n"
    (List.fold_left (fun acc n -> acc + Xqdb_xml.Xml_tree.size n) 0 forest);
  let m4 = Engine.load_forest ~config:{ Config.m4 with Config.pool_capacity = 48 } forest in
  let m2 = Engine.with_config { Config.m2 with Config.pool_capacity = 48 } m4 in
  List.iter
    (fun (label, src) ->
      let query = Xqdb_xq.Xq_parser.parse src in
      let fast = Engine.run m4 query in
      let slow = Engine.run m2 query in
      Printf.printf "%s\n  %s\n" label (truncate fast.Engine.output);
      Printf.printf "  m4: %6d page I/Os %8.3fs   |   m2: %6d page I/Os %8.3fs\n\n"
        fast.Engine.page_ios fast.Engine.elapsed slow.Engine.page_ios slow.Engine.elapsed;
      assert (String.equal fast.Engine.output slow.Engine.output))
    queries;
  (* Data statistics — what the milestone-4 optimizer consults. *)
  Format.printf "statistics:@.%a@." Xqdb_xasr.Doc_stats.pp (Engine.doc_stats m4)
