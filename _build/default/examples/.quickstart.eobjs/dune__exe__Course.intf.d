examples/course.mli:
