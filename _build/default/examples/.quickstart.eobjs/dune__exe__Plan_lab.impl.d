examples/plan_lab.ml: Printf Xqdb_testbed
