examples/plan_lab.mli:
