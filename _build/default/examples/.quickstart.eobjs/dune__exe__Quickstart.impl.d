examples/quickstart.ml: List Printf Xqdb_core Xqdb_xq
