examples/treebank.mli:
