examples/bibliography.mli:
