examples/treebank.ml: List Printf Xqdb_core Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
