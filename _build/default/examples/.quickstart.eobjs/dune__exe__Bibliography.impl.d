examples/bibliography.ml: Format List Printf String Xqdb_core Xqdb_testbed Xqdb_workload Xqdb_xasr Xqdb_xml Xqdb_xq
