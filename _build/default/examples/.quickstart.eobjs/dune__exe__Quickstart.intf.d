examples/quickstart.mli:
