examples/course.ml: List Xqdb_core Xqdb_testbed
