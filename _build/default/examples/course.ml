(* The course, end to end (Section 3 of the paper): five teams submit
   their engines, the submission & test system mails back reports, and
   the grading system computes the leaderboard — early-bird points, late
   penalties, and the scalability bonus for the most efficient engines.

   Run with: dune exec examples/course.exe *)

module Config = Xqdb_core.Engine_config
module Grading = Xqdb_testbed.Grading

let teams =
  (* The five Figure-7 engines as five teams, with different submission
     discipline and exam performance. *)
  [ Grading.submission ~exam_points:92 "koch-fans" Config.engine1;
    Grading.submission ~exam_points:88 ~weeks_late:[| 0; 0; 0; 1 |] "tpm-crew" Config.engine2;
    Grading.submission ~exam_points:71 "btree-boys" Config.engine3;
    Grading.submission ~exam_points:64 ~weeks_late:[| 0; 1; 2; 0 |] "no-index" Config.engine4;
    Grading.submission ~exam_points:49 "latecomers" Config.engine5 ]

let () =
  (* One team's notification e-mail, as the system sent it. *)
  let report = Grading.test_submission ~scale:250 (List.hd teams) in
  print_endline report.Grading.body;
  (* The final leaderboard. *)
  print_endline "==== final grades ====";
  print_string (Grading.render (Grading.grade_course ~scale:250 teams))
