(* Deeply nested data: the Treebank-like workload.

   Parse trees nest tens of levels deep, which is where the descendant
   axis and the XASR interval property do real work: a descendant step
   is one clustered range scan regardless of depth.

   Run with: dune exec examples/treebank.exe *)

module Engine = Xqdb_core.Engine
module Config = Xqdb_core.Engine_config
module W = Xqdb_workload

let queries =
  [ ( "noun phrases directly containing a relative clause",
      "for $np in //NP return if (some $s in $np/SBAR satisfies true()) then <hit/> else ()" );
    ( "verbs inside doubly nested prepositional phrases",
      "for $pp in //PP return for $pp2 in $pp//PP return for $vb in $pp2//VB return $vb" );
    ( "sentences that mention queries somewhere below",
      "for $s in /treebank/S return if (some $nn in $s//NN satisfies (some $t in \
       $nn/text() satisfies $t = \"queries\")) then <sentence-with-queries/> else ()" ) ]

let () =
  let params = W.Treebank_gen.scaled 80 in
  let tree = W.Treebank_gen.generate params in
  Printf.printf "document: %d nodes, max depth %d\n\n" (Xqdb_xml.Xml_tree.size tree)
    (Xqdb_xml.Xml_tree.depth tree);
  let engine = Engine.load_forest ~config:Config.m4 [tree] in
  List.iter
    (fun (label, src) ->
      let query = Xqdb_xq.Xq_parser.parse src in
      let result = Engine.run engine query in
      let forest = Xqdb_xml.Xml_parser.parse_forest result.Engine.output in
      Printf.printf "%s:\n  %d result nodes, %d page I/Os, %.3fs\n\n" label
        (List.length forest) result.Engine.page_ios result.Engine.elapsed)
    queries;
  (* Reconstruction check: the stored document round-trips. *)
  let reconstructed = Xqdb_xasr.Reconstruct.root_forest (Engine.store engine) in
  assert (Xqdb_xml.Xml_tree.equal_forest [tree] reconstructed);
  print_endline "round-trip: stored document reconstructs exactly"
