(** Static well-formedness checks for XQ queries.

    XQ's key property — every variable binds to a {e single} node, so a
    query can run in memory bounded by the number of live variables — is
    guaranteed by the shape of the AST.  What remains to check:

    - every used variable is bound (or is [$root]);
    - no variable is bound twice along a scope path, and [$root] is never
      rebound (the algebraic rewriting of milestone 3 uses variable names
      as algebra column names, so shadowing is rejected up front);
    - element labels in constructors and name tests are non-empty. *)

type error =
  | Unbound_variable of Xq_ast.var
  | Shadowed_variable of Xq_ast.var
  | Root_rebound
  | Empty_label

val error_to_string : error -> string

val check : Xq_ast.query -> (unit, error) result

val check_exn : Xq_ast.query -> unit
(** @raise Invalid_argument with the rendered error. *)
