(** Milestone 1: the in-memory, denotational evaluator for XQ.

    Variables bind to single nodes of the input document (an
    {!Xqdb_xml.Xml_doc.t}); evaluation follows the denotational semantics
    of the course material.  This evaluator is the correctness reference
    against which the secondary-storage evaluator (milestone 2) and the
    algebraic engines (milestones 3 and 4) are diffed by the testbed. *)

exception Type_error of string
(** Raised when a comparison involves a node that is not a text node —
    the simplification the paper explicitly allows ("exit with an error
    message if two nodes to be compared are not text nodes"). *)

type env = (Xq_ast.var * Xqdb_xml.Xml_doc.node) list

(** [axis_select doc v axis test] is the list of nodes reached from [v]
    by one step, in document order.  Exposed because milestones 2-4 reuse
    it to define their expected behaviour in tests. *)
val axis_select :
  Xqdb_xml.Xml_doc.t ->
  Xqdb_xml.Xml_doc.node ->
  Xq_ast.axis ->
  Xq_ast.nodetest ->
  Xqdb_xml.Xml_doc.node list

val eval_cond : Xqdb_xml.Xml_doc.t -> env -> Xq_ast.cond -> bool

val eval_in_env : Xqdb_xml.Xml_doc.t -> env -> Xq_ast.query -> Xqdb_xml.Xml_tree.forest

(** [eval doc q] evaluates [q] with [$root] bound to the virtual root. *)
val eval : Xqdb_xml.Xml_doc.t -> Xq_ast.query -> Xqdb_xml.Xml_tree.forest

(** [eval_string doc q] is the canonical serialization of [eval doc q],
    the form compared by the testbed. *)
val eval_string : Xqdb_xml.Xml_doc.t -> Xq_ast.query -> string
