(** Parser for the XQ surface syntax.

    The concrete syntax follows XQuery conventions:

    {v
    ()                                empty sequence
    $x                                variable ($root is the document root)
    $x/a   $x//a   $x/*   $x/text()   abbreviated steps
    $x/child::a  $x/descendant::a     explicit axes
    /a  //a                           steps from the document root
    for $y in $x//a return q
    if ($x = "s" and some $t in $x/b satisfies true()) then q else ()
    <a>{ q }</a>  <a/>  <a>text</a>   element constructors
    text { "s" }                      computed text constructor
    q1, q2                            sequence
    v}

    Multi-step paths such as [$x/a//b/text()] are accepted and desugared
    into the nested [for]s (or nested [some]s, in conditions) of the
    single-step core grammar, introducing fresh variables.  The [else]
    branch, when present, must be [()] — XQ's conditionals have no
    alternative branch. *)

exception Parse_error of string

val parse : string -> Xq_ast.query
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Xq_ast.query, string) result
