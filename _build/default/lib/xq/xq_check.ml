open Xq_ast

type error =
  | Unbound_variable of var
  | Shadowed_variable of var
  | Root_rebound
  | Empty_label

let error_to_string = function
  | Unbound_variable x -> Printf.sprintf "unbound variable %s" (Xq_print.var x)
  | Shadowed_variable x ->
    Printf.sprintf "variable %s bound twice (shadowing is not supported)"
      (Xq_print.var x)
  | Root_rebound -> "the variable $root cannot be rebound"
  | Empty_label -> "empty element label"

exception Err of error

let check q =
  let use scope x =
    if not (List.mem x scope || String.equal x root_var) then
      raise (Err (Unbound_variable x))
  in
  let bind scope x =
    if String.equal x root_var then raise (Err Root_rebound);
    if List.mem x scope then raise (Err (Shadowed_variable x));
    x :: scope
  in
  let label l = if String.equal l "" then raise (Err Empty_label) in
  let test = function
    | Name a -> label a
    | Star | Text_test -> ()
  in
  let rec go_q scope = function
    | Empty | Text_lit _ -> ()
    | Var x -> use scope x
    | Path (x, _, t) ->
      use scope x;
      test t
    | Constr (a, q) ->
      label a;
      go_q scope q
    | Seq (q1, q2) ->
      go_q scope q1;
      go_q scope q2
    | For (y, x, _, t, q) ->
      use scope x;
      test t;
      go_q (bind scope y) q
    | If (c, q) ->
      go_c scope c;
      go_q scope q
  and go_c scope = function
    | True -> ()
    | Eq_vars (x, y) ->
      use scope x;
      use scope y
    | Eq_const (x, _) -> use scope x
    | Some_ (y, x, _, t, c) ->
      use scope x;
      test t;
      go_c (bind scope y) c
    | And (c1, c2) | Or (c1, c2) ->
      go_c scope c1;
      go_c scope c2
    | Not c -> go_c scope c
  in
  match go_q [] q with
  | () -> Ok ()
  | exception Err e -> Error e

let check_exn q =
  match check q with
  | Ok () -> ()
  | Error e -> invalid_arg (error_to_string e)
