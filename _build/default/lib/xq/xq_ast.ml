type axis =
  | Child
  | Descendant

type nodetest =
  | Name of string
  | Star
  | Text_test

type var = string

let root_var = "#root"

type query =
  | Empty
  | Constr of string * query
  | Text_lit of string
  | Seq of query * query
  | Var of var
  | Path of var * axis * nodetest
  | For of var * var * axis * nodetest * query
  | If of cond * query

and cond =
  | True
  | Eq_vars of var * var
  | Eq_const of var * string
  | Some_ of var * var * axis * nodetest * cond
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

let equal_query (q1 : query) (q2 : query) = q1 = q2
let equal_cond (c1 : cond) (c2 : cond) = c1 = c2

let rec seq_of_list = function
  | [] -> Empty
  | [q] -> q
  | q :: rest -> Seq (q, seq_of_list rest)

let rec query_size = function
  | Empty | Text_lit _ | Var _ | Path _ -> 1
  | Constr (_, q) -> 1 + query_size q
  | Seq (q1, q2) -> 1 + query_size q1 + query_size q2
  | For (_, _, _, _, q) -> 1 + query_size q
  | If (c, q) -> 1 + cond_size c + query_size q

and cond_size = function
  | True | Eq_vars _ | Eq_const _ -> 1
  | Some_ (_, _, _, _, c) -> 1 + cond_size c
  | And (c1, c2) | Or (c1, c2) -> 1 + cond_size c1 + cond_size c2
  | Not c -> 1 + cond_size c

let bound_vars q =
  let rec go_q acc = function
    | Empty | Text_lit _ | Var _ | Path _ -> acc
    | Constr (_, q) -> go_q acc q
    | Seq (q1, q2) -> go_q (go_q acc q1) q2
    | For (y, _, _, _, q) -> go_q (y :: acc) q
    | If (c, q) -> go_q (go_c acc c) q
  and go_c acc = function
    | True | Eq_vars _ | Eq_const _ -> acc
    | Some_ (y, _, _, _, c) -> go_c (y :: acc) c
    | And (c1, c2) | Or (c1, c2) -> go_c (go_c acc c1) c2
    | Not c -> go_c acc c
  in
  List.rev (go_q [] q)

let cond_free_vars c =
  let add bound acc x =
    if List.mem x bound || List.mem x acc || String.equal x root_var then acc
    else x :: acc
  in
  let rec go bound acc = function
    | True -> acc
    | Eq_vars (x, y) -> add bound (add bound acc x) y
    | Eq_const (x, _) -> add bound acc x
    | Some_ (y, x, _, _, c) -> go (y :: bound) (add bound acc x) c
    | And (c1, c2) | Or (c1, c2) -> go bound (go bound acc c1) c2
    | Not c -> go bound acc c
  in
  List.rev (go [] [] c)

let free_vars q =
  let add bound acc x =
    if List.mem x bound || List.mem x acc || String.equal x root_var then acc
    else x :: acc
  in
  let rec go_q bound acc = function
    | Empty | Text_lit _ -> acc
    | Var x | Path (x, _, _) -> add bound acc x
    | Constr (_, q) -> go_q bound acc q
    | Seq (q1, q2) -> go_q bound (go_q bound acc q1) q2
    | For (y, x, _, _, q) -> go_q (y :: bound) (add bound acc x) q
    | If (c, q) -> go_q bound (go_c bound acc c) q
  and go_c bound acc = function
    | True -> acc
    | Eq_vars (x, y) -> add bound (add bound acc x) y
    | Eq_const (x, _) -> add bound acc x
    | Some_ (y, x, _, _, c) -> go_c (y :: bound) (add bound acc x) c
    | And (c1, c2) | Or (c1, c2) -> go_c bound (go_c bound acc c1) c2
    | Not c -> go_c bound acc c
  in
  List.rev (go_q [] [] q)
