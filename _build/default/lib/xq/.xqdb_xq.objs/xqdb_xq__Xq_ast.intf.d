lib/xq/xq_ast.mli:
