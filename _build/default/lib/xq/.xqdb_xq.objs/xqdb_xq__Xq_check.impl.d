lib/xq/xq_check.ml: List Printf String Xq_ast Xq_print
