lib/xq/xq_check.mli: Xq_ast
