lib/xq/xq_print.ml: Buffer Format String Xq_ast
