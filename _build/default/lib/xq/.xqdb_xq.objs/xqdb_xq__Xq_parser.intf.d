lib/xq/xq_parser.mli: Xq_ast
