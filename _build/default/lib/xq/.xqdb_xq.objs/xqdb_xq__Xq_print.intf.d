lib/xq/xq_print.mli: Format Xq_ast
