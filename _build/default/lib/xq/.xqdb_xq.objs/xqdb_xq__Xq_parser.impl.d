lib/xq/xq_parser.ml: Buffer Format List Printf String Xq_ast
