lib/xq/xq_eval.ml: List Printf String Xq_ast Xq_print Xqdb_xml
