lib/xq/xq_eval.mli: Xq_ast Xqdb_xml
