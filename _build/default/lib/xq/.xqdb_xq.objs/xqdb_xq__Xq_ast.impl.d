lib/xq/xq_ast.ml: List String
