(** Pretty-printer for XQ.

    [to_string] emits the abbreviated surface syntax accepted by
    {!Xq_parser}; parsing the output of [to_string] yields the original
    query (a property checked by the test suite). *)

val var : Xq_ast.var -> string
(** ["$x"], or ["$root"] for {!Xq_ast.root_var}. *)

val step : Xq_ast.var -> Xq_ast.axis -> Xq_ast.nodetest -> string
(** ["$x//a"], ["/journal"], ["$x/text()"], ... *)

val pp_query : Format.formatter -> Xq_ast.query -> unit
val pp_cond : Format.formatter -> Xq_ast.cond -> unit
val to_string : Xq_ast.query -> string
val cond_to_string : Xq_ast.cond -> string
