open Xq_ast
module Doc = Xqdb_xml.Xml_doc
module Tree = Xqdb_xml.Xml_tree

exception Type_error of string

type env = (var * Doc.node) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Xq_eval: unbound variable %s" (Xq_print.var x))

let node_matches doc v = function
  | Name a -> Doc.kind doc v = Doc.Element && String.equal (Doc.value doc v) a
  | Star -> Doc.kind doc v = Doc.Element
  | Text_test -> Doc.kind doc v = Doc.Text

let axis_select doc v axis test =
  let candidates =
    match axis with
    | Child -> Doc.children doc v
    | Descendant -> Doc.descendants doc v
  in
  List.filter (fun w -> node_matches doc w test) candidates

(* The paper restricts comparisons to text nodes; anything else is a
   runtime type error. *)
let text_value doc env x =
  let v = lookup env x in
  match Doc.kind doc v with
  | Doc.Text -> Doc.value doc v
  | Doc.Element ->
    raise
      (Type_error
         (Printf.sprintf "%s is bound to element <%s>, not a text node"
            (Xq_print.var x) (Doc.value doc v)))
  | Doc.Root ->
    raise (Type_error (Printf.sprintf "%s is bound to the document root" (Xq_print.var x)))

let rec eval_cond doc env = function
  | True -> true
  | Eq_vars (x, y) -> String.equal (text_value doc env x) (text_value doc env y)
  | Eq_const (x, s) -> String.equal (text_value doc env x) s
  | Some_ (y, x, axis, test, c) ->
    let v = lookup env x in
    List.exists (fun w -> eval_cond doc ((y, w) :: env) c) (axis_select doc v axis test)
  | And (c1, c2) -> eval_cond doc env c1 && eval_cond doc env c2
  | Or (c1, c2) -> eval_cond doc env c1 || eval_cond doc env c2
  | Not c -> not (eval_cond doc env c)

let node_forest doc v =
  match Doc.kind doc v with
  | Doc.Root -> Doc.to_forest doc v
  | Doc.Element | Doc.Text -> [Doc.to_tree doc v]

let rec eval_in_env doc env = function
  | Empty -> []
  | Text_lit s -> [Tree.Text s]
  | Constr (a, q) -> [Tree.Elem (a, eval_in_env doc env q)]
  | Seq (q1, q2) -> eval_in_env doc env q1 @ eval_in_env doc env q2
  | Var x -> node_forest doc (lookup env x)
  | Path (x, axis, test) ->
    List.map (Doc.to_tree doc) (axis_select doc (lookup env x) axis test)
  | For (y, x, axis, test, body) ->
    let bind w = eval_in_env doc ((y, w) :: env) body in
    List.concat_map bind (axis_select doc (lookup env x) axis test)
  | If (c, q) -> if eval_cond doc env c then eval_in_env doc env q else []

let eval doc q = eval_in_env doc [(root_var, Doc.root doc)] q
let eval_string doc q = Xqdb_xml.Xml_print.forest_to_string (eval doc q)
