(** Abstract syntax of XQ, the composition-free XQuery fragment of the
    paper's Figure 1.

    {v
    query ::= () | <a>query</a> | query query
            | var | var/axis::nu
            | for var in var/axis::nu return query
            | if cond then query
    cond  ::= var = var | var = string | true()
            | some var in var/axis::nu satisfies cond
            | cond and cond | cond or cond | not(cond)
    axis  ::= child | descendant
    nu    ::= a | * | text()
    v}

    One documented extension: [Text_lit] allows literal text inside
    element constructors (e.g. [<note>hi</note>]); the paper's grammar
    cannot construct text nodes, which would make round-tripping the
    testbed documents impossible. *)

type axis =
  | Child
  | Descendant

type nodetest =
  | Name of string  (** label test [a] *)
  | Star  (** [*]: any element *)
  | Text_test  (** [text()] *)

type var = string
(** Variable name, without the ['$'] sigil. *)

val root_var : var
(** The implicit variable bound to the virtual document root.  Its name
    contains ['#'] so it cannot be written in the surface syntax; paths
    starting with ['/'] or ['//'] desugar to steps from [root_var]. *)

type query =
  | Empty  (** [()] *)
  | Constr of string * query  (** [<a>{ q }</a>] *)
  | Text_lit of string  (** literal text inside a constructor *)
  | Seq of query * query  (** [q1, q2] *)
  | Var of var  (** [$x] *)
  | Path of var * axis * nodetest  (** [$x/axis::nu] *)
  | For of var * var * axis * nodetest * query
      (** [for $y in $x/axis::nu return q] *)
  | If of cond * query  (** [if (c) then q else ()] *)

and cond =
  | True  (** [true()] *)
  | Eq_vars of var * var  (** [$x = $y] *)
  | Eq_const of var * string  (** [$x = "s"] *)
  | Some_ of var * var * axis * nodetest * cond
      (** [some $y in $x/axis::nu satisfies c] *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

val equal_query : query -> query -> bool
val equal_cond : cond -> cond -> bool

val seq_of_list : query list -> query
(** Right-nested [Seq]; [Empty] for the empty list. *)

val query_size : query -> int
(** Number of AST constructors, a complexity measure used by the testbed
    reports and the random query generator. *)

val bound_vars : query -> var list
(** All variables bound by [for]/[some], in syntactic order. *)

val free_vars : query -> var list
(** Variables used but not bound, excluding {!root_var}. *)

val cond_free_vars : cond -> var list
(** Variables a condition depends on but does not bind itself,
    excluding {!root_var}; the engine fetches exactly these when it
    evaluates a residual guard navigationally. *)
