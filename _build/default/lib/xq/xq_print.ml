open Xq_ast

let var x = if String.equal x root_var then "$root" else "$" ^ x

let nodetest = function
  | Name a -> a
  | Star -> "*"
  | Text_test -> "text()"

let step x axis test =
  let source = if String.equal x root_var then "" else var x in
  let slash =
    match axis with
    | Child -> "/"
    | Descendant -> "//"
  in
  source ^ slash ^ nodetest test

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Items under 'return'/'then' and constructor braces must be single items
   syntactically, so sequences get parenthesized there. *)
let rec pp_query ppf = function
  | Seq (q1, q2) ->
    Format.fprintf ppf "%a,@ %a" pp_item q1 pp_query q2
  | q -> pp_item ppf q

and pp_item ppf = function
  | Empty -> Format.pp_print_string ppf "()"
  | Text_lit s -> Format.fprintf ppf "text { %s }" (quote_string s)
  | Var x -> Format.pp_print_string ppf (var x)
  | Path (x, axis, test) -> Format.pp_print_string ppf (step x axis test)
  | Constr (label, Empty) -> Format.fprintf ppf "<%s/>" label
  | Constr (label, q) ->
    Format.fprintf ppf "@[<hv 2><%s>{@ %a@ }</%s>@]" label pp_query q label
  | For (y, x, axis, test, body) ->
    Format.fprintf ppf "@[<hv 2>for %s in %s@ return %a@]" (var y)
      (step x axis test) pp_single body
  | If (c, q) ->
    Format.fprintf ppf "@[<hv 2>if (%a)@ then %a@ else ()@]" pp_cond c
      pp_single q
  | Seq _ as q -> Format.fprintf ppf "(%a)" pp_query q

and pp_single ppf q =
  match q with
  | Seq _ -> Format.fprintf ppf "(%a)" pp_query q
  | q -> pp_item ppf q

and pp_cond ppf = function
  | Or (c1, c2) -> Format.fprintf ppf "%a or %a" pp_cond_and c1 pp_cond c2
  | c -> pp_cond_and ppf c

and pp_cond_and ppf = function
  | And (c1, c2) -> Format.fprintf ppf "%a and %a" pp_cond_atom c1 pp_cond_and c2
  | c -> pp_cond_atom ppf c

and pp_cond_atom ppf = function
  | True -> Format.pp_print_string ppf "true()"
  | Eq_vars (x, y) -> Format.fprintf ppf "%s = %s" (var x) (var y)
  | Eq_const (x, s) -> Format.fprintf ppf "%s = %s" (var x) (quote_string s)
  | Not c -> Format.fprintf ppf "not(%a)" pp_cond c
  | Some_ (y, x, axis, test, c) ->
    (* Parenthesized because 'satisfies' is parsed right-greedily. *)
    Format.fprintf ppf "@[<hv 2>(some %s in %s@ satisfies %a)@]" (var y)
      (step x axis test) pp_cond c
  | (Or _ | And _) as c -> Format.fprintf ppf "(%a)" pp_cond c

let to_string q = Format.asprintf "@[<hv>%a@]" pp_query q
let cond_to_string c = Format.asprintf "@[<hv>%a@]" pp_cond c
