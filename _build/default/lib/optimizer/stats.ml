module Doc_stats = Xqdb_xasr.Doc_stats
module Store = Xqdb_xasr.Node_store

type quality =
  | Good
  | Unlucky

type t = {
  doc : Doc_stats.t;
  quality : quality;
  tuples_per_page : float;
  primary_height : float;
  primary_leaf_pages : float;
  label_height : float;
  parent_height : float;
}

let make ?(quality = Good) store doc =
  let count = float_of_int (max 1 (Store.tuple_count store)) in
  let leaf_pages = float_of_int (max 1 (Store.primary_leaf_pages store)) in
  { doc;
    quality;
    tuples_per_page = count /. leaf_pages;
    primary_height = float_of_int (Store.primary_height store);
    primary_leaf_pages = leaf_pages;
    label_height = float_of_int (Store.label_index_height store);
    parent_height = float_of_int (Store.parent_index_height store) }

let quality t = t.quality
let node_count t = float_of_int (max 1 t.doc.Doc_stats.node_count)
let elem_count t = float_of_int (max 1 t.doc.Doc_stats.elem_count)
let text_count t = float_of_int (max 1 t.doc.Doc_stats.text_count)

let label_card t label =
  match t.quality with
  | Good -> float_of_int (Doc_stats.label_count t.doc label)
  | Unlucky ->
    (* The classic reciprocal bug: the estimator effectively inverts
       label frequencies, so rare labels look common and common labels
       look rare.  A uniform average anchors the scale. *)
    let distinct = max 1 (List.length t.doc.Doc_stats.label_counts) in
    let uniform = elem_count t /. float_of_int distinct in
    let real = Float.max 1.0 (float_of_int (Doc_stats.label_count t.doc label)) in
    Float.min (elem_count t) (uniform *. uniform /. real)

let text_value_card t _value =
  match t.quality with
  | Good -> max 1.0 (0.01 *. text_count t)
  | Unlucky -> 0.5 *. text_count t

let avg_depth t =
  match t.quality with
  | Good -> max 1.0 (Doc_stats.avg_depth t.doc)
  | Unlucky -> 2.0

let avg_fanout t =
  (* Children exist under elements and the root. *)
  (node_count t -. 1.0) /. max 1.0 (elem_count t +. 1.0)

let tuples_per_page t = t.tuples_per_page
let primary_height t = t.primary_height
let primary_leaf_pages t = t.primary_leaf_pages
let label_height t = t.label_height
let parent_height t = t.parent_height

let pages_of_tuples t card = Float.max 1.0 (Float.ceil (card /. t.tuples_per_page))
