lib/optimizer/planner.mli: Format Stats Xqdb_physical Xqdb_tpm Xqdb_xasr Xqdb_xq
