lib/optimizer/planner.ml: Float Format List Printf Stats String Xqdb_physical Xqdb_tpm Xqdb_xasr Xqdb_xq
