lib/optimizer/stats.ml: Float List Xqdb_xasr
