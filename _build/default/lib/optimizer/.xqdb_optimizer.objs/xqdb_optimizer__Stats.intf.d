lib/optimizer/stats.mli: Xqdb_xasr
