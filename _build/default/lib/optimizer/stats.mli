(** Estimation-facing statistics (milestone 4).

    Wraps the per-document {!Xqdb_xasr.Doc_stats} with the physical shape
    of the stores (index heights, leaf pages) and an {e estimate quality}
    knob.  [Good] consults the real statistics.  [Unlucky] models the
    paper's second engine — "due to unlucky estimates, the second engine
    decided for an unoptimal query plan" — by assuming uniform label
    frequencies and a canned tree depth, which inverts the ranking of
    joins with very different selectivities. *)

type quality =
  | Good
  | Unlucky

type t

val make : ?quality:quality -> Xqdb_xasr.Node_store.t -> Xqdb_xasr.Doc_stats.t -> t

val quality : t -> quality
val node_count : t -> float
val elem_count : t -> float
val text_count : t -> float

val label_card : t -> string -> float
(** Estimated number of elements with this label. *)

val text_value_card : t -> string -> float
(** Estimated number of text nodes with exactly this value. *)

val avg_depth : t -> float
val avg_fanout : t -> float

val tuples_per_page : t -> float
val primary_height : t -> float
val primary_leaf_pages : t -> float
val label_height : t -> float
val parent_height : t -> float

val pages_of_tuples : t -> float -> float
(** Pages needed to hold this many XASR-sized tuples. *)
