(** Milestone 2: the navigational XQ evaluator over secondary storage.

    Evaluates XQ directly against the {!Node_store}, never building the
    document tree: at any moment only the current variable bindings (one
    tuple each) are held in memory — possible because XQ variables
    always bind to single nodes.

    Axis steps become index accesses:
    - child: a parent-index prefix scan on the binding's [in];
    - descendant: a clustered primary range scan over ([in], [out]).

    Comparisons follow the paper's restriction: non-text operands raise
    {!Xqdb_xq.Xq_eval.Type_error}.

    The optional [budget] is polled once per cursor pull, which is what
    lets the testbed censor runaway evaluations. *)

module Xq_ast := Xqdb_xq.Xq_ast

type env = (Xq_ast.var * Xasr.tuple) list

val axis_cursor :
  Node_store.t ->
  Xasr.tuple ->
  Xq_ast.axis ->
  Xq_ast.nodetest ->
  unit ->
  Xasr.tuple option
(** Matching nodes one step from the binding, in document order. *)

val eval_cond :
  ?budget:Xqdb_storage.Budget.t -> Node_store.t -> env -> Xq_ast.cond -> bool

val eval :
  ?budget:Xqdb_storage.Budget.t -> Node_store.t -> Xq_ast.query -> Xqdb_xml.Xml_tree.forest

val eval_string : ?budget:Xqdb_storage.Budget.t -> Node_store.t -> Xq_ast.query -> string
