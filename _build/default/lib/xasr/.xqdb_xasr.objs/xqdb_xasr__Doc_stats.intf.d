lib/xasr/doc_stats.mli: Format Xasr
