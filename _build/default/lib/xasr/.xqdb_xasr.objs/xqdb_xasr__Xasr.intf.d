lib/xasr/xasr.mli: Format
