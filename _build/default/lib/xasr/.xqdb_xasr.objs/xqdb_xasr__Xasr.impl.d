lib/xasr/xasr.ml: Buffer Bytes Format Printf String Xqdb_storage
