lib/xasr/reconstruct.mli: Node_store Xasr Xqdb_xml
