lib/xasr/nav_eval.ml: List Node_store Printf Reconstruct String Xasr Xqdb_storage Xqdb_xml Xqdb_xq
