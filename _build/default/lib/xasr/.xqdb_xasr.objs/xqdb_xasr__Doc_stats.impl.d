lib/xasr/doc_stats.ml: Buffer Format Hashtbl List Printf Scanf String Xasr
