lib/xasr/node_store.ml: Buffer Bytes Doc_stats Option Printf Xasr Xqdb_storage
