lib/xasr/shredder.mli: Doc_stats Node_store Xqdb_storage Xqdb_xml
