lib/xasr/node_store.mli: Doc_stats Xasr Xqdb_storage
