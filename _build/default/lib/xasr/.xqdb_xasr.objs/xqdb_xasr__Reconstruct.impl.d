lib/xasr/reconstruct.ml: List Node_store Printf Xasr Xqdb_xml
