lib/xasr/shredder.ml: Doc_stats List Node_store Printf String Xasr Xqdb_xml
