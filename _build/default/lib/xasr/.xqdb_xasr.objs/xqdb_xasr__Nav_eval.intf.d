lib/xasr/nav_eval.mli: Node_store Xasr Xqdb_storage Xqdb_xml Xqdb_xq
