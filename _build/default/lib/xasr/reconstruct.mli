(** Rebuilding XML trees from XASR tuples.

    The paper: "XML documents stored using this schema can be
    reconstructed, because (1) the child relation is preserved by the
    parent_in values, and (2) the order of the children of a node is
    preserved by the in/out values."

    A subtree is rebuilt from one clustered range scan
    [in .. out] — the interval property makes the scan contain exactly
    the subtree, in document order — using a stack, in one pass. *)

val subtree : Node_store.t -> Xasr.tuple -> Xqdb_xml.Xml_tree.node
(** @raise Invalid_argument on the virtual root (use {!root_forest}). *)

val subtree_by_in : Node_store.t -> int -> Xqdb_xml.Xml_tree.node
(** @raise Not_found if no node has this [in]. *)

val root_forest : Node_store.t -> Xqdb_xml.Xml_tree.forest
(** The whole document (children of the virtual root). *)

val document_string : Node_store.t -> string
