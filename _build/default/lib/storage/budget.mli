(** Execution budgets: the mechanism behind the testbed's resource caps.

    The paper's efficiency tests ran each engine under "20 MB of memory
    and 2 or 30 minutes per query" and censored over-budget engines at
    the cap.  Here a budget bounds page I/Os (the simulator's proxy for
    time, independent of host speed) and elapsed CPU seconds; operators
    poll [check] in their inner loops. *)

type t

exception Exhausted of string

val unlimited : Disk.t -> t

val create : ?max_page_ios:int -> ?max_seconds:float -> Disk.t -> t
(** Counts I/Os relative to the disk counters at creation time. *)

val check : t -> unit
(** @raise Exhausted when a cap is exceeded. *)

val page_ios : t -> int
(** Page I/Os (reads + writes) consumed since creation. *)

val elapsed : t -> float
