(** The disk abstraction under the storage manager.

    A disk is an array of fixed-size pages addressed by page id, with
    read/write/alloc counters.  Two backends are provided: a real file
    (what a deployment would use) and an in-memory page table (what the
    benchmarks use, so that page-I/O counts — the currency of the cost
    model of milestone 4 — are measured without OS-cache noise).

    Page 0 is reserved for the {!Catalog} and is allocated eagerly. *)

type t

val in_memory : ?page_size:int -> unit -> t
(** Default page size is 4096 bytes. *)

val on_file : ?page_size:int -> string -> t
(** Creates or truncates [path]. *)

val open_existing : ?page_size:int -> string -> t
(** Open a database file created earlier by {!on_file}; the page count
    is recovered from the file size.
    @raise Invalid_argument if the size is not a whole number of pages
    or the file is empty. *)

val page_size : t -> int
val page_count : t -> int

val alloc : t -> int
(** Allocate a fresh zeroed page and return its id. *)

val read_page : t -> int -> bytes
(** A fresh copy of the page contents.  @raise Invalid_argument on an
    unallocated page id. *)

val write_page : t -> int -> bytes -> unit
(** @raise Invalid_argument if the buffer size differs from the page
    size or the page id was never allocated. *)

type counters = {
  reads : int;
  writes : int;
  allocs : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val close : t -> unit
(** Close the backing file, if any.  The disk must not be used after. *)
