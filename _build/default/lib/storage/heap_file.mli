(** Heap files: unordered record storage in a chain of slotted pages.

    Records are appended in arrival order and scanned back in the same
    order, which is what milestone 3's "write each intermediate result to
    disk and re-read it" evaluation mode needs: appending preserves the
    hierarchical document order that order-preserving operators produce.

    Records must fit in one page. *)

type t

type rid = {
  page : int;
  slot : int;
}

val create : Buffer_pool.t -> t
(** Allocates the first page of the chain. *)

val open_existing : Buffer_pool.t -> first_page:int -> t
(** Reattach to a chain created earlier (walks to the tail). *)

val first_page : t -> int
val page_count : t -> int
val record_count : t -> int

val append : t -> bytes -> rid
(** @raise Invalid_argument if the record cannot fit in a page. *)

val get : t -> rid -> bytes

val iter : t -> (rid -> bytes -> unit) -> unit

val scan : t -> (unit -> bytes option)
(** A restartable pull cursor over all records in order; each call to
    [scan] starts a fresh cursor. *)
