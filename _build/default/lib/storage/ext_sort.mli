(** External merge sort over byte records.

    Records are accumulated into bounded in-memory runs, each run is
    sorted and spilled to a {!Heap_file}, and the runs are merged with a
    k-way merge.  This is option (a) of the paper's milestone-3 ordering
    discussion: sort intermediate results to restore hierarchical
    document order instead of constraining plans to be order-preserving.

    The comparator works directly on encoded records, so sorting by a
    key prefix needs no decoding when keys use {!Bytes_codec}'s
    order-preserving encoders. *)

type t

val create :
  ?run_bytes:int ->
  ?fan_in:int ->
  Buffer_pool.t ->
  compare:(bytes -> bytes -> int) ->
  t
(** [run_bytes] bounds the memory of one run (default 256 KiB);
    [fan_in] bounds how many runs one merge pass combines (default 16). *)

val feed : t -> bytes -> unit
(** @raise Invalid_argument after {!sorted_cursor} was called. *)

val fed_count : t -> int

val sorted_cursor : t -> unit -> bytes option
(** Finish feeding and return a cursor producing all records in
    ascending comparator order.  Equal records are all produced (the
    sort is not deduplicating); their relative order is unspecified. *)

val run_count : t -> int
(** Number of initial runs spilled (0 if everything fit in memory);
    meaningful after {!sorted_cursor}. *)
