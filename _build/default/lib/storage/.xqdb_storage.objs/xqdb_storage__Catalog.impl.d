lib/storage/catalog.ml: Buffer Buffer_pool Bytes Bytes_codec Hashtbl List Option Page
