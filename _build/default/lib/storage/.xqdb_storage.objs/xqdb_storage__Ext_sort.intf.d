lib/storage/ext_sort.mli: Buffer_pool
