lib/storage/ext_sort.ml: Array Buffer_pool Bytes Heap_file List
