lib/storage/page.mli:
