lib/storage/disk.mli:
