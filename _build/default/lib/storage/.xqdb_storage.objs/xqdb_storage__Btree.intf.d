lib/storage/btree.mli: Buffer_pool
