lib/storage/heap_file.ml: Buffer_pool Bytes Disk Page Printf
