lib/storage/bytes_codec.ml: Buffer Bytes Char String
