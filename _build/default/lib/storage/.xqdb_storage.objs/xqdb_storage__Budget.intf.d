lib/storage/budget.mli: Disk
