lib/storage/buffer_pool.ml: Bytes Disk Fun Hashtbl
