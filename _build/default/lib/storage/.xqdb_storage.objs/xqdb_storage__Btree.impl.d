lib/storage/btree.ml: Array Buffer_pool Bytes Disk Format Int List Page Printf
