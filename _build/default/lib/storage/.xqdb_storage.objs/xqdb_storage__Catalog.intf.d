lib/storage/catalog.mli: Buffer_pool
