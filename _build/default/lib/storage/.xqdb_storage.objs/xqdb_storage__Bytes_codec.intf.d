lib/storage/bytes_codec.mli: Buffer
