lib/storage/page.ml: Array Bytes Int32
