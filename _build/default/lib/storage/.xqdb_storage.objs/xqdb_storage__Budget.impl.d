lib/storage/budget.ml: Disk Printf Sys
