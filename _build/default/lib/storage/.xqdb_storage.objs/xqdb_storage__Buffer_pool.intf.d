lib/storage/buffer_pool.mli: Disk
