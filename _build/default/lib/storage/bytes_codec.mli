(** Binary record and key encodings.

    Two layers:
    - a plain record codec ([write_*]/[read_*]) used for tuple payloads —
      compact, not order-preserving;
    - an {e order-preserving} key codec ([key_*]) used for B+-tree keys:
      if [k1 < k2] componentwise then [encode k1 < encode k2] under
      unsigned lexicographic byte comparison, including across composite
      keys encoded by concatenation.

    Ints must be non-negative (page numbers, in/out labels, counters are);
    this keeps the key encoding a simple big-endian dump. *)

(* --- record payloads --- *)

type reader = {
  data : bytes;
  mutable pos : int;
}

val reader : bytes -> reader

val write_uvarint : Buffer.t -> int -> unit
val read_uvarint : reader -> int

val write_string : Buffer.t -> string -> unit
val read_string : reader -> string

(* --- order-preserving keys --- *)

val key_int : Buffer.t -> int -> unit
(** 8-byte big-endian; @raise Invalid_argument on negative input. *)

val key_string : Buffer.t -> string -> unit
(** Zero-escaped and zero-zero-terminated so that concatenated composite
    keys compare componentwise. *)

val read_key_int : reader -> int
val read_key_string : reader -> string

val compare_bytes : bytes -> bytes -> int
(** Unsigned lexicographic comparison ([Bytes.compare] has this meaning
    in OCaml; exposed under a domain name for clarity). *)
