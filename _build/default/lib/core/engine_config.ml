module Rewrite = Xqdb_tpm.Rewrite
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats

type milestone =
  | M1
  | M2
  | M3
  | M4

type t = {
  name : string;
  milestone : milestone;
  merge_relfors : bool;
  rewrite : Rewrite.config;
  planner : Planner.config;
  quality : Stats.quality;
  pool_capacity : int;
}

let milestone_name = function
  | M1 -> "milestone 1 (in-memory)"
  | M2 -> "milestone 2 (navigational)"
  | M3 -> "milestone 3 (algebraic)"
  | M4 -> "milestone 4 (cost-based)"

let default_pool = 256

let m1 =
  { name = "m1";
    milestone = M1;
    merge_relfors = false;
    rewrite = Rewrite.default;
    planner = Planner.m3_config;
    quality = Stats.Good;
    pool_capacity = default_pool }

let m2 = { m1 with name = "m2"; milestone = M2 }

let m3 =
  { m1 with
    name = "m3";
    milestone = M3;
    merge_relfors = true;
    planner = Planner.m3_config }

let m4 =
  { m1 with
    name = "m4";
    milestone = M4;
    merge_relfors = true;
    planner = Planner.m4_config }

let efficiency_pool = 48

let engine1 =
  { m4 with
    name = "engine-1";
    pool_capacity = efficiency_pool;
    planner = { Planner.m4_config with materialize = `Disk } }

let engine2 =
  { m4 with
    name = "engine-2";
    pool_capacity = efficiency_pool;
    quality = Stats.Unlucky;
    planner = { Planner.m4_config with materialize = `Mem } }

let engine3 =
  { m4 with
    name = "engine-3";
    pool_capacity = efficiency_pool;
    planner = { Planner.m4_config with cost_based = false; materialize = `Disk } }

let engine4 =
  { m4 with
    name = "engine-4";
    pool_capacity = efficiency_pool;
    planner = { Planner.m4_config with use_indexes = false; materialize = `Disk } }

let engine5 =
  { m3 with
    name = "engine-5";
    pool_capacity = efficiency_pool;
    milestone = M3 }

let figure7_engines = [engine1; engine2; engine3; engine4; engine5]
let all_presets = [m1; m2; m3; m4] @ figure7_engines
