lib/core/engine_config.mli: Xqdb_optimizer Xqdb_tpm
