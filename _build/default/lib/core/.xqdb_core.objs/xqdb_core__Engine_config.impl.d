lib/core/engine_config.ml: Xqdb_optimizer Xqdb_tpm
