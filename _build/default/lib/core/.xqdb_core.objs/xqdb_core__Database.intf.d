lib/core/database.mli: Engine Engine_config Xqdb_xml Xqdb_xq
