lib/core/engine.ml: Array Buffer Engine_config List Printf String Sys Xqdb_optimizer Xqdb_physical Xqdb_storage Xqdb_tpm Xqdb_xasr Xqdb_xml Xqdb_xq
