lib/core/engine.mli: Engine_config Xqdb_storage Xqdb_xasr Xqdb_xml Xqdb_xq
