lib/core/database.ml: Engine Engine_config Hashtbl List Printf String Xqdb_storage Xqdb_xasr Xqdb_xml
