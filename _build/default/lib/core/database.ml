module Storage = Xqdb_storage
module Store = Xqdb_xasr.Node_store
module Shredder = Xqdb_xasr.Shredder

type t = {
  config : Engine_config.t;
  disk : Storage.Disk.t;
  pool : Storage.Buffer_pool.t;
  catalog : Storage.Catalog.t;
  engines : (string, Engine.t) Hashtbl.t;
}

let create ?(config = Engine_config.m4) ?on_file () =
  let disk =
    match on_file with
    | None -> Storage.Disk.in_memory ()
    | Some path -> Storage.Disk.on_file path
  in
  let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
  let catalog = Storage.Catalog.attach pool in
  { config; disk; pool; catalog; engines = Hashtbl.create 8 }

(* Document names are recovered from the catalog's ".stats" keys. *)
let catalog_names catalog =
  List.filter_map
    (fun (key, _) ->
      match String.rindex_opt key '.' with
      | Some i when String.sub key i (String.length key - i) = ".stats" ->
        Some (String.sub key 0 i)
      | Some _ | None -> None)
    (Storage.Catalog.entries catalog)

let open_file ?(config = Engine_config.m4) path =
  let disk = Storage.Disk.open_existing path in
  let pool = Storage.Buffer_pool.create ~capacity:config.Engine_config.pool_capacity disk in
  let catalog = Storage.Catalog.attach pool in
  let t = { config; disk; pool; catalog; engines = Hashtbl.create 8 } in
  List.iter
    (fun name ->
      let store = Store.open_existing pool catalog ~name in
      let doc_stats = Store.stats_of_catalog catalog ~name in
      Hashtbl.replace t.engines name
        (Engine.attach ~config ~disk ~pool ~catalog ~store ~doc_stats ()))
    (catalog_names catalog);
  t

let config t = t.config

let check_name t name =
  if String.equal name "" then invalid_arg "Database: empty document name";
  if String.contains name '.' then
    invalid_arg "Database: document names cannot contain '.'";
  if Hashtbl.mem t.engines name then
    invalid_arg (Printf.sprintf "Database: document %S already loaded" name)

let load_forest t ~name forest =
  check_name t name;
  let store, doc_stats = Shredder.shred_forest t.pool ~name forest in
  Store.register store t.catalog ~stats:doc_stats;
  let engine =
    Engine.attach ~config:t.config ~disk:t.disk ~pool:t.pool ~catalog:t.catalog ~store
      ~doc_stats ()
  in
  Hashtbl.replace t.engines name engine;
  engine

let load_document t ~name xml =
  load_forest t ~name (Xqdb_xml.Xml_parser.parse_forest xml)

let document_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.engines [] |> List.sort compare

let engine ?config t ~name =
  match Hashtbl.find_opt t.engines name with
  | None -> raise Not_found
  | Some e ->
    (match config with
     | None -> e
     | Some c -> Engine.with_config c e)

let drop_document t ~name =
  if not (Hashtbl.mem t.engines name) then raise Not_found;
  Hashtbl.remove t.engines name;
  List.iter
    (fun suffix -> Storage.Catalog.remove t.catalog (name ^ suffix))
    [".primary"; ".label"; ".parent"; ".stats"];
  Storage.Catalog.flush t.catalog

let run ?max_page_ios ?max_seconds t ~name query =
  Engine.run ?max_page_ios ?max_seconds (engine t ~name) query

let flush t =
  Storage.Catalog.flush t.catalog;
  Storage.Buffer_pool.flush_all t.pool

let close t =
  flush t;
  Storage.Disk.close t.disk
