(** Multi-document databases.

    The course testbed worked against several documents (DBLP, its
    excerpt, TREEBANK, a hand-made file).  A [Database.t] manages any
    number of named documents inside one disk — each shredded into its
    own XASR store with its own indexes and statistics, all registered
    in the shared catalog — and can be closed and reopened from the
    backing file.

    Updates follow the paper's scope: documents are loaded and dropped
    wholesale ("keep updates as simple as possible"); there is no
    in-place node mutation, and no concurrency control or recovery. *)

type t

val create : ?config:Engine_config.t -> ?on_file:string -> unit -> t
(** An empty database (in memory, or on a file). *)

val open_file : ?config:Engine_config.t -> string -> t
(** Reopen a database file created earlier with [create ~on_file] —
    documents, indexes and statistics come back from the catalog.
    @raise Failure if the file does not contain a catalog. *)

val config : t -> Engine_config.t

val load_document : t -> name:string -> string -> Engine.t
(** Parse, shred and index a document under [name].
    @raise Invalid_argument if the name is taken or contains ['.']. *)

val load_forest : t -> name:string -> Xqdb_xml.Xml_tree.forest -> Engine.t

val document_names : t -> string list
(** Sorted. *)

val engine : ?config:Engine_config.t -> t -> name:string -> Engine.t
(** An engine over one document (optionally at a different milestone).
    @raise Not_found for unknown names. *)

val drop_document : t -> name:string -> unit
(** Forget a document.  Its catalog entries are removed; its pages
    become dead space (the storage manager has no free-space reuse —
    bulk-load-and-query is the workload).
    @raise Not_found for unknown names. *)

val run :
  ?max_page_ios:int ->
  ?max_seconds:float ->
  t ->
  name:string ->
  Xqdb_xq.Xq_ast.query ->
  Engine.result

val flush : t -> unit
(** Write all dirty pages and the catalog back to the disk. *)

val close : t -> unit
(** [flush] and release the backing file. *)
