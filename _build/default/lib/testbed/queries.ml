let public_queries =
  [ ("q01-empty", "()");
    ("q02-constructors", "<report><head>status</head><body>{ () }</body></report>");
    ("q03-root-child", "for $x in /dblp return <found/>");
    ("q04-desc-path", "for $t in //title return $t");
    ("q05-star-and-text", "for $x in //article return for $c in $x/* return <c>{ $c/text() }</c>");
    ("q06-nested-for", "<names>{ for $j in //journal return for $n in $j//name return $n }</names>");
    ("q07-constructor-between",
     "for $j in //journal return <j>{ for $n in $j//name return $n }</j>");
    ("q08-if-some", "for $x in //article return if (some $v in $x/volume satisfies true()) then $x/title else ()");
    ("q09-eq-const",
     "for $n in //name return for $t in $n/text() return if ($t = \"Ana\") then <ana/> else ()");
    ("q10-eq-vars",
     "for $a in //author return for $b in //name return if (some $ta in $a/text() satisfies (some $tb in $b/text() satisfies $ta = $tb)) then <match/> else ()");
    ("q11-and-or",
     "for $x in //book return if ((some $a in $x/author satisfies true()) and ((some $t in $x/title satisfies true()) or (some $y in $x/year satisfies true()))) then $x/title else ()");
    ("q12-not",
     "for $x in //article return if (not(some $v in $x/volume satisfies true())) then <novolume/> else ()");
    ("q13-multistep", "for $w in /dblp/article/author return $w");
    ("q14-deep-descendant", "for $np in //NP return for $n in $np//NN return $n");
    ("q15-sequence",
     "(for $v in //volume return $v), <sep/>, (for $n in //name return $n), text { \"end\" }");
    ("q16-mixed",
     "<summary>{ for $x in //article return if (some $v in $x/volume satisfies true()) then <hit>{ for $a in $x/author return $a, $x/volume }</hit> else () }</summary>") ]

let efficiency_queries =
  [ (* Everyone finishes; the optimized engines are just faster. *)
    ("test1-structural",
     "<titles>{ for $x in //article return for $t in $x/title return $t }</titles>");
    (* A rare label: index-based selection answers from a handful of
       probes; engines without the label index scan the whole relation. *)
    ("test2-needle", "for $v in //volume return for $t in $v/text() return $t");
    (* Example 6 at scale, written in the order that hurts structural
       planners: the highly selective volume-value test comes
       syntactically last, so engines that cannot reorder existential
       relations pay the author join for every article. *)
    ("test3-semijoin",
     "for $x in //article return for $y in $x//author return if ((some $v in $x/volume satisfies true()) and (some $d in //inproceedings satisfies true())) then $y else ()");
    (* Non-existent node label: statistics/index engines answer from the
       label lookup alone. *)
    ("test4-nolabel", "for $x in //proceedings return for $y in $x//cite return $y");
    (* Two nested, yet unrelated, for-loops: two joins with very
       different selectivities — the volume test is rare-but-satisfiable,
       the other loop searches every author for a child label that never
       occurs.  Exact statistics prove the second join empty; an engine
       with unlucky (inverted) estimates, or none, grinds through the
       author x probe product for every article. *)
    ("test5-unrelated",
     "for $x in //article return if ((some $v in $x/volume satisfies true()) and (some $y in //author satisfies (some $q in $y/text() satisfies $q = \"Erds Renyi\"))) then $x/title else ()") ]

let example6 =
  "for $x in //article return if (some $v in $x/volume satisfies true()) then (for $y in \
   $x//author return $y) else ()"

let parsed queries =
  List.map (fun (name, src) -> (name, Xqdb_xq.Xq_parser.parse src)) queries
