(** The course's grading system and submission & test infrastructure
    (Section 3 of the paper), in offline form.

    A {e submission} stands for one team's engine: a name, an engine
    configuration (which optimizations their code implements), and the
    lateness of each milestone.  The {e test system} runs a submission
    through the public correctness tests and the efficiency suite and
    produces the report the course mailed back "within half a day":
    run-time errors, answers to the public queries in case they differ,
    and the timing.

    Grading follows the paper's rules, instantiated with concrete
    numbers where the paper gives none:

    - the best grade is 100 points, obtainable solely in the final exam;
    - admission to the exam requires a runnable engine (all public
      correctness tests pass); passing requires at least 50 exam points;
    - a successful milestone submission by the early-bird review brings
      2 points; the penalty for missed deadlines grows with the weeks of
      delay (here: triangular, -1, -3, -6, ...);
    - the 10% most scalable engines get +6 bonus points, the next 15%
      +3 — "as a result, 25% of the students that successfully passed
      the exam got more than 100 points in total". *)

type submission = {
  team : string;
  config : Xqdb_core.Engine_config.t;
  weeks_late : int array;  (** per milestone, length 4, 0 = early bird *)
  exam_points : int;  (** 0..100 *)
}

val submission :
  ?weeks_late:int array -> ?exam_points:int -> string -> Xqdb_core.Engine_config.t -> submission

type test_report = {
  subject : string;
  correctness_failures : (string * string * string) list;
      (** (document, query, diff detail) — empty means runnable *)
  efficiency_total : int;  (** censored-capped page I/Os, lower is better *)
  body : string;  (** the notification e-mail text *)
}

val test_submission :
  ?scale:int -> ?budget:int -> submission -> test_report
(** Run the submission & test system for one submission. *)

type grade = {
  team : string;
  admitted : bool;  (** runnable engine handed in *)
  milestone_points : int;
  scalability_bonus : int;
  exam_points : int;
  total : int;
  passed : bool;  (** admitted && exam_points >= 50 *)
}

val grade_course : ?scale:int -> ?budget:int -> submission list -> grade list
(** Test every submission, award bonus points by the efficiency ranking,
    and compute final grades, best first. *)

val render : grade list -> string
(** The course's leaderboard. *)
