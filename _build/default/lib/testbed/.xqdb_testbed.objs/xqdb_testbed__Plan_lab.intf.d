lib/testbed/plan_lab.mli: Xqdb_tpm Xqdb_xq
