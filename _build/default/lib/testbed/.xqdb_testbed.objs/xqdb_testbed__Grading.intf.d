lib/testbed/grading.mli: Xqdb_core
