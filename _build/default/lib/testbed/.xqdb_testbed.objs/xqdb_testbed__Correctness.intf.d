lib/testbed/correctness.mli: Xqdb_core Xqdb_xml
