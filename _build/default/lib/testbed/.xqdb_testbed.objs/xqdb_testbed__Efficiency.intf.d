lib/testbed/efficiency.mli: Xqdb_core
