lib/testbed/efficiency.ml: Buffer List Printf Queries String Xqdb_core Xqdb_workload
