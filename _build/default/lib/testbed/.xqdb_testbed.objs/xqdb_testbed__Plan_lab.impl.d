lib/testbed/plan_lab.ml: Buffer List Printf Queries String Sys Xqdb_core Xqdb_optimizer Xqdb_physical Xqdb_storage Xqdb_tpm Xqdb_workload Xqdb_xasr Xqdb_xq
