lib/testbed/queries.ml: List Xqdb_xq
