lib/testbed/grading.ml: Array Buffer Correctness Efficiency List Printf Xqdb_core
