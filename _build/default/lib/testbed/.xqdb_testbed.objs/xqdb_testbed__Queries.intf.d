lib/testbed/queries.mli: Xqdb_xq
