(** The testbed's query sets.

    The paper: "For each engine and milestone, the correctness tests used
    all aforementioned XML documents and up to 16 complex XQ queries.
    These queries covered fairly all XQ constructs and combinations of
    them."  [public_queries] is such a set of 16.

    "For processing five secret XQ queries on the DBLP document ... We
    chose queries that admit query plans with costs varying by orders of
    magnitude ... The queries resemble in spirit the example query used
    in Section 2 to explain milestone 4."  [efficiency_queries] is such a
    set of 5, with the two specifics Figure 7 calls out: test 4 uses a
    non-existent node label, and test 5 has two nested, yet unrelated,
    for-loops whose joins have very different selectivities. *)

val public_queries : (string * string) list
(** (name, XQ source), 16 entries. *)

val efficiency_queries : (string * string) list
(** (name, XQ source), 5 entries, meant for DBLP-like data. *)

val example6 : string
(** The milestone-4 example query of Section 2 (authors of articles that
    have information on proceedings volume). *)

val parsed : (string * string) list -> (string * Xqdb_xq.Xq_ast.query) list
