(** Correctness testing: every engine configuration against the
    milestone-1 reference, on every testbed document and public query.
    This is the automated half of the course's submission & test system
    (the other half was humans conducting milestone reviews). *)

type outcome = {
  doc : string;
  query : string;
  engine : string;
  passed : bool;
  detail : string;  (** diff summary on failure *)
}

val documents : unit -> (string * Xqdb_xml.Xml_tree.forest) list
(** figure2, tiny, scaled DBLP, scaled Treebank. *)

val run :
  ?configs:Xqdb_core.Engine_config.t list ->
  ?documents:(string * Xqdb_xml.Xml_tree.forest) list ->
  ?queries:(string * string) list ->
  unit ->
  outcome list

val failures : outcome list -> outcome list
val summary : outcome list -> string
