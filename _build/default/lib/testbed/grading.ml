module Config = Xqdb_core.Engine_config

type submission = {
  team : string;
  config : Config.t;
  weeks_late : int array;
  exam_points : int;
}

let submission ?(weeks_late = [| 0; 0; 0; 0 |]) ?(exam_points = 75) team config =
  if Array.length weeks_late <> 4 then
    invalid_arg "Grading.submission: four milestones";
  { team; config; weeks_late; exam_points }

type test_report = {
  subject : string;
  correctness_failures : (string * string * string) list;
  efficiency_total : int;
  body : string;
}

let test_submission ?(scale = 250) ?(budget = 50_000) sub =
  let outcomes = Correctness.run ~configs:[sub.config] () in
  let correctness_failures =
    List.map
      (fun (o : Correctness.outcome) -> (o.Correctness.doc, o.Correctness.query, o.Correctness.detail))
      (Correctness.failures outcomes)
  in
  let table = Efficiency.run ~configs:[sub.config] ~scale ~budget () in
  let efficiency_total = Efficiency.total table sub.config.Config.name in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "To: team %s\nSubject: test results for engine %s\n\n" sub.team
       sub.config.Config.name);
  (match correctness_failures with
   | [] -> Buffer.add_string buf "All public correctness tests passed.\n"
   | fails ->
     Buffer.add_string buf
       (Printf.sprintf "%d public correctness tests FAILED:\n" (List.length fails));
     List.iter
       (fun (doc, query, detail) ->
         Buffer.add_string buf (Printf.sprintf "  %s / %s: %s\n" doc query detail))
       fails);
  Buffer.add_string buf "\nEfficiency tests (page I/Os, * = over budget):\n";
  Buffer.add_string buf (Efficiency.render table);
  { subject = Printf.sprintf "test results for team %s" sub.team;
    correctness_failures;
    efficiency_total;
    body = Buffer.contents buf }

type grade = {
  team : string;
  admitted : bool;
  milestone_points : int;
  scalability_bonus : int;
  exam_points : int;
  total : int;
  passed : bool;
}

(* Early bird: +2; weeks late: triangular penalty (-1, -3, -6, ...). *)
let milestone_points weeks_late =
  Array.fold_left
    (fun acc weeks -> if weeks <= 0 then acc + 2 else acc - (weeks * (weeks + 1) / 2))
    0 weeks_late

let grade_course ?scale ?budget submissions =
  let reports = List.map (fun sub -> (sub, test_submission ?scale ?budget sub)) submissions in
  (* Scalability ranking among the admitted engines. *)
  let admitted =
    List.filter (fun (_, report) -> report.correctness_failures = []) reports
  in
  let ranked =
    List.sort (fun (_, a) (_, b) -> compare a.efficiency_total b.efficiency_total) admitted
  in
  let n = List.length ranked in
  let bonus_of (sub : submission) =
    match List.mapi (fun i ((s : submission), _) -> (s.team, i)) ranked |> List.assoc_opt sub.team with
    | None -> 0
    | Some rank ->
      (* rank is 0-based; top 10% -> +6, next 15% -> +3. *)
      if 10 * (rank + 1) <= n then 6 else if 4 * (rank + 1) <= n then 3 else 0
  in
  let grades =
    List.map
      (fun ((sub : submission), report) ->
        let admitted = report.correctness_failures = [] in
        let milestone_points = milestone_points sub.weeks_late in
        let scalability_bonus = if admitted then bonus_of sub else 0 in
        let exam_points = if admitted then sub.exam_points else 0 in
        let total = max 0 (milestone_points + scalability_bonus + exam_points) in
        { team = sub.team;
          admitted;
          milestone_points;
          scalability_bonus;
          exam_points;
          total;
          passed = admitted && exam_points >= 50 })
      reports
  in
  List.sort (fun a b -> compare b.total a.total) grades

let render grades =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %9s %10s %6s %6s %6s  %s\n" "Team" "milestone" "bonus" "exam"
       "total" "passed" "status");
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %9d %10d %6d %6d %6s  %s\n" g.team g.milestone_points
           g.scalability_bonus g.exam_points g.total
           (if g.passed then "yes" else "no")
           (if not g.admitted then "not admitted (engine not runnable)"
            else if g.total > 100 then "over 100 points"
            else "")))
    grades;
  Buffer.contents buf
