type node =
  | Elem of string * node list
  | Text of string

type forest = node list

let elem label children = Elem (label, children)
let text s = Text s

let rec equal n1 n2 =
  match n1, n2 with
  | Text s1, Text s2 -> String.equal s1 s2
  | Elem (l1, c1), Elem (l2, c2) -> String.equal l1 l2 && equal_forest c1 c2
  | Text _, Elem _ | Elem _, Text _ -> false

and equal_forest f1 f2 =
  match f1, f2 with
  | [], [] -> true
  | n1 :: r1, n2 :: r2 -> equal n1 n2 && equal_forest r1 r2
  | [], _ :: _ | _ :: _, [] -> false

let text_content n =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Elem (_, children) -> List.iter go children
  in
  go n;
  Buffer.contents buf

let rec size = function
  | Text _ -> 1
  | Elem (_, children) -> List.fold_left (fun acc c -> acc + size c) 1 children

let rec depth = function
  | Text _ -> 1
  | Elem (_, children) ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let count_labels forest =
  let table = Hashtbl.create 16 in
  let bump label =
    let n = try Hashtbl.find table label with Not_found -> 0 in
    Hashtbl.replace table label (n + 1)
  in
  let rec go = function
    | Text _ -> ()
    | Elem (label, children) ->
      bump label;
      List.iter go children
  in
  List.iter go forest;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) table []
  |> List.sort compare
