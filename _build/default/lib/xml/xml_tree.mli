(** Plain XML trees.

    This is the parse result of {!Xml_parser} and the result type of query
    evaluation: an ordered forest of element and text nodes.  The XQ
    fragment of the paper has no attributes, comments or processing
    instructions, so neither do we; the parser skips them. *)

type node =
  | Elem of string * node list  (** element with label and children *)
  | Text of string  (** text node *)

type forest = node list

val elem : string -> node list -> node
val text : string -> node

val equal : node -> node -> bool
val equal_forest : forest -> forest -> bool

(** [text_content n] is the concatenation of all text descendants of [n],
    in document order. *)
val text_content : node -> string

(** [size n] is the number of nodes in the tree rooted at [n]. *)
val size : node -> int

(** [depth n] is the length of the longest root-to-leaf path, where a
    single node has depth 1. *)
val depth : node -> int

(** [count_labels n] folds all element labels of the tree into an
    association list label -> number of occurrences. *)
val count_labels : forest -> (string * int) list
