let escape_text s =
  let needs_escape = String.exists (fun c -> c = '<' || c = '>' || c = '&') s in
  if not needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '&' -> Buffer.add_string buf "&amp;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let add_node buf node =
  let rec go = function
    | Xml_tree.Text s -> Buffer.add_string buf (escape_text s)
    | Xml_tree.Elem (label, []) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf label;
      Buffer.add_string buf "/>"
    | Xml_tree.Elem (label, children) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf label;
      Buffer.add_char buf '>';
      List.iter go children;
      Buffer.add_string buf "</";
      Buffer.add_string buf label;
      Buffer.add_char buf '>'
  in
  go node

let to_string node =
  let buf = Buffer.create 256 in
  add_node buf node;
  Buffer.contents buf

let forest_to_string forest =
  let buf = Buffer.create 256 in
  List.iter (add_node buf) forest;
  Buffer.contents buf

let rec pp ppf = function
  | Xml_tree.Text s -> Format.pp_print_string ppf (escape_text s)
  | Xml_tree.Elem (label, []) -> Format.fprintf ppf "<%s/>" label
  | Xml_tree.Elem (label, [Xml_tree.Text s]) ->
    Format.fprintf ppf "<%s>%s</%s>" label (escape_text s) label
  | Xml_tree.Elem (label, children) ->
    Format.fprintf ppf "@[<v 2><%s>@,%a@]@,</%s>" label pp_children children label

and pp_children ppf children =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf children

let pp_forest ppf forest = pp_children ppf forest
