type kind =
  | Root
  | Element
  | Text

type t = {
  count : int;
  kinds : kind array;
  values : string array;
  nins : int array;
  nouts : int array;
  parents : int array;
  lasts : int array;  (* largest preorder index in the node's subtree *)
}

type node = int

let of_forest forest =
  let count =
    1 + List.fold_left (fun acc n -> acc + Xml_tree.size n) 0 forest
  in
  let kinds = Array.make count Root in
  let values = Array.make count "" in
  let nins = Array.make count 0 in
  let nouts = Array.make count 0 in
  let parents = Array.make count (-1) in
  let lasts = Array.make count 0 in
  let next_index = ref 0 in
  let tag_counter = ref 0 in
  (* Assign one node; returns its preorder index. *)
  let rec assign parent_index node =
    let i = !next_index in
    incr next_index;
    incr tag_counter;
    parents.(i) <- parent_index;
    nins.(i) <- !tag_counter;
    (match node with
     | Xml_tree.Text s ->
       kinds.(i) <- Text;
       values.(i) <- s
     | Xml_tree.Elem (label, children) ->
       kinds.(i) <- Element;
       values.(i) <- label;
       List.iter (fun c -> ignore (assign i c)) children);
    incr tag_counter;
    nouts.(i) <- !tag_counter;
    lasts.(i) <- !next_index - 1;
    i
  in
  (* The virtual root. *)
  next_index := 1;
  incr tag_counter;
  nins.(0) <- !tag_counter;
  List.iter (fun n -> ignore (assign 0 n)) forest;
  incr tag_counter;
  nouts.(0) <- !tag_counter;
  lasts.(0) <- count - 1;
  { count; kinds; values; nins; nouts; parents; lasts }

let of_node node = of_forest [node]

let count t = t.count
let root _t = 0
let kind t v = t.kinds.(v)
let value t v = t.values.(v)
let nin t v = t.nins.(v)
let nout t v = t.nouts.(v)
let parent t v = if v = 0 then None else Some t.parents.(v)
let subtree_last t v = t.lasts.(v)

let children t v =
  (* The children are v+1, then each sibling skips over its own subtree. *)
  let rec go i acc =
    if i > t.lasts.(v) then List.rev acc else go (t.lasts.(i) + 1) (i :: acc)
  in
  go (v + 1) []

let descendants t v =
  let rec go i acc = if i > t.lasts.(v) then List.rev acc else go (i + 1) (i :: acc) in
  go (v + 1) []

let node_by_in t target =
  (* nins is strictly increasing in preorder index. *)
  let rec search lo hi =
    if lo > hi then raise Not_found
    else begin
      let mid = (lo + hi) / 2 in
      let v = t.nins.(mid) in
      if v = target then mid
      else if v < target then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (t.count - 1)

let depth t v =
  let rec go v acc = if v = 0 then acc else go t.parents.(v) (acc + 1) in
  go v 0

let rec to_tree t v =
  match t.kinds.(v) with
  | Text -> Xml_tree.Text t.values.(v)
  | Element -> Xml_tree.Elem (t.values.(v), List.map (to_tree t) (children t v))
  | Root -> invalid_arg "Xml_doc.to_tree: virtual root"

let to_forest t v = List.map (to_tree t) (children t v)

let pp_labeled ppf t =
  let rec go indent v =
    let name =
      match t.kinds.(v) with
      | Root -> "#root"
      | Element | Text -> t.values.(v)
    in
    Format.fprintf ppf "%s%d %s %d@." (String.make indent ' ') t.nins.(v) name t.nouts.(v);
    List.iter (go (indent + 2)) (children t v)
  in
  go 0 0
