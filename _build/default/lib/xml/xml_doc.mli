(** Labeled in-memory documents.

    An {!Xml_tree.forest} is compiled into a flat, array-backed document in
    which every node carries the [in]/[out] numbering of the paper's
    Figure 2: a counter is incremented at every opening and at every
    closing tag (text nodes count as if they were tagged), [in] is the
    value at the opening and [out] the value at the closing.  Node 0 is the
    virtual document root ([in] = 1), whose children are the top-level
    nodes of the forest.

    Nodes are identified by their preorder index, so the descendants of a
    node form a contiguous index range — the array mirror of the XASR
    interval property [x.in < y.in && y.out < x.out]. *)

type kind =
  | Root
  | Element
  | Text

type t

type node = int
(** Preorder index into the document; [0] is the virtual root. *)

val of_forest : Xml_tree.forest -> t
val of_node : Xml_tree.node -> t

val count : t -> int
(** Total number of nodes, including the virtual root. *)

val root : t -> node
val kind : t -> node -> kind

val value : t -> node -> string
(** Element label, text content, or [""] for the root. *)

val nin : t -> node -> int
val nout : t -> node -> int

val parent : t -> node -> node option
val children : t -> node -> node list

val subtree_last : t -> node -> node
(** Largest preorder index inside the subtree of the node; the
    descendants of [v] are exactly the indexes [v+1 .. subtree_last t v]. *)

val descendants : t -> node -> node list

val node_by_in : t -> int -> node
(** Inverse of {!nin}.  @raise Not_found if no node has this [in] value. *)

val depth : t -> node -> int
(** Number of ancestors: the virtual root has depth 0. *)

val to_tree : t -> node -> Xml_tree.node
(** Copy the subtree below a node back into a plain tree.
    @raise Invalid_argument on the virtual root; use {!to_forest}. *)

val to_forest : t -> node -> Xml_tree.forest
(** Like {!to_tree} but a node's children forest; defined on the root. *)

val pp_labeled : Format.formatter -> t -> unit
(** Render the document with in/out labels, reproducing the style of the
    paper's Figure 2 (e.g. ["2 journal 17"]). *)
