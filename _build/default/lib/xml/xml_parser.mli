(** A small, robust XML parser.

    Two interfaces are provided:
    - an event (SAX-style) interface, used by the shredder of milestone 2 so
      that documents can be loaded into the XASR store without ever
      materializing a DOM tree;
    - a tree interface building {!Xml_tree.forest}s, used by the in-memory
      evaluator of milestone 1 and by the test suite.

    Supported syntax: elements, text, entity references ([&lt; &gt; &amp;
    &quot; &apos;] and numeric [&#NN;]/[&#xHH;]), CDATA sections,
    self-closing tags.  Attributes, comments, processing instructions, XML
    declarations and DOCTYPEs are parsed and skipped: the XQ data model of
    the paper has element and text nodes only. *)

type event =
  | Start_tag of string
  | End_tag of string
  | Text of string

exception Parse_error of string
(** Raised on malformed input; the message includes a byte offset. *)

(** [iter_events input f] scans [input] and calls [f] on each event in
    document order.  Whitespace-only text between elements is dropped when
    [strip_ws] is [true] (the default), matching the data-oriented
    documents of the paper's testbed. *)
val iter_events : ?strip_ws:bool -> string -> (event -> unit) -> unit

(** [parse_forest input] parses a sequence of top-level nodes. *)
val parse_forest : ?strip_ws:bool -> string -> Xml_tree.forest

(** [parse input] parses a document with a single top-level element. *)
val parse : ?strip_ws:bool -> string -> Xml_tree.node

val parse_file : ?strip_ws:bool -> string -> Xml_tree.forest
