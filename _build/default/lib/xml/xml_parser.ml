type event =
  | Start_tag of string
  | End_tag of string
  | Text of string

exception Parse_error of string

let fail pos fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))) fmt

(* A cursor over the input string.  All scanning functions take and return
   explicit positions; the only mutable state is the caller's. *)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let scan_name input pos =
  let n = String.length input in
  if pos >= n || not (is_name_start input.[pos]) then fail pos "expected a name";
  let rec go i = if i < n && is_name_char input.[i] then go (i + 1) else i in
  let stop = go (pos + 1) in
  (String.sub input pos (stop - pos), stop)

let skip_ws input pos =
  let n = String.length input in
  let rec go i = if i < n && is_ws input.[i] then go (i + 1) else i in
  go pos

(* Decode one entity reference starting at the '&'. *)
let scan_entity input pos buf =
  let n = String.length input in
  let semi =
    match String.index_from_opt input pos ';' with
    | Some i when i - pos <= 12 -> i
    | Some _ | None -> fail pos "unterminated entity reference"
  in
  let body = String.sub input (pos + 1) (semi - pos - 1) in
  (match body with
   | "lt" -> Buffer.add_char buf '<'
   | "gt" -> Buffer.add_char buf '>'
   | "amp" -> Buffer.add_char buf '&'
   | "quot" -> Buffer.add_char buf '"'
   | "apos" -> Buffer.add_char buf '\''
   | _ ->
     if String.length body > 1 && body.[0] = '#' then begin
       let code =
         try
           if body.[1] = 'x' || body.[1] = 'X'
           then int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
           else int_of_string (String.sub body 1 (String.length body - 1))
         with Failure _ -> fail pos "bad character reference &%s;" body
       in
       if code < 0x80 then Buffer.add_char buf (Char.chr code)
       else begin
         (* Encode as UTF-8. *)
         let add c = Buffer.add_char buf (Char.chr c) in
         if code < 0x800 then begin
           add (0xC0 lor (code lsr 6));
           add (0x80 lor (code land 0x3F))
         end else if code < 0x10000 then begin
           add (0xE0 lor (code lsr 12));
           add (0x80 lor ((code lsr 6) land 0x3F));
           add (0x80 lor (code land 0x3F))
         end else begin
           add (0xF0 lor (code lsr 18));
           add (0x80 lor ((code lsr 12) land 0x3F));
           add (0x80 lor ((code lsr 6) land 0x3F));
           add (0x80 lor (code land 0x3F))
         end
       end
     end
     else fail pos "unknown entity &%s;" body);
  ignore n;
  semi + 1

(* Skip past a construct introduced by "<!" or "<?" starting at [pos]
   pointing to the '<'. *)
let skip_markup input pos =
  let n = String.length input in
  let find_sub sub from =
    let m = String.length sub in
    let rec go i =
      if i + m > n then fail pos "unterminated markup"
      else if String.sub input i m = sub then i + m
      else go (i + 1)
    in
    go from
  in
  if pos + 3 < n && String.sub input pos 4 = "<!--" then find_sub "-->" (pos + 4)
  else if pos + 8 < n && String.sub input pos 9 = "<![CDATA[" then pos (* handled by caller *)
  else if pos + 1 < n && input.[pos + 1] = '?' then find_sub "?>" (pos + 2)
  else begin
    (* <!DOCTYPE ...> possibly with an internal subset in brackets. *)
    let rec go i depth =
      if i >= n then fail pos "unterminated declaration"
      else
        match input.[i] with
        | '<' -> go (i + 1) (depth + 1)
        | '[' -> go (i + 1) (depth + 1)
        | ']' -> go (i + 1) (depth - 1)
        | '>' -> if depth = 0 then i + 1 else go (i + 1) (depth - 1)
        | _ -> go (i + 1) depth
    in
    go (pos + 1) 0
  end

(* Skip attributes inside a start tag; returns the position of '>' or "/>". *)
let skip_attributes input pos =
  let n = String.length input in
  let rec go i =
    let i = skip_ws input i in
    if i >= n then fail pos "unterminated start tag"
    else
      match input.[i] with
      | '>' | '/' -> i
      | c when is_name_start c ->
        let _, i = scan_name input i in
        let i = skip_ws input i in
        if i >= n || input.[i] <> '=' then fail i "expected '=' in attribute"
        else begin
          let i = skip_ws input (i + 1) in
          if i >= n || (input.[i] <> '"' && input.[i] <> '\'') then
            fail i "expected quoted attribute value";
          let quote = input.[i] in
          match String.index_from_opt input (i + 1) quote with
          | None -> fail i "unterminated attribute value"
          | Some j -> go (j + 1)
        end
      | c -> fail i "unexpected character %C in tag" c
  in
  go pos

let is_blank s =
  let rec go i = i >= String.length s || (is_ws s.[i] && go (i + 1)) in
  go 0

let iter_events ?(strip_ws = true) input f =
  let n = String.length input in
  let depth = ref 0 in
  let text_buf = Buffer.create 256 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if not (strip_ws && is_blank s) then f (Text s)
    end
  in
  let rec go pos =
    if pos >= n then begin
      flush_text ();
      if !depth <> 0 then fail pos "unexpected end of input: %d unclosed tag(s)" !depth
    end
    else if input.[pos] = '<' then begin
      if pos + 8 < n && String.sub input pos 9 = "<![CDATA[" then begin
        let stop =
          let rec find i =
            if i + 3 > n then fail pos "unterminated CDATA section"
            else if String.sub input i 3 = "]]>" then i
            else find (i + 1)
          in
          find (pos + 9)
        in
        Buffer.add_string text_buf (String.sub input (pos + 9) (stop - pos - 9));
        go (stop + 3)
      end
      else if pos + 1 < n && (input.[pos + 1] = '!' || input.[pos + 1] = '?') then begin
        flush_text ();
        go (skip_markup input pos)
      end
      else if pos + 1 < n && input.[pos + 1] = '/' then begin
        flush_text ();
        let name, p = scan_name input (pos + 2) in
        let p = skip_ws input p in
        if p >= n || input.[p] <> '>' then fail p "expected '>' in end tag";
        decr depth;
        if !depth < 0 then fail pos "end tag </%s> without matching start tag" name;
        f (End_tag name);
        go (p + 1)
      end
      else begin
        flush_text ();
        let name, p = scan_name input (pos + 1) in
        let p = skip_attributes input p in
        if input.[p] = '/' then begin
          if p + 1 >= n || input.[p + 1] <> '>' then fail p "expected '/>'";
          f (Start_tag name);
          f (End_tag name);
          go (p + 2)
        end
        else begin
          incr depth;
          f (Start_tag name);
          go (p + 1)
        end
      end
    end
    else if input.[pos] = '&' then go (scan_entity input pos text_buf)
    else begin
      Buffer.add_char text_buf input.[pos];
      go (pos + 1)
    end
  in
  go 0

let parse_forest ?strip_ws input =
  (* Stack of (label, reversed children built so far). *)
  let stack = ref [] in
  let top_rev = ref [] in
  let add node =
    match !stack with
    | [] -> top_rev := node :: !top_rev
    | (label, children) :: rest -> stack := (label, node :: children) :: rest
  in
  let handle = function
    | Start_tag name -> stack := (name, []) :: !stack
    | End_tag name ->
      (match !stack with
       | (label, children) :: rest ->
         if not (String.equal label name) then
           raise (Parse_error (Printf.sprintf "mismatched tags: <%s> closed by </%s>" label name));
         stack := rest;
         add (Xml_tree.Elem (label, List.rev children))
       | [] -> raise (Parse_error (Printf.sprintf "stray end tag </%s>" name)))
    | Text s -> add (Xml_tree.Text s)
  in
  iter_events ?strip_ws input handle;
  List.rev !top_rev

let parse ?strip_ws input =
  match parse_forest ?strip_ws input with
  | [root] -> root
  | [] -> raise (Parse_error "empty document")
  | _ :: _ -> raise (Parse_error "more than one top-level node")

let parse_file ?strip_ws path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_forest ?strip_ws content
