lib/xml/xml_tree.mli:
