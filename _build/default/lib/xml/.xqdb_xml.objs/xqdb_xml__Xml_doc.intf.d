lib/xml/xml_doc.mli: Format Xml_tree
