lib/xml/xml_print.ml: Buffer Format List String Xml_tree
