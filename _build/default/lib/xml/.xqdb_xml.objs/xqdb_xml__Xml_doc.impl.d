lib/xml/xml_doc.ml: Array Format List String Xml_tree
