lib/xml/xml_parser.mli: Xml_tree
