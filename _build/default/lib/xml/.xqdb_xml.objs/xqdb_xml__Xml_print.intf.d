lib/xml/xml_print.mli: Format Xml_tree
