lib/xml/xml_tree.ml: Buffer Hashtbl List String
