lib/xml/xml_parser.ml: Buffer Char Format List Printf String Xml_tree
