(** Serialization of XML trees.

    [to_string] produces the canonical compact form used throughout the
    testbed to compare engine outputs; [pp] is an indented pretty-printer
    for human consumption. *)

val escape_text : string -> string
(** Escape ['<'], ['>'] and ['&'] for use in text content. *)

val to_string : Xml_tree.node -> string
val forest_to_string : Xml_tree.forest -> string

val pp : Format.formatter -> Xml_tree.node -> unit
val pp_forest : Format.formatter -> Xml_tree.forest -> unit
