lib/workload/docs.mli: Xqdb_xml
