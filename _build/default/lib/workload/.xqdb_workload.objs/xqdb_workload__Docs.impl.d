lib/workload/docs.ml: Xqdb_xml
