lib/workload/dblp_gen.mli: Xqdb_xml
