lib/workload/dblp_gen.ml: Array List Printf Random Xqdb_xml
