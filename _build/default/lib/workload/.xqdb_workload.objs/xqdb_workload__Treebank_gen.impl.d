lib/workload/treebank_gen.ml: Array List Random Xqdb_xml
