lib/workload/treebank_gen.mli: Xqdb_xml
