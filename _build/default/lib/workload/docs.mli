(** The fixed documents of the testbed.

    [figure2] is the exact example document of the paper's Figure 2 (a
    journal with two author names and a title); [tiny] is the "small
    hand-made document of several kilobytes" with mixed content, odd
    labels and corner cases the correctness tests poke at. *)

val figure2 : Xqdb_xml.Xml_tree.node
val figure2_string : string

val tiny : Xqdb_xml.Xml_tree.node
val tiny_string : string
