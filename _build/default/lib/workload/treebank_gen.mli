(** Synthetic TREEBANK-like documents: the deeply nested parse-tree data
    of the paper's testbed (they used the 80 MB Penn Treebank encoding).

    Each sentence is a random constituency tree generated from a tiny
    phrase grammar; recursion through NP/VP/PP/SBAR productions yields
    the deep nesting (tens of levels) that separates descendant-axis
    strategies, which is what the original data contributes to the
    experiments. *)

type params = {
  sentences : int;
  seed : int;
  max_depth : int;  (** recursion cap per sentence *)
}

val default : params
(** 150 sentences, depth cap 24. *)

val scaled : int -> params

val generate : params -> Xqdb_xml.Xml_tree.node
(** The [<treebank>] element. *)

val generate_string : params -> string
