module Tree = Xqdb_xml.Xml_tree

let figure2 =
  Tree.elem "journal"
    [ Tree.elem "authors"
        [Tree.elem "name" [Tree.text "Ana"]; Tree.elem "name" [Tree.text "Bob"]];
      Tree.elem "title" [Tree.text "DB"] ]

let figure2_string = Xqdb_xml.Xml_print.to_string figure2

let tiny =
  Tree.elem "library"
    [ Tree.elem "shelf"
        [ Tree.elem "book"
            [ Tree.elem "title" [Tree.text "Foundations of Databases"];
              Tree.elem "author" [Tree.text "Abiteboul"];
              Tree.elem "author" [Tree.text "Hull"];
              Tree.elem "author" [Tree.text "Vianu"] ];
          Tree.elem "book"
            [ Tree.elem "title" [Tree.text "Principles of DBS"];
              Tree.elem "author" [Tree.text "Ullman"] ];
          Tree.elem "empty-book" [] ];
      Tree.elem "shelf"
        [ Tree.elem "note"
            [ Tree.text "mixed ";
              Tree.elem "b" [Tree.text "content"];
              Tree.text " here" ];
          Tree.elem "deep"
            [Tree.elem "deep" [Tree.elem "deep" [Tree.elem "leaf" [Tree.text "bottom"]]]] ];
      Tree.elem "title" [Tree.text "The Library"] ]

let tiny_string = Xqdb_xml.Xml_print.to_string tiny
