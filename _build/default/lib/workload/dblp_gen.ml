module Tree = Xqdb_xml.Xml_tree

type params = {
  articles : int;
  inproceedings : int;
  seed : int;
  authors_mean : int;
  volume_fraction : float;
  distinct_authors : int;
}

let default =
  { articles = 400;
    inproceedings = 200;
    seed = 20060630;  (* the workshop date *)
    authors_mean = 3;
    volume_fraction = 0.1;
    distinct_authors = 120 }

let scaled n =
  { default with
    articles = max 1 (2 * n / 3);
    inproceedings = max 1 (n / 3) }

let first_names =
  [| "Ana"; "Bob"; "Carla"; "Dan"; "Eva"; "Felix"; "Gina"; "Hugo"; "Iris"; "Jan";
     "Katrin"; "Leo"; "Mara"; "Nils"; "Olga"; "Paul"; "Queenie"; "Rosa"; "Sven"; "Tina" |]

let last_names =
  [| "Koch"; "Olteanu"; "Scherzinger"; "Meier"; "Schmidt"; "Weber"; "Fischer"; "Wagner";
     "Becker"; "Hoffmann"; "Schulz"; "Keller"; "Richter"; "Wolf"; "Neumann"; "Braun" |]

let title_words =
  [| "Efficient"; "Scalable"; "Native"; "XML"; "Query"; "Processing"; "Algebraic";
     "Optimization"; "Storage"; "Indexing"; "Structural"; "Joins"; "Streams"; "Views";
     "Cost"; "Models"; "Evaluation"; "Fragments"; "Semantics"; "Automata" |]

let venues =
  [| "SIGMOD"; "VLDB"; "ICDE"; "PODS"; "EDBT"; "WebDB"; "XIME-P" |]

let pick state arr = arr.(Random.State.int state (Array.length arr))

let author_pool params state =
  Array.init params.distinct_authors (fun _ ->
      pick state first_names ^ " " ^ pick state last_names)

let publication params state pool kind index =
  let title =
    Printf.sprintf "%s %s %s %d" (pick state title_words) (pick state title_words)
      (pick state title_words) index
  in
  let author_count = 1 + Random.State.int state (2 * params.authors_mean - 1) in
  let authors =
    List.init author_count (fun _ -> Tree.elem "author" [Tree.text (pick state pool)])
  in
  let year =
    Tree.elem "year" [Tree.text (string_of_int (1985 + Random.State.int state 21))]
  in
  let venue_field =
    match kind with
    | `Article -> Tree.elem "journal" [Tree.text (pick state venues)]
    | `Inproceedings -> Tree.elem "booktitle" [Tree.text (pick state venues)]
  in
  let volume =
    match kind with
    | `Article when Random.State.float state 1.0 < params.volume_fraction ->
      [Tree.elem "volume" [Tree.text (string_of_int (1 + Random.State.int state 60))]]
    | `Article | `Inproceedings -> []
  in
  let label = match kind with
    | `Article -> "article"
    | `Inproceedings -> "inproceedings"
  in
  Tree.elem label
    ((Tree.elem "title" [Tree.text title] :: authors) @ [year; venue_field] @ volume)

let generate params =
  let state = Random.State.make [| params.seed |] in
  let pool = author_pool params state in
  let articles =
    List.init params.articles (fun i -> publication params state pool `Article i)
  in
  let inproceedings =
    List.init params.inproceedings (fun i ->
        publication params state pool `Inproceedings (params.articles + i))
  in
  Tree.elem "dblp" (articles @ inproceedings)

let generate_string params = Xqdb_xml.Xml_print.to_string (generate params)
