module Tree = Xqdb_xml.Xml_tree

type params = {
  sentences : int;
  seed : int;
  max_depth : int;
}

let default = { sentences = 150; seed = 19891213; max_depth = 24 }
let scaled n = { default with sentences = max 1 n }

let nouns = [| "students"; "queries"; "trees"; "joins"; "engines"; "indexes"; "plans" |]
let verbs = [| "optimize"; "evaluate"; "rewrite"; "store"; "merge"; "scan" |]
let determiners = [| "the"; "a"; "some"; "every" |]
let prepositions = [| "of"; "in"; "with"; "over" |]
let adjectives = [| "fast"; "nested"; "deep"; "lazy"; "clustered" |]

let pick state arr = arr.(Random.State.int state (Array.length arr))
let leaf label word = Tree.elem label [Tree.text word]

(* A tiny recursive constituency grammar.  Depth-limited; at the limit
   every phrase bottoms out in terminals. *)
let rec np state depth =
  if depth <= 0 then Tree.elem "NP" [leaf "NN" (pick state nouns)]
  else
    match Random.State.int state 4 with
    | 0 -> Tree.elem "NP" [leaf "DT" (pick state determiners); leaf "NN" (pick state nouns)]
    | 1 ->
      Tree.elem "NP"
        [ leaf "DT" (pick state determiners);
          leaf "JJ" (pick state adjectives);
          leaf "NN" (pick state nouns) ]
    | 2 -> Tree.elem "NP" [np state (depth - 1); pp state (depth - 1)]
    | _ -> Tree.elem "NP" [leaf "NN" (pick state nouns); sbar state (depth - 1)]

and pp state depth =
  Tree.elem "PP" [leaf "IN" (pick state prepositions); np state (depth - 1)]

and vp state depth =
  if depth <= 0 then Tree.elem "VP" [leaf "VB" (pick state verbs)]
  else
    match Random.State.int state 3 with
    | 0 -> Tree.elem "VP" [leaf "VB" (pick state verbs); np state (depth - 1)]
    | 1 -> Tree.elem "VP" [leaf "VB" (pick state verbs); pp state (depth - 1)]
    | _ -> Tree.elem "VP" [leaf "VB" (pick state verbs); np state (depth - 1); pp state (depth - 1)]

and sbar state depth =
  Tree.elem "SBAR" [leaf "IN" "that"; sentence state (depth - 1)]

and sentence state depth = Tree.elem "S" [np state (depth - 1); vp state (depth - 1)]

let generate params =
  let state = Random.State.make [| params.seed |] in
  Tree.elem "treebank"
    (List.init params.sentences (fun _ ->
         sentence state (4 + Random.State.int state (max 1 (params.max_depth - 4)))))

let generate_string params = Xqdb_xml.Xml_print.to_string (generate params)
