(** Synthetic DBLP-like documents: the shallow, wide bibliography data of
    the paper's testbed (they used the 250 MB DBLP dump and a 16 MB
    excerpt; we generate structurally equivalent data at configurable
    scale).

    Structural properties preserved, because the efficiency tests depend
    on them:
    - shallow: every publication is a depth-2 subtree of the root;
    - skewed label selectivities: {e many} author elements, {e few}
      volume elements ("an XML document with many authors and few
      articles that have information on proceedings volume", Example 6);
    - text-only leaves with repeating author names, so value joins have
      non-trivial selectivity. *)

type params = {
  articles : int;
  inproceedings : int;
  seed : int;
  authors_mean : int;  (** mean authors per publication (>= 1) *)
  volume_fraction : float;  (** fraction of articles carrying a volume *)
  distinct_authors : int;
}

val default : params
(** 400 articles, 200 inproceedings, ~3 authors each, 10% volumes. *)

val scaled : int -> params
(** [scaled n]: about [n] publications with the default mix. *)

val generate : params -> Xqdb_xml.Xml_tree.node
(** The [<dblp>] element. *)

val generate_string : params -> string
