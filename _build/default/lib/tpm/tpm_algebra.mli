(** The TPM algebra ("the professor's mistake"), milestone 3.

    TPM is not a query algebra in the usual sense: it embeds relational
    algebra over the XASR relation inside an imperative iteration
    construct.  A [relfor]

    {v relfor vartuple in xasr-alg return expression v}

    evaluates the relational expression — here kept in
    project-select-product normal form (PSX) — and iterates the
    expression body once per result tuple, binding the vartuple.

    The relational result must be (1) projected onto the bound
    variables' columns and (2) sorted hierarchically in document order,
    with duplicates removed; how a physical plan achieves this is the
    milestone 3/4 ordering story.

    Following the paper's suggested refinement, a vartuple entry carries
    both the [in] {e and} the [out] value of the bound node, so nested
    descendant steps need no extra self-join; the rewriter can be asked
    not to do this (see {!Rewrite}) to measure the cost of the naive
    encoding. *)

type field =
  | In
  | Out
  | Parent_in
  | Type_
  | Value

type col = {
  rel : string;  (** relation alias, e.g. ["J"] *)
  field : field;
}

type operand =
  | Ocol of col
  | Oint of int  (** an [in]/[out]/[parent_in] constant *)
  | Ostr of string  (** a label or text constant *)
  | Otype of Xqdb_xasr.Xasr.node_type
  | Oextern_in of Xqdb_xq.Xq_ast.var  (** [$x]: outer binding's [in] *)
  | Oextern_out of Xqdb_xq.Xq_ast.var  (** outer binding's [out] *)

type cmp =
  | Eq
  | Lt  (** strictly less *)
  | Gt

type pred = {
  left : operand;
  op : cmp;
  right : operand;
}

(** A variable binding produced by a PSX: the pair of columns
    ([rel.in], [rel.out]) that the vartuple entry for [var] projects. *)
type binding = {
  var : Xqdb_xq.Xq_ast.var;
  brel : string;
}

(** PSX normal form: [pi_bindings (sigma_preds (rel_1 x ... x rel_n))],
    all relations being copies of XASR under distinct aliases. *)
type psx = {
  bindings : binding list;
  preds : pred list;
  rels : string list;
}

(** TPM expressions: the non-relational shell around relfors. *)
type t =
  | Empty
  | Text_out of string
  | Constr of string * t
  | Seq of t * t
  | Out_var of Xqdb_xq.Xq_ast.var  (** emit the bound node's subtree *)
  | Relfor of relfor
  | Guard of Xqdb_xq.Xq_ast.cond * t
      (** residual condition outside the rewritable fragment ([or], [not],
          comparisons under them); evaluated navigationally per binding *)

and relfor = {
  vars : Xqdb_xq.Xq_ast.var list;  (** = [List.map (fun b -> b.var) source.bindings] *)
  source : psx;
  body : t;
}

val col : string -> field -> col
val field_name : field -> string
val equal_psx : psx -> psx -> bool
val equal : t -> t -> bool

val pred_rels : pred -> string list
(** Aliases mentioned by a predicate (0, 1 or 2). *)

val pred_externs : pred -> Xqdb_xq.Xq_ast.var list

val psx_externs : psx -> Xqdb_xq.Xq_ast.var list
(** Outer variables a PSX depends on, deduplicated. *)

val relfor_count : t -> int
val guard_count : t -> int

val rename_rel : old_alias:string -> alias:string -> psx -> psx
(** Alpha-rename one relation alias throughout a PSX. *)

(** Drop relations made redundant by an [R.in = $x] equality when the
    vartuple already carries [$x]'s in/out — the paper's "because
    [N1.in = $j = J.in] ... we can safely drop N1".  Used by the
    rewriter in carry-out mode and by tests. *)
val drop_redundant_self_rels : psx -> psx
