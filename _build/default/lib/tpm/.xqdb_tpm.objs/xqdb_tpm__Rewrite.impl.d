lib/tpm/rewrite.ml: List Printf Seq String Tpm_algebra Xqdb_xasr Xqdb_xq
