lib/tpm/tpm_algebra.mli: Xqdb_xasr Xqdb_xq
