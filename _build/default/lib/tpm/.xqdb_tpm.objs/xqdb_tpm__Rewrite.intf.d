lib/tpm/rewrite.mli: Tpm_algebra Xqdb_xq
