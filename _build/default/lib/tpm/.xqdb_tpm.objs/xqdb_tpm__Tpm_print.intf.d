lib/tpm/tpm_print.mli: Format Tpm_algebra
