lib/tpm/merge.mli: Tpm_algebra
