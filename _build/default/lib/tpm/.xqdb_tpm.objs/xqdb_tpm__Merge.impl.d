lib/tpm/merge.ml: List String Tpm_algebra
