lib/tpm/tpm_algebra.ml: List String Xqdb_xasr Xqdb_xq
