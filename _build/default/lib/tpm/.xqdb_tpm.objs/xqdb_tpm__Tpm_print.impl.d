lib/tpm/tpm_print.ml: Format List Printf String Tpm_algebra Xqdb_xasr Xqdb_xq
