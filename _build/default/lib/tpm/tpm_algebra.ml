type field =
  | In
  | Out
  | Parent_in
  | Type_
  | Value

type col = {
  rel : string;
  field : field;
}

type operand =
  | Ocol of col
  | Oint of int
  | Ostr of string
  | Otype of Xqdb_xasr.Xasr.node_type
  | Oextern_in of Xqdb_xq.Xq_ast.var
  | Oextern_out of Xqdb_xq.Xq_ast.var

type cmp =
  | Eq
  | Lt
  | Gt

type pred = {
  left : operand;
  op : cmp;
  right : operand;
}

type binding = {
  var : Xqdb_xq.Xq_ast.var;
  brel : string;
}

type psx = {
  bindings : binding list;
  preds : pred list;
  rels : string list;
}

type t =
  | Empty
  | Text_out of string
  | Constr of string * t
  | Seq of t * t
  | Out_var of Xqdb_xq.Xq_ast.var
  | Relfor of relfor
  | Guard of Xqdb_xq.Xq_ast.cond * t

and relfor = {
  vars : Xqdb_xq.Xq_ast.var list;
  source : psx;
  body : t;
}

let col rel field = { rel; field }

let field_name = function
  | In -> "in"
  | Out -> "out"
  | Parent_in -> "parent_in"
  | Type_ -> "type"
  | Value -> "value"

let equal_psx (p1 : psx) (p2 : psx) = p1 = p2
let equal (t1 : t) (t2 : t) = t1 = t2

let operand_rel = function
  | Ocol c -> Some c.rel
  | Oint _ | Ostr _ | Otype _ | Oextern_in _ | Oextern_out _ -> None

let operand_extern = function
  | Oextern_in x | Oextern_out x -> Some x
  | Ocol _ | Oint _ | Ostr _ | Otype _ -> None

let pred_rels p = List.filter_map operand_rel [p.left; p.right]
let pred_externs p = List.filter_map operand_extern [p.left; p.right]

let psx_externs psx =
  List.concat_map pred_externs psx.preds
  |> List.sort_uniq compare

let rec relfor_count = function
  | Empty | Text_out _ | Out_var _ -> 0
  | Constr (_, t) -> relfor_count t
  | Seq (t1, t2) -> relfor_count t1 + relfor_count t2
  | Guard (_, t) -> relfor_count t
  | Relfor r -> 1 + relfor_count r.body

let rec guard_count = function
  | Empty | Text_out _ | Out_var _ -> 0
  | Constr (_, t) -> guard_count t
  | Seq (t1, t2) -> guard_count t1 + guard_count t2
  | Guard (_, t) -> 1 + guard_count t
  | Relfor r -> guard_count r.body

let map_operand f = function
  | Ocol c -> f c
  | (Oint _ | Ostr _ | Otype _ | Oextern_in _ | Oextern_out _) as op -> op

let map_cols_psx f psx =
  { psx with
    preds =
      List.map
        (fun p -> { p with left = map_operand f p.left; right = map_operand f p.right })
        psx.preds }

let rename_rel ~old_alias ~alias psx =
  let rename_col c = Ocol (if String.equal c.rel old_alias then { c with rel = alias } else c) in
  let psx = map_cols_psx rename_col psx in
  { psx with
    bindings =
      List.map
        (fun b -> if String.equal b.brel old_alias then { b with brel = alias } else b)
        psx.bindings;
    rels = List.map (fun r -> if String.equal r old_alias then alias else r) psx.rels }

(* --- dropping redundant self-join relations --------------------------- *)

(* A non-binding alias [a] whose [in] is equated to [b.in] (or to an
   outer variable) denotes the same XASR tuple; its columns can be
   substituted away.  When the equation is with an outer variable, only
   the in/out columns are substitutable, so [a] must not be touched on
   other fields. *)

let fields_used_of psx alias =
  List.concat_map
    (fun p ->
      List.filter_map
        (function
          | Ocol c when String.equal c.rel alias -> Some c.field
          | Ocol _ | Oint _ | Ostr _ | Otype _ | Oextern_in _ | Oextern_out _ -> None)
        [p.left; p.right])
    psx.preds
  |> List.sort_uniq compare

(* Find an in-equality pinning [alias]: returns the substitution for its
   in and out columns. *)
let pinning_subst psx alias =
  let candidate p =
    let this c = (match c with Ocol { rel; field = In } -> String.equal rel alias | _ -> false) in
    let other =
      if this p.left then Some p.right else if this p.right then Some p.left else None
    in
    match (p.op, other) with
    | Eq, Some (Ocol { rel; field = In }) when not (String.equal rel alias) ->
      Some (Ocol (col rel In), Ocol (col rel Out), p)
    | Eq, Some (Oextern_in x) -> Some (Oextern_in x, Oextern_out x, p)
    | (Eq | Lt | Gt), _ -> None
  in
  List.find_map candidate psx.preds

let drop_redundant_self_rels psx =
  let bound = List.map (fun b -> b.brel) psx.bindings in
  let try_drop psx alias =
    if List.mem alias bound then None
    else
      match pinning_subst psx alias with
      | None -> None
      | Some (in_subst, out_subst, pin_pred) ->
        let used = fields_used_of psx alias in
        let substitutable =
          List.for_all (fun f -> f = In || f = Out) used
          ||
          (* Column-to-column pinning lets every field transfer. *)
          (match in_subst with Ocol _ -> true | _ -> false)
        in
        if not substitutable then None
        else begin
          let subst = function
            | { rel; field } when String.equal rel alias ->
              (match (field, in_subst) with
               | In, _ -> in_subst
               | Out, _ -> out_subst
               | (Parent_in | Type_ | Value), Ocol { rel = b; field = _ } ->
                 Ocol (col b field)
               | (Parent_in | Type_ | Value), _ -> assert false)
            | c -> Ocol c
          in
          let preds = List.filter (fun p -> p != pin_pred) psx.preds in
          let psx = map_cols_psx subst { psx with preds } in
          (* Drop trivially-true leftovers such as [x = x]. *)
          let preds =
            List.filter (fun p -> not (p.op = Eq && p.left = p.right)) psx.preds
          in
          Some { psx with preds; rels = List.filter (fun r -> not (String.equal r alias)) psx.rels }
        end
  in
  let rec fixpoint psx =
    let rec first_drop = function
      | [] -> None
      | alias :: rest ->
        (match try_drop psx alias with
         | Some psx' -> Some psx'
         | None -> first_drop rest)
    in
    match first_drop psx.rels with
    | Some psx' -> fixpoint psx'
    | None -> psx
  in
  fixpoint psx
