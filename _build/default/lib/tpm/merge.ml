module A = Tpm_algebra

(* Substitute references to the outer relfor's variables in the inner
   PSX's predicates: $xi becomes its binding relation's in column, and
   out($xi) its out column. *)
let substitute (outer_bindings : A.binding list) (psx : A.psx) =
  let subst operand =
    match operand with
    | A.Oextern_in x ->
      (match List.find_opt (fun b -> String.equal b.A.var x) outer_bindings with
       | Some b -> A.Ocol (A.col b.A.brel A.In)
       | None -> operand)
    | A.Oextern_out x ->
      (match List.find_opt (fun b -> String.equal b.A.var x) outer_bindings with
       | Some b -> A.Ocol (A.col b.A.brel A.Out)
       | None -> operand)
    | A.Ocol _ | A.Oint _ | A.Ostr _ | A.Otype _ -> operand
  in
  { psx with
    A.preds =
      List.map
        (fun p -> { p with A.left = subst p.A.left; right = subst p.A.right })
        psx.A.preds }

let merge_once ~(outer : A.relfor) ~(inner : A.relfor) =
  let inner_source = substitute outer.A.source.A.bindings inner.A.source in
  { A.vars = outer.A.vars @ inner.A.vars;
    source =
      { A.bindings = outer.A.source.A.bindings @ inner_source.A.bindings;
        preds = outer.A.source.A.preds @ inner_source.A.preds;
        rels = outer.A.source.A.rels @ inner_source.A.rels };
    body = inner.A.body }

let rec merge ?(drop_redundant = true) t =
  let merge_t = merge ~drop_redundant in
  match t with
  | A.Empty | A.Text_out _ | A.Out_var _ -> t
  | A.Constr (a, body) -> A.Constr (a, merge_t body)
  | A.Seq (t1, t2) -> A.Seq (merge_t t1, merge_t t2)
  | A.Guard (c, body) -> A.Guard (c, merge_t body)
  | A.Relfor r ->
    let body = merge_t r.A.body in
    (match body with
     | A.Relfor inner ->
       let merged = merge_once ~outer:{ r with body } ~inner in
       let source =
         if drop_redundant then A.drop_redundant_self_rels merged.A.source
         else merged.A.source
       in
       A.Relfor { merged with source }
     | A.Empty | A.Text_out _ | A.Out_var _ | A.Constr _ | A.Seq _ | A.Guard _ ->
       A.Relfor { r with body })
