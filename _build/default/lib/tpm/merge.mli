(** Relfor merging (milestone 3).

    Directly nested relfors merge into one, per the paper's rule:

    {v
    relfor (x1..xm) in PSX(A, phi, R) return
      relfor (y1..yn) in PSX(B, psi, S) return alpha
    |- relfor (x1..xm, y1..yn) in PSX(A++B, phi /\ psi', R++S) return alpha
    v}

    where [psi'] replaces each occurrence of an outer variable [xi] by
    its column [Ai] (and, in carry-out mode, [out(xi)] by the matching
    out column).  Aliases are already pairwise distinct by construction.

    The rule applies {e only} to immediately nested relfors: a
    constructor between two for-loops must keep them separate (empty
    groups still construct), and a {!Tpm_algebra.Guard} between them is a
    per-binding runtime check.  Both are enforced structurally.

    After each merge, self-join copies made redundant by the
    substitution are dropped (Example 4's "we can safely drop N1")
    unless [drop_redundant] is [false]. *)

val merge : ?drop_redundant:bool -> Tpm_algebra.t -> Tpm_algebra.t

val merge_once :
  outer:Tpm_algebra.relfor -> inner:Tpm_algebra.relfor -> Tpm_algebra.relfor
(** One application of the rule (no recursion, no dropping); exposed for
    the golden tests of Examples 3-4. *)
