(** Pretty-printing TPM expressions in the style of the paper's
    Figures 3-5: relfors with their PSX source shown as
    projection / selection / product over XASR copies. *)

val operand_to_string : Tpm_algebra.operand -> string
val pred_to_string : Tpm_algebra.pred -> string

val pp_psx : Format.formatter -> Tpm_algebra.psx -> unit
val psx_to_string : Tpm_algebra.psx -> string

val pp : Format.formatter -> Tpm_algebra.t -> unit
val to_string : Tpm_algebra.t -> string
