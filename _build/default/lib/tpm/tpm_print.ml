module A = Tpm_algebra

let col_to_string (c : A.col) = Printf.sprintf "%s.%s" c.A.rel (A.field_name c.A.field)

let operand_to_string = function
  | A.Ocol c -> col_to_string c
  | A.Oint v -> string_of_int v
  | A.Ostr s -> s
  | A.Otype ty -> (match ty with
    | Xqdb_xasr.Xasr.Root -> "root"
    | Xqdb_xasr.Xasr.Element -> "elem"
    | Xqdb_xasr.Xasr.Text -> "text")
  | A.Oextern_in x -> Xqdb_xq.Xq_print.var x
  | A.Oextern_out x -> Printf.sprintf "out(%s)" (Xqdb_xq.Xq_print.var x)

let cmp_to_string = function
  | A.Eq -> "="
  | A.Lt -> "<"
  | A.Gt -> ">"

let pred_to_string (p : A.pred) =
  Printf.sprintf "%s %s %s" (operand_to_string p.A.left) (cmp_to_string p.A.op)
    (operand_to_string p.A.right)

let preds_to_string preds =
  match preds with
  | [] -> "true"
  | _ :: _ -> String.concat " ∧ " (List.map pred_to_string preds)

let bindings_to_string bindings =
  String.concat ", "
    (List.map (fun (b : A.binding) -> col_to_string (A.col b.A.brel A.In)) bindings)

let pp_psx ppf (psx : A.psx) =
  Format.fprintf ppf "@[<v 0>π[%s]@,σ[%s]@,× (%s)@]"
    (bindings_to_string psx.A.bindings)
    (preds_to_string psx.A.preds)
    (String.concat ", " (List.map (fun r -> "XASR[" ^ r ^ "]") psx.A.rels))

let psx_to_string psx = Format.asprintf "%a" pp_psx psx

let rec pp ppf = function
  | A.Empty -> Format.pp_print_string ppf "()"
  | A.Text_out s -> Format.fprintf ppf "text{%S}" s
  | A.Out_var x -> Format.pp_print_string ppf (Xqdb_xq.Xq_print.var x)
  | A.Constr (label, body) -> Format.fprintf ppf "@[<v 2>constr(%s)@,%a@]" label pp body
  | A.Seq (t1, t2) -> Format.fprintf ppf "@[<v 2>seq@,%a@,%a@]" pp t1 pp t2
  | A.Guard (c, body) ->
    Format.fprintf ppf "@[<v 2>guard(%s)@,%a@]"
      (Xqdb_xq.Xq_print.cond_to_string c)
      pp body
  | A.Relfor r ->
    Format.fprintf ppf "@[<v 2>relfor (%s) in@,%a@]@,@[<v 2>return@,%a@]"
      (String.concat ", " (List.map Xqdb_xq.Xq_print.var r.A.vars))
      pp_psx r.A.source pp r.A.body

let to_string t = Format.asprintf "@[<v>%a@]" pp t
