(** Rewriting XQ into TPM (milestone 3).

    For-loops and the rewritable fragment of if-conditions become
    [relfor]s over PSX expressions, following the paper's rules:

    {v
    for $y in $x/a return q
      |-  relfor ($y) in PSX(R.in, R.parent_in = $x /\ R.type = elem
                                    /\ R.value = a, XASR[R]) return q

    for $y in $x//a return q
      |-  relfor ($y) in PSX(R2.in, R1.in = $x /\ R1.in < R2.in
                                    /\ R2.out < R1.out /\ R2.type = elem
                                    /\ R2.value = a,
                             (XASR[R1], XASR[R2])) return q

    if phi then q else ()  |-  relfor () in ALG(phi) return q
    v}

    [ALG] covers conditions built from [some], [and], [true()] and
    text-node equality tests; conditions containing [or] or [not] are
    outside the TPM fragment (only pass-fail decisions map to it) and
    are kept as {!Tpm_algebra.Guard}s, evaluated navigationally.

    With [carry_out] (the default, the paper's vartuple refinement) the
    descendant rule uses the outer binding's [out] directly instead of
    the [R1] self-join, and redundant self-join relations are dropped as
    in Example 4.

    A word on typing: [$x = "s"] translates to a selection requiring
    [X.type = text].  Where milestone 1 raises a runtime type error on a
    non-text operand, the algebra just produces no tuple; the testbed
    only compares engines on type-correct queries (see DESIGN.md). *)

type config = {
  carry_out : bool;  (** vartuples carry (in, out); default true *)
}

val default : config
val naive : config
(** [carry_out = false]: the ablation measuring the extra self-joins. *)

val query : ?config:config -> Xqdb_xq.Xq_ast.query -> Tpm_algebra.t

val cond : ?config:config -> Xqdb_xq.Xq_ast.cond -> Tpm_algebra.psx option
(** [ALG(phi)]: the nullary PSX of a condition, or [None] if the
    condition is outside the TPM fragment. *)
