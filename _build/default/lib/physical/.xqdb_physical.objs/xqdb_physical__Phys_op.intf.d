lib/physical/phys_op.mli: Format Tuple Xqdb_storage Xqdb_tpm Xqdb_xasr
