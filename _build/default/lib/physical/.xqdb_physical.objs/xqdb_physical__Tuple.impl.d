lib/physical/tuple.ml: Array Buffer Bytes Format Fun Int List Printf String Xqdb_storage Xqdb_tpm Xqdb_xasr Xqdb_xq
