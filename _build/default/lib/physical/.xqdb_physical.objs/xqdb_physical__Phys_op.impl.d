lib/physical/phys_op.ml: Array Buffer Format Hashtbl List Printf String Tuple Xqdb_storage Xqdb_tpm Xqdb_xasr
