lib/physical/tuple.mli: Format Xqdb_tpm Xqdb_xasr Xqdb_xq
