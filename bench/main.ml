(* The benchmark harness: regenerates every performance figure of the
   paper and runs the ablations called out in DESIGN.md, then a set of
   Bechamel micro-benchmarks (one per reproduced table/figure plus the
   hot substrate operations).

   Run with: dune exec bench/main.exe
   Sections can be selected: dune exec bench/main.exe -- fig7 ablations

   Flags: [--json] additionally writes machine-readable BENCH_<section>.json
   reports (see Xqdb_testbed.Report for the schema); [--quick] shrinks the
   workloads so CI can regenerate the reports in seconds. *)

module Engine = Xqdb_core.Engine
module Config = Xqdb_core.Engine_config
module Planner = Xqdb_optimizer.Planner
module Rewrite = Xqdb_tpm.Rewrite
module W = Xqdb_workload
module T = Xqdb_testbed
module Storage = Xqdb_storage

let header title =
  Printf.printf "\n================ %s ================\n%!" title

let json_mode = ref false
let quick = ref false

let write_report file json =
  T.Report.write_file file json;
  Printf.printf "wrote %s\n%!" file

(* Run one query on one engine configuration over a shared document.
   The full result (profile included) comes back so sections can both
   print a human row and serialize the measurement. *)
let measure ?(seconds_cap = 20.0) ~forest config query_src =
  let engine = Engine.load_forest ~config forest in
  let query = Xqdb_xq.Xq_parser.parse query_src in
  Engine.run ~max_seconds:seconds_cap engine query

let row name (result : Engine.result) =
  match result.Engine.status with
  | Engine.Ok ->
    Printf.printf "  %-28s %8d page I/Os  %8.3fs\n%!" name result.Engine.page_ios
      result.Engine.elapsed
  | Engine.Budget_exceeded _ ->
    Printf.printf "  %-28s        censored (%.1fs)\n%!" name result.Engine.elapsed
  | Engine.Error msg | Engine.Io_error msg | Engine.Timeout msg -> failwith msg

(* --- Figure 7 ------------------------------------------------------------- *)

let fig7 () =
  header "Figure 7: timing of the top five engines";
  let scale = if !quick then 250 else 2500 in
  Printf.printf "workload: DBLP scale %d, pool 48 frames, per-test page-I/O budgets\n" scale;
  let table = T.Efficiency.run ~scale () in
  print_string (T.Efficiency.render table);
  (* Batch-vs-tuple: the same engines degraded to one-row batches run
     the identical operator code with per-row (instead of per-batch)
     polling and accounting — the seconds delta is the vectorization
     win, and the page-I/O rankings must not move. *)
  let tuple_configs =
    List.map
      (fun c -> { c with Config.batch_size = 1 })
      Config.figure7_engines
  in
  let tuple_table = T.Efficiency.run ~configs:tuple_configs ~scale () in
  let total_seconds (t : T.Efficiency.table) =
    List.fold_left
      (fun acc (c : T.Efficiency.cell) -> acc +. c.T.Efficiency.seconds)
      0. t.T.Efficiency.cells
  in
  let ranking t =
    List.map
      (fun c -> c.Config.name)
      (List.sort
         (fun a b ->
           compare
             (T.Efficiency.total t a.Config.name)
             (T.Efficiency.total t b.Config.name))
         Config.figure7_engines)
  in
  let batch =
    { T.Report.cmp_batch_size = Config.default_batch_size;
      batch_seconds = total_seconds table;
      tuple_seconds = total_seconds tuple_table;
      batch_ranking = ranking table;
      tuple_ranking = ranking tuple_table }
  in
  Printf.printf
    "batch vs tuple: %.3fs at batch %d vs %.3fs at batch 1 (%.2fx), rankings %s\n"
    batch.T.Report.batch_seconds batch.T.Report.cmp_batch_size
    batch.T.Report.tuple_seconds
    (batch.T.Report.tuple_seconds /. Float.max 1e-9 batch.T.Report.batch_seconds)
    (if List.equal String.equal batch.T.Report.batch_ranking
          batch.T.Report.tuple_ranking
     then "unchanged" else "CHANGED");
  if !json_mode then write_report "BENCH_fig7.json" (T.Report.fig7_json ~batch table);
  print_string
    "\npaper's Figure 7 (seconds; 2400 = censored at the time budget):\n\
     Engine   Test 1   Test 2   Test 3   Test 4   Test 5    Total\n\
     1          0.11   142.77    28.10   164.95     8.48   344.41\n\
     2          0.01     0.01     0.14     0.00     2400  2400.16\n\
     3         16.44   175.30     2400    63.76    29.70  2685.20\n\
     4         24.72     0.01     2400     0.00     2400  4824.72\n\
     5         65.41   163.93     2400   123.66    2400   5153.00\n\
     shape check: engine 1 wins, the same total ordering 1 < 2 < 3 < 4 < 5,\n\
     censoring caused by the same budget rule.\n"

(* --- Figure 6 / Example 6 --------------------------------------------------- *)

let fig6 () =
  header "Figure 6 / Example 6: QP0 vs QP1 vs QP2";
  print_string (T.Plan_lab.render (T.Plan_lab.run ()))

(* --- milestone ablation ------------------------------------------------------ *)

let milestones () =
  header "Milestone ablation (the intro's orders-of-magnitude claim)";
  let scale = if !quick then 120 else 400 in
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled scale)] in
  let collected = ref [] in
  List.iter
    (fun (test, query) ->
      Printf.printf "%s\n" test;
      List.iter
        (fun config ->
          let config = { config with Config.pool_capacity = 48 } in
          let result = measure ~forest config query in
          row config.Config.name result;
          collected :=
            T.Report.result_json ~engine:config.Config.name ~test result :: !collected)
        [Config.m1; Config.m2; Config.m3; Config.m4])
    [ ("example 6 (selective semijoin query):", T.Queries.example6);
      ( "all article titles (scan-bound):",
        "for $x in //article return for $t in $x/title return $t" ) ];
  if !json_mode then
    write_report "BENCH_milestones.json"
      (T.Report.bench_json ~kind:"milestones" [] ~results:(List.rev !collected))

(* --- design-choice ablations -------------------------------------------------- *)

let ablations () =
  header "Ablations of the DESIGN.md design choices (m4 engine, Example 6)";
  let scale = if !quick then 200 else 800 in
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled scale)] in
  let base = { Config.m4 with Config.pool_capacity = 48 } in
  let q = T.Queries.example6 in
  let collected = ref [] in
  (* Print one human row and collect the same measurement for the JSON
     report: [group] is the ablation axis, [name] the variant. *)
  let arow group name result =
    row name result;
    collected := T.Report.result_json ~engine:name ~test:group result :: !collected
  in

  Printf.printf "1. relfor merging (milestone 3's algebraic step):\n";
  arow "relfor-merging" "merged (default)" (measure ~forest base q);
  arow "relfor-merging" "unmerged"
    (measure ~forest { base with Config.merge_relfors = false } q);

  Printf.printf "2. vartuples carrying out-values (descendant self-joins):\n";
  arow "carry-out" "carry out (default)" (measure ~forest base q);
  arow "carry-out" "naive (self-joins)"
    (measure ~forest
       { base with
         Config.rewrite = Rewrite.naive;
         planner = { base.Config.planner with Planner.carry_out = false } }
       q);

  Printf.printf "3. index structures and cost-based reordering (milestone 4):\n";
  arow "indexes" "indexes + reordering" (measure ~forest base q);
  arow "indexes" "indexes only"
    (measure ~forest
       { base with Config.planner = { base.Config.planner with Planner.cost_based = false } }
       q);
  arow "indexes" "neither (milestone 3)"
    (measure ~forest { base with Config.planner = Planner.m3_config } q);

  Printf.printf "4. ordering strategy (the milestone-3 discussion):\n";
  List.iter
    (fun (name, order) ->
      arow "ordering" name
        (measure ~forest
           { base with Config.planner = { base.Config.planner with Planner.order } }
           q))
    [ ("order-preserving (default)", `Preserve);
      ("external sort", `Ext_sort);
      ("in-memory sort", `Mem_sort);
      ("clustered B-tree (workaround)", `Btree_sort) ];

  Printf.printf "5. block-nested-loop block size (sorting strategies only):\n";
  (* Probing is disabled so the plan actually contains NL/BNL joins. *)
  let sort_config =
    { base with
      Config.planner =
        { base.Config.planner with Planner.order = `Mem_sort; use_indexes = false } }
  in
  arow "join" "order-preserving NL"
    (measure ~forest
       { base with Config.planner = { base.Config.planner with Planner.use_indexes = false } }
       q);
  arow "join" "sorted, BNL (block 64)" (measure ~forest sort_config q);

  Printf.printf "6. pipelining vs writing intermediates to disk:\n";
  arow "materialize" "pipelined"
    (measure ~forest
       { base with Config.planner = { base.Config.planner with Planner.materialize = `Mem } }
       q);
  arow "materialize" "spooled to disk"
    (measure ~forest
       { base with Config.planner = { base.Config.planner with Planner.materialize = `Disk } }
       q);

  if !json_mode then
    write_report "BENCH_ablations.json"
      (T.Report.bench_json ~kind:"ablations" [] ~results:(List.rev !collected))

(* --- plan templates ------------------------------------------------------------ *)

(* The compile-once claim, observable: a constructor between two nested
   for-loops blocks relfor merging, so the inner loop stays its own plan
   site and is re-entered once per outer article.  Template counts must
   stay at the number of relfor sites while binds (and data) scale. *)
let templates () =
  header "Parameterized plan templates: compile once, bind per outer tuple";
  let scales = if !quick then [60; 180] else [200; 800] in
  let query =
    "for $x in //article return <entry>{ for $a in $x/author return $a }</entry>"
  in
  Printf.printf "query: %s\n" query;
  let collected = ref [] in
  List.iter
    (fun scale ->
      let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled scale)] in
      let config = { Config.m4 with Config.pool_capacity = 48 } in
      let result = measure ~forest config query in
      let counter name =
        match List.assoc_opt name result.Engine.profile.Engine.counters with
        | Some v -> v
        | None -> 0
      in
      Printf.printf "  scale %-6d %8d page I/Os  %8.3fs  %d templates  %d binds\n%!"
        scale result.Engine.page_ios result.Engine.elapsed
        (counter "planner.templates_built")
        (counter "planner.template_binds");
      collected :=
        T.Report.result_json
          ~extra:[("scale", T.Report.Int scale)]
          ~engine:config.Config.name ~test:"nested-constructor" result
        :: !collected)
    scales;
  if !json_mode then
    write_report "BENCH_templates.json"
      (T.Report.bench_json ~kind:"templates" [] ~results:(List.rev !collected))

(* --- structural & path indexes --------------------------------------------------- *)

(* The index-vs-scan ablation: every test runs under m4 and under
   m4-nostruct (same engine, structural index family forced off).  On
   the deep Treebank tests the staircase/twig plans must do strictly
   less page I/O — CI gates on that via check-bench
   --require-structural-gain, which compares m4 against m4-nostruct for
   every test named "deep-*".  The shallow DBLP row documents where the
   family deliberately does not fire. *)
let structural () =
  header "Structural & path indexes: staircase/twig plans vs per-outer probes";
  let tb_scale = if !quick then 25 else 60 in
  let dblp_scale = if !quick then 150 else 600 in
  (* A pool smaller than the deep document is the point: the per-outer
     probe plans re-fault pages the staircase/twig streams touch once. *)
  let pool_capacity = 16 in
  Printf.printf "workloads: Treebank scale %d (deep), DBLP scale %d (shallow), pool %d frames\n"
    tb_scale dblp_scale pool_capacity;
  let treebank = [W.Treebank_gen.generate (W.Treebank_gen.scaled tb_scale)] in
  let dblp = [W.Dblp_gen.generate (W.Dblp_gen.scaled dblp_scale)] in
  let collected = ref [] in
  List.iter
    (fun (test, forest, query) ->
      Printf.printf "%s\n" test;
      List.iter
        (fun config ->
          let config = { config with Config.pool_capacity } in
          let result = measure ~forest config query in
          row config.Config.name result;
          collected :=
            T.Report.result_json ~engine:config.Config.name ~test result :: !collected)
        [Config.m4; Config.m4_nostruct])
    [ ( "deep-twig (//S//NP//NN):",
        treebank,
        "for $s in //S return for $np in $s//NP return for $nn in $np//NN return $nn" );
      ( "deep-pair (//NP//NN):",
        treebank,
        "for $np in //NP return for $nn in $np//NN return $nn" );
      ( "deep-semi (NP with a VB descendant):",
        treebank,
        "for $np in //NP return if (some $vb in $np//VB satisfies true()) then <hit/> else ()"
      );
      ( "shallow-pair (//article//author):",
        dblp,
        "for $x in //article return for $a in $x//author return $a" ) ];
  if !json_mode then
    write_report "BENCH_structural.json"
      (T.Report.bench_json ~kind:"structural" [] ~results:(List.rev !collected))

(* --- Bechamel micro-benchmarks -------------------------------------------------- *)

let bechamel () =
  header "Bechamel micro-benchmarks (time per single run)";
  let open Bechamel in
  let forest = [W.Dblp_gen.generate (W.Dblp_gen.scaled 250)] in
  let xml = Xqdb_xml.Xml_print.forest_to_string forest in
  let engine1 = Engine.load_forest ~config:Config.engine1 forest in
  let m1 = Engine.with_config Config.m1 engine1 in
  let m2 = Engine.with_config Config.m2 engine1 in
  let m4 = Engine.with_config Config.m4 engine1 in
  let parsed =
    List.map (fun (n, q) -> (n, Xqdb_xq.Xq_parser.parse q)) T.Queries.efficiency_queries
  in
  let run_query engine query () = ignore (Engine.run engine query) in
  (* One Test.make per reproduced table/figure. *)
  let figure_tests =
    (* Figure 7: the five efficiency tests on the winning engine. *)
    List.map
      (fun (name, query) -> Test.make ~name:("fig7 " ^ name) (Staged.stage (run_query engine1 query)))
      parsed
    @ [ (* Figure 6: the best and worst plans of the Example 6 lab. *)
        Test.make ~name:"fig6 example6 m4"
          (Staged.stage (run_query m4 (Xqdb_xq.Xq_parser.parse T.Queries.example6)));
        (* The milestone ablation behind the intro's claim. *)
        Test.make ~name:"milestones m1"
          (Staged.stage (run_query m1 (Xqdb_xq.Xq_parser.parse T.Queries.example6)));
        Test.make ~name:"milestones m2"
          (Staged.stage (run_query m2 (Xqdb_xq.Xq_parser.parse T.Queries.example6)));
        (* Figure 2 / Example 1: labeling and shredding throughput. *)
        Test.make ~name:"fig2 shred document"
          (Staged.stage (fun () ->
               let disk = Storage.Disk.in_memory () in
               let pool = Storage.Buffer_pool.create disk in
               ignore (Xqdb_xasr.Shredder.shred_string pool ~name:"d" xml)));
        Test.make ~name:"fig2 label document"
          (Staged.stage (fun () -> ignore (Xqdb_xml.Xml_doc.of_forest forest)));
        (* Figures 3-5: the rewriting pipeline itself. *)
        Test.make ~name:"fig3-5 rewrite+merge"
          (Staged.stage
             (let q = Xqdb_xq.Xq_parser.parse T.Queries.example6 in
              fun () -> ignore (Xqdb_tpm.Merge.merge (Rewrite.query q)))) ]
  in
  let grouped = Test.make_grouped ~name:"xqdb" figure_tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [Toolkit.Instance.monotonic_clock] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ns] -> Printf.printf "  %-32s %12.3f ms/run\n" name (ns /. 1e6)
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

(* --- Concurrent traffic --------------------------------------------------- *)

let traffic () =
  header "Traffic: concurrent sessions over one shared database";
  let scale = if !quick then 100 else 250 in
  let requests = if !quick then 10 else 40 in
  let report =
    T.Traffic.run ~sessions:4 ~requests ~seed:42 ~scale ~mode:T.Traffic.Closed ()
  in
  print_string (T.Traffic.render report);
  if report.T.Traffic.total_mismatches <> 0 then
    failwith "traffic: oracle mismatches under concurrency";
  if !json_mode then write_report "BENCH_traffic.json" (T.Report.traffic_json report)

let sections =
  [ ("fig7", fig7); ("fig6", fig6); ("milestones", milestones); ("ablations", ablations);
    ("templates", templates); ("structural", structural); ("traffic", traffic);
    ("bechamel", bechamel) ]

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let flags, names = List.partition (fun a -> String.length a >= 2 && a.[0] = '-') args in
  List.iter
    (function
      | "--json" -> json_mode := true
      | "--quick" -> quick := true
      | flag ->
        Printf.eprintf "unknown flag %S (known: --json, --quick)\n" flag;
        exit 1)
    flags;
  let requested = match names with [] -> List.map fst sections | names -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S (known: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 1)
    requested;
  print_newline ()
