(* Tests for the XASR layer: tuple codecs, shredding, the node store and
   its indexes, reconstruction, statistics, and the milestone-2
   navigational evaluator (diffed against milestone 1). *)

module S = Xqdb_storage
module X = Xqdb_xasr
module Xasr = X.Xasr
module Tree = Xqdb_xml.Xml_tree
module Doc = Xqdb_xml.Xml_doc
module G = QCheck2.Gen

let shred forest =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  X.Shredder.shred_forest pool ~name:"t" forest

let figure2 = Xqdb_workload.Docs.figure2

(* --- tuples ------------------------------------------------------------- *)

let test_tuple_codec () =
  let tuple =
    { Xasr.nin = 42; nout = 99; parent_in = 7; ntype = Xasr.Text; value = "hello \x00 world" }
  in
  Alcotest.(check bool) "round trip" true (Xasr.decode (Xasr.encode tuple) = tuple);
  Alcotest.(check string) "example 1 rendering" "(2, 17, 1, element, journal)"
    (Format.asprintf "%a" Xasr.pp
       { Xasr.nin = 2; nout = 17; parent_in = 1; ntype = Xasr.Element; value = "journal" })

let test_structural_predicates () =
  let journal = { Xasr.nin = 2; nout = 17; parent_in = 1; ntype = Xasr.Element; value = "journal" } in
  let ana = { Xasr.nin = 5; nout = 6; parent_in = 4; ntype = Xasr.Text; value = "Ana" } in
  let name = { Xasr.nin = 4; nout = 7; parent_in = 3; ntype = Xasr.Element; value = "name" } in
  Alcotest.(check bool) "child" true (Xasr.is_child_of ana ~parent:name);
  Alcotest.(check bool) "not child" false (Xasr.is_child_of ana ~parent:journal);
  Alcotest.(check bool) "descendant" true (Xasr.is_descendant_of ana ~ancestor:journal);
  Alcotest.(check bool) "not descendant of self" false
    (Xasr.is_descendant_of journal ~ancestor:journal)

(* --- shredding: Example 1 ------------------------------------------------ *)

let test_example1_tuples () =
  let store, _ = shred [figure2] in
  Alcotest.(check string) "journal tuple" "(2, 17, 1, element, journal)"
    (Format.asprintf "%a" Xasr.pp (Option.get (X.Node_store.fetch store 2)));
  Alcotest.(check string) "Ana tuple" "(5, 6, 4, text, Ana)"
    (Format.asprintf "%a" Xasr.pp (Option.get (X.Node_store.fetch store 5)));
  Alcotest.(check string) "root tuple" "(1, 18, 0, root, NULL)"
    (Format.asprintf "%a" Xasr.pp (Option.get (X.Node_store.fetch store 1)));
  Alcotest.(check int) "tuple count" 9 (X.Node_store.tuple_count store);
  Alcotest.(check (option string)) "missing in" None
    (Option.map (fun _ -> "?") (X.Node_store.fetch store 77))

(* Shredding agrees with the in-memory labeling on every node. *)
let shred_matches_labeling =
  QCheck2.Test.make ~name:"shredder agrees with Xml_doc labels" ~count:150
    Test_support.Gen.forest_gen (fun forest ->
      let store, _ = shred forest in
      let doc = Doc.of_forest forest in
      let ok = ref (X.Node_store.tuple_count store = Doc.count doc) in
      for v = 0 to Doc.count doc - 1 do
        match X.Node_store.fetch store (Doc.nin doc v) with
        | None -> ok := false
        | Some t ->
          if t.Xasr.nout <> Doc.nout doc v then ok := false;
          (match Doc.parent doc v with
           | Some p -> if t.Xasr.parent_in <> Doc.nin doc p then ok := false
           | None -> if t.Xasr.parent_in <> 0 then ok := false);
          let kind_matches =
            match (Doc.kind doc v, t.Xasr.ntype) with
            | Doc.Root, Xasr.Root | Doc.Element, Xasr.Element | Doc.Text, Xasr.Text -> true
            | _ -> false
          in
          if not kind_matches then ok := false;
          if not (String.equal t.Xasr.value (Doc.value doc v)) then ok := false
      done;
      !ok)

(* Malformed input is a typed error (lint rule L1): every shredder
   failure mode raises Shred_error with a descriptive message, never a
   bare Failure that would escape the engine's status censoring. *)
let test_shredder_errors () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store = X.Node_store.create pool ~name:"bad" in
  let sh = X.Shredder.start store in
  X.Shredder.push sh (Xqdb_xml.Xml_parser.Start_tag "a");
  (match X.Shredder.push sh (Xqdb_xml.Xml_parser.End_tag "b") with
   | _ -> Alcotest.fail "mismatched tag should fail"
   | exception X.Shredder.Shred_error msg ->
     Alcotest.(check bool) "mismatch names both tags" true
       (String.length msg > 0 && msg.[String.length msg - 1] = '>')
   | exception Failure _ -> Alcotest.fail "mismatched tag escaped as bare Failure");
  let sh2 = X.Shredder.start (X.Node_store.create pool ~name:"bad2") in
  X.Shredder.push sh2 (Xqdb_xml.Xml_parser.Start_tag "a");
  (match X.Shredder.finish sh2 with
   | _ -> Alcotest.fail "unclosed tag should fail"
   | exception X.Shredder.Shred_error _ -> ()
   | exception Failure _ -> Alcotest.fail "unclosed tag escaped as bare Failure");
  (match X.Shredder.push (X.Shredder.start (X.Node_store.create pool ~name:"bad3"))
           (Xqdb_xml.Xml_parser.End_tag "a")
   with
   | _ -> Alcotest.fail "stray end tag should fail"
   | exception X.Shredder.Shred_error _ -> ())

(* The malformed-document regression: a raw event stream with bad
   nesting must fail as Shred_error from the convenience wrappers too,
   and the catalog-missing paths of Node_store must be typed Corrupt,
   not Failure. *)
let test_malformed_document_regression () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  List.iter
    (fun (name, doc) ->
      match X.Shredder.shred_string pool ~name doc with
      | _ -> Alcotest.fail (Printf.sprintf "%s: malformed %S should not shred" name doc)
      | exception X.Shredder.Shred_error _ -> ()
      | exception Xqdb_xml.Xml_parser.Parse_error _ -> ()
      | exception Failure msg ->
        Alcotest.fail (Printf.sprintf "%s: escaped as bare Failure %S" name msg))
    [("m1", "<a><b></a>"); ("m2", "<a></a></b>"); ("m3", "<open>text")];
  let catalog = S.Catalog.attach pool in
  (match X.Node_store.open_existing pool catalog ~name:"nope" with
   | _ -> Alcotest.fail "open_existing of unknown store should fail"
   | exception S.Xqdb_error.Corrupt _ -> ()
   | exception Failure _ -> Alcotest.fail "open_existing escaped as bare Failure");
  match X.Node_store.stats_of_catalog catalog ~name:"nope" with
  | _ -> Alcotest.fail "stats_of_catalog of unknown store should fail"
  | exception S.Xqdb_error.Corrupt _ -> ()

(* --- node store access paths --------------------------------------------- *)

let test_store_cursors () =
  let store, _ = shred [figure2] in
  let drain cursor =
    let rec go acc = match cursor () with None -> List.rev acc | Some x -> go (x :: acc) in
    go []
  in
  (* children of authors (in=3): the two name elements *)
  Alcotest.(check (list int)) "children_ins" [4; 8]
    (drain (X.Node_store.children_ins store 3));
  (* label index: name elements in document order *)
  Alcotest.(check (list int)) "label_ins" [4; 8]
    (drain (X.Node_store.label_ins store Xasr.Element "name"));
  Alcotest.(check (list int)) "label_ins misses" []
    (drain (X.Node_store.label_ins store Xasr.Element "nosuch"));
  (* clustered range scan = journal subtree *)
  let ins = List.map (fun t -> t.Xasr.nin) (drain (X.Node_store.scan_in_range store ~lo:2 ~hi:17)) in
  Alcotest.(check (list int)) "subtree range scan" [2; 3; 4; 5; 8; 9; 13; 14] ins;
  (* all text nodes via the type prefix *)
  let texts = drain (X.Node_store.label_ins_all_of_type store Xasr.Text) in
  Alcotest.(check int) "all texts" 3 (List.length texts)

(* A struct-index entry that disagrees with the primary is a typed
   Corrupt, caught by the same invariant sweep the crash harness runs
   after every recovery. *)
let test_struct_index_corruption_detected () =
  let store, _ = shred [figure2] in
  X.Node_store.check_invariants store;
  X.Node_store.insert store ~level:5
    { Xasr.nin = 19; nout = 20; parent_in = 0; ntype = Xasr.Element; value = "bogus" };
  match X.Node_store.check_invariants store with
  | () -> Alcotest.fail "mislabeled struct entry should be caught"
  | exception S.Xqdb_error.Corrupt msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the disagreement" true
      (contains "struct entry" && contains "disagrees")

let test_store_reopen () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let catalog = S.Catalog.attach pool in
  let store, stats = X.Shredder.shred_forest pool ~name:"doc" [figure2] in
  X.Node_store.register store catalog ~stats;
  let store2 = X.Node_store.open_existing pool catalog ~name:"doc" in
  Alcotest.(check int) "tuple count survives" 9 (X.Node_store.tuple_count store2);
  Alcotest.(check string) "lookup survives" "journal"
    (Option.get (X.Node_store.fetch store2 2)).Xasr.value;
  let stats2 = X.Node_store.stats_of_catalog catalog ~name:"doc" in
  Alcotest.(check int) "stats survive" stats.X.Doc_stats.node_count
    stats2.X.Doc_stats.node_count

(* --- reconstruction -------------------------------------------------------- *)

let reconstruct_roundtrip =
  QCheck2.Test.make ~name:"shred/reconstruct round trip" ~count:150
    Test_support.Gen.forest_gen (fun forest ->
      let store, _ = shred forest in
      Tree.equal_forest forest (X.Reconstruct.root_forest store))

let test_reconstruct_subtree () =
  let store, _ = shred [figure2] in
  Alcotest.(check string) "subtree by in" "<authors><name>Ana</name><name>Bob</name></authors>"
    (Xqdb_xml.Xml_print.to_string (X.Reconstruct.subtree_by_in store 3));
  Alcotest.(check string) "text subtree" "Ana"
    (Xqdb_xml.Xml_print.to_string (X.Reconstruct.subtree_by_in store 5));
  (match X.Reconstruct.subtree_by_in store 1234 with
   | _ -> Alcotest.fail "missing in should raise"
   | exception Not_found -> ())

(* --- statistics -------------------------------------------------------------- *)

let stats_match_document =
  QCheck2.Test.make ~name:"statistics agree with the document" ~count:150
    Test_support.Gen.forest_gen (fun forest ->
      let _, stats = shred forest in
      let doc = Doc.of_forest forest in
      let expected_labels = Tree.count_labels forest in
      stats.X.Doc_stats.node_count = Doc.count doc
      && stats.X.Doc_stats.label_counts = expected_labels
      && stats.X.Doc_stats.depth_sum
         = List.fold_left
             (fun acc v -> acc + Doc.depth doc v)
             0
             (List.init (Doc.count doc) Fun.id))

let test_stats_serialization () =
  let _, stats = shred [figure2] in
  let stats2 = X.Doc_stats.deserialize (X.Doc_stats.serialize stats) in
  Alcotest.(check bool) "round trip" true (stats = stats2);
  Alcotest.(check int) "name label count" 2 (X.Doc_stats.label_count stats "name");
  Alcotest.(check int) "missing label count" 0 (X.Doc_stats.label_count stats "nosuch");
  Alcotest.(check bool) "avg depth sane" true
    (X.Doc_stats.avg_depth stats > 2.0 && X.Doc_stats.avg_depth stats < 3.0)

(* --- path summary -------------------------------------------------------- *)

let test_path_summary_figure2 () =
  let _, stats = shred [figure2] in
  let ps = stats.X.Doc_stats.paths in
  Alcotest.(check int) "distinct paths" 4 (X.Path_summary.distinct ps);
  Alcotest.(check int) "total elements" 5 (X.Path_summary.total_count ps);
  Alcotest.(check int) "name path count" 2 (X.Path_summary.count ps "/journal/authors/name");
  Alcotest.(check (float 0.001)) "authors fan-out" 2.0 (X.Path_summary.fanout ps "/journal/authors");
  Alcotest.(check int) "//name" 2 (X.Path_summary.chain_card ps [(X.Path_summary.Descendant, "name")]);
  Alcotest.(check int) "//journal/title" 1
    (X.Path_summary.chain_card ps
       [(X.Path_summary.Descendant, "journal"); (X.Path_summary.Child, "title")]);
  Alcotest.(check int) "absent label is provably empty" 0
    (X.Path_summary.chain_card ps [(X.Path_summary.Descendant, "proceedings")]);
  Alcotest.(check int) "journal//name pairs" 2
    (X.Path_summary.desc_pair_card ps ~anc:"journal" ~desc:"name");
  Alcotest.(check int) "authors/name pairs" 2
    (X.Path_summary.child_pair_card ps ~parent:"authors" ~child:"name");
  Alcotest.(check bool) "serialization round trip" true
    (X.Path_summary.equal ps (X.Path_summary.deserialize (X.Path_summary.serialize ps)))

(* The maintenance property the differential's recovery check also pins:
   the summary the shredder builds incrementally at element close equals
   a from-scratch rebuild out of the stored (in, out) intervals. *)
let path_summary_incremental_matches_rescan =
  QCheck2.Test.make ~name:"incremental path summary = from-scratch rescan" ~count:150
    Test_support.Gen.forest_gen (fun forest ->
      let store, stats = shred forest in
      X.Path_summary.equal stats.X.Doc_stats.paths
        (X.Path_summary.of_scan (X.Node_store.scan_all store)))

(* Same agreement on the two workload generators the benches use — the
   shapes (shallow/bushy DBLP, deep/recursive Treebank) stress the
   rescan's stack reconstruction differently from the random forests. *)
let test_path_summary_generators () =
  List.iter
    (fun (name, doc) ->
      let store, stats = shred [doc] in
      Alcotest.(check bool) (name ^ ": incremental = rescan") true
        (X.Path_summary.equal stats.X.Doc_stats.paths
           (X.Path_summary.of_scan (X.Node_store.scan_all store))))
    [ ("dblp", Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 60));
      ("treebank", Xqdb_workload.Treebank_gen.generate (Xqdb_workload.Treebank_gen.scaled 8)) ]

(* The region-algebra precondition every structural join relies on: the
   (in, out) intervals of any two stored nodes are either disjoint or
   strictly nested, never partially overlapping. *)
let intervals_properly_nest =
  QCheck2.Test.make ~name:"(pre, post) intervals are disjoint or nested" ~count:100
    Test_support.Gen.forest_gen (fun forest ->
      let store, _ = shred forest in
      let rec drain acc cursor =
        match cursor () with None -> List.rev acc | Some t -> drain (t :: acc) cursor
      in
      let tuples = drain [] (X.Node_store.scan_all store) in
      List.for_all (fun t -> t.Xasr.nin < t.Xasr.nout) tuples
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 a.Xasr.nin = b.Xasr.nin
                 || a.Xasr.nout < b.Xasr.nin
                 || b.Xasr.nout < a.Xasr.nin
                 || (a.Xasr.nin < b.Xasr.nin && b.Xasr.nout < a.Xasr.nout)
                 || (b.Xasr.nin < a.Xasr.nin && a.Xasr.nout < b.Xasr.nout))
               tuples)
           tuples)

(* --- milestone 2 vs milestone 1 ---------------------------------------------- *)

let queries =
  List.map Xqdb_xq.Xq_parser.parse
    [ "for $n in //name return $n";
      "<out>{ for $j in /journal return for $t in $j//text() return text { \"got\" } }</out>";
      "for $a in //authors return if (some $t in $a//text() satisfies $t = \"Bob\") then $a/name else ()";
      "$root" ]

let test_nav_eval_figure2 () =
  let store, _ = shred [figure2] in
  let doc = Doc.of_forest [figure2] in
  List.iter
    (fun q ->
      Alcotest.(check string) "m2 agrees with m1" (Xqdb_xq.Xq_eval.eval_string doc q)
        (X.Nav_eval.eval_string store q))
    queries

(* Axis steps agree with the in-memory reference at the level of single
   nodes: for every node of a random document and every axis/test, the
   navigational cursor yields exactly the nodes milestone 1 selects. *)
let axis_cursor_equivalence =
  QCheck2.Test.make ~name:"axis cursors = milestone-1 axis selection" ~count:100
    Test_support.Gen.forest_gen (fun forest ->
      let store, _ = shred forest in
      let doc = Doc.of_forest forest in
      let tests =
        [Xqdb_xq.Xq_ast.Name "a"; Xqdb_xq.Xq_ast.Name "name"; Xqdb_xq.Xq_ast.Star;
         Xqdb_xq.Xq_ast.Text_test]
      in
      let ok = ref true in
      for v = 0 to Doc.count doc - 1 do
        let binding = Option.get (X.Node_store.fetch store (Doc.nin doc v)) in
        List.iter
          (fun axis ->
            List.iter
              (fun test ->
                let expected =
                  List.map (Doc.nin doc) (Xqdb_xq.Xq_eval.axis_select doc v axis test)
                in
                let cursor = X.Nav_eval.axis_cursor store binding axis test in
                let rec drain acc =
                  match cursor () with
                  | None -> List.rev acc
                  | Some tuple -> drain (tuple.Xasr.nin :: acc)
                in
                if drain [] <> expected then ok := false)
              tests)
          [Xqdb_xq.Xq_ast.Child; Xqdb_xq.Xq_ast.Descendant]
      done;
      !ok)

(* The central property: on random documents and random queries, the
   navigational secondary-storage evaluator computes exactly what the
   in-memory denotational evaluator computes. *)
let nav_eval_equivalence =
  QCheck2.Test.make ~name:"milestone 2 = milestone 1 (random docs and queries)" ~count:250
    G.(pair Test_support.Gen.forest_gen Test_support.Gen.xq_gen)
    (fun (forest, query) ->
      let store, _ = shred forest in
      let doc = Doc.of_forest forest in
      let reference =
        try Ok (Xqdb_xq.Xq_eval.eval_string doc query)
        with Xqdb_xq.Xq_eval.Type_error _ -> Error ()
      in
      let got =
        try Ok (X.Nav_eval.eval_string store query)
        with Xqdb_xq.Xq_eval.Type_error _ -> Error ()
      in
      reference = got)

let test_nav_eval_budget () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:4 disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 100)]
  in
  S.Buffer_pool.drop_all pool;
  let budget = S.Budget.create ~max_page_ios:3 disk in
  let q = Xqdb_xq.Xq_parser.parse "for $x in //article return for $y in //author return <p/>" in
  match X.Nav_eval.eval ~budget store q with
  | _ -> Alcotest.fail "expected budget exhaustion"
  | exception S.Budget.Exhausted _ -> ()

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "xasr"
    [ ( "tuples",
        [ Alcotest.test_case "codec" `Quick test_tuple_codec;
          Alcotest.test_case "structural predicates" `Quick test_structural_predicates ] );
      ( "shredder",
        [ Alcotest.test_case "example 1" `Quick test_example1_tuples;
          prop shred_matches_labeling;
          Alcotest.test_case "errors" `Quick test_shredder_errors;
          Alcotest.test_case "malformed documents are typed errors" `Quick
            test_malformed_document_regression ] );
      ( "node store",
        [ Alcotest.test_case "cursors" `Quick test_store_cursors;
          Alcotest.test_case "struct-index corruption is typed" `Quick
            test_struct_index_corruption_detected;
          Alcotest.test_case "reopen" `Quick test_store_reopen ] );
      ( "reconstruction",
        [ prop reconstruct_roundtrip;
          Alcotest.test_case "subtrees" `Quick test_reconstruct_subtree ] );
      ( "statistics",
        [ prop stats_match_document;
          Alcotest.test_case "serialization" `Quick test_stats_serialization ] );
      ( "path summary",
        [ Alcotest.test_case "figure 2" `Quick test_path_summary_figure2;
          prop path_summary_incremental_matches_rescan;
          Alcotest.test_case "workload generators" `Quick test_path_summary_generators;
          prop intervals_properly_nest ] );
      ( "navigational evaluator",
        [ Alcotest.test_case "figure 2 queries" `Quick test_nav_eval_figure2;
          prop axis_cursor_equivalence;
          prop nav_eval_equivalence;
          Alcotest.test_case "budget" `Quick test_nav_eval_budget ] ) ]
