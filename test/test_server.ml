(* Tests for the multi-session server stack: the wire protocol's total
   decoding, the connection loop over in-memory feeds, session
   semantics over a shared database, and the concurrent-reader
   property — K domains must answer exactly like one session. *)

module Wire = Xqdb_server.Wire
module Session = Xqdb_server.Session
module Server = Xqdb_server.Server
module Engine = Xqdb_core.Engine
module Config = Xqdb_core.Engine_config
module DB = Xqdb_core.Database
module W = Xqdb_workload
module G = QCheck2.Gen

let wire_error =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Wire.error_to_string e))
    (fun a b ->
      match (a, b) with
      | Wire.Closed, Wire.Closed | Wire.Truncated, Wire.Truncated -> true
      | Wire.Bad_magic, Wire.Bad_magic -> true
      | Wire.Bad_version a, Wire.Bad_version b | Wire.Bad_kind a, Wire.Bad_kind b
      | Wire.Oversize a, Wire.Oversize b -> a = b
      | Wire.Malformed _, Wire.Malformed _ -> true
      | _ -> false)

let read_of_bytes b = Wire.string_reader (Bytes.to_string b)

(* --- round trips ---------------------------------------------------------- *)

let test_request_roundtrip () =
  let checks =
    [ { Wire.doc = "dblp"; query_text = "for $x in //a return $x";
        max_page_ios = Some 500; max_seconds = Some 1.5; deadline = Some 0.75 };
      { Wire.doc = ""; query_text = ""; max_page_ios = None; max_seconds = None;
        deadline = None };
      { Wire.doc = "a"; query_text = String.make 10_000 'q';
        max_page_ios = None; max_seconds = Some 0.25; deadline = None } ]
  in
  List.iter
    (fun req ->
      match Wire.read_request ~read:(read_of_bytes (Wire.encode_request req)) with
      | Result.Error e -> Alcotest.fail (Wire.error_to_string e)
      | Result.Ok got ->
        Alcotest.(check string) "doc" req.Wire.doc got.Wire.doc;
        Alcotest.(check string) "query" req.Wire.query_text got.Wire.query_text;
        Alcotest.(check (option int)) "ios cap" req.Wire.max_page_ios got.Wire.max_page_ios;
        Alcotest.(check (option (float 0.))) "seconds cap" req.Wire.max_seconds
          got.Wire.max_seconds;
        Alcotest.(check (option (float 0.))) "deadline" req.Wire.deadline
          got.Wire.deadline)
    checks

let test_response_roundtrip () =
  List.iter
    (fun status ->
      let resp =
        { Wire.status; payload = "<a>payload</a>"; elapsed = 0.125; page_ios = 42;
          retry_after = (if status = Wire.Unavailable then Some 0.1 else None) }
      in
      match Wire.read_response ~read:(read_of_bytes (Wire.encode_response resp)) with
      | Result.Error e -> Alcotest.fail (Wire.error_to_string e)
      | Result.Ok got ->
        Alcotest.(check string) "payload" resp.Wire.payload got.Wire.payload;
        Alcotest.(check (float 0.)) "elapsed" resp.Wire.elapsed got.Wire.elapsed;
        Alcotest.(check int) "page_ios" resp.Wire.page_ios got.Wire.page_ios;
        Alcotest.(check (option (float 0.))) "retry_after" resp.Wire.retry_after
          got.Wire.retry_after;
        Alcotest.(check bool) "status" true (got.Wire.status = status))
    [ Wire.Ok; Wire.Budget_exceeded; Wire.Error; Wire.Io_error; Wire.Bad_request;
      Wire.Unavailable; Wire.Timeout ]

(* --- hostile bytes decode to typed errors --------------------------------- *)

let read_req_of s = Wire.read_request ~read:(Wire.string_reader s)

let expect_error name want s =
  match read_req_of s with
  | Result.Ok _ -> Alcotest.fail (name ^ ": hostile bytes decoded to a request")
  | Result.Error e -> Alcotest.check wire_error name want e

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let header ?(magic = "XQDB") ?(version = 1) ?(kind = 1) len =
  magic ^ String.make 1 (Char.chr version) ^ String.make 1 (Char.chr kind) ^ u32be len

let test_hostile_frames () =
  expect_error "empty stream is a clean close" Wire.Closed "";
  expect_error "partial header" Wire.Truncated "XQD";
  expect_error "garbage magic" Wire.Bad_magic (header ~magic:"EVIL" 0);
  expect_error "future version" (Wire.Bad_version 9) (header ~version:9 0);
  expect_error "unknown kind" (Wire.Bad_kind 7) (header ~kind:7 0);
  expect_error "oversize length" (Wire.Oversize (Wire.max_payload + 1))
    (header (Wire.max_payload + 1));
  expect_error "negative length reads as oversize" (Wire.Oversize (-1)) (header (-1));
  expect_error "truncated payload" Wire.Truncated (header 100 ^ "only a few bytes");
  expect_error "payload shorter than fixed fields" (Wire.Malformed "") (header 3 ^ "abc");
  (* doc_len pointing past the payload *)
  let bad = u32be 0 ^ String.make 8 '\000' ^ u32be 9999 ^ "short" in
  expect_error "doc length past payload" (Wire.Malformed "")
    (header (String.length bad) ^ bad);
  (* a response frame where a request is expected *)
  let resp = Wire.encode_response (Wire.error_response Wire.Ok "x") in
  expect_error "response in request position" (Wire.Bad_kind 2) (Bytes.to_string resp);
  (* a v2 frame whose payload is shorter than v2's (larger) fixed fields *)
  expect_error "v2 payload shorter than fixed fields" (Wire.Malformed "")
    (header ~version:2 17 ^ String.make 17 '\000')

(* --- version negotiation --------------------------------------------------- *)

(* A v1 client's frames must keep decoding: the request has no deadline
   field, and a v1-encoded response downgrades the statuses v1 never
   knew. *)
let test_v1_frames_still_speak () =
  let req =
    { Wire.doc = "journal"; query_text = "/journal"; max_page_ios = Some 9;
      max_seconds = Some 2.0; deadline = Some 1.0 }
  in
  (match Wire.read_request ~read:(read_of_bytes (Wire.encode_request ~version:1 req)) with
   | Result.Error e -> Alcotest.fail (Wire.error_to_string e)
   | Result.Ok got ->
     Alcotest.(check string) "doc survives v1" req.Wire.doc got.Wire.doc;
     Alcotest.(check (option int)) "ios cap survives v1" req.Wire.max_page_ios
       got.Wire.max_page_ios;
     Alcotest.(check (option (float 0.))) "v1 has no deadline field" None
       got.Wire.deadline);
  (* read_incoming tags the frame with the version it spoke. *)
  (match Wire.read_incoming ~read:(read_of_bytes (Wire.encode_request ~version:1 req)) with
   | Result.Ok (Wire.Incoming_request (1, _)) -> ()
   | Result.Ok _ -> Alcotest.fail "v1 frame tagged with the wrong version"
   | Result.Error e -> Alcotest.fail (Wire.error_to_string e));
  (* Timeout downgrades to Budget_exceeded on the v1 wire; retry_after
     is dropped. *)
  let resp = Wire.error_response ~retry_after:0.5 Wire.Timeout "too late" in
  (match Wire.read_response ~read:(read_of_bytes (Wire.encode_response ~version:1 resp)) with
   | Result.Error e -> Alcotest.fail (Wire.error_to_string e)
   | Result.Ok got ->
     Alcotest.(check bool) "Timeout downgrades for v1" true
       (got.Wire.status = Wire.Budget_exceeded);
     Alcotest.(check (option (float 0.))) "retry_after dropped for v1" None
       got.Wire.retry_after);
  (* Unsupported versions are rejected at the encoder... *)
  (match Wire.encode_request ~version:99 req with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "encoding an unsupported version should raise");
  (* ...and at the decoder, as a typed error. *)
  match Wire.read_request ~read:(Wire.string_reader (header ~version:0 0)) with
  | Result.Error (Wire.Bad_version 0) -> ()
  | _ -> Alcotest.fail "version 0 should be Bad_version"

(* Decoding is total: no byte string makes the reader raise — under
   either accepted header version. *)
let decode_never_raises =
  QCheck2.Test.make ~name:"wire decoding is total" ~count:500
    G.(pair (int_range 0 3) (string_size ~gen:(char_range '\000' '\255') (int_bound 64)))
    (fun (v, s) ->
      (match read_req_of s with Result.Ok _ | Result.Error _ -> ());
      (match Wire.read_response ~read:(Wire.string_reader s) with
      | Result.Ok _ | Result.Error _ -> ());
      (* And with a valid header stapled on — any version byte 0-3,
         spanning both accepted versions and both rejected sides — the
         payload decoders too. *)
      (match read_req_of (header ~version:v (String.length s) ^ s) with
      | Result.Ok _ | Result.Error _ -> ());
      (match Wire.read_incoming
               ~read:(Wire.string_reader (header ~version:v (String.length s) ^ s)) with
      | Result.Ok _ | Result.Error _ -> ());
      true)

(* --- sessions over a shared database --------------------------------------- *)

let mkdb () =
  let db = DB.create () in
  ignore (DB.load_document db ~name:"journal" W.Docs.figure2_string);
  db

let plain_req ?ios ?secs ?deadline doc query =
  { Wire.doc; query_text = query; max_page_ios = ios; max_seconds = secs; deadline }

let test_session_ok () =
  let db = mkdb () in
  let session = Session.create db in
  let resp = Session.handle session (plain_req "journal" "for $n in //name return $n") in
  Alcotest.(check bool) "status ok" true (resp.Wire.status = Wire.Ok);
  Alcotest.(check string) "payload is the forest"
    "<name>Ana</name><name>Bob</name>" resp.Wire.payload;
  Alcotest.(check bool) "elapsed measured" true (resp.Wire.elapsed >= 0.)

let test_session_bad_requests () =
  let db = mkdb () in
  let session = Session.create db in
  let is_bad r = r.Wire.status = Wire.Bad_request in
  Alcotest.(check bool) "unknown document" true
    (is_bad (Session.handle session (plain_req "nope" "/journal")));
  Alcotest.(check bool) "parse error" true
    (is_bad (Session.handle session (plain_req "journal" "for for for")));
  Alcotest.(check bool) "unbound variable" true
    (is_bad (Session.handle session (plain_req "journal" "return $nope")));
  (* And the session is still alive afterwards. *)
  let ok = Session.handle session (plain_req "journal" "for $n in //name return $n") in
  Alcotest.(check bool) "session survives bad requests" true (ok.Wire.status = Wire.Ok)

let test_session_budget_censoring () =
  let config = { Config.m4 with Config.pool_capacity = 4 } in
  let db = DB.create ~config () in
  ignore (DB.load_forest db ~name:"dblp" [W.Dblp_gen.generate (W.Dblp_gen.scaled 200)]);
  (* The budgeted request must run cold — a warm pool can satisfy a
     small query with zero page I/O, and nothing censors a free run. *)
  Xqdb_storage.Buffer_pool.drop_all (Engine.pool (DB.engine db ~name:"dblp"));
  (* The server's cap clamps the client's ask: even a generous client
     cap censors at one page I/O. *)
  let session = Session.create ~max_page_ios:1 db in
  let heavy = "for $x in //article return for $y in //author return <p/>" in
  let r = Session.handle session (plain_req ~ios:1_000_000 "dblp" heavy) in
  Alcotest.(check bool) "censored, not crashed" true (r.Wire.status = Wire.Budget_exceeded);
  Alcotest.(check bool) "carries a message" true (String.length r.Wire.payload > 0);
  (* The session keeps serving. *)
  let uncapped = Session.create db in
  let ok = Session.handle uncapped (plain_req "dblp" heavy) in
  Alcotest.(check bool) "uncapped session unaffected" true (ok.Wire.status = Wire.Ok)

let test_session_view_survives_reload () =
  let db = mkdb () in
  let session = Session.create db in
  let q = plain_req "journal" "for $n in //name return $n" in
  Alcotest.(check bool) "before" true ((Session.handle session q).Wire.status = Wire.Ok);
  DB.drop_document db ~name:"journal";
  (* Dropped: the name is unknown now. *)
  Alcotest.(check bool) "dropped -> bad request" true
    ((Session.handle session q).Wire.status = Wire.Bad_request);
  (* Reloaded under the same name: the session re-derives its view
     instead of serving plans against the dead store. *)
  ignore (DB.load_document db ~name:"journal" "<journal><name>Zoe</name></journal>");
  let r = Session.handle session q in
  Alcotest.(check bool) "reloaded -> ok" true (r.Wire.status = Wire.Ok);
  Alcotest.(check string) "fresh document's answer" "<name>Zoe</name>" r.Wire.payload

(* --- deadlines ------------------------------------------------------------- *)

let test_session_deadline_timeout () =
  let db = mkdb () in
  let session = Session.create db in
  (* A deadline in the past: the request is censored before execution,
     with the typed Timeout status — never a silent drop or a crash. *)
  let r = Session.handle session (plain_req ~deadline:0.5 "journal" "/journal") in
  Alcotest.(check bool) "already-expired deadline times out" true
    (let received = Xqdb_storage.Monotonic.now () -. 1.0 in
     (Session.handle ~received session (plain_req ~deadline:0.5 "journal" "/journal"))
       .Wire.status = Wire.Timeout);
  (* A generous deadline changes nothing. *)
  Alcotest.(check bool) "generous deadline is ok" true (r.Wire.status = Wire.Ok);
  (* Mid-run expiry: a tiny deadline against a heavy query censors with
     Timeout once the budget polls notice. *)
  let config = { Config.m4 with Config.pool_capacity = 4 } in
  let db = DB.create ~config () in
  ignore (DB.load_forest db ~name:"dblp" [W.Dblp_gen.generate (W.Dblp_gen.scaled 200)]);
  Xqdb_storage.Buffer_pool.drop_all (Engine.pool (DB.engine db ~name:"dblp"));
  let session = Session.create db in
  let heavy = "for $x in //article return for $y in //author return <p/>" in
  let received = Xqdb_storage.Monotonic.now () -. 1.0 in
  let r = Session.handle ~received session (plain_req ~deadline:1.000001 "dblp" heavy) in
  Alcotest.(check bool) "mid-run deadline censors with Timeout" true
    (r.Wire.status = Wire.Timeout);
  (* The session keeps serving afterwards. *)
  let ok = Session.handle session (plain_req "journal" "/journal") in
  ignore ok;
  let ok = Session.handle session (plain_req "dblp" "for $x in /dblp return <d/>") in
  Alcotest.(check bool) "session survives a timeout" true (ok.Wire.status = Wire.Ok)

(* --- the connection loop over in-memory feeds ------------------------------ *)

(* Feed a byte stream in, collect the written responses out. *)
let drive_connection ?on_shutdown ?draining db stream =
  let out = Buffer.create 256 in
  let session = Session.create db in
  Server.handle_connection ?on_shutdown ?draining ~session
    ~read:(Wire.string_reader stream) ~write:(Buffer.add_bytes out) ();
  let read = Wire.string_reader (Buffer.contents out) in
  let rec drain acc =
    match Wire.read_response ~read with
    | Result.Ok r -> drain (r :: acc)
    | Result.Error Wire.Closed -> List.rev acc
    | Result.Error e -> Alcotest.fail ("undecodable response: " ^ Wire.error_to_string e)
  in
  drain []

let test_connection_loop () =
  let db = mkdb () in
  let req q = Bytes.to_string (Wire.encode_request (plain_req "journal" q)) in
  (* Two good requests then EOF: two responses, clean return. *)
  let responses = drive_connection db (req "for $n in //name return $n" ^ req "/journal") in
  Alcotest.(check int) "two responses" 2 (List.length responses);
  List.iter
    (fun (r : Wire.response) ->
      Alcotest.(check bool) "each ok" true (r.Wire.status = Wire.Ok))
    responses;
  (* A good request followed by garbage: the answer, then a typed
     Bad_request, then the connection drops — never an exception. *)
  let responses = drive_connection db (req "/journal" ^ "GARBAGE BYTES") in
  (match responses with
  | [ first; second ] ->
    Alcotest.(check bool) "first ok" true (first.Wire.status = Wire.Ok);
    Alcotest.(check bool) "then bad request" true (second.Wire.status = Wire.Bad_request)
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length rs)));
  (* Hostile from byte one. *)
  (match drive_connection db (header ~magic:"EVIL" 0) with
  | [ only ] ->
    Alcotest.(check bool) "bad magic answered" true (only.Wire.status = Wire.Bad_request)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 response, got %d" (List.length rs)))

(* A shutdown frame fires the drain hook; a draining server finishes the
   in-flight request and then stops reading. *)
let test_shutdown_frame_and_drain () =
  let db = mkdb () in
  let req q = Bytes.to_string (Wire.encode_request (plain_req "journal" q)) in
  let shut = Bytes.to_string (Wire.encode_shutdown ()) in
  let hits = ref 0 in
  let responses =
    drive_connection ~on_shutdown:(fun () -> incr hits) db
      (req "/journal" ^ shut ^ req "/journal")
  in
  Alcotest.(check int) "shutdown hook fired once" 1 !hits;
  (* The request before the shutdown frame is answered; the shutdown
     frame itself gets no response and ends the connection, so the
     trailing request is never read. *)
  Alcotest.(check int) "request before shutdown answered" 1 (List.length responses);
  (* Once draining, the loop answers the current request and exits. *)
  let responses =
    drive_connection ~draining:(fun () -> true) db (req "/journal" ^ req "/journal")
  in
  Alcotest.(check int) "draining connection stops after one" 1 (List.length responses)

(* --- admission control ----------------------------------------------------- *)

let test_admission_queue () =
  let q = Server.Admission.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Server.Admission.push q (1, 0.));
  Alcotest.(check bool) "push 2" true (Server.Admission.push q (2, 0.));
  Alcotest.(check bool) "push over capacity is shed" false (Server.Admission.push q (3, 0.));
  Alcotest.(check int) "depth" 2 (Server.Admission.depth q);
  Alcotest.(check int) "high water" 2 (Server.Admission.high_water q);
  (match Server.Admission.pop q with
   | Some (1, _) -> ()
   | _ -> Alcotest.fail "FIFO order violated");
  (* After drain: pending items still pop, new pushes are refused, and
     an empty queue pops None instead of blocking forever. *)
  Server.Admission.drain q;
  Alcotest.(check bool) "push after drain refused" false (Server.Admission.push q (4, 0.));
  (match Server.Admission.pop q with
   | Some (2, _) -> ()
   | _ -> Alcotest.fail "drain must let queued work finish");
  (match Server.Admission.pop q with
   | None -> ()
   | Some _ -> Alcotest.fail "drained empty queue must pop None");
  Alcotest.(check int) "high water survives" 2 (Server.Admission.high_water q)

(* Producer/consumer across domains: every pushed item pops exactly
   once, drain wakes blocked consumers. *)
let test_admission_concurrent () =
  let q = Server.Admission.create ~capacity:64 in
  let popped = Atomic.make 0 in
  let consumers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Server.Admission.pop q with
              | Some _ -> Atomic.incr popped; loop ()
              | None -> ()
            in
            loop ()))
  in
  let pushed = ref 0 in
  for i = 1 to 200 do
    if Server.Admission.push q (i, 0.) then incr pushed
  done;
  (* Let the consumers catch up, then drain: they must all exit. *)
  while Atomic.get popped < !pushed do Domain.cpu_relax () done;
  Server.Admission.drain q;
  List.iter Domain.join consumers;
  Alcotest.(check int) "every accepted item popped once" !pushed (Atomic.get popped)

(* --- concurrency: K sessions behave like one ------------------------------- *)

(* The acceptance property behind `testbed traffic`: every concurrent
   session's (status, payload) must equal the single-session oracle's,
   and the shared pool must end quiescent. *)
let test_concurrent_sessions_match_oracle () =
  let db = DB.create () in
  ignore (DB.load_forest db ~name:"dblp" [W.Dblp_gen.generate (W.Dblp_gen.scaled 60)]);
  ignore (DB.load_document db ~name:"journal" W.Docs.figure2_string);
  let mix =
    List.map (fun (_, q) -> ("dblp", q)) Xqdb_testbed.Queries.efficiency_queries
    @ [ ("journal", "for $n in //name return $n"); ("nope", "/x"); ("journal", "for (") ]
  in
  let answer session (doc, q) =
    let r = Session.handle session (plain_req doc q) in
    (r.Wire.status, r.Wire.payload)
  in
  let oracle =
    let s = Session.create db in
    List.map (answer s) mix
  in
  let domains =
    (* Each domain walks the mix in a different rotation so the overlap
       pattern differs per domain. *)
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            let s = Session.create db in
            let n = List.length mix in
            List.init (3 * n) (fun i ->
                let req = List.nth mix ((i + k) mod n) in
                (req, answer s req))))
  in
  let results = List.concat_map Domain.join domains in
  let expected =
    List.map2 (fun m o -> (m, o)) mix oracle
  in
  List.iter
    (fun (req, got) ->
      match List.assoc_opt req expected with
      | None -> Alcotest.fail "request outside the mix"
      | Some want ->
        Alcotest.(check bool)
          "concurrent answer matches the single-session oracle" true (got = want))
    results;
  let pool = Engine.pool (DB.engine db ~name:"dblp") in
  Alcotest.(check (list (pair int int))) "no pins survive" []
    (Xqdb_storage.Buffer_pool.pinned_pages pool);
  Alcotest.(check (list (pair int int))) "no latches survive" []
    (Xqdb_storage.Buffer_pool.latched_pages pool)

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "server"
    [ ( "wire",
        [ Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "hostile frames" `Quick test_hostile_frames;
          Alcotest.test_case "v1 frames still speak" `Quick test_v1_frames_still_speak;
          prop decode_never_raises ] );
      ( "sessions",
        [ Alcotest.test_case "ok path" `Quick test_session_ok;
          Alcotest.test_case "bad requests" `Quick test_session_bad_requests;
          Alcotest.test_case "budget censoring" `Quick test_session_budget_censoring;
          Alcotest.test_case "deadline timeout" `Quick test_session_deadline_timeout;
          Alcotest.test_case "drop and reload" `Quick test_session_view_survives_reload ] );
      ( "connections",
        [ Alcotest.test_case "protocol loop" `Quick test_connection_loop;
          Alcotest.test_case "shutdown and drain" `Quick test_shutdown_frame_and_drain ] );
      ( "admission",
        [ Alcotest.test_case "bounded FIFO" `Quick test_admission_queue;
          Alcotest.test_case "concurrent producers/consumers" `Quick
            test_admission_concurrent ] );
      ( "concurrency",
        [ Alcotest.test_case "K sessions match one" `Quick
            test_concurrent_sessions_match_oracle ] ) ]
