(* Tests for the physical operators: scans, joins, projection/dedup,
   sorting, materialization, semijoin early-out. *)

module A = Xqdb_tpm.Tpm_algebra
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple
module S = Xqdb_storage
module X = Xqdb_xasr
module Xasr = X.Xasr

(* A small store shared by most tests: the Figure 2 journal. *)
let make_store ?(forest = [Xqdb_workload.Docs.figure2]) () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store, _ = X.Shredder.shred_forest pool ~name:"t" forest in
  (disk, Op.make_ctx store)

let ins_of op =
  (* Column 0 of an XASR schema is the in value. *)
  List.map
    (fun t -> match t.(0) with Tuple.I v -> v | Tuple.S _ -> -1)
    (Op.drain op)

let eq l r = { A.left = l; op = A.Eq; right = r }
let ocol a f = A.Ocol (A.col a f)

let elem_pred a = eq (ocol a A.Type_) (A.Otype Xasr.Element)
let value_pred a v = eq (ocol a A.Value) (A.Ostr v)

(* --- tuples -------------------------------------------------------------- *)

let tuple_roundtrip =
  QCheck2.Test.make ~name:"tuple encode/decode round trip" ~count:300
    QCheck2.Gen.(list_size (int_range 0 8)
                   (oneof [map (fun i -> Tuple.I i) (int_bound 10_000);
                           map (fun s -> Tuple.S s) (string_size (int_bound 10))]))
    (fun values ->
      let t = Array.of_list values in
      Tuple.decode (Tuple.encode t) = t)

let test_tuple_keys () =
  let t = [| Tuple.I 5; Tuple.S "ab"; Tuple.I 9 |] in
  let encoded = Tuple.encode_with_key ~key_positions:[| 2; 0 |] t in
  let key, decoded = Tuple.decode_keyed encoded in
  Alcotest.(check bool) "payload survives" true (decoded = t);
  Alcotest.(check bytes) "key extraction agrees" key (Tuple.key_of_encoded encoded);
  (* Key ordering by the selected positions. *)
  let k v = Tuple.key_of_encoded (Tuple.encode_with_key ~key_positions:[| 0 |] [| Tuple.I v |]) in
  Alcotest.(check bool) "key order" true (Bytes.compare (k 3) (k 40) < 0)

let test_compile_preds () =
  let schema = Tuple.xasr_schema "R" in
  let t = Tuple.of_xasr { Xasr.nin = 4; nout = 7; parent_in = 3; ntype = Xasr.Element; value = "name" } in
  let holds p = Tuple.compile_pred schema p t in
  Alcotest.(check bool) "eq col/const" true (holds (value_pred "R" "name"));
  Alcotest.(check bool) "eq mismatch" false (holds (value_pred "R" "title"));
  Alcotest.(check bool) "lt" true (holds { A.left = ocol "R" A.In; op = A.Lt; right = A.Oint 5 });
  Alcotest.(check bool) "gt" true (holds { A.left = ocol "R" A.Out; op = A.Gt; right = A.Oint 5 });
  (* Unresolved externals are a programming error. *)
  (try
     let (_ : Tuple.t -> Tuple.value) = Tuple.compile_operand schema (A.Oextern_in "x") in
     Alcotest.fail "external should not compile"
   with Invalid_argument _ -> ());
  (* ground_operand resolves them. *)
  let env v = if String.equal v "x" then (10, 20) else (0, 0) in
  Alcotest.(check bool) "ground in" true (Tuple.ground_operand env (A.Oextern_in "x") = A.Oint 10);
  Alcotest.(check bool) "ground out" true (Tuple.ground_operand env (A.Oextern_out "x") = A.Oint 20)

(* --- scans ---------------------------------------------------------------- *)

let test_scans () =
  let _, ctx = make_store () in
  let all = Op.full_scan ctx "R" ~preds:[] in
  Alcotest.(check int) "full scan size" 9 (Op.count all);
  let names = Op.full_scan ctx "R" ~preds:[elem_pred "R"; value_pred "R" "name"] in
  Alcotest.(check (list int)) "filtered scan" [4; 8] (ins_of names);
  let via_index = Op.label_scan ctx "R" ~ntype:Xasr.Element ~value:"name" ~preds:[] in
  Alcotest.(check (list int)) "label scan agrees" [4; 8] (ins_of via_index);
  let nothing = Op.label_scan ctx "R" ~ntype:Xasr.Element ~value:"zzz" ~preds:[] in
  Alcotest.(check (list int)) "label scan misses" [] (ins_of nothing);
  (* reset replays *)
  Alcotest.(check int) "reset replays" 2 (Op.count via_index);
  Alcotest.(check int) "count is stable" 2 (Op.count via_index)

let test_unit_and_empty () =
  let unit = Op.singleton [] [||] in
  Alcotest.(check int) "unit has one tuple" 1 (Op.count unit);
  Alcotest.(check int) "empty has none" 0 (Op.count (Op.empty []))

(* --- joins ---------------------------------------------------------------- *)

(* name elements joined to their parents via three methods must agree. *)
let test_join_methods_agree () =
  let _, ctx = make_store () in
  let parent_child_preds = [eq (ocol "P" A.In) (ocol "C" A.Parent_in)] in
  let nl =
    Op.nl_join ~preds:parent_child_preds
      (Op.full_scan ctx "P" ~preds:[elem_pred "P"])
      (Op.full_scan ctx "C" ~preds:[elem_pred "C"; value_pred "C" "name"])
      ctx
  in
  let inl =
    Op.inl_join ctx ~probe:(Op.Probe_child (ocol "P" A.In)) ~alias:"C"
      ~preds:[elem_pred "C"; value_pred "C" "name"] ~residual:[]
      (Op.full_scan ctx "P" ~preds:[elem_pred "P"])
  in
  let pairs op =
    List.map
      (fun t -> (t.(0), t.(5)))  (* P.in, C.in *)
      (Op.drain op)
  in
  Alcotest.(check bool) "nl = inl(child)" true (pairs nl = pairs inl);
  Alcotest.(check int) "two name-parent pairs" 2 (List.length (pairs nl))

let test_desc_probe () =
  let _, ctx = make_store () in
  (* Descendant texts of the authors element (in=3, out=12). *)
  let op =
    Op.inl_join ctx
      ~probe:(Op.Probe_desc (ocol "P" A.In, ocol "P" A.Out))
      ~alias:"D"
      ~preds:[eq (ocol "D" A.Type_) (A.Otype Xasr.Text)]
      ~residual:[]
      (Op.full_scan ctx "P" ~preds:[value_pred "P" "authors"])
  in
  let descendant_ins = List.map (fun t -> match t.(5) with Tuple.I v -> v | _ -> -1) (Op.drain op) in
  Alcotest.(check (list int)) "Ana and Bob" [5; 9] descendant_ins

let test_pk_probe () =
  let _, ctx = make_store () in
  (* Each node joined to its parent tuple by primary key. *)
  let op =
    Op.inl_join ctx ~probe:(Op.Probe_pk (ocol "C" A.Parent_in)) ~alias:"P" ~preds:[]
      ~residual:[]
      (Op.full_scan ctx "C" ~preds:[value_pred "C" "name"])
  in
  let parents = List.map (fun t -> match t.(5) with Tuple.I v -> v | _ -> -1) (Op.drain op) in
  Alcotest.(check (list int)) "both names have the authors parent" [3; 3] parents

let test_product_and_modes () =
  let _, ctx = make_store () in
  let make mode =
    Op.nl_join ~materialize_inner:mode ~preds:[]
      (Op.full_scan ctx "A" ~preds:[elem_pred "A"])
      (Op.full_scan ctx "B" ~preds:[eq (ocol "B" A.Type_) (A.Otype Xasr.Text)])
      ctx
  in
  (* 5 elements x 3 texts. *)
  List.iter
    (fun mode -> Alcotest.(check int) "product size" 15 (Op.count (make mode)))
    [`Mem; `Disk; `None]

let test_bnl_join () =
  let _, ctx = make_store () in
  let parent_child_preds = [eq (ocol "P" A.In) (ocol "C" A.Parent_in)] in
  let make_nl () =
    Op.nl_join ~preds:parent_child_preds
      (Op.full_scan ctx "P" ~preds:[elem_pred "P"])
      (Op.full_scan ctx "C" ~preds:[elem_pred "C"]) ctx
  in
  let make_bnl block_size =
    Op.bnl_join ~block_size ~preds:parent_child_preds
      (Op.full_scan ctx "P" ~preds:[elem_pred "P"])
      (Op.full_scan ctx "C" ~preds:[elem_pred "C"]) ctx
  in
  let multiset op = List.sort compare (Op.drain op) in
  (* Same multiset of rows as plain NL, for several block sizes. *)
  List.iter
    (fun bs ->
      Alcotest.(check bool)
        (Printf.sprintf "bnl(block=%d) = nl as multisets" bs)
        true
        (multiset (make_bnl bs) = multiset (make_nl ())))
    [1; 2; 3; 64];
  (* With block size 1 the output order coincides with NL. *)
  Alcotest.(check bool) "block=1 is plain NL order" true
    (Op.drain (make_bnl 1) = Op.drain (make_nl ()));
  (* A cross product with a block spanning several outer tuples is
     inner-major within the block: order is destroyed. *)
  let product join =
    join
      (Op.full_scan ctx "A" ~preds:[elem_pred "A"])
      (Op.full_scan ctx "B" ~preds:[eq (ocol "B" A.Type_) (A.Otype Xasr.Text)])
  in
  let nl_rows = Op.drain (product (fun l r -> Op.nl_join ~preds:[] l r ctx)) in
  let bnl_rows = Op.drain (product (fun l r -> Op.bnl_join ~block_size:64 ~preds:[] l r ctx)) in
  Alcotest.(check bool) "same multiset" true
    (List.sort compare nl_rows = List.sort compare bnl_rows);
  Alcotest.(check bool) "different order (order destroyed)" true (nl_rows <> bnl_rows);
  (* reset replays *)
  let op = make_bnl 2 in
  Alcotest.(check int) "replay" (Op.count op) (Op.count op)

let test_semi_join () =
  let _, ctx = make_store () in
  (* Elements having at least one text child: semi stops at the first. *)
  let semi =
    Op.inl_join ~semi:true ctx ~probe:(Op.Probe_child (ocol "P" A.In)) ~alias:"C"
      ~preds:[eq (ocol "C" A.Type_) (A.Otype Xasr.Text)]
      ~residual:[]
      (Op.full_scan ctx "P" ~preds:[elem_pred "P"])
  in
  let lefts = ins_of semi in
  Alcotest.(check (list int)) "one row per qualifying element" [4; 8; 13] lefts

(* --- structural operators -------------------------------------------------- *)

module Tree = Xqdb_xml.Xml_tree

let int_of = function Tuple.I v -> v | Tuple.S _ -> -1

let test_struct_scan () =
  let _, ctx = make_store () in
  Alcotest.(check (list int)) "struct scan = label scan" [4; 8]
    (ins_of (Op.struct_scan ctx "R" ~label:"name" ~preds:[]));
  Alcotest.(check (list int)) "missing label" []
    (ins_of (Op.struct_scan ctx "R" ~label:"zzz" ~preds:[]));
  (* The stream carries full tuples despite never touching the primary. *)
  let t = List.hd (Op.drain (Op.struct_scan ctx "R" ~label:"journal" ~preds:[])) in
  Alcotest.(check bool) "full tuple reconstructed" true
    (t.(1) = Tuple.I 17 && t.(2) = Tuple.I 1 && t.(4) = Tuple.S "journal");
  Alcotest.(check (list int)) "residual predicate applies" [4]
    (ins_of
       (Op.struct_scan ctx "R" ~label:"name"
          ~preds:[{ A.left = ocol "R" A.In; op = A.Lt; right = A.Oint 5 }]))

(* The staircase join must agree with the descendant-probe index join on
   every interval configuration: normal, empty inner run, disjoint
   sibling intervals, and fully (self-)nested chains. *)
let test_struct_join_agrees () =
  List.iter
    (fun (what, forest, outer_label, inner_label, expected_pairs) ->
      let _, ctx = make_store ~forest () in
      let outer () = Op.label_scan ctx "P" ~ntype:Xasr.Element ~value:outer_label ~preds:[] in
      let sj ?semi () =
        Op.struct_join ?semi ctx ~lo:(ocol "P" A.In) ~hi:(ocol "P" A.Out) ~alias:"D"
          ~label:inner_label ~preds:[] ~residual:[] (outer ())
      in
      let inl ?semi () =
        Op.inl_join ?semi ctx
          ~probe:(Op.Probe_desc (ocol "P" A.In, ocol "P" A.Out))
          ~alias:"D"
          ~preds:[elem_pred "D"; value_pred "D" inner_label]
          ~residual:[] (outer ())
      in
      Alcotest.(check int)
        (what ^ ": pair count")
        expected_pairs
        (List.length (Op.drain (sj ())));
      Alcotest.(check bool) (what ^ ": struct = inl(desc)") true
        (Op.drain (sj ()) = Op.drain (inl ()));
      Alcotest.(check bool) (what ^ ": semijoins agree") true
        (Op.drain (sj ~semi:true ()) = Op.drain (inl ~semi:true ()));
      (* reset replays from the cached run *)
      let op = sj () in
      Alcotest.(check int) (what ^ ": replay") (Op.count op) (Op.count op))
    [ ("figure2", [Xqdb_workload.Docs.figure2], "journal", "name", 2);
      ("empty inner", [Tree.elem "a" [Tree.elem "b" []]], "a", "zzz", 0);
      ( "disjoint siblings",
        [Tree.elem "r" [Tree.elem "a" []; Tree.elem "b" []]],
        "a", "b", 0 );
      ( "fully nested chain",
        [Tree.elem "a" [Tree.elem "a" [Tree.elem "a" [Tree.elem "b" []]]]],
        "a", "a", 3 ) ]

let twig alias label axis = { Op.tw_alias = alias; tw_label = label; tw_axis = axis }

let test_twig_match_hand_verified () =
  let _, ctx = make_store () in
  let solutions ?anchor steps cols =
    List.map
      (fun t -> List.map (fun c -> int_of t.(c)) cols)
      (Op.drain (Op.twig_match ctx ~anchor ~steps))
  in
  (* //journal//name: (2,4) and (2,8), in lexicographic (in, in) order. *)
  Alcotest.(check (list (list int))) "journal//name" [[2; 4]; [2; 8]]
    (solutions [twig "J" "journal" Op.Twig_desc; twig "N" "name" Op.Twig_desc] [0; 5]);
  (* Three steps: //journal//authors//name. *)
  Alcotest.(check (list (list int))) "journal//authors//name" [[2; 3; 4]; [2; 3; 8]]
    (solutions
       [ twig "J" "journal" Op.Twig_desc;
         twig "A" "authors" Op.Twig_desc;
         twig "N" "name" Op.Twig_desc ]
       [0; 5; 10]);
  (* Child axis prunes: names are children of authors, not of journal. *)
  Alcotest.(check (list (list int))) "authors/name" [[3; 4]; [3; 8]]
    (solutions [twig "A" "authors" Op.Twig_desc; twig "N" "name" Op.Twig_child] [0; 5]);
  Alcotest.(check (list (list int))) "journal/name is empty" []
    (solutions [twig "J" "journal" Op.Twig_desc; twig "N" "name" Op.Twig_child] [0; 5]);
  (* An anchor interval restricts the first step's stream. *)
  Alcotest.(check (list (list int))) "anchored to authors (3, 12)" [[4]; [8]]
    (solutions ~anchor:(A.Oint 3, A.Oint 12) [twig "N" "name" Op.Twig_desc] [0]);
  Alcotest.(check (list (list int))) "anchored to title (13, 16)" []
    (solutions ~anchor:(A.Oint 13, A.Oint 16) [twig "N" "name" Op.Twig_desc] [0])

(* --- filter, project, dedup ------------------------------------------------- *)

let test_filter_and_project () =
  let _, ctx = make_store () in
  let scan = Op.full_scan ctx "R" ~preds:[] in
  let filtered = Op.filter ~preds:[elem_pred "R"] scan in
  Alcotest.(check int) "filter" 5 (Op.count filtered);
  let projected =
    Op.project ~cols:[A.col "R" A.Value] ~dedup:`No
      (Op.full_scan ctx "R" ~preds:[elem_pred "R"])
  in
  Alcotest.(check int) "project width" 1 (List.length (List.hd (Op.drain projected) |> Array.to_list));
  let dedup_adj =
    Op.project ~cols:[A.col "R" A.Parent_in] ~dedup:`Adjacent
      (Op.full_scan ctx "R" ~preds:[elem_pred "R"; value_pred "R" "name"])
  in
  (* Both names share parent 3; adjacent dedup collapses them. *)
  Alcotest.(check int) "adjacent dedup" 1 (Op.count dedup_adj);
  let dedup_hash =
    Op.project ~cols:[A.col "R" A.Value] ~dedup:`Hash (Op.full_scan ctx "R" ~preds:[elem_pred "R"])
  in
  (* journal authors name name title -> 4 distinct labels. *)
  Alcotest.(check int) "hash dedup" 4 (Op.count dedup_hash)

(* --- sorting ------------------------------------------------------------------ *)

let test_sorts_agree () =
  let _, ctx = make_store () in
  (* Sort elements by value; three implementations must agree. *)
  let input () = Op.full_scan ctx "R" ~preds:[elem_pred "R"] in
  let key_cols = [A.col "R" A.Value; A.col "R" A.In] in
  let values op = List.map (fun t -> t.(4)) (Op.drain op) in
  let mem = values (Op.sort ~mode:`In_mem ~key_cols (input ()) ctx) in
  let ext = values (Op.sort ~mode:`External ~key_cols (input ()) ctx) in
  let bt = values (Op.btree_sort ~dedup:false ~key_cols (input ()) ctx) in
  Alcotest.(check bool) "mem = external" true (mem = ext);
  Alcotest.(check bool) "mem = btree" true (mem = bt);
  Alcotest.(check bool) "sorted by label" true
    (mem = List.sort compare mem);
  (* Dedup on the value column alone. *)
  let dedup =
    Op.sort ~dedup:true ~mode:`In_mem ~key_cols:[A.col "R" A.Value] (input ()) ctx
  in
  Alcotest.(check int) "sort dedup by value" 4 (Op.count dedup);
  let bt_dedup = Op.btree_sort ~key_cols:[A.col "R" A.Value] (input ()) ctx in
  Alcotest.(check int) "btree sort dedups by key" 4 (Op.count bt_dedup)

let test_materialize () =
  let _, ctx = make_store () in
  List.iter
    (fun where ->
      let mat = Op.materialize where (Op.full_scan ctx "R" ~preds:[]) ctx in
      Alcotest.(check int) "materialized count" 9 (Op.count mat);
      Alcotest.(check int) "replay" 9 (Op.count mat))
    [`Mem; `Disk]

(* --- parameter slots and rebind ------------------------------------------------ *)

let test_params_rebind () =
  let _, base = make_store () in
  let params = Tuple.make_params ["v"] in
  let ctx = Op.with_params base params in
  let op =
    Op.full_scan ctx "R"
      ~preds:[elem_pred "R"; eq (ocol "R" A.Parent_in) (A.Oextern_in "v")]
  in
  Alcotest.(check bool) "extern pred makes the scan parameter-dependent" true
    op.Op.param_dep;
  Alcotest.(check bool) "plain scan is parameter-independent" false
    (Op.full_scan ctx "R" ~preds:[elem_pred "R"]).Op.param_dep;
  let children nin =
    Tuple.bind_params params (fun _ -> (nin, 0));
    Op.rebind op;
    op.Op.reset ();
    ins_of op
  in
  Alcotest.(check (list int)) "element children of the root" [2] (children 1);
  Alcotest.(check (list int)) "element children of authors" [4; 8] (children 3);
  Alcotest.(check (list int)) "rebinding back agrees" [2] (children 1)

(* rebind clears only parameter-dependent caches: an independent cached
   inner relation survives (observable through its row counter), while a
   dependent one is re-read with the new binding. *)
let test_rebind_cache_policy () =
  let _, base = make_store () in
  let params = Tuple.make_params ["v"] in
  let ctx = Op.with_params base params in
  (* Dependent outer (children of $v), independent inner (the names). *)
  let outer =
    Op.full_scan ctx "R"
      ~preds:[elem_pred "R"; eq (ocol "R" A.Parent_in) (A.Oextern_in "v")]
  in
  let inner = Op.full_scan ctx "S" ~preds:[elem_pred "S"; value_pred "S" "name"] in
  let join = Op.nl_join ~preds:[] outer inner ctx in
  Alcotest.(check bool) "join inherits dependence from its outer" true join.Op.param_dep;
  let rows j nin =
    Tuple.bind_params params (fun _ -> (nin, 0));
    Op.rebind j;
    j.Op.reset ();
    List.length (Op.drain j)
  in
  Alcotest.(check int) "1 root child x 2 names" 2 (rows join 1);
  let inner_rows = inner.Op.stats.Op.rows in
  Alcotest.(check int) "2 authors children x 2 names" 4 (rows join 3);
  Alcotest.(check int) "independent inner served from its cache" inner_rows
    inner.Op.stats.Op.rows;
  (* Flip the roles: a parameter-dependent inner cache must be dropped,
     otherwise the second binding would replay the first one's rows. *)
  let outer2 = Op.full_scan ctx "R" ~preds:[elem_pred "R"; value_pred "R" "name"] in
  let inner2 =
    Op.full_scan ctx "S"
      ~preds:[elem_pred "S"; eq (ocol "S" A.Parent_in) (A.Oextern_in "v")]
  in
  let join2 = Op.nl_join ~preds:[] outer2 inner2 ctx in
  Alcotest.(check int) "2 names x 1 root child" 2 (rows join2 1);
  Alcotest.(check int) "2 names x 2 authors children" 4 (rows join2 3)

(* --- pin safety under disk faults ------------------------------------------ *)

(* Satellite of the pin-sanitizer work: a hard disk fault in the middle
   of an index scan or an index join must unwind without leaving a
   single pinned frame — otherwise each fault would permanently shrink
   the pool until it is unusable. *)

let hard_read_faults =
  { S.Fault_disk.read_fault_rate = 1.0;
    write_fault_rate = 0.;
    alloc_fault_rate = 0.;
    transient_fraction = 0.;  (* hard: defeats the pool's bounded retry *)
    torn_fraction = 0. }

let make_sanitized_store () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:8 ~sanitize:true disk in
  let store, _ = X.Shredder.shred_forest pool ~name:"t" [Xqdb_workload.Docs.figure2] in
  (disk, pool, Op.make_ctx store)

let expect_disk_error_pins_clean ~what ~pool ~ctx build =
  match Op.drain (build ()) with
  | _ -> Alcotest.fail (what ^ ": injected hard fault should surface as Disk_error")
  | exception S.Disk.Disk_error _ ->
    S.Buffer_pool.assert_unpinned ~where:what pool;
    Alcotest.(check (list (pair int int))) (what ^ ": no pinned frames") []
      (S.Buffer_pool.pinned_pages pool);
    ignore ctx

let test_label_scan_fault_pins () =
  let disk, pool, ctx = make_sanitized_store () in
  S.Buffer_pool.drop_all pool;  (* the scan must fault its pages back in *)
  let injector = S.Fault_disk.attach ~policy:hard_read_faults ~seed:7 disk in
  expect_disk_error_pins_clean ~what:"label_scan mid-fault" ~pool ~ctx (fun () ->
      Op.label_scan ctx "R" ~ntype:Xasr.Element ~value:"name" ~preds:[]);
  S.Fault_disk.detach injector;
  (* Every frame is evictable again: the same scan now runs to completion. *)
  let op = Op.label_scan ctx "R" ~ntype:Xasr.Element ~value:"name" ~preds:[] in
  Alcotest.(check bool) "recovered scan produces rows" true (ins_of op <> []);
  Op.close ctx op

let test_inl_join_fault_pins () =
  let disk, pool, ctx = make_sanitized_store () in
  S.Buffer_pool.drop_all pool;
  let injector = S.Fault_disk.attach ~policy:hard_read_faults ~seed:11 disk in
  let build () =
    (* Constant probe over the nullary outer: the first probe hits the
       parent index, whose pages are all faulted. *)
    Op.inl_join ctx
      ~probe:(Op.Probe_child (A.Oint 1))
      ~alias:"C" ~preds:[] ~residual:[]
      (Op.singleton [] [||])
  in
  expect_disk_error_pins_clean ~what:"inl_join mid-fault" ~pool ~ctx build;
  S.Fault_disk.detach injector;
  let op = build () in
  Alcotest.(check bool) "recovered join produces rows" true (Op.count op > 0);
  Op.close ctx op;
  S.Buffer_pool.assert_unpinned ~where:"inl_join after recovery" pool

(* Pin safety of the structural family: a hard fault mid-stream unwinds
   without leaving pinned frames, same contract as label_scan/inl_join. *)
let test_struct_ops_fault_pins () =
  let disk, pool, ctx = make_sanitized_store () in
  S.Buffer_pool.drop_all pool;
  let injector = S.Fault_disk.attach ~policy:hard_read_faults ~seed:13 disk in
  expect_disk_error_pins_clean ~what:"struct_scan mid-fault" ~pool ~ctx (fun () ->
      Op.struct_scan ctx "R" ~label:"name" ~preds:[]);
  expect_disk_error_pins_clean ~what:"struct_join mid-fault" ~pool ~ctx (fun () ->
      Op.struct_join ctx ~lo:(A.Oint 1) ~hi:(A.Oint 18) ~alias:"D" ~label:"name"
        ~preds:[] ~residual:[] (Op.singleton [] [||]));
  expect_disk_error_pins_clean ~what:"twig_match mid-fault" ~pool ~ctx (fun () ->
      Op.twig_match ctx ~anchor:None ~steps:[twig "N" "name" Op.Twig_desc]);
  S.Fault_disk.detach injector;
  let op = Op.struct_scan ctx "R" ~label:"name" ~preds:[] in
  Alcotest.(check (list int)) "recovered struct scan produces rows" [4; 8] (ins_of op);
  Op.close ctx op;
  S.Buffer_pool.assert_unpinned ~where:"struct ops after recovery" pool

(* --- budget propagation -------------------------------------------------------- *)

let test_operator_budget () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:4 disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 150)]
  in
  S.Buffer_pool.drop_all pool;
  let budget = S.Budget.create ~max_page_ios:2 disk in
  let ctx = Op.make_ctx ~budget store in
  match Op.count (Op.full_scan ctx "R" ~preds:[]) with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception S.Budget.Exhausted _ -> ()

(* --- batch protocol ------------------------------------------------------- *)

(* Pull batches by hand, checking the protocol invariant as we go: a
   returned batch is never empty, exhaustion is always [None]. *)
let batch_lengths op =
  let rec go acc =
    match Op.next_batch op with
    | None -> List.rev acc
    | Some b ->
      Alcotest.(check bool) "a returned batch is never empty" true (b.Tuple.len > 0);
      go (b.Tuple.len :: acc)
  in
  go []

let test_batch_partial_and_empty () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store, _ = X.Shredder.shred_forest pool ~name:"t" [Xqdb_workload.Docs.figure2] in
  let ctx = Op.make_ctx ~batch_size:4 store in
  (* Nine tuples at batch size four: two full batches plus a final
     partial one, with stats counted per row and per batch. *)
  let op = Op.full_scan ctx "R" ~preds:[] in
  Alcotest.(check (list int)) "final batch is partial" [4; 4; 1] (batch_lengths op);
  Alcotest.(check int) "stats count rows" 9 op.Op.stats.Op.rows;
  Alcotest.(check int) "stats count batches" 3 op.Op.stats.Op.batches;
  (* A predicate matching nothing yields None immediately, never a
     zero-length batch. *)
  let none = Op.full_scan ctx "R" ~preds:[value_pred "R" "zzz"] in
  Alcotest.(check (list int)) "empty result is None, not an empty batch" []
    (batch_lengths none);
  Alcotest.(check int) "empty result counts no batches" 0 none.Op.stats.Op.batches

let test_batch_straddles_pages () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 60)]
  in
  let total = X.Node_store.tuple_count store in
  let leaves = X.Node_store.primary_leaf_pages store in
  Alcotest.(check bool) "store spans several leaf pages" true (leaves > 1);
  Alcotest.(check bool) "store is larger than one batch" true (total > 512);
  (* A 512-row batch necessarily crosses leaf boundaries (a 4 KiB page
     holds far fewer XASR tuples), so a full first batch proves the scan
     keeps filling across page pulls rather than cutting batches at
     page edges. *)
  let big = Op.full_scan (Op.make_ctx ~batch_size:512 store) "R" ~preds:[] in
  (match batch_lengths big with
   | first :: _ -> Alcotest.(check int) "first batch fills across pages" 512 first
   | [] -> Alcotest.fail "scan produced no batches");
  Alcotest.(check int) "all rows delivered" total big.Op.stats.Op.rows;
  (* Degrading to one-row batches runs the identical code path and must
     produce the same rows in the same document order. *)
  let rows bs = ins_of (Op.full_scan (Op.make_ctx ~batch_size:bs store) "R" ~preds:[]) in
  Alcotest.(check bool) "batch=512 equals batch=1, in order" true (rows 512 = rows 1)

let test_rebind_between_batches () =
  let _, base = make_store () in
  let params = Tuple.make_params ["v"] in
  let ctx = Op.with_params { base with Op.batch_size = 1 } params in
  let op =
    Op.full_scan ctx "R"
      ~preds:[elem_pred "R"; eq (ocol "R" A.Parent_in) (A.Oextern_in "v")]
  in
  (* Consume only the first of authors' two children... *)
  Tuple.bind_params params (fun _ -> (3, 0));
  Op.rebind op;
  op.Op.reset ();
  (match Op.next_batch op with
   | Some b ->
     Alcotest.(check bool) "first child of authors" true
       ((Tuple.batch_row b 0).(0) = Tuple.I 4)
   | None -> Alcotest.fail "expected a first batch");
  (* ...then rebind mid-stream: the stream must restart under the new
     binding instead of resuming the old one. *)
  Tuple.bind_params params (fun _ -> (1, 0));
  Op.rebind op;
  op.Op.reset ();
  Alcotest.(check (list int)) "rebind mid-stream restarts cleanly" [2] (ins_of op)

let test_budget_partial_batches () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:4 disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 150)]
  in
  S.Buffer_pool.drop_all pool;
  let budget = S.Budget.create ~max_page_ios:2 disk in
  let ctx = Op.make_ctx ~budget store in
  let op = Op.full_scan ctx "R" ~preds:[] in
  (* The budget is polled per batch, so the first batch (whose fill
     overruns the two-I/O allowance) still comes back whole... *)
  let first =
    match Op.next_batch op with
    | Some b -> b.Tuple.len
    | None -> Alcotest.fail "expected rows before exhaustion"
  in
  Alcotest.(check bool) "first batch delivered" true (first > 0);
  (* ...and the next poll raises. *)
  (match Op.next_batch op with
   | _ -> Alcotest.fail "expected exhaustion on the second batch"
   | exception S.Budget.Exhausted _ -> ());
  (* The censored operator still reports a consistent partial profile. *)
  let p = Op.profile op in
  Alcotest.(check int) "partial profile keeps the delivered batch" 1 p.Op.batches;
  Alcotest.(check int) "partial profile keeps the delivered rows" first p.Op.rows;
  Alcotest.(check bool) "partial profile charged the I/O" true (p.Op.ios > 0)

(* --- parallel scan -------------------------------------------------------- *)

let test_par_scan_agrees () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:8 ~sanitize:true disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 20)]
  in
  ignore disk;
  let ctx = Op.make_ctx store in
  let seq = ins_of (Op.full_scan ctx "R" ~preds:[]) in
  Alcotest.(check bool) "sequential baseline is non-trivial" true
    (List.length seq > 8);
  List.iter
    (fun domains ->
      let op = Op.par_scan ctx ~domains "R" ~preds:[] in
      Alcotest.(check bool)
        (Printf.sprintf "par_scan over %d domains preserves document order" domains)
        true
        (ins_of op = seq);
      Alcotest.(check int) "replay from the merge agrees" (List.length seq)
        (Op.count op);
      Op.close ctx op)
    [1; 2; 3; 4];
  (* Predicates are evaluated inside the partitions. *)
  let preds = [elem_pred "R"; value_pred "R" "author"] in
  let filtered = ins_of (Op.full_scan ctx "R" ~preds) in
  let par = Op.par_scan ctx ~domains:4 "R" ~preds in
  Alcotest.(check bool) "filtered parallel scan agrees" true (ins_of par = filtered);
  Op.close ctx par;
  (* The sanitizer saw every cross-domain pin; nothing may be left. *)
  S.Buffer_pool.assert_unpinned ~where:"par_scan" pool;
  Alcotest.(check (list (pair int int))) "no pinned frames after par_scan" []
    (S.Buffer_pool.pinned_pages pool)

let test_par_scan_rebind () =
  let _, base = make_store () in
  let params = Tuple.make_params ["v"] in
  let ctx = Op.with_params base params in
  let op =
    Op.par_scan ctx ~domains:2 "R"
      ~preds:[elem_pred "R"; eq (ocol "R" A.Parent_in) (A.Oextern_in "v")]
  in
  Alcotest.(check bool) "extern pred makes par_scan parameter-dependent" true
    op.Op.param_dep;
  let children nin =
    Tuple.bind_params params (fun _ -> (nin, 0));
    Op.rebind op;
    op.Op.reset ();
    ins_of op
  in
  Alcotest.(check (list int)) "element children of the root" [2] (children 1);
  Alcotest.(check (list int)) "element children of authors" [4; 8] (children 3);
  Alcotest.(check (list int)) "rebinding back agrees" [2] (children 1)

let test_par_scan_budget () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create ~capacity:4 disk in
  let store, _ =
    X.Shredder.shred_forest pool ~name:"t"
      [Xqdb_workload.Dblp_gen.generate (Xqdb_workload.Dblp_gen.scaled 150)]
  in
  S.Buffer_pool.drop_all pool;
  let budget = S.Budget.create ~max_page_ios:2 disk in
  let ctx = Op.make_ctx ~budget store in
  (* Exhaustion inside a worker domain must cross the join barrier and
     surface as the ordinary budget exception, not a crash. *)
  match Op.count (Op.par_scan ctx ~domains:3 "R" ~preds:[]) with
  | _ -> Alcotest.fail "expected exhaustion through the domain join"
  | exception S.Budget.Exhausted _ -> ()

let test_ctx_validation () =
  let _, ctx = make_store () in
  let store_of (c : Op.ctx) = c.Op.store in
  (match Op.make_ctx ~batch_size:0 (store_of ctx) with
   | _ -> Alcotest.fail "batch_size 0 must be rejected"
   | exception Invalid_argument _ -> ());
  (match Op.make_ctx ~scan_domains:0 (store_of ctx) with
   | _ -> Alcotest.fail "scan_domains 0 must be rejected"
   | exception Invalid_argument _ -> ())

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "physical"
    [ ( "tuples",
        [ prop tuple_roundtrip;
          Alcotest.test_case "keys" `Quick test_tuple_keys;
          Alcotest.test_case "predicate compilation" `Quick test_compile_preds ] );
      ( "scans",
        [ Alcotest.test_case "full and label scans" `Quick test_scans;
          Alcotest.test_case "unit and empty" `Quick test_unit_and_empty ] );
      ( "joins",
        [ Alcotest.test_case "methods agree" `Quick test_join_methods_agree;
          Alcotest.test_case "descendant probe" `Quick test_desc_probe;
          Alcotest.test_case "primary-key probe" `Quick test_pk_probe;
          Alcotest.test_case "products and inner modes" `Quick test_product_and_modes;
          Alcotest.test_case "block nested loops" `Quick test_bnl_join;
          Alcotest.test_case "semijoin early-out" `Quick test_semi_join ] );
      ( "structural",
        [ Alcotest.test_case "struct scan" `Quick test_struct_scan;
          Alcotest.test_case "staircase join = index join" `Quick test_struct_join_agrees;
          Alcotest.test_case "twig matching" `Quick test_twig_match_hand_verified ] );
      ( "projection",
        [ Alcotest.test_case "filter and dedup" `Quick test_filter_and_project ] );
      ( "sorting",
        [ Alcotest.test_case "three sorts agree" `Quick test_sorts_agree;
          Alcotest.test_case "materialize" `Quick test_materialize ] );
      ( "params",
        [ Alcotest.test_case "bind and rebind" `Quick test_params_rebind;
          Alcotest.test_case "rebind cache policy" `Quick test_rebind_cache_policy ] );
      ( "pin safety",
        [ Alcotest.test_case "label_scan fault leaves no pins" `Quick
            test_label_scan_fault_pins;
          Alcotest.test_case "inl_join fault leaves no pins" `Quick
            test_inl_join_fault_pins;
          Alcotest.test_case "structural family leaves no pins" `Quick
            test_struct_ops_fault_pins ] );
      ("budget", [Alcotest.test_case "propagation" `Quick test_operator_budget]);
      ( "batches",
        [ Alcotest.test_case "partial and empty batches" `Quick
            test_batch_partial_and_empty;
          Alcotest.test_case "batches straddle page boundaries" `Quick
            test_batch_straddles_pages;
          Alcotest.test_case "rebind between batches" `Quick
            test_rebind_between_batches;
          Alcotest.test_case "budget censoring mid-stream" `Quick
            test_budget_partial_batches;
          Alcotest.test_case "ctx validation" `Quick test_ctx_validation ] );
      ( "parallel scan",
        [ Alcotest.test_case "agrees with full scan, in order" `Quick
            test_par_scan_agrees;
          Alcotest.test_case "rebind across domains" `Quick test_par_scan_rebind;
          Alcotest.test_case "budget crosses the join" `Quick test_par_scan_budget ] ) ]
