(* Tests for the milestone-4 optimizer: statistics/estimates, planner
   validity, cost-based choices, and — crucially — that every valid
   combination of join order and ordering strategy computes the same
   relation. *)

module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats
module Op = Xqdb_physical.Phys_op
module Tuple = Xqdb_physical.Tuple
module S = Xqdb_storage
module X = Xqdb_xasr
module W = Xqdb_workload

let load forest =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store, doc_stats = X.Shredder.shred_forest pool ~name:"t" forest in
  (store, doc_stats)

let dblp = [W.Dblp_gen.generate (W.Dblp_gen.scaled 120)]

let root_env store =
  let root_out = (X.Node_store.root_tuple store).X.Xasr.nout in
  fun v ->
    if String.equal v Xqdb_xq.Xq_ast.root_var then (1, root_out)
    else failwith ("unexpected external " ^ v)

let psx_of query_src =
  let rec first = function
    | A.Relfor r -> r.A.source
    | A.Constr (_, t) | A.Guard (_, t) -> first t
    | A.Seq (t1, _) -> first t1
    | A.Empty | A.Text_out _ | A.Out_var _ -> failwith "no relfor"
  in
  first (Merge.merge (Rewrite.query (Xqdb_xq.Xq_parser.parse query_src)))

let run_plan store plan =
  let ctx = Op.make_ctx store in
  Op.drain (Planner.instantiate ctx plan ~env:(root_env store))

(* --- statistics ----------------------------------------------------------- *)

let test_stats_estimates () =
  let store, doc_stats = load dblp in
  let good = Stats.make store doc_stats in
  Alcotest.(check bool) "node count positive" true (Stats.node_count good > 100.0);
  Alcotest.(check bool) "labels counted exactly" true
    (Stats.label_card good "volume" < Stats.label_card good "author");
  Alcotest.(check (float 0.001)) "missing label is zero" 0.0
    (Stats.label_card good "nonexistent");
  Alcotest.(check bool) "avg depth shallow" true (Stats.avg_depth good < 5.0);
  Alcotest.(check bool) "fanout sane" true
    (Stats.avg_fanout good > 1.0 && Stats.avg_fanout good < 10.0);
  Alcotest.(check bool) "pages positive" true (Stats.pages_of_tuples good 100.0 >= 1.0)

let test_unlucky_inversion () =
  let store, doc_stats = load dblp in
  let good = Stats.make store doc_stats in
  let unlucky = Stats.make ~quality:Stats.Unlucky store doc_stats in
  (* Good knows volume << author; Unlucky inverts the comparison. *)
  Alcotest.(check bool) "good ranks volume below author" true
    (Stats.label_card good "volume" < Stats.label_card good "author");
  Alcotest.(check bool) "unlucky inverts the ranking" true
    (Stats.label_card unlucky "volume" > Stats.label_card unlucky "author");
  Alcotest.(check bool) "unlucky depth is canned" true (Stats.avg_depth unlucky = 2.0)

(* --- planner validity -------------------------------------------------------- *)

let example6_psx () = psx_of Xqdb_testbed.Queries.example6

let test_preserve_validity () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let psx = example6_psx () in
  let bindings = List.map (fun (b : A.binding) -> b.A.brel) psx.A.bindings in
  (* Binding aliases out of order are rejected under `Preserve. *)
  (match bindings with
   | [x; y] ->
     let existential = List.filter (fun a -> not (List.mem a bindings)) psx.A.rels in
     (match
        Planner.plan_with_order Planner.m4_config stats psx ((y :: existential) @ [x])
      with
      | _ -> Alcotest.fail "out-of-order bindings should be invalid"
      | exception Invalid_argument _ -> ())
   | _ -> Alcotest.fail "expected two bindings");
  (* Non-permutations are rejected. *)
  (match Planner.plan_with_order Planner.m4_config stats psx ["Z"] with
   | _ -> Alcotest.fail "non-permutation should be rejected"
   | exception Invalid_argument _ -> ());
  (* The planner's own choice must keep bindings in order. *)
  let plan = Planner.plan Planner.m4_config stats psx in
  let order = List.map (fun s -> s.Planner.alias) plan.Planner.steps in
  let placed_bindings = List.filter (fun a -> List.mem a bindings) order in
  Alcotest.(check (list string)) "bindings in binding order" bindings placed_bindings

let test_provably_empty () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let psx = psx_of "for $x in //nonexistent return $x" in
  let plan = Planner.plan Planner.m4_config stats psx in
  Alcotest.(check bool) "provably empty" true plan.Planner.provably_empty;
  Alcotest.(check int) "no rows" 0 (List.length (run_plan store plan));
  (* Unlucky estimates may not prove anything. *)
  let unlucky = Stats.make ~quality:Stats.Unlucky store doc_stats in
  let plan2 = Planner.plan Planner.m4_config unlucky psx in
  Alcotest.(check bool) "unlucky cannot prove emptiness" false plan2.Planner.provably_empty;
  Alcotest.(check int) "still no rows" 0 (List.length (run_plan store plan2));
  (* Milestone-3 configs have no statistics shortcut. *)
  let plan3 = Planner.plan Planner.m3_config stats psx in
  Alcotest.(check bool) "m3 cannot prove emptiness" false plan3.Planner.provably_empty

let test_cost_based_prefers_indexes () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let psx = psx_of "for $v in //volume return $v" in
  let m4 = Planner.plan Planner.m4_config stats psx in
  let m3 = Planner.plan Planner.m3_config stats psx in
  Alcotest.(check bool) "m4 estimates lower cost than m3" true
    (m4.Planner.est_cost < m3.Planner.est_cost)

let test_semijoin_in_plan () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let psx = example6_psx () in
  let plan = Planner.plan Planner.m4_config stats psx in
  Alcotest.(check bool) "some step semijoin-projects the volume relation" true
    (List.exists (fun s -> s.Planner.semijoin_keep <> None) plan.Planner.steps);
  ignore store

(* --- structural plans --------------------------------------------------------- *)

let treebank = [W.Treebank_gen.generate (W.Treebank_gen.scaled 10)]
let nostruct_config = { Planner.m4_config with Planner.use_struct = false }

let contains msg sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1)) in
  go 0

(* The Figure-7 test-4 regression, path-statistics form: a query over
   structure the document does not have — an absent label, or an absent
   parent/child pairing of present labels — compiles to the empty plan,
   and EXPLAIN attributes the proof to the path statistics. *)
let test_empty_structure_plan_shape () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  List.iter
    (fun (what, query) ->
      let psx = psx_of query in
      let plan = Planner.plan Planner.m4_config stats psx in
      Alcotest.(check bool) (what ^ ": provably empty") true plan.Planner.provably_empty;
      Alcotest.(check int) (what ^ ": no steps") 0 (List.length plan.Planner.steps);
      Alcotest.(check bool) (what ^ ": no twig") true (plan.Planner.twig = None);
      let rendered = Planner.to_string plan in
      Alcotest.(check bool) (what ^ ": explain says provably empty") true
        (contains rendered "provably empty");
      Alcotest.(check bool) (what ^ ": proof credited to path statistics") true
        (contains rendered "path statistics");
      Alcotest.(check int) (what ^ ": no rows") 0 (List.length (run_plan store plan)))
    [ ("absent label", "for $x in //proceedings return $x");
      ("absent pair", "for $x in //article return for $y in $x/article return $y") ]

(* On a deep recursive document the cost model reaches for the
   structural machinery — the holistic twig for a pure chain, staircase
   joins otherwise — and the results match the plan compiled with
   [use_struct = false]. *)
let test_struct_plans_chosen_and_agree () =
  let store, doc_stats = load treebank in
  let stats = Stats.make store doc_stats in
  List.iter
    (fun (what, expect_twig, query) ->
      let psx = psx_of query in
      let structural = Planner.plan Planner.m4_config stats psx in
      let baseline = Planner.plan nostruct_config stats psx in
      let is_struct_join s =
        match s.Planner.join with Planner.Struct_desc _ -> true | _ -> false
      in
      let is_struct_scan s =
        match s.Planner.access with Planner.Struct_scan _ -> true | _ -> false
      in
      if expect_twig then
        Alcotest.(check bool) (what ^ ": compiled to a twig") true
          (structural.Planner.twig <> None)
      else
        Alcotest.(check bool) (what ^ ": uses the structural index") true
          (List.exists (fun s -> is_struct_join s || is_struct_scan s)
             structural.Planner.steps);
      Alcotest.(check bool) (what ^ ": baseline avoids structural plans") true
        (baseline.Planner.twig = None
        && List.for_all (fun s -> not (is_struct_join s || is_struct_scan s))
             baseline.Planner.steps);
      let rows = run_plan store structural in
      Alcotest.(check bool) (what ^ ": produces rows") true (rows <> []);
      Alcotest.(check bool) (what ^ ": structural = baseline results") true
        (rows = run_plan store baseline))
    [ ( "three-step chain", true,
        "for $s in //S return for $np in $s//NP return for $nn in $np//NN return $nn" );
      (* The existential breaks the root-to-leaf chain shape, so this
         one must fall back to a staircase semijoin, not a twig. *)
      ( "existential semijoin", false,
        "for $np in //NP return if (some $vb in $np//VB satisfies true()) then $np else ()"
      ) ]

(* --- plan equivalence across orders and strategies ---------------------------- *)

(* For a PSX with several relations, every valid permutation under every
   ordering strategy must return exactly the same vartuples in the same
   (document) order. *)
let test_all_plans_agree () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  List.iter
    (fun query_src ->
      let psx = psx_of query_src in
      let reference =
        run_plan store (Planner.plan Planner.m4_config stats psx)
      in
      Alcotest.(check bool) "reference plan returns rows" true (reference <> []);
      let permutations =
        (* All permutations of the relation list (small). *)
        let rec perms = function
          | [] -> [[]]
          | xs ->
            List.concat_map
              (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) xs)))
              xs
        in
        perms psx.A.rels
      in
      let strategies : Planner.order_strategy list =
        [`Preserve; `Mem_sort; `Ext_sort; `Btree_sort]
      in
      let tried = ref 0 in
      List.iter
        (fun order ->
          List.iter
            (fun strategy ->
              List.iter
                (fun (use_indexes, use_struct) ->
                  let config =
                    { Planner.m4_config with
                      Planner.order = strategy;
                      use_indexes;
                      use_struct;
                      cost_based = true }
                  in
                  match Planner.plan_with_order config stats psx order with
                  | plan ->
                    incr tried;
                    let rows = run_plan store plan in
                    if rows <> reference then
                      Alcotest.failf "plan disagrees (%s, %s, indexes=%b, struct=%b)"
                        (String.concat "," order)
                        (match strategy with
                         | `Preserve -> "preserve"
                         | `Mem_sort -> "mem-sort"
                         | `Ext_sort -> "ext-sort"
                         | `Btree_sort -> "btree-sort")
                        use_indexes use_struct
                  | exception Invalid_argument _ -> ())
                [(true, true); (true, false); (false, false)])
            strategies)
        permutations;
      Alcotest.(check bool) "tried many plans" true (!tried > 10))
    [ Xqdb_testbed.Queries.example6;
      "for $x in //article return for $t in $x/title return $t";
      "for $x in //inproceedings return if (some $y in $x/year satisfies (some $t in \
       $y/text() satisfies $t = \"1999\")) then $x/booktitle else ()" ]

(* --- parameterized templates ------------------------------------------------- *)

(* One template, bound once per outer tuple, must enumerate exactly what
   a fresh instantiation per tuple does — and the metrics must show one
   build against many binds. *)
let test_template_reuse () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let root = root_env store in
  let outer_plan =
    Planner.plan Planner.m4_config stats (psx_of "for $x in //article return $x")
  in
  let articles = run_plan store outer_plan in
  Alcotest.(check bool) "many articles" true (List.length articles > 10);
  (* The inner relfor of the nested query reads $x as an external. *)
  let inner_psx =
    let tpm =
      Merge.merge
        (Rewrite.query
           (Xqdb_xq.Xq_parser.parse
              "for $x in //article return <e>{ for $a in $x/author return $a }</e>"))
    in
    match Xqdb_plan.Plan_ir.tpm_relfors tpm with
    | [_outer; inner] -> inner.A.source
    | rs -> Alcotest.failf "expected two relfors, got %d" (List.length rs)
  in
  let plan = Planner.plan Planner.m4_config stats inner_psx in
  Alcotest.(check bool) "plan reads outer variables" true
    (Planner.plan_externs plan <> []);
  (* m4 vartuples carry (in, out): the article row is [| I in; I out |]. *)
  let env_of (t : Tuple.t) v =
    if String.equal v Xqdb_xq.Xq_ast.root_var then root v
    else
      match t.(0), t.(1) with
      | Tuple.I nin, Tuple.I nout -> (nin, nout)
      | _ -> Alcotest.fail "article vartuple is not (in, out)"
  in
  let before = S.Metrics.snapshot () in
  let tmpl = Planner.template (Op.make_ctx store) plan in
  let reused =
    List.map
      (fun t ->
        Planner.bind tmpl ~env:(env_of t);
        Op.drain tmpl.Planner.op)
      articles
  in
  let fresh =
    List.map
      (fun t -> Op.drain (Planner.instantiate (Op.make_ctx store) plan ~env:(env_of t)))
      articles
  in
  Alcotest.(check bool) "rebinding agrees with fresh instantiation" true (reused = fresh);
  Alcotest.(check bool) "some article has authors" true
    (List.exists (fun rows -> rows <> []) reused);
  let d = S.Metrics.diff (S.Metrics.snapshot ()) before in
  let n = List.length articles in
  Alcotest.(check int) "one shared template + n fresh instantiations" (1 + n)
    (S.Metrics.get d "planner.templates_built");
  Alcotest.(check int) "every use is one bind" (2 * n)
    (S.Metrics.get d "planner.template_binds")

(* Materialization modes do not change results. *)
let test_materialize_modes_agree () =
  let store, doc_stats = load dblp in
  let stats = Stats.make store doc_stats in
  let psx = example6_psx () in
  let run materialize =
    run_plan store (Planner.plan { Planner.m4_config with Planner.materialize } stats psx)
  in
  Alcotest.(check bool) "disk = mem" true (run `Disk = run `Mem)

let () =
  Alcotest.run "optimizer"
    [ ( "statistics",
        [ Alcotest.test_case "estimates" `Quick test_stats_estimates;
          Alcotest.test_case "unlucky inversion" `Quick test_unlucky_inversion ] );
      ( "planner",
        [ Alcotest.test_case "preserve validity" `Quick test_preserve_validity;
          Alcotest.test_case "provably empty" `Quick test_provably_empty;
          Alcotest.test_case "cost model prefers indexes" `Quick
            test_cost_based_prefers_indexes;
          Alcotest.test_case "semijoin appears" `Quick test_semijoin_in_plan ] );
      ( "structural plans",
        [ Alcotest.test_case "absent structure compiles to empty" `Quick
            test_empty_structure_plan_shape;
          Alcotest.test_case "struct plans chosen and agree" `Quick
            test_struct_plans_chosen_and_agree ] );
      ( "templates",
        [ Alcotest.test_case "template reuse" `Quick test_template_reuse ] );
      ( "plan equivalence",
        [ Alcotest.test_case "orders and strategies agree" `Slow test_all_plans_agree;
          Alcotest.test_case "materialization modes agree" `Quick
            test_materialize_modes_agree ] ) ]
