(* Tests for lib/plan: the staged compilation pipeline, the shared plan
   IR, per-stage validation, rendering, and the parameterized template
   sites the physical stage produces. *)

module A = Xqdb_tpm.Tpm_algebra
module Rewrite = Xqdb_tpm.Rewrite
module Merge = Xqdb_tpm.Merge
module Plan_ir = Xqdb_plan.Plan_ir
module Plan_validate = Xqdb_plan.Plan_validate
module Pipeline = Xqdb_plan.Pipeline
module Planner = Xqdb_optimizer.Planner
module Stats = Xqdb_optimizer.Stats
module Tuple = Xqdb_physical.Tuple
module S = Xqdb_storage
module X = Xqdb_xasr
module W = Xqdb_workload

let ctx ?(merge_relfors = true) () =
  let disk = S.Disk.in_memory () in
  let pool = S.Buffer_pool.create disk in
  let store, doc_stats = X.Shredder.shred_forest pool ~name:"t" [W.Docs.figure2] in
  { Pipeline.config =
      { Pipeline.rewrite = Rewrite.default; merge_relfors; planner = Planner.m4_config;
        batch_size = 256; scan_domains = 1 };
    stats = Stats.make store doc_stats;
    store }

let parse = Xqdb_xq.Xq_parser.parse

(* The constructor between the loops blocks relfor merging, so this
   compiles to two sites with the inner one parameterized on [$a]. *)
let nested = "for $a in //authors return <list>{ for $n in $a/name return $n }</list>"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- stage structure ----------------------------------------------------- *)

let test_stage_structure () =
  let staged = Pipeline.compile (ctx ()) (parse nested) in
  Alcotest.(check (list string)) "pass order"
    ["source"; "rewrite"; "merge"; "plan"]
    (List.map (fun ((p : Pipeline.pass), _) -> p.Pipeline.name) staged.Pipeline.stages);
  Alcotest.(check (list string)) "stage kinds"
    ["xq-ast"; "tpm"; "tpm"; "physical"]
    (List.map (fun (_, ir) -> Plan_ir.stage_kind ir) staged.Pipeline.stages);
  Alcotest.(check int) "constructor blocks merging: two sites" 2
    (Plan_ir.site_count staged.Pipeline.phys);
  Alcotest.(check (list int)) "site ids in prefix order" [0; 1]
    (List.map (fun (s : Plan_ir.site) -> s.Plan_ir.id) (Plan_ir.sites staged.Pipeline.phys))

let test_merge_pass_is_optional () =
  let staged = Pipeline.compile (ctx ~merge_relfors:false ()) (parse nested) in
  Alcotest.(check (list string)) "no merge pass"
    ["source"; "rewrite"; "plan"]
    (List.map (fun ((p : Pipeline.pass), _) -> p.Pipeline.name) staged.Pipeline.stages);
  (* A mergeable query now keeps its nested relfors as separate sites. *)
  let mergeable = "for $x in //name return for $t in $x/text() return $t" in
  let merged = Pipeline.compile (ctx ()) (parse mergeable) in
  let unmerged = Pipeline.compile (ctx ~merge_relfors:false ()) (parse mergeable) in
  Alcotest.(check int) "merged: one site" 1 (Plan_ir.site_count merged.Pipeline.phys);
  Alcotest.(check int) "unmerged: two sites" 2 (Plan_ir.site_count unmerged.Pipeline.phys)

let test_front_matches_stages () =
  let c = ctx () in
  let q = parse nested in
  let front = Pipeline.front c q in
  let staged = Pipeline.compile c q in
  let last_tpm =
    List.fold_left
      (fun acc (_, ir) -> match ir with Plan_ir.Tpm t -> Some t | _ -> acc)
      None staged.Pipeline.stages
  in
  (match last_tpm with
   | Some t -> Alcotest.(check bool) "front = last logical stage" true (front = t)
   | None -> Alcotest.fail "no TPM stage");
  Alcotest.(check int) "front's relfors mirror the sites"
    (Plan_ir.site_count staged.Pipeline.phys)
    (List.length (Plan_ir.tpm_relfors front))

(* --- site parameters ----------------------------------------------------- *)

let test_site_params () =
  let staged = Pipeline.compile (ctx ()) (parse nested) in
  match Plan_ir.sites staged.Pipeline.phys with
  | [outer; inner] ->
    let vars (s : Plan_ir.site) = Tuple.param_vars s.Plan_ir.template.Planner.params in
    Alcotest.(check bool) "outer reads no user variable" true
      (List.for_all
         (fun v -> String.equal v Xqdb_xq.Xq_ast.root_var)
         (vars outer));
    Alcotest.(check bool) "inner is parameterized on the outer binding" true
      (List.exists
         (fun v -> not (String.equal v Xqdb_xq.Xq_ast.root_var))
         (vars inner));
    Alcotest.(check (list string)) "params = the plan's externs"
      (List.sort compare (Planner.plan_externs inner.Plan_ir.template.Planner.plan))
      (List.sort compare (vars inner))
  | sites -> Alcotest.failf "expected two sites, got %d" (List.length sites)

(* --- validation ---------------------------------------------------------- *)

let test_validate_stages () =
  let staged = Pipeline.compile (ctx ()) (parse nested) in
  List.iter
    (fun (_, ir) ->
      match Plan_validate.check ir with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "stage rejected: %s" msg)
    staged.Pipeline.stages

let test_validate_rejects_unbound () =
  (match Plan_validate.check (Plan_ir.Tpm (A.Out_var "phantom")) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unbound Out_var must be rejected");
  match Plan_validate.check (Plan_ir.Tpm (A.Constr ("", A.Empty))) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty constructor label must be rejected"

(* The rejection paths one by one: take a well-formed compiled plan and
   break exactly one invariant, checking the validator names it. *)

let expect_error ~needle ir =
  match Plan_validate.check ir with
  | Ok () -> Alcotest.failf "validator accepted IR that should fail with %S" needle
  | Error msg ->
    Alcotest.(check bool) (Printf.sprintf "message %S mentions %S" msg needle) true
      (contains msg needle)

let test_validate_rejects_unbound_phys () =
  let staged = Pipeline.compile (ctx ()) (parse nested) in
  (* A physical shell that emits a variable no relfor ever bound. *)
  expect_error ~needle:"out of scope"
    (Plan_ir.Phys (Plan_ir.P_seq (staged.Pipeline.phys, Plan_ir.P_out "zzz")))

let test_validate_rejects_duplicate_alias () =
  let staged = Pipeline.compile (ctx ()) (parse "for $n in //name return $n") in
  let tpm =
    match
      List.find_map
        (fun (_, ir) -> match ir with Plan_ir.Tpm t -> Some t | _ -> None)
        staged.Pipeline.stages
    with
    | Some t -> t
    | None -> Alcotest.fail "pipeline has no TPM stage"
  in
  match Plan_ir.tpm_relfors tpm with
  | [] -> Alcotest.fail "expected a relfor"
  | r :: _ ->
    let bad_psx = { r.A.source with A.rels = r.A.source.A.rels @ r.A.source.A.rels } in
    expect_error ~needle:"duplicate relation alias"
      (Plan_ir.Tpm (A.Relfor { r with A.source = bad_psx }))

let test_validate_rejects_arity_mismatch () =
  let staged = Pipeline.compile (ctx ()) (parse "for $n in //name return $n") in
  match Plan_ir.sites staged.Pipeline.phys with
  | [] -> Alcotest.fail "expected a site"
  | s :: _ ->
    (* Double the vartuple under distinct names without touching the
       compiled plan: the template now projects half the columns the
       bindings need. *)
    let clones =
      List.map (fun (b : A.binding) -> { b with A.var = b.A.var ^ "_dup" })
        s.Plan_ir.source.A.bindings
    in
    let bindings = s.Plan_ir.bindings @ clones in
    let bad =
      { s with
        Plan_ir.bindings;
        Plan_ir.source = { s.Plan_ir.source with A.bindings } }
    in
    expect_error ~needle:"columns" (Plan_ir.Phys (Plan_ir.P_relfor bad))

(* --- rendering ----------------------------------------------------------- *)

let test_render_staged () =
  let staged = Pipeline.compile (ctx ()) (parse nested) in
  let text = Pipeline.render_staged staged in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "render mentions %S" frag) true
        (contains text frag))
    [ "== source: xq-ast ==";
      "== rewrite: tpm ==";
      "== merge: tpm ==";
      "== plan: physical ==";
      "relfor site 0";
      "plan for relfor" ]

let () =
  Alcotest.run "plan"
    [ ( "pipeline",
        [ Alcotest.test_case "stage structure" `Quick test_stage_structure;
          Alcotest.test_case "merge pass optional" `Quick test_merge_pass_is_optional;
          Alcotest.test_case "front matches stages" `Quick test_front_matches_stages ] );
      ( "sites",
        [ Alcotest.test_case "site parameters" `Quick test_site_params ] );
      ( "validation",
        [ Alcotest.test_case "stages validate" `Quick test_validate_stages;
          Alcotest.test_case "rejects bad IR" `Quick test_validate_rejects_unbound;
          Alcotest.test_case "rejects unbound variable in physical shell" `Quick
            test_validate_rejects_unbound_phys;
          Alcotest.test_case "rejects duplicate alias" `Quick
            test_validate_rejects_duplicate_alias;
          Alcotest.test_case "rejects vartuple arity mismatch" `Quick
            test_validate_rejects_arity_mismatch ] );
      ( "rendering",
        [ Alcotest.test_case "render staged" `Quick test_render_staged ] ) ]
