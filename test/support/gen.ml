(* The generators moved into the testbed library so the differential
   harness can replay the same distributions from explicit seeds; this
   alias keeps the historical [Test_support.Gen] path working for the
   per-module property tests. *)

include Xqdb_testbed.Gen
